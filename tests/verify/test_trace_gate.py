"""The gate's trace cross-check: recorded deflections vs. FIB state.

A real run's recorded trace must pass; doctored records — wrong default
next hop, a non-RIB alternative, a valley-violating move, a non-capable
deflector — must each produce a specific refutation.
"""

import pytest

from repro import telemetry as tm
from repro.bgp.propagation import RoutingCache
from repro.errors import VerificationError
from repro.errors import LoopDetectedError, NoRouteError
from repro.mifo.deflection import MifoPathBuilder
from repro.telemetry import Telemetry
from repro.topology.generator import TopologyConfig, generate_topology
from repro.verify.gate import crosscheck_trace, post_run_gate


@pytest.fixture(scope="module")
def setting():
    graph = generate_topology(TopologyConfig(n_ases=150, seed=11))
    routing = RoutingCache(graph)
    return graph, routing


@pytest.fixture(autouse=True)
def _clean_sink():
    prev = tm.active()
    tm.activate(None)
    yield
    tm.activate(prev)


def _recorded_trace(graph, routing, max_events=50):
    """Drive the deflection builder with telemetry on; return real events."""
    t = Telemetry()
    tm.activate(t)
    capable = frozenset(graph.nodes())
    builder = MifoPathBuilder(graph, routing, capable)

    def congested(u: int, v: int) -> bool:
        return (u + v) % 3 == 0

    def spare(u: int, v: int) -> float:
        return float((u * 31 + v) % 7 + 1) * 1e8

    nodes = sorted(graph.nodes())
    for dst in nodes[:30]:
        for src in nodes[:30]:
            if src == dst:
                continue
            try:
                builder.build_path(src, dst, congested, spare)
            except (NoRouteError, LoopDetectedError):
                continue
            events = [
                e for e in t.trace_events() if e["kind"] == "deflection"
            ]
            if len(events) >= max_events:
                tm.activate(None)
                return events
    tm.activate(None)
    events = [e for e in t.trace_events() if e["kind"] == "deflection"]
    assert events, "fixture produced no deflections; tighten the congestion fn"
    return events


def test_genuine_trace_passes(setting):
    graph, routing = setting
    events = _recorded_trace(graph, routing)
    assert crosscheck_trace(graph, routing, events) == []


def test_gate_accepts_genuine_trace(setting):
    graph, routing = setting
    events = _recorded_trace(graph, routing)
    report = post_run_gate(graph, routing, events=events)
    assert report.ok


def test_wrong_default_nh_refuted(setting):
    graph, routing = setting
    ev = dict(_recorded_trace(graph, routing)[0])
    ev["default_nh"] = -1
    problems = crosscheck_trace(graph, routing, [ev])
    assert any("default next hop" in p for p in problems)


def test_deflection_to_default_refuted(setting):
    graph, routing = setting
    ev = dict(_recorded_trace(graph, routing)[0])
    ev["chosen"] = ev["default_nh"]
    problems = crosscheck_trace(graph, routing, [ev])
    assert any("default next hop" in p for p in problems)


def test_non_rib_alternative_refuted(setting):
    graph, routing = setting
    ev = dict(_recorded_trace(graph, routing)[0])
    ev["chosen"] = -42
    problems = crosscheck_trace(graph, routing, [ev])
    assert any("not in" in p for p in problems)


def test_non_capable_deflector_refuted(setting):
    graph, routing = setting
    ev = _recorded_trace(graph, routing)[0]
    assert isinstance(ev["as"], int)
    capable = frozenset(graph.nodes()) - {ev["as"]}
    problems = crosscheck_trace(graph, routing, [ev], capable=capable)
    assert any("not MIFO-capable" in p for p in problems)


def test_malformed_record_refuted(setting):
    graph, routing = setting
    problems = crosscheck_trace(
        graph, routing, [{"kind": "deflection", "seq": 0, "as": "five"}]
    )
    assert any("missing int fields" in p for p in problems)


def test_non_deflection_events_ignored(setting):
    graph, routing = setting
    events = [
        {"kind": "encap", "seq": 0, "router": "r1", "peer": "p1"},
        {"kind": "path_switch", "seq": 1, "flow": 3},
    ]
    assert crosscheck_trace(graph, routing, events) == []


def test_gate_raises_on_doctored_trace(setting):
    graph, routing = setting
    ev = dict(_recorded_trace(graph, routing)[0])
    ev["chosen"] = -42
    with pytest.raises(VerificationError, match="disagrees with FIB"):
        post_run_gate(graph, routing, events=[ev])


def test_gate_without_events_unchanged(setting):
    graph, routing = setting
    assert post_run_gate(graph, routing).ok
