"""The gate's trace cross-check: recorded deflections vs. FIB state.

A real run's recorded trace must pass; doctored records — wrong default
next hop, a non-RIB alternative, a valley-violating move, a non-capable
deflector — must each produce a specific refutation.
"""

import pytest

from repro import telemetry as tm
from repro.bgp.propagation import RoutingCache
from repro.errors import VerificationError
from repro.errors import LoopDetectedError, NoRouteError
from repro.mifo.deflection import MifoPathBuilder
from repro.telemetry import Telemetry
from repro.topology.generator import TopologyConfig, generate_topology
from repro.verify.gate import crosscheck_trace, post_run_gate


@pytest.fixture(scope="module")
def setting():
    graph = generate_topology(TopologyConfig(n_ases=150, seed=11))
    routing = RoutingCache(graph)
    return graph, routing


@pytest.fixture(autouse=True)
def _clean_sink():
    prev = tm.active()
    tm.activate(None)
    yield
    tm.activate(prev)


def _recorded_trace(graph, routing, max_events=50):
    """Drive the deflection builder with telemetry on; return real events."""
    t = Telemetry()
    tm.activate(t)
    capable = frozenset(graph.nodes())
    builder = MifoPathBuilder(graph, routing, capable)

    def congested(u: int, v: int) -> bool:
        return (u + v) % 3 == 0

    def spare(u: int, v: int) -> float:
        return float((u * 31 + v) % 7 + 1) * 1e8

    nodes = sorted(graph.nodes())
    for dst in nodes[:30]:
        for src in nodes[:30]:
            if src == dst:
                continue
            try:
                builder.build_path(src, dst, congested, spare)
            except (NoRouteError, LoopDetectedError):
                continue
            events = [
                e for e in t.trace_events() if e["kind"] == "deflection"
            ]
            if len(events) >= max_events:
                tm.activate(None)
                return events
    tm.activate(None)
    events = [e for e in t.trace_events() if e["kind"] == "deflection"]
    assert events, "fixture produced no deflections; tighten the congestion fn"
    return events


def test_genuine_trace_passes(setting):
    graph, routing = setting
    events = _recorded_trace(graph, routing)
    assert crosscheck_trace(graph, routing, events) == []


def test_gate_accepts_genuine_trace(setting):
    graph, routing = setting
    events = _recorded_trace(graph, routing)
    report = post_run_gate(graph, routing, events=events)
    assert report.ok


def test_wrong_default_nh_refuted(setting):
    graph, routing = setting
    ev = dict(_recorded_trace(graph, routing)[0])
    ev["default_nh"] = -1
    problems = crosscheck_trace(graph, routing, [ev])
    assert any("default next hop" in p for p in problems)


def test_deflection_to_default_refuted(setting):
    graph, routing = setting
    ev = dict(_recorded_trace(graph, routing)[0])
    ev["chosen"] = ev["default_nh"]
    problems = crosscheck_trace(graph, routing, [ev])
    assert any("default next hop" in p for p in problems)


def test_non_rib_alternative_refuted(setting):
    graph, routing = setting
    ev = dict(_recorded_trace(graph, routing)[0])
    ev["chosen"] = -42
    problems = crosscheck_trace(graph, routing, [ev])
    assert any("not in" in p for p in problems)


def test_non_capable_deflector_refuted(setting):
    graph, routing = setting
    ev = _recorded_trace(graph, routing)[0]
    assert isinstance(ev["as"], int)
    capable = frozenset(graph.nodes()) - {ev["as"]}
    problems = crosscheck_trace(graph, routing, [ev], capable=capable)
    assert any("not MIFO-capable" in p for p in problems)


def test_malformed_record_refuted(setting):
    graph, routing = setting
    problems = crosscheck_trace(
        graph, routing, [{"kind": "deflection", "seq": 0, "as": "five"}]
    )
    assert any("missing int fields" in p for p in problems)


def test_non_deflection_events_ignored(setting):
    graph, routing = setting
    events = [
        {"kind": "encap", "seq": 0, "router": "r1", "peer": "p1"},
        {"kind": "path_switch", "seq": 1, "flow": 3},
    ]
    assert crosscheck_trace(graph, routing, events) == []


def test_gate_raises_on_doctored_trace(setting):
    graph, routing = setting
    ev = dict(_recorded_trace(graph, routing)[0])
    ev["chosen"] = -42
    with pytest.raises(VerificationError, match="disagrees with FIB"):
        post_run_gate(graph, routing, events=[ev])


def test_gate_without_events_unchanged(setting):
    graph, routing = setting
    assert post_run_gate(graph, routing).ok


def _drive_workers(graph, routing, slices, *, epoch_for=(), max_events=25):
    """Record real deflections in one registry per worker slice.

    Mimics the parallel engine: each worker accumulates into its own
    :class:`Telemetry` and ships a snapshot back for ``absorb``.  Workers
    whose index is in ``epoch_for`` tag their events with an ``epoch``
    field, as the scenario engine's per-event certification does.
    """
    snaps = []
    capable = frozenset(graph.nodes())
    nodes = sorted(graph.nodes())

    def congested(u: int, v: int) -> bool:
        return (u + v) % 3 == 0

    def spare(u: int, v: int) -> float:
        return float((u * 31 + v) % 7 + 1) * 1e8

    for i, (lo, hi) in enumerate(slices):
        t = Telemetry()
        tm.activate(t)
        fields = {"epoch": i} if i in epoch_for else None
        builder = MifoPathBuilder(graph, routing, capable, event_fields=fields)
        n = 0
        for dst in nodes[lo:hi]:
            for src in nodes[lo:hi]:
                if src == dst:
                    continue
                try:
                    builder.build_path(src, dst, congested, spare)
                except (NoRouteError, LoopDetectedError):
                    continue
                n = sum(1 for e in t.trace_events() if e["kind"] == "deflection")
                if n >= max_events:
                    break
            if n >= max_events:
                break
        tm.activate(None)
        assert n > 0, f"worker slice {(lo, hi)} produced no deflections"
        snaps.append(t.snapshot())
    return snaps


class TestMergedParallelSnapshots:
    """The gate must hold over a trace stitched together by ``absorb``."""

    def _merged(self, graph, routing, **kw):
        snaps = _drive_workers(graph, routing, [(0, 25), (25, 50)], **kw)
        parent = Telemetry()
        for s in snaps:
            parent.absorb(s)
        return snaps, parent

    def test_absorb_rebases_seqs_monotonically(self, setting):
        graph, routing = setting
        snaps, parent = self._merged(graph, routing)
        seqs = [e["seq"] for e in parent.trace_events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs), "rebased seqs must stay unique"
        assert parent.events_total == sum(s.events_total for s in snaps)

    def test_crosscheck_passes_on_merged_trace(self, setting):
        graph, routing = setting
        _, parent = self._merged(graph, routing)
        assert crosscheck_trace(graph, routing, parent.trace_events()) == []
        assert post_run_gate(graph, routing, events=parent.trace_events()).ok

    def test_doctored_event_still_caught_after_merge(self, setting):
        # Seq rebasing must not launder a bad record: doctor one event in
        # the *second* worker's snapshot and confirm the merged-trace gate
        # still refutes it.
        graph, routing = setting
        snaps = _drive_workers(graph, routing, [(0, 25), (25, 50)])
        bad = [dict(e) for e in snaps[1].events]
        for e in bad:
            if e["kind"] == "deflection":
                e["chosen"] = -42
                break
        parent = Telemetry()
        parent.absorb(snaps[0])
        parent.absorb(
            snaps[1].__class__(
                counters=snaps[1].counters,
                gauges=snaps[1].gauges,
                histograms=snaps[1].histograms,
                spans=snaps[1].spans,
                events=tuple(bad),
                events_total=snaps[1].events_total,
                events_dropped=snaps[1].events_dropped,
            )
        )
        problems = crosscheck_trace(graph, routing, parent.trace_events())
        assert any("not in" in p for p in problems)

    def test_epoch_tags_survive_merge_and_default_skip(self, setting):
        graph, routing = setting
        _, parent = self._merged(graph, routing, epoch_for=(1,))
        merged = parent.trace_events()
        tagged = [e for e in merged if "epoch" in e]
        assert tagged and all(e["epoch"] == 1 for e in tagged)
        # Default gate skips epoch-tagged events even when doctored ...
        doctored = [dict(e) for e in merged]
        for e in doctored:
            if "epoch" in e and e["kind"] == "deflection":
                e["chosen"] = -42
        assert crosscheck_trace(graph, routing, doctored) == []
        # ... and the per-epoch certifier (skip off) still refutes them.
        problems = crosscheck_trace(
            graph, routing, doctored, skip_epoch_tagged=False
        )
        assert any("not in" in p for p in problems)
