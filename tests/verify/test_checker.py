"""The static verifier: proofs on honest state, refutations on broken state.

The adversarial configurations are the acceptance bar from the issue:
a hand-built valley, a two-AS deflection cycle with Tag-Check disabled,
and a dangling FIB entry — each must be *refuted with a counterexample
path*, not merely flagged.
"""

import pytest

from repro.bgp.propagation import RibEntry, RoutingCache
from repro.errors import TopologyError, VerificationError
from repro.topology.asgraph import ASGraph
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.relationships import Relationship
from repro.verify import (
    CHECKS,
    DestinationState,
    ForwardingState,
    post_run_gate,
    verify_cache,
    verify_forwarding_state,
    verify_routing,
)

C, P, PEER = Relationship.CUSTOMER, Relationship.PROVIDER, Relationship.PEER


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=300, seed=2014))


def _dests(graph, n=12):
    nodes = sorted(graph.nodes())
    step = max(1, len(nodes) // n)
    return nodes[::step][:n]


class TestProofsOnHonestState:
    """Converged Gao-Rexford state must be PROVED, in every variant."""

    @pytest.mark.parametrize("backend", ["dict", "array"])
    def test_synthetic_topology_proved(self, graph, backend):
        routing = RoutingCache(graph, backend=backend)
        report = verify_routing(graph, routing, _dests(graph))
        assert report.ok, report.render()
        assert report.findings == ()
        assert report.n_destinations == len(_dests(graph))
        assert report.n_states > 0 and report.n_edges > 0

    def test_tag_check_is_necessary_not_only_sufficient(self, graph):
        # Honest RIBs are not enough on their own: with Tag-Check disabled
        # the deflection relation admits peer->peer and provider->provider
        # continuations (the RIB legitimately offers those routes), so the
        # verifier must refute — statically reproducing the paper's
        # ablation argument for why the one-bit tag exists.
        routing = RoutingCache(graph)
        report = verify_routing(
            graph, routing, _dests(graph, 6), tag_check_enabled=False
        )
        assert not report.ok
        assert report.findings_for("valley-freedom")
        assert report.findings_for("loop-freedom")
        # Yet the tables themselves are consistent — only the dynamics break.
        assert not report.findings_for("fib-rib-consistency")

    def test_partial_deployment_is_weaker(self, graph):
        # Removing ASes from the capable set only removes deflect edges.
        routing = RoutingCache(graph)
        dests = _dests(graph, 6)
        full = verify_routing(graph, routing, dests)
        partial = verify_routing(
            graph, routing, dests, capable=frozenset(list(graph.nodes())[:50])
        )
        assert partial.ok
        assert partial.n_edges <= full.n_edges

    def test_render_mentions_proved(self, graph):
        routing = RoutingCache(graph)
        report = verify_routing(graph, routing, _dests(graph, 4))
        text = report.render()
        assert "PROVED" in text
        for check in CHECKS:
            assert check in text


def _two_as_cycle_state(*, tag_check: bool) -> ForwardingState:
    """ASes 1 and 2 peer; dest 3 is a customer of both.

    Each AS's deflection table offers its peer, whose default leads
    straight back — the classic two-AS deflection cycle Tag-Check's
    tagged bit breaks (a packet arriving over a peer link carries bit 0
    and may not exit over another peer link).
    """
    g = ASGraph.from_links(p2c=[(1, 3), (2, 3)], peering=[(1, 2)])
    rib = {
        1: (RibEntry(3, 1, C), RibEntry(2, 2, PEER)),
        2: (RibEntry(3, 1, C), RibEntry(1, 2, PEER)),
    }
    table = DestinationState(dest=3, fib={1: 3, 2: 3}, rib=rib)
    return ForwardingState(
        graph=g,
        tables=(table,),
        capable=frozenset({1, 2}),
        tag_check_enabled=tag_check,
    )


class TestAdversarialRefutations:
    def test_hand_built_valley_refuted_with_counterexample(self):
        # AS 1 is a customer of providers 10 and 20; dest 9 hangs off 20.
        # Export policy forbids 1 from offering its provider route to 10,
        # so FIB entries 10 -> 1 -> 20 form a valley: the packet enters 1
        # from provider 10 (bit 0) and leaves toward provider 20.
        g = ASGraph.from_links(p2c=[(10, 1), (20, 1), (20, 9)])
        table = DestinationState(
            dest=9,
            fib={10: 1, 1: 20, 20: 9},
            rib={
                10: (RibEntry(1, 3, C),),
                1: (RibEntry(20, 2, P),),
                20: (RibEntry(9, 1, C),),
            },
        )
        fs = ForwardingState(
            graph=g, tables=(table,), capable=frozenset(), tag_check_enabled=True
        )
        report = verify_forwarding_state(fs)
        assert not report.ok
        valleys = report.findings_for("valley-freedom")
        assert valleys, report.render()
        assert any(f.path == (10, 1, 20) for f in valleys), [
            f.path for f in valleys
        ]
        assert "Eq. 3" in valleys[0].detail

    def test_two_as_deflection_cycle_without_tags_refuted(self):
        report = verify_forwarding_state(_two_as_cycle_state(tag_check=False))
        assert not report.ok
        loops = report.findings_for("loop-freedom")
        assert loops, report.render()
        loop = loops[0]
        # The counterexample walk must actually close the reported cycle.
        assert loop.cycle_start is not None
        assert loop.path[loop.cycle_start] == loop.path[-1]
        assert set(loop.path) <= {1, 2}
        # The same relation also contains peer->peer valleys.
        assert report.findings_for("valley-freedom")

    def test_two_as_deflection_cycle_with_tags_proved(self):
        # Identical tables; the one-bit Tag-Check removes the cycle edges.
        report = verify_forwarding_state(_two_as_cycle_state(tag_check=True))
        assert report.ok, report.render()

    def test_dangling_fib_entry_refuted(self):
        g = ASGraph.from_links(p2c=[(2, 1), (2, 3)])
        # 1's FIB points at its provider 2 but its Adj-RIB-In is empty:
        # no route backs the forwarding entry.
        table = DestinationState(dest=3, fib={1: 2, 2: 3}, rib={2: (RibEntry(3, 1, C),)})
        fs = ForwardingState(graph=g, tables=(table,), capable=frozenset())
        report = verify_forwarding_state(fs)
        assert not report.ok
        dangling = [
            f
            for f in report.findings_for("fib-rib-consistency")
            if "dangling" in f.detail
        ]
        assert dangling, report.render()
        assert dangling[0].path == (1, 2)

    def test_non_neighbor_fib_entry_refuted(self):
        g = ASGraph.from_links(p2c=[(2, 1), (2, 3)])
        table = DestinationState(dest=3, fib={1: 3}, rib={})  # 1-3 not a link
        fs = ForwardingState(graph=g, tables=(table,), capable=frozenset())
        report = verify_forwarding_state(fs)
        assert any(
            "not a neighbor" in f.detail
            for f in report.findings_for("fib-rib-consistency")
        )

    def test_misrecorded_relationship_refuted(self):
        # The RIB claims the provider is a customer — the lie that would
        # let Tag-Check admit a valley.
        g = ASGraph.from_links(p2c=[(2, 1), (2, 3)])
        table = DestinationState(
            dest=3, fib={1: 2}, rib={1: (RibEntry(2, 2, C),)}
        )
        fs = ForwardingState(graph=g, tables=(table,), capable=frozenset())
        report = verify_forwarding_state(fs)
        assert any(
            "AS graph says" in f.detail
            for f in report.findings_for("fib-rib-consistency")
        )


class TestSnapshotAndGate:
    def test_from_routing_requires_frozen_graph(self):
        g = ASGraph()
        g.add_p2c(1, 0)
        with pytest.raises(TopologyError, match="freeze"):
            ForwardingState(graph=g, tables=(), capable=frozenset())

    def test_verify_cache_scopes_to_cached_destinations(self, graph):
        cache = RoutingCache(graph)
        cache.precompute([0, 5, 9])
        report = verify_cache(graph, cache)
        assert report.n_destinations == 3
        assert report.ok

    def test_post_run_gate_passes_honest_state(self, graph):
        cache = RoutingCache(graph)
        cache.precompute([0, 1])
        report = post_run_gate(graph, cache)
        assert report.ok

    def test_post_run_gate_raises_on_refutation(self):
        # Route the gate through a cache-like shim holding broken tables.
        fs = _two_as_cycle_state(tag_check=False)

        class _Shim:
            def cached_destinations(self):
                return (3,)

        g = fs.graph
        table = fs.tables[0]

        class _Routing:
            def __call__(self, dest):
                assert dest == 3
                return self

            def has_route(self, x):
                return x in table.fib or x == 3

            def next_hop(self, x):
                return table.fib.get(x)

            def rib(self, x):
                return table.rib.get(x, ())

            cached_destinations = _Shim.cached_destinations

        with pytest.raises(VerificationError) as err:
            post_run_gate(g, _Routing(), tag_check_enabled=False)
        assert not err.value.report.ok
        assert "loop-freedom" in str(err.value)

    def test_report_json_round_trip(self):
        import json

        report = verify_forwarding_state(_two_as_cycle_state(tag_check=False))
        data = json.loads(report.to_json())
        assert data["ok"] is False
        assert data["n_destinations"] == 1
        assert all(set(f) >= {"check", "dest", "path", "detail"} for f in data["findings"])
