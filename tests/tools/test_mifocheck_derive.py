"""Tests for the derived protected-field sets (MC104 substrate).

mifolint's MF003 protection sets must be *derived from the source* —
capture/restore for service state, slab-state markers for the solver
slab, ``np.ndarray`` annotations for the CSR arrays — and mifolint must
consume those derived sets rather than restating them by hand.
"""

from __future__ import annotations

import pathlib

from tools.mifocheck.derive import (
    checkpointed_state_fields,
    csr_array_fields,
    slab_state_fields,
)
from tools.mifocheck.passes.mc104 import _mifolint_literals
from tools.mifolint import core as lint_core

REPO = pathlib.Path(__file__).resolve().parents[2]


class TestDerivedSets:
    def test_checkpointed_fields_include_the_core_session_state(self):
        fields = checkpointed_state_fields()
        assert fields, "derived checkpointed-state set must not be empty"
        assert {"_flows", "_tick", "_stream_index"} <= set(fields)

    def test_checkpointed_fields_include_the_detector_state(self):
        fields = set(checkpointed_state_fields())
        assert {
            "_rtt_series",
            "_rtt_samples_total",
            "_rtt_alarms_total",
            "_cp_values",
            "_cp_epochs",
            "_cp_base",
            "_cp_count",
            "_cp_last",
            "_cp_streak",
            "_cp_baseline",
        } <= fields

    def test_slab_fields_cover_the_pool_arrays(self):
        fields = slab_state_fields()
        assert fields, "derived slab set must not be empty"
        assert {"_slab_rows", "_slab_cols", "_col_start", "_col_len"} <= set(fields)

    def test_csr_fields_nonempty(self):
        fields = csr_array_fields()
        assert fields, "derived CSR set must not be empty"
        assert all(name.startswith("_") or name.isidentifier() for name in fields)

    def test_every_derived_field_is_a_private_identifier_or_array(self):
        for fields in (checkpointed_state_fields(), slab_state_fields()):
            assert all(name.startswith("_") for name in fields)

    def test_mifolint_consumes_the_derived_sets(self):
        assert lint_core.SERVICE_STATE_FIELDS == checkpointed_state_fields()
        assert lint_core.SLAB_FIELDS == slab_state_fields()
        assert lint_core.CSR_FIELDS == csr_array_fields()

    def test_no_hand_maintained_literals_remain_in_mifolint(self):
        core_path = REPO / "tools" / "mifolint" / "core.py"
        assert _mifolint_literals(core_path) == {}
        text = core_path.read_text(encoding="utf-8")
        assert "from ..mifocheck.derive import" in text
