"""Unit tests for the repo-specific AST lint rules (tools/mifolint)."""

import pathlib
import subprocess
import sys
import textwrap

import pytest

from tools.mifolint import RULES, lint_paths, lint_source
from tools.mifolint.core import PathPolicy, _classify

REPO = pathlib.Path(__file__).resolve().parent.parent.parent


def _codes(source, **kw):
    return [v.code for v in lint_source(textwrap.dedent(source), **kw)]


class TestMF001UnseededRandomness:
    def test_module_level_random_flagged(self):
        src = """
            import random
            def _f() -> float:
                return random.random()
        """
        assert _codes(src) == ["MF001"]

    def test_seeded_random_instance_allowed(self):
        src = """
            import random
            def _f() -> float:
                rng = random.Random(42)
                return rng.random()
        """
        assert _codes(src) == []

    def test_unseeded_random_constructor_flagged(self):
        assert _codes("import random\nr = random.Random()\n") == ["MF001"]

    def test_numpy_legacy_global_flagged(self):
        src = """
            import numpy as np
            def _f():
                np.random.seed(0)
                return np.random.rand(3)
        """
        assert _codes(src) == ["MF001", "MF001"]

    def test_seeded_default_rng_allowed_unseeded_flagged(self):
        src = """
            from numpy.random import default_rng
            a = default_rng(7)
            b = default_rng()
        """
        assert _codes(src) == ["MF001"]

    def test_aliased_numpy_random_module_tracked(self):
        src = """
            import numpy.random as npr
            x = npr.normal()
        """
        assert _codes(src) == ["MF001"]

    def test_from_import_member_flagged(self):
        src = """
            from random import shuffle
            def _f(xs: list) -> None:
                shuffle(xs)
        """
        assert _codes(src) == ["MF001"]

    def test_non_library_code_exempt(self):
        src = "import random\nx = random.random()\n"
        assert _codes(src, library=False) == []


class TestMF002SetIteration:
    def test_for_over_set_call_flagged_in_hot_path(self):
        assert _codes("for x in set(items):\n    pass\n", hot=True) == ["MF002"]

    def test_for_over_set_literal_flagged(self):
        assert _codes("for x in {1, 2}:\n    pass\n", hot=True) == ["MF002"]

    def test_comprehension_over_keys_union_flagged(self):
        src = "out = [k for k in a.keys() | b.keys()]\n"
        assert _codes(src, hot=True) == ["MF002"]

    def test_sorted_set_allowed(self):
        assert _codes("for x in sorted(set(items)):\n    pass\n", hot=True) == []

    def test_dict_iteration_allowed(self):
        assert _codes("for k in mapping:\n    pass\n", hot=True) == []

    def test_membership_only_union_allowed(self):
        # `x in (a.keys() | b.keys())` never iterates in source order.
        assert _codes("ok = x in (a.keys() | b.keys())\n", hot=True) == []

    def test_cold_paths_exempt(self):
        assert _codes("for x in set(items):\n    pass\n", hot=False) == []


class TestMF003FrozenMutation:
    def test_mutator_call_flagged_outside_topology(self):
        assert _codes("graph.add_p2c(1, 2)\n") == ["MF003"]

    def test_mutator_call_allowed_with_exemption(self):
        assert _codes("g.add_as(1)\n", allow_mutators=True) == []

    def test_self_mutator_call_allowed(self):
        src = """
            class _ASGraph:
                def _from_links(self) -> None:
                    self.add_p2c(1, 2)
        """
        assert _codes(src) == []

    def test_csr_field_assignment_flagged(self):
        assert _codes("csr.nbr_indices = arr\n") == ["MF003"]

    def test_csr_element_store_flagged(self):
        assert _codes("csr.cust_indptr[0] = 5\n") == ["MF003"]

    def test_graph_private_store_flagged(self):
        assert _codes("graph._frozen = False\n") == ["MF003"]

    def test_self_private_store_allowed(self):
        src = """
            class _ASGraph:
                def _freeze(self) -> None:
                    self._frozen = True
        """
        assert _codes(src) == []

    def test_read_access_allowed(self):
        assert _codes("x = csr.nbr_indices[0]\n") == []


class TestMF003SlabFields:
    def test_slab_field_assignment_flagged(self):
        assert _codes("solver._slab_rows = arr\n") == ["MF003"]

    def test_slab_element_store_flagged(self):
        assert _codes("solver._base_counts[3] = 0.0\n") == ["MF003"]

    def test_multiplicity_augmented_store_flagged(self):
        assert _codes("solver._mult[col] += 1.0\n") == ["MF003"]

    def test_incremental_module_exempt(self):
        src = """
            class _IncrementalMaxMin:
                def _intern(self) -> None:
                    self._slab_used = 0
                    self._mult[0] = 1.0
        """
        assert _codes(src, allow_slab=True) == []

    def test_self_store_still_flagged_without_exemption(self):
        # Unlike graph privates, the slab is single-owner: even a class's
        # own stores are flagged outside repro.flowsim.incremental.
        src = """
            class _Wrapper:
                def _poke(self) -> None:
                    self._slab_used = 0
        """
        assert _codes(src) == ["MF003"]

    def test_read_access_allowed(self):
        assert _codes("x = solver._base_counts[0]\n") == []


class TestMF004AdHocClocks:
    def test_time_time_flagged(self):
        src = """
            import time
            def _f() -> float:
                return time.time()
        """
        assert _codes(src) == ["MF004"]

    def test_perf_counter_attribute_flagged(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert _codes(src) == ["MF004"]

    def test_from_import_member_flagged(self):
        src = """
            from time import monotonic
            def _f() -> float:
                return monotonic()
        """
        assert _codes(src) == ["MF004"]

    def test_aliased_module_tracked(self):
        src = "import time as t\nx = t.process_time_ns()\n"
        assert _codes(src) == ["MF004"]

    def test_sleep_is_not_a_clock_read(self):
        assert _codes("import time\ntime.sleep(0.1)\n") == []

    def test_telemetry_package_exempt(self):
        src = "import time\nx = time.perf_counter()\n"
        assert _codes(src, allow_timers=True) == []

    def test_non_library_code_exempt(self):
        src = "import time\nx = time.time()\n"
        assert _codes(src, library=False) == []

    def test_inline_suppression(self):
        src = "import time\nx = time.time()  # mifolint: disable=MF004\n"
        assert _codes(src) == []

    def test_unrelated_attribute_named_time_allowed(self):
        # `self.time()` or `clock.time()` is not the stdlib module.
        assert _codes("x = clock.time()\n") == []


class TestMF005Docstrings:
    def test_public_function_without_docstring_flagged(self):
        assert _codes("def pub() -> int:\n    return 1\n") == ["MF005"]

    def test_public_class_without_docstring_flagged(self):
        src = """
            class Pub:
                x: int = 1
        """
        assert _codes(src) == ["MF005"]

    def test_docstring_satisfies(self):
        src = '''
            def pub() -> int:
                """Returns one."""
                return 1
        '''
        assert _codes(src) == []

    def test_private_and_dunder_exempt(self):
        src = """
            class _Hidden:
                def __init__(self) -> None:
                    self.x = 1
                def _helper(self) -> None:
                    return None
        """
        assert _codes(src) == []

    def test_public_method_flagged(self):
        src = '''
            class Pub:
                """Documented."""
                def undocumented(self) -> None:
                    return None
        '''
        assert _codes(src) == ["MF005"]

    def test_overload_stub_exempt(self):
        src = """
            from typing import overload
            @overload
            def pub(x: int) -> int: ...
            @overload
            def pub(x: str) -> str: ...
        """
        assert _codes(src) == []

    def test_property_setter_exempt(self):
        src = '''
            class Pub:
                """Documented."""
                @property
                def value(self) -> int:
                    """The value."""
                    return self._v
                @value.setter
                def value(self, v: int) -> None:
                    self._v = v
        '''
        assert _codes(src) == []

    def test_stub_bodies_exempt(self):
        src = """
            class Proto:
                '''A protocol.'''
                def member(self) -> int: ...
                def other(self) -> None:
                    pass
        """
        assert _codes(src) == []

    def test_nested_functions_exempt(self):
        src = '''
            def pub() -> int:
                """Documented."""
                def inner() -> int:
                    return 1
                return inner()
        '''
        assert _codes(src) == []

    def test_non_library_code_exempt(self):
        assert _codes("def pub() -> None:\n    return None\n", library=False) == []

    def test_inline_suppression(self):
        src = "def pub() -> None:  # mifolint: disable=MF005\n    return None\n"
        assert _codes(src) == []


class TestSuppression:
    @pytest.mark.parametrize(
        "comment", ["# mifolint: disable=MF001", "# noqa: MF001"]
    )
    def test_inline_suppression(self, comment):
        src = f"import random\nx = random.random()  {comment}\n"
        assert _codes(src) == []

    def test_suppressing_wrong_code_does_nothing(self):
        src = "import random\nx = random.random()  # noqa: MF003\n"
        assert _codes(src) == ["MF001"]


class TestMF003ServiceState:
    def test_session_state_assignment_flagged(self):
        assert _codes("session._tick = 5\n") == ["MF003"]

    def test_engine_state_element_store_flagged(self):
        assert _codes("eng._congested[3] = True\n") == ["MF003"]

    def test_flow_table_store_flagged(self):
        assert _codes("eng._flows[fid] = flow\n") == ["MF003"]

    def test_self_store_allowed(self):
        # The owning class (scenario engine, service session) mutates its
        # own state freely — only external writers desynchronize it from
        # what the checkpoint would capture.
        src = """
            class _Engine:
                def _advance(self) -> None:
                    self._event_no += 1
                    self._congested[0] = True
        """
        assert _codes(src) == []

    def test_service_restore_path_exempt(self):
        src = "session._stream_index = 7\neng._alloc[:n] = values\n"
        assert _codes(src, allow_service=True) == []

    def test_read_access_allowed(self):
        assert _codes("x = session._tick\n") == []


class TestClassification:
    def test_library_hot_and_topology_flags(self):
        policy = _classify(pathlib.Path("src/repro/bgp/propagation.py"))
        assert policy == PathPolicy(library=True, hot=True, docstrings=True)
        policy = _classify(pathlib.Path("src/repro/topology/generator.py"))
        assert policy == PathPolicy(
            library=True, hot=True, docstrings=True, allow_mutators=True
        )
        policy = _classify(pathlib.Path("src/repro/experiments/fig5.py"))
        assert policy == PathPolicy(library=True, hot=False, docstrings=True)
        policy = _classify(pathlib.Path("src/repro/telemetry/core.py"))
        assert policy == PathPolicy(
            library=True, hot=False, docstrings=True, allow_timers=True
        )
        policy = _classify(pathlib.Path("src/repro/flowsim/simulator.py"))
        assert policy == PathPolicy(library=True, hot=True, docstrings=True)
        policy = _classify(pathlib.Path("src/repro/flowsim/incremental.py"))
        assert policy == PathPolicy(
            library=True, hot=True, docstrings=True, allow_slab=True
        )
        policy = _classify(pathlib.Path("src/repro/scenario/engine.py"))
        assert policy == PathPolicy(library=True, hot=True, docstrings=True)
        policy = _classify(pathlib.Path("src/repro/service/checkpoint.py"))
        assert policy == PathPolicy(
            library=True, hot=True, docstrings=True, allow_service=True
        )
        policy = _classify(pathlib.Path("tests/bgp/test_parallel.py"))
        assert policy.library is False and policy.docstrings is False

    def test_tooling_paths_get_determinism_rules_without_docstrings(self):
        # tools/ and benchmarks/ are held to MF001/MF004 but not MF005.
        for p in ("tools/mifocheck/program.py", "benchmarks/test_micro.py"):
            policy = _classify(pathlib.Path(p))
            assert policy == PathPolicy(library=True, hot=False, docstrings=False), p

    def test_select_filters(self, tmp_path):
        f = tmp_path / "src" / "repro" / "bgp" / "bad.py"
        f.parent.mkdir(parents=True)
        f.write_text("import random\nx = random.random()\nfor a in set(x):\n    pass\n")
        all_codes = {v.code for v in lint_paths([f])}
        assert all_codes == {"MF001", "MF002"}
        only = {v.code for v in lint_paths([f], select=frozenset({"MF002"}))}
        assert only == {"MF002"}


class TestRepoIsClean:
    def test_src_and_tests_pass_the_linter(self):
        violations = lint_paths([REPO / "src", REPO / "tests"])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_cli_exit_codes(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.mifolint", "src", "tests"],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

        bad = tmp_path / "src" / "repro" / "x.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        proc = subprocess.run(
            [sys.executable, "-m", "tools.mifolint", str(bad)],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "MF001" in proc.stdout

    def test_rule_table_listed(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.mifolint", "--list-rules"],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        for code in RULES:
            assert code in proc.stdout
