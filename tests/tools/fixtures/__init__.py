"""Planted-bug fixture corpus for the mifocheck analysis passes.

Each ``mc10x/`` directory is a miniature source root holding an ``app``
package with one (or a few) deliberately planted violations of the
corresponding pass.  The fixtures are parsed by the analyzer, never
imported, so they stay independent of the real ``repro`` package.
"""
