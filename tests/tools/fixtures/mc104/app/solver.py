"""Slab solver.

Planted bug: ``_intern`` subscript-stores into ``self._cols`` but the
``__init__`` assignment of ``_cols`` carries no slab-state marker, so
the declared slab set is inconsistent with the mutation footprint.
"""

from __future__ import annotations


class Solver:
    def __init__(self, rows: int) -> None:
        self._extent = rows
        self._rows = [0] * rows  # mifocheck: slab-state
        self._cols = [0] * rows  # planted MC104: mutated but unmarked
        self._labels: dict[int, str] = {}

    def _intern(self, index: int, value: int) -> None:
        self._rows[index] = value
        self._cols[index] = value
        self._labels[index] = str(value)

    def add(self, index: int) -> None:
        self._rows[index] += 1
