"""MC104 fixture: protected-field inference with planted drift."""
