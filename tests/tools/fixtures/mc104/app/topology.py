"""CSR adjacency feeding the derived array-field set."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Csr:
    indptr: np.ndarray
    indices: np.ndarray
