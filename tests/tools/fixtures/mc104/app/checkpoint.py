"""Capture/restore pair feeding the derived checkpointed-state set."""

from __future__ import annotations

from typing import Any

from .solver import Solver


def capture(solver: Solver) -> dict[str, Any]:
    return {"rows": list(solver._rows), "extent": solver._extent}


def restore(state: dict[str, Any]) -> Solver:
    solver = Solver(state["extent"])
    solver._rows = list(state["rows"])
    return solver
