"""Stand-in mifolint core with a planted stale hand-maintained list.

The derived slab set for the fixture solver is ``{"_rows"}``; the
literal below restates it with a field that no longer exists.
"""

from __future__ import annotations

SLAB_FIELDS: frozenset[str] = frozenset({"_rows", "_stale"})  # planted MC104
