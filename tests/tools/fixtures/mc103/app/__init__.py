"""MC103 fixture: stream purity with planted impurities."""
