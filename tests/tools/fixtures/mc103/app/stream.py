"""Event stream whose ``event_at`` is planted with four impurities."""

from __future__ import annotations

import random
import time

_DRIFT = 0.0


def calibrate(delta: float) -> None:
    global _DRIFT
    _DRIFT = delta


class Stream:
    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._cursor = 0

    def event_at(self, index: int) -> tuple[int, float]:
        self._cursor = index  # planted MC103: stream keeps a cursor
        jitter = random.random()  # planted MC103: ambient RNG  # mifolint: disable=MF001
        stamp = time.time()  # planted MC103: wall clock  # mifolint: disable=MF004
        return index, stamp + jitter + _DRIFT  # planted MC103: mutable global
