"""Snapshot/merge pair.

Planted bug: ``Snapshot.spans`` is never folded by ``Sink.absorb`` and
is not declared in a ``MERGE_DERIVED_FIELDS`` tuple, so span data from
workers is silently dropped at the fork boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Snapshot:
    counters: dict[str, int] = field(default_factory=dict)
    spans: list[tuple[str, float]] = field(default_factory=list)  # planted MC102


class Sink:
    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.spans: list[tuple[str, float]] = []

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def span(self, name: str, duration: float) -> None:
        self.spans.append((name, duration))

    def snapshot(self) -> Snapshot:
        return Snapshot(counters=dict(self.counters), spans=list(self.spans))

    def absorb(self, snap: Snapshot) -> None:
        # planted MC102: snap.spans is never read here
        for key, value in snap.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
