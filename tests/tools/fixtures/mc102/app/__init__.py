"""MC102 fixture: fork-boundary determinism with planted leaks."""
