"""Pool dispatch with planted worker-side determinism bugs."""

from __future__ import annotations

from typing import Any

from . import telemetry

_PROGRESS = 0

#: sanctioned worker-state slot (named in worker_state_globals)
_SHARED = None


def _init_worker(seed: int) -> None:
    global _SHARED  # allowlisted: the sanctioned one-way state install
    global _PROGRESS  # planted MC102: initializer rebinds a parent global
    _SHARED = seed
    _PROGRESS = seed
    sink = telemetry.Sink()
    sink.span("attach", 0.0)  # planted MC102: 'spans' never merged


def _worker(chunk: list[int]) -> int:
    global _PROGRESS  # planted MC102: globals do not survive the fork
    _PROGRESS += 1
    sink = telemetry.Sink()
    sink.inc("chunks")
    sink.span("chunk", float(len(chunk)))  # planted MC102: 'spans' never merged
    total = sum(chunk)
    for shard in {2, 3, 5}:  # planted MC102: set iteration order varies
        total += shard
    return total


def run(pool: Any, chunks: list[list[int]]) -> list[int]:
    return list(pool.imap(_worker, chunks))


def run_pooled(pool_cls: Any, chunks: list[list[int]]) -> list[int]:
    with pool_cls(initializer=_init_worker, initargs=(1,)) as pool:
        return list(pool.map(_worker, chunks))


def run_fast(pool: Any, chunks: list[list[int]]) -> list[int]:
    # planted MC102: nondeterministic dispatch
    return list(pool.imap_unordered(_worker, chunks))
