"""Checkpoint-target class.

Planted bug: ``_leak`` is assigned in ``__init__`` but neither captured
by :func:`app.checkpoint.capture` nor declared derivable.
"""

from __future__ import annotations

from typing import ClassVar


class Session:
    DERIVABLE: ClassVar[dict[str, str]] = {
        "history": "rebuilt from the captured tick count on restore",
    }

    def __init__(self, config: dict[str, int]) -> None:
        self.config = config  # mifocheck: derivable: constructor argument
        self._tick_no = 0
        self._entries: list[int] = []
        self._leak = 0.0  # planted MC101: never captured, never declared
        self._pending_batch: list[int] = []  # buffered ticks; checkpointed
        self.history: list[int] = []

    def step(self, value: int) -> None:
        self._tick_no += 1
        self._pending_batch.append(value)
        if len(self._pending_batch) >= 4:
            self._entries.extend(self._pending_batch)
            self._pending_batch.clear()
        self._leak += 0.5
