"""MC101 fixture: checkpoint completeness with one uncaptured attr."""
