"""Capture/restore pair for the fixture session (``_leak`` missing)."""

from __future__ import annotations

from typing import Any

from .session import Session


def capture(session: Session) -> dict[str, Any]:
    return {
        "config": dict(session.config),
        "tick_no": session._tick_no,
        "entries": list(session._entries),
        "pending": list(session._pending_batch),
    }


def restore(state: dict[str, Any]) -> Session:
    session = Session(dict(state["config"]))
    session._tick_no = state["tick_no"]
    session._entries = list(state["entries"])
    session._pending_batch = list(state.get("pending", []))
    session.history = [0] * session._tick_no
    return session
