"""Tests for the mifocheck whole-program analyzer.

Three layers:

* the planted-bug fixture corpus under ``tests/tools/fixtures/`` — each
  pass must fire on its fixture with the exact rule code and line;
* the shipped ``src/repro`` tree — all four passes must be finding-free,
  and deleting a single ``capture()`` field or snapshot-merge entry from
  a scratch copy must make MC101/MC102 fail;
* the CLI — exit codes, report formats, and the baseline workflow.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import subprocess
import sys

import pytest

from tools.mifocheck import AnalysisConfig, default_config, run_passes
from tools.mifocheck.passes import RULES

REPO = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


def line_of(path: pathlib.Path, needle: str) -> int:
    """1-based line number of the first line containing ``needle``."""
    for i, text in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        if needle in text:
            return i
    raise AssertionError(f"{needle!r} not found in {path}")


def fixture_config(
    name: str, root: pathlib.Path | None = None, **overrides: object
) -> AnalysisConfig:
    """An :class:`AnalysisConfig` re-pointed at a fixture mini-package."""
    base = root if root is not None else FIXTURES / name
    fields: dict[str, object] = dict(
        source_root=base,
        package="app",
        checkpoint_module="app.checkpoint",
        capture_function="capture",
        restore_functions=("restore",),
        checkpoint_targets=(("app.session", "Session"),),
        parallel_module="app.parallel",
        telemetry_module="app.telemetry",
        snapshot_class="Snapshot",
        merge_function="absorb",
        merge_derived_decl="MERGE_DERIVED_FIELDS",
        worker_state_globals=("_SHARED",),
        stream_module="app.stream",
        stream_class="Stream",
        stream_method="event_at",
        slab_module="app.solver",
        slab_class="Solver",
        slab_methods=("_intern", "add"),
        topology_module="app.topology",
        csr_class="Csr",
        mifolint_core=base / "fake_mifolint_core.py",
    )
    fields.update(overrides)
    return AnalysisConfig(**fields)  # type: ignore[arg-type]


def run_fixture(name: str, code: str, root: pathlib.Path | None = None):
    pairs, _program = run_passes(fixture_config(name, root=root), select={code})
    return [f for f, _text in pairs]


def copy_fixture(tmp_path: pathlib.Path, name: str) -> pathlib.Path:
    dst = tmp_path / name
    shutil.copytree(FIXTURES / name, dst, ignore=shutil.ignore_patterns("__pycache__"))
    return dst


def rewrite(path: pathlib.Path, old: str, new: str) -> None:
    text = path.read_text(encoding="utf-8")
    assert old in text, f"{old!r} not found in {path}"
    path.write_text(text.replace(old, new), encoding="utf-8")


# ----------------------------------------------------------------------
# MC101 — checkpoint completeness
# ----------------------------------------------------------------------


class TestMC101Fixture:
    def test_planted_uncaptured_attr_detected_at_exact_line(self):
        findings = run_fixture("mc101", "MC101")
        assert len(findings) == 1
        f = findings[0]
        assert f.code == "MC101"
        assert f.path == "mc101/app/session.py"
        assert f.line == line_of(
            FIXTURES / "mc101" / "app" / "session.py", "self._leak = 0.0"
        )
        assert "'_leak'" in f.message
        assert "not captured" in f.message

    def test_suppression_comment_silences_the_finding(self, tmp_path):
        root = copy_fixture(tmp_path, "mc101")
        rewrite(
            root / "app" / "session.py",
            "# planted MC101: never captured, never declared",
            "# mifocheck: disable=MC101",
        )
        assert run_fixture("mc101", "MC101", root=root) == []

    def test_inline_derivable_marker_covers(self, tmp_path):
        root = copy_fixture(tmp_path, "mc101")
        rewrite(
            root / "app" / "session.py",
            "# planted MC101: never captured, never declared",
            "# mifocheck: derivable: rebuilt by replaying the entries",
        )
        assert run_fixture("mc101", "MC101", root=root) == []

    def test_stale_derivable_entry_flagged(self, tmp_path):
        root = copy_fixture(tmp_path, "mc101")
        rewrite(
            root / "app" / "session.py",
            '"history": "rebuilt from the captured tick count on restore",',
            '"history": "rebuilt from the captured tick count on restore",\n'
            '        "ghost": "an attribute the class no longer assigns",',
        )
        findings = run_fixture("mc101", "MC101", root=root)
        stale = [f for f in findings if "stale DERIVABLE entry 'ghost'" in f.message]
        assert len(stale) == 1

    def test_redundant_derivable_entry_flagged(self, tmp_path):
        root = copy_fixture(tmp_path, "mc101")
        rewrite(
            root / "app" / "session.py",
            '"history": "rebuilt from the captured tick count on restore",',
            '"history": "rebuilt from the captured tick count on restore",\n'
            '        "_tick_no": "already captured, so this masks regressions",',
        )
        findings = run_fixture("mc101", "MC101", root=root)
        assert any("redundant DERIVABLE entry '_tick_no'" in f.message for f in findings)


# ----------------------------------------------------------------------
# MC102 — fork-boundary determinism
# ----------------------------------------------------------------------


class TestMC102Fixture:
    def test_all_planted_leaks_detected_at_exact_lines(self):
        findings = run_fixture("mc102", "MC102")
        tele = FIXTURES / "mc102" / "app" / "telemetry.py"
        par = FIXTURES / "mc102" / "app" / "parallel.py"
        assert all(f.code == "MC102" for f in findings)
        got = {(f.path, f.line) for f in findings}
        assert got == {
            ("mc102/app/telemetry.py", line_of(tele, "spans: list[tuple[str, float]]")),
            ("mc102/app/parallel.py", line_of(par, "initializer rebinds a parent")),
            ("mc102/app/parallel.py", line_of(par, 'sink.span("attach"')),
            ("mc102/app/parallel.py", line_of(par, "globals do not survive")),
            ("mc102/app/parallel.py", line_of(par, 'sink.span("chunk"')),
            ("mc102/app/parallel.py", line_of(par, "for shard in {2, 3, 5}")),
            ("mc102/app/parallel.py", line_of(par, "pool.imap_unordered(")),
        }
        snap = [f for f in findings if "snapshot field 'spans' is not folded" in f.message]
        assert len(snap) == 1 and "MERGE_DERIVED_FIELDS" in snap[0].message
        assert any("imap_unordered" in f.message for f in findings)
        assert any("'global _PROGRESS'" in f.message for f in findings)
        assert any("iteration over a set" in f.message for f in findings)
        # the allowlisted worker-state install is sanctioned, never flagged
        assert not any("_SHARED" in f.message for f in findings)

    def test_merge_derived_declaration_covers_the_field(self, tmp_path):
        root = copy_fixture(tmp_path, "mc102")
        tele = root / "app" / "telemetry.py"
        tele.write_text(
            tele.read_text(encoding="utf-8")
            + '\nMERGE_DERIVED_FIELDS: tuple[str, ...] = ("spans",)\n',
            encoding="utf-8",
        )
        findings = run_fixture("mc102", "MC102", root=root)
        # the snapshot-field finding and both worker span() findings clear
        assert not any("spans" in f.message for f in findings)
        assert len(findings) == 4


# ----------------------------------------------------------------------
# MC103 — stream purity
# ----------------------------------------------------------------------


class TestMC103Fixture:
    def test_all_planted_impurities_detected_at_exact_lines(self):
        findings = run_fixture("mc103", "MC103")
        src = FIXTURES / "mc103" / "app" / "stream.py"
        assert len(findings) == 4
        assert all(
            f.code == "MC103" and f.path == "mc103/app/stream.py" for f in findings
        )
        expected = [
            (line_of(src, "self._cursor = index"), "store to self._cursor"),
            (line_of(src, "random.random()"), "unseeded stdlib randomness"),
            (line_of(src, "time.time()"), "wall-clock read time.time()"),
            (line_of(src, "stamp + jitter + _DRIFT"), "mutable module global '_DRIFT'"),
        ]
        for line, needle in expected:
            assert any(
                f.line == line and needle in f.message for f in findings
            ), (line, needle)

    def test_missing_entry_point_is_reported(self):
        pairs, _ = run_passes(
            fixture_config("mc103", stream_class="Missing"), select={"MC103"}
        )
        findings = [f for f, _text in pairs]
        assert len(findings) == 1
        assert findings[0].code == "MC103"
        assert "not found" in findings[0].message

    def test_forbidden_helper_in_closure_detected(self, tmp_path):
        """A batch-application helper reached from event_at is a finding."""
        root = copy_fixture(tmp_path, "mc103")
        src = root / "app" / "stream.py"
        rewrite(
            src,
            "return index, stamp + jitter + _DRIFT",
            "return apply_batch(index, stamp + jitter + _DRIFT)",
        )
        src.write_text(
            src.read_text(encoding="utf-8")
            + "\n\ndef apply_batch(index: int, value: float)"
            + " -> tuple[int, float]:\n"
            + '    """Stand-in for the service batch applier."""\n'
            + "    return index, value\n",
            encoding="utf-8",
        )
        pairs, _ = run_passes(
            fixture_config(
                "mc103",
                root=root,
                stream_forbidden=("app.stream:apply_batch",),
            ),
            select={"MC103"},
        )
        findings = [f for f, _text in pairs]
        forbidden = [
            f for f in findings if "batch-application helper" in f.message
        ]
        assert len(forbidden) == 1
        assert forbidden[0].line == line_of(src, "def apply_batch")
        assert "apply_batch()" in forbidden[0].message
        assert len(findings) == 5  # the four planted impurities survive

    def test_unreachable_forbidden_helper_is_silent(self):
        """Forbidden names only fire when actually inside the closure."""
        pairs, _ = run_passes(
            fixture_config(
                "mc103", stream_forbidden=("app.stream:calibrate",)
            ),
            select={"MC103"},
        )
        findings = [f for f, _text in pairs]
        assert len(findings) == 4
        assert not any("batch-application" in f.message for f in findings)


# ----------------------------------------------------------------------
# MC104 — protected-field inference
# ----------------------------------------------------------------------


class TestMC104Fixture:
    def test_unmarked_mutation_and_stale_literal_detected(self):
        findings = run_fixture("mc104", "MC104")
        solver = FIXTURES / "mc104" / "app" / "solver.py"
        core = FIXTURES / "mc104" / "fake_mifolint_core.py"
        assert len(findings) == 2
        mutation = [f for f in findings if "'_cols'" in f.message]
        assert len(mutation) == 1
        assert mutation[0].path == "mc104/app/solver.py"
        assert mutation[0].line == line_of(solver, "self._cols[index] = value")
        assert "slab-state' marker" in mutation[0].message
        literal = [f for f in findings if "hand-maintained SLAB_FIELDS" in f.message]
        assert len(literal) == 1
        assert literal[0].path == "mc104/fake_mifolint_core.py"
        assert literal[0].line == line_of(core, "SLAB_FIELDS: frozenset")
        assert "extra: _stale" in literal[0].message

    def test_marking_the_field_leaves_only_the_stale_literal(self, tmp_path):
        root = copy_fixture(tmp_path, "mc104")
        rewrite(
            root / "app" / "solver.py",
            "# planted MC104: mutated but unmarked",
            "# mifocheck: slab-state",
        )
        findings = run_fixture("mc104", "MC104", root=root)
        assert len(findings) == 1
        assert "missing: _cols; extra: _stale" in findings[0].message

    def test_empty_derived_slab_set_is_flagged(self, tmp_path):
        root = copy_fixture(tmp_path, "mc104")
        rewrite(root / "app" / "solver.py", "# mifocheck: slab-state", "#")
        findings = run_fixture("mc104", "MC104", root=root)
        assert any(
            "derived set SLAB_FIELDS" in f.message and "empty" in f.message
            for f in findings
        )


# ----------------------------------------------------------------------
# the shipped tree
# ----------------------------------------------------------------------


class TestRealTree:
    def test_shipped_src_repro_is_finding_free(self):
        pairs, _program = run_passes(default_config())
        assert [f.render() for f, _text in pairs] == []


@pytest.fixture()
def real_copy(tmp_path):
    """A scratch copy of ``src/`` to plant regressions into."""
    dst = tmp_path / "repo"
    dst.mkdir()
    shutil.copytree(
        REPO / "src", dst / "src", ignore=shutil.ignore_patterns("__pycache__")
    )
    return dst


class TestDeletionRegressions:
    def test_deleting_a_capture_field_fires_mc101(self, real_copy):
        ck = real_copy / "src" / "repro" / "service" / "checkpoint.py"
        rewrite(ck, '"stream_index": session._stream_index,', "")
        pairs, _ = run_passes(default_config(real_copy), select={"MC101"})
        findings = [f for f, _text in pairs]
        assert any(
            f.code == "MC101"
            and f.path == "src/repro/service/session.py"
            and "'_stream_index'" in f.message
            for f in findings
        ), [f.render() for f in findings]

    def test_deleting_a_detector_field_fires_mc101(self, real_copy):
        ck = real_copy / "src" / "repro" / "service" / "checkpoint.py"
        rewrite(ck, "det._cp_streak,", "0,")
        pairs, _ = run_passes(default_config(real_copy), select={"MC101"})
        findings = [f for f, _text in pairs]
        assert any(
            f.code == "MC101"
            and f.path == "src/repro/measure/changepoint.py"
            and "'_cp_streak'" in f.message
            for f in findings
        ), [f.render() for f in findings]

    def test_deleting_the_monitor_counter_fires_mc101(self, real_copy):
        ck = real_copy / "src" / "repro" / "service" / "checkpoint.py"
        rewrite(ck, '"samples_total": mon._rtt_samples_total,', "")
        pairs, _ = run_passes(default_config(real_copy), select={"MC101"})
        findings = [f for f, _text in pairs]
        assert any(
            f.code == "MC101"
            and f.path == "src/repro/measure/rtt.py"
            and "'_rtt_samples_total'" in f.message
            for f in findings
        ), [f.render() for f in findings]

    def test_deleting_a_merge_entry_fires_mc102(self, real_copy):
        core = real_copy / "src" / "repro" / "telemetry" / "core.py"
        rewrite(core, "self._events_total += snap.events_total", "pass")
        pairs, _ = run_passes(default_config(real_copy), select={"MC102"})
        findings = [f for f, _text in pairs]
        assert any(
            f.code == "MC102"
            and f.path == "src/repro/telemetry/core.py"
            and "snapshot field 'events_total'" in f.message
            for f in findings
        ), [f.render() for f in findings]


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------


def cli(*args: str) -> subprocess.CompletedProcess[str]:
    return subprocess.run(
        [sys.executable, "-m", "tools.mifocheck", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


class TestCli:
    def test_list_rules(self):
        proc = cli("--list-rules")
        assert proc.returncode == 0
        for code in RULES:
            assert code in proc.stdout

    def test_unknown_rule_code_rejected(self):
        proc = cli("--select", "MC999")
        assert proc.returncode == 2
        assert "unknown rule code" in proc.stderr

    def test_clean_tree_exits_zero_with_json_report(self, tmp_path):
        out = tmp_path / "report.json"
        proc = cli("--format", "json", "--output", str(out))
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["tool"] == "mifocheck"
        assert doc["findings"] == []
        assert doc["summary"]["total"] == 0
        assert "runtime_s" in doc

    def test_baseline_workflow(self, real_copy, tmp_path):
        core = real_copy / "src" / "repro" / "telemetry" / "core.py"
        rewrite(core, "self._events_total += snap.events_total", "pass")
        dirty = cli("--root", str(real_copy))
        assert dirty.returncode == 1
        assert "MC102" in dirty.stdout
        baseline = tmp_path / "baseline.json"
        wrote = cli("--root", str(real_copy), "--write-baseline", str(baseline))
        assert wrote.returncode == 0
        clean = cli("--root", str(real_copy), "--baseline", str(baseline))
        assert clean.returncode == 0, clean.stdout
        assert "baselined" in clean.stderr
