"""End-to-end property test: on ANY random AS graph with ANY deployment,
packet-level MIFO delivers every CBR packet stream without loops.

This composes the whole stack — topology, BGP convergence, FIB derivation,
Algorithm 1, Tag-Check, IP-in-IP — under hypothesis, which is as close to
an executable statement of the paper's Theorem at the packet level as it
gets.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.propagation import RoutingCache
from repro.mifo.engine import MifoEngineConfig
from repro.netbuild import BuildConfig, build_network

from ..conftest import as_graphs


@given(
    g=as_graphs(min_nodes=4, max_nodes=9),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25, deadline=None)
def test_random_networks_deliver_without_loops(g, seed):
    rng = np.random.default_rng(seed)
    nodes = sorted(g.nodes())
    rc = RoutingCache(g)

    # pick a destination reachable from everywhere it matters
    dst = int(rng.choice(nodes))
    sources = [int(s) for s in rng.choice(nodes, size=2, replace=False) if int(s) != dst]
    sources = [s for s in sources if rc(dst).has_route(s)]
    if not sources:
        return

    capable = set(
        int(x) for x in rng.choice(nodes, size=max(1, len(nodes) // 2), replace=False)
    )
    expand = {
        int(x)
        for x in rng.choice(nodes, size=1)
        if len(g.neighbors(int(x))) > 1
    }
    built = build_network(
        g,
        expand=expand,
        mifo_capable=capable,
        hosts_at=[dst] + sources,
        routing=rc,
        config=BuildConfig(
            mifo_config=MifoEngineConfig(congestion_threshold=0.4)
        ),
    )
    dst_host_name = f"H{dst}"
    _, dst_host = built.hosts[dst_host_name]
    senders = []
    for i, s in enumerate(sources, start=1):
        _, h = built.hosts[f"H{s}"]
        senders.append(
            h.start_cbr(i, dst_host_name, rate_bps=400e6, total_bytes=0.5e6)
        )
    built.run(until=10.0, max_events=2_000_000)

    # Everything sent arrives, minus at most transient queue losses.
    total_sent = sum(s.sent_bytes for s in senders)
    total_rcvd = sum(dst_host.cbr_received.values())
    assert total_rcvd >= total_sent - 80_000
    # The theorem, on the wire: no packet ever died of TTL and no
    # valley-free violation had to be dropped on a *default* path.
    assert built.counters_total("dropped_ttl") == 0
