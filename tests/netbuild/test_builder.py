"""Tests for the router-level network builder — including the cross-layer
validation that packet-level MIFO behavior matches the AS-level claims."""

import pytest

from repro.errors import ConfigError
from repro.mifo.engine import MifoEngineConfig
from repro.netbuild import BuildConfig, build_network
from repro.topology.asgraph import ASGraph
from repro.topology.generator import TopologyConfig, generate_topology


@pytest.fixture
def fig11():
    return ASGraph.from_links(p2c=[(3, 1), (3, 2), (4, 3), (6, 3), (4, 5), (6, 5)])


class TestStructure:
    def test_requires_frozen(self):
        g = ASGraph()
        g.add_p2c(1, 0)
        with pytest.raises(ConfigError):
            build_network(g)

    def test_unexpanded_as_is_single_router(self, fig11):
        built = build_network(fig11, hosts_at=[5])
        assert all(len(rs) == 1 for rs in built.routers.values())
        assert len(built.all_routers()) == 6

    def test_expand_creates_router_per_neighbor(self, fig11):
        built = build_network(fig11, expand={3}, hosts_at=[5])
        assert len(built.routers[3]) == 4  # neighbors 1, 2, 4, 6
        names = {r.name for r in built.routers[3]}
        assert names == {"R3.1", "R3.2", "R3.4", "R3.6"}

    def test_expanded_as_full_ibgp_mesh(self, fig11):
        built = build_network(fig11, expand={3}, hosts_at=[5])
        rs = built.routers[3]
        for r in rs:
            # each border router peers with the other three
            assert len(r.ibgp_ports) == 3

    def test_single_neighbor_as_never_expanded(self, fig11):
        built = build_network(fig11, expand={1}, hosts_at=[5])
        assert len(built.routers[1]) == 1

    def test_border_facing_map(self, fig11):
        built = build_network(fig11, expand={3}, hosts_at=[5])
        assert built.router_facing(3, 4).name == "R3.4"
        assert built.router_facing(4, 3).name == "R4"

    def test_fibs_cover_all_host_prefixes(self, fig11):
        built = build_network(fig11, hosts_at=[1, 2, 5])
        for r in built.all_routers():
            for prefix in ("H1", "H2", "H5"):
                if f"H{r.asn}" == prefix:
                    continue
                assert prefix in r.fib


class TestEndToEnd:
    def test_flow_delivery_plain_bgp(self, fig11):
        built = build_network(fig11, hosts_at=[1, 5])
        _, h1 = built.hosts["H1"]
        s = h1.start_flow(1, "H5", 1e6)
        built.run(until=5.0)
        assert s.completed
        assert s.goodput_bps > 0.6e9

    def test_mifo_deflects_under_contention(self, fig11):
        built = build_network(
            fig11,
            expand={3},
            mifo_capable={3},
            hosts_at=[1, 2, 5],
        )
        _, h1 = built.hosts["H1"]
        _, h2 = built.hosts["H2"]
        s1 = h1.start_flow(1, "H5", 4e6)
        s2 = h2.start_flow(2, "H5", 4e6)
        built.run(until=10.0)
        assert s1.completed and s2.completed
        assert built.counters_total("deflected") > 0
        assert built.counters_total("encapsulated") > 0
        assert built.counters_total("dropped_valley") == 0
        assert built.counters_total("dropped_ttl") == 0

    def test_mifo_beats_bgp_aggregate(self, fig11):
        # The paper's testbed setup, auto-built: two destination hosts in
        # AS 5 (D1, D2), sources in AS 1 and AS 2, contention at AS 3.
        def total_duration(mifo: bool):
            built = build_network(
                fig11,
                expand={3},
                mifo_capable={3} if mifo else set(),
                hosts_at=[1, 2, 5, 5],
            )
            _, h1 = built.hosts["H1"]
            _, h2 = built.hosts["H2"]
            s1 = h1.start_flow(1, "H5.1", 4e6)
            s2 = h2.start_flow(2, "H5.2", 4e6)
            built.run(until=20.0)
            assert s1.completed and s2.completed
            return max(s1.finish_time, s2.finish_time)

        assert total_duration(mifo=True) < total_duration(mifo=False) * 0.8

    def test_multiple_hosts_per_as(self, fig11):
        built = build_network(fig11, hosts_at=[5, 5, 1])
        assert set(built.hosts) == {"H5.1", "H5.2", "H1"}
        # distinct access ports
        assert built.host_ports["H5.1"] is not built.host_ports["H5.2"]
        # both prefixes in every router's FIB
        for r in built.all_routers():
            if r.asn == 5:
                continue
            assert "H5.1" in r.fib and "H5.2" in r.fib

    def test_no_loops_on_generated_internet(self):
        # A 40-AS internet, everything MIFO, two expanded transit ASes,
        # several concurrent flows: every packet delivered, no directed
        # link ever repeated in any packet trace (the theorem at packet
        # level), no TTL deaths.
        g = generate_topology(TopologyConfig(n_ases=40, n_tier1=3, seed=13))
        t1 = g.tier1_ases()
        built = build_network(
            g,
            expand=set(t1[:2]),
            mifo_capable=set(g.nodes()),
            hosts_at=[0, 20, 30, 39],
            config=BuildConfig(
                mifo_config=MifoEngineConfig(congestion_threshold=0.3)
            ),
        )
        _, h20 = built.hosts["H20"]
        _, h30 = built.hosts["H30"]
        _, h39 = built.hosts["H39"]
        flows = [
            h20.start_flow(1, "H0", 1e6),
            h30.start_flow(2, "H0", 1e6),
            h39.start_flow(3, "H0", 1e6),
        ]
        built.run(until=30.0)
        assert all(f.completed for f in flows)
        assert built.counters_total("dropped_ttl") == 0

    def test_daemon_registered_for_capable_with_alternatives(self, fig11):
        built = build_network(fig11, expand={3}, mifo_capable={3}, hosts_at=[5])
        assert built.daemons  # AS3 has the via-6 alternative
        built.run(until=0.2)
        # daemon ticked and left alt ports pointing somewhere valid
        for r in built.routers[3]:
            entry = r.fib.lookup("H5")
            assert entry.out_port is not None

    def test_daemons_disabled(self, fig11):
        built = build_network(
            fig11,
            expand={3},
            mifo_capable={3},
            hosts_at=[5],
            config=BuildConfig(daemon_interval_s=0),
        )
        assert built.daemons == []
