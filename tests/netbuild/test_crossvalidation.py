"""Cross-model validation: the packet-level data plane and the fluid
simulator must tell the same story on the same scenario.

This is the strongest evidence that the Section-IV fluid results and the
Section-V packet results in this reproduction are two views of one
system, not two unrelated models.
"""

import pytest

from repro.bgp.propagation import RoutingCache
from repro.flowsim.flow import FlowSpec
from repro.flowsim.providers import BgpProvider, MifoProvider
from repro.flowsim.simulator import FluidSimConfig, FluidSimulator
from repro.mifo.deflection import MifoPathBuilder
from repro.netbuild import build_network
from repro.topology.asgraph import ASGraph


@pytest.fixture(scope="module")
def fig11():
    return ASGraph.from_links(p2c=[(3, 1), (3, 2), (4, 3), (6, 3), (4, 5), (6, 5)])


def fluid_improvement(graph) -> float:
    """Aggregate-duration improvement of MIFO over BGP, fluid model."""
    specs = [
        FlowSpec(flow_id=1, src=1, dst=5, size_bytes=4e6, start_time=0.0),
        FlowSpec(flow_id=2, src=2, dst=5, size_bytes=4e6, start_time=0.001),
    ]
    routing = RoutingCache(graph)

    def makespan(provider):
        res = FluidSimulator(graph, provider, FluidSimConfig()).run(specs)
        return max(r.finish_time for r in res.records)

    bgp = makespan(BgpProvider(graph, routing))
    mifo = makespan(
        MifoProvider(MifoPathBuilder(graph, routing, frozenset(graph.nodes())))
    )
    return bgp / mifo


def packet_improvement(graph) -> float:
    """Same scenario at packet level via the router-level builder."""

    def makespan(mifo: bool):
        built = build_network(
            graph,
            expand={3},
            mifo_capable={3} if mifo else set(),
            hosts_at=[1, 2, 5, 5],
        )
        _, h1 = built.hosts["H1"]
        _, h2 = built.hosts["H2"]
        s1 = h1.start_flow(1, "H5.1", 4e6)
        s2 = h2.start_flow(2, "H5.2", 4e6, delay=0.001)
        built.run(until=30.0)
        assert s1.completed and s2.completed
        return max(s1.finish_time, s2.finish_time)

    return makespan(False) / makespan(True)


class TestCrossModel:
    def test_both_models_show_mifo_gain(self, fig11):
        fluid = fluid_improvement(fig11)
        packet = packet_improvement(fig11)
        assert fluid > 1.2
        assert packet > 1.2

    def test_improvement_factors_agree(self, fig11):
        """The fluid model predicts ~2x (two disjoint 1G paths vs one);
        the packet model should land within ~35% of it (TCP, queues and
        encap overhead eat some of the ideal gain)."""
        fluid = fluid_improvement(fig11)
        packet = packet_improvement(fig11)
        assert packet == pytest.approx(fluid, rel=0.35)
