"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.topology.asgraph import ASGraph
from repro.topology.generator import TopologyConfig, generate_topology


# ---------------------------------------------------------------------------
# Canonical small topologies from the paper's figures
# ---------------------------------------------------------------------------
@pytest.fixture
def fig2a_graph() -> ASGraph:
    """Paper Fig. 2(a): ASes 1, 2, 3 mutually peering; AS 0 their customer.

    The canonical data-plane loop example: every AS's default to AS 0 is
    the direct link; alternatives run via the peers, and without the
    valley-free rule a clockwise deflection cycle 1→2→3→1 exists.
    """
    return ASGraph.from_links(
        p2c=[(1, 0), (2, 0), (3, 0)],
        peering=[(1, 2), (2, 3), (1, 3)],
    )


@pytest.fixture
def fig11_graph() -> ASGraph:
    """Paper Fig. 11: the six-AS testbed relationship graph."""
    return ASGraph.from_links(
        p2c=[(3, 1), (3, 2), (4, 3), (6, 3), (4, 5), (6, 5)],
    )


@pytest.fixture
def chain_graph() -> ASGraph:
    """0 <- 1 <- 2: a provider chain (2 is top provider)."""
    return ASGraph.from_links(p2c=[(1, 0), (2, 1)])


@pytest.fixture(scope="session")
def small_internet() -> ASGraph:
    """A 300-AS synthetic Internet shared across tests (read-only)."""
    return generate_topology(TopologyConfig(n_ases=300, seed=7))


@pytest.fixture(scope="session")
def medium_internet() -> ASGraph:
    """A 800-AS synthetic Internet for heavier integration tests."""
    return generate_topology(TopologyConfig(n_ases=800, seed=11))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(123)


# ---------------------------------------------------------------------------
# Hypothesis strategy: random valid AS graphs
# ---------------------------------------------------------------------------
@st.composite
def as_graphs(draw, min_nodes: int = 3, max_nodes: int = 12) -> ASGraph:
    """Random AS graph with an acyclic provider hierarchy.

    Node ``i`` may only choose providers among ``0..i-1`` (guaranteeing
    acyclicity); peering links join arbitrary non-adjacent pairs.  The
    graph is connected by construction: every node > 0 has at least one
    provider.
    """
    n = draw(st.integers(min_nodes, max_nodes))
    g = ASGraph()
    for i in range(n):
        g.add_as(i)
    for i in range(1, n):
        k = draw(st.integers(1, min(3, i)))
        providers = draw(
            st.lists(st.integers(0, i - 1), min_size=k, max_size=k, unique=True)
        )
        for p in providers:
            g.add_p2c(p, i)
    n_peer = draw(st.integers(0, n))
    for _ in range(n_peer):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a != b and not g.are_adjacent(a, b):
            g.add_peering(a, b)
    return g.freeze()
