"""Tests for traffic matrix generation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.traffic.matrix import (
    TrafficConfig,
    content_provider_ranking,
    poisson_start_times,
    powerlaw_matrix,
    powerlaw_pairs,
    uniform_matrix,
    uniform_pairs,
)


class TestConfig:
    @pytest.mark.parametrize(
        "kw", [dict(n_flows=0), dict(arrival_rate=0), dict(alpha=0)]
    )
    def test_validation(self, kw):
        with pytest.raises(ConfigError):
            TrafficConfig(**kw).validate()


class TestPoisson:
    def test_monotone_increasing(self, rng):
        t = poisson_start_times(100, 50.0, rng)
        assert np.all(np.diff(t) > 0)

    def test_rate_approximately_respected(self, rng):
        t = poisson_start_times(5000, 100.0, rng)
        assert t[-1] == pytest.approx(50.0, rel=0.15)


class TestUniform:
    def test_no_self_pairs(self, small_internet, rng):
        pairs = uniform_pairs(small_internet, 500, rng)
        assert all(s != d for s, d in pairs)
        assert len(pairs) == 500

    def test_matrix_specs(self, small_internet):
        specs = uniform_matrix(small_internet, TrafficConfig(n_flows=50, seed=1))
        assert len(specs) == 50
        assert all(s.size_bytes == 10e6 for s in specs)
        assert [s.flow_id for s in specs] == list(range(50))
        starts = [s.start_time for s in specs]
        assert starts == sorted(starts)

    def test_seed_reproducible(self, small_internet):
        a = uniform_matrix(small_internet, TrafficConfig(n_flows=30, seed=5))
        b = uniform_matrix(small_internet, TrafficConfig(n_flows=30, seed=5))
        assert a == b


class TestPowerLaw:
    def test_ranking_by_connectivity(self, small_internet):
        ranked = content_provider_ranking(small_internet)
        g = small_internet

        def conn(n):
            return len(g.providers(n)) + len(g.peers(n))

        scores = [conn(n) for n in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_skew_increases_with_alpha(self, small_internet, rng):
        def top_share(alpha):
            r = np.random.default_rng(0)
            pairs = powerlaw_pairs(small_internet, 3000, alpha, r, n_providers=50)
            srcs = [s for s, _d in pairs]
            ranked = content_provider_ranking(small_internet)[:50]
            top = ranked[0]
            return srcs.count(top) / len(srcs)

        assert top_share(1.2) > top_share(0.8)

    def test_destinations_are_stubs(self, small_internet, rng):
        pairs = powerlaw_pairs(small_internet, 300, 1.0, rng)
        stubs = set(small_internet.stub_ases())
        assert all(d in stubs for _s, d in pairs)

    def test_matrix_entry_points(self, small_internet):
        specs = powerlaw_matrix(
            small_internet, TrafficConfig(n_flows=40, seed=2), n_providers=30
        )
        assert len(specs) == 40
        assert all(s.src != s.dst for s in specs)


class TestSizeDistributions:
    def test_fixed_default(self, small_internet):
        specs = uniform_matrix(small_internet, TrafficConfig(n_flows=20, seed=1))
        assert all(s.size_bytes == 10e6 for s in specs)

    @pytest.mark.parametrize("dist", ["lognormal", "pareto"])
    def test_mean_preserved(self, small_internet, dist):
        cfg = TrafficConfig(
            n_flows=4000, seed=2, size_distribution=dist, flow_size_bytes=10e6
        )
        specs = uniform_matrix(small_internet, cfg)
        sizes = np.array([s.size_bytes for s in specs])
        assert sizes.mean() == pytest.approx(10e6, rel=0.25)
        assert sizes.std() > 0

    def test_pareto_heavy_tail(self, small_internet):
        cfg = TrafficConfig(
            n_flows=4000, seed=3, size_distribution="pareto", size_shape=1.2
        )
        sizes = np.array([s.size_bytes for s in uniform_matrix(small_internet, cfg)])
        # heavy tail: the max dwarfs the median
        assert sizes.max() > 20 * np.median(sizes)

    def test_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            TrafficConfig(size_distribution="weird").validate()
        with pytest.raises(ConfigError):
            TrafficConfig(size_distribution="pareto", size_shape=0.9).validate()
        with pytest.raises(ConfigError):
            TrafficConfig(size_distribution="lognormal", size_sigma=0).validate()
