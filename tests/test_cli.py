"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig5", "fig12"):
            assert name in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_topology_generation(self, tmp_path, capsys):
        out_file = tmp_path / "topo.txt"
        assert main(["topology", "--n-ases", "150", "--out", str(out_file)]) == 0
        assert out_file.exists()
        from repro.topology.loader import load_caida

        g = load_caida(out_file)
        assert len(g) == 150

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


@pytest.fixture()
def fresh_contexts():
    """Isolate from memoized SharedContexts: a warm routing cache means
    no ``bgp.propagate`` spans fire, so these assertions are
    order-dependent without it."""
    from repro.experiments.common import SharedContext

    saved = dict(SharedContext._cache)
    SharedContext._cache.clear()
    yield
    SharedContext._cache.clear()
    SharedContext._cache.update(saved)


class TestTelemetryFlags:
    def test_metrics_prints_report(self, capsys, fresh_contexts):
        assert main(["run", "fig9", "--scale", "test", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "bgp.propagate" in out
        assert "mifo.deflections" in out

    def test_profile_prints_phases_only(self, capsys):
        assert main(["run", "table1", "--scale", "test", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile (wall time by phase):" in out
        assert "experiment.run" in out
        assert "counters:" not in out

    def test_plain_run_prints_no_telemetry(self, capsys):
        assert main(["run", "table1", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" not in out

    def test_trace_out_writes_valid_jsonl(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "run", "fig9",
                    "--scale", "test",
                    "--trace-out", str(trace_file),
                    "--verify",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "trace event(s)" in captured.err
        assert "post-run invariant gate" in captured.err
        from repro.telemetry.trace import read_jsonl, validate_events

        events = read_jsonl(trace_file)
        assert events
        assert validate_events(events) == []


class TestTraceCommand:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert (
            main(["run", "fig9", "--scale", "test", "--trace-out", str(path)])
            == 0
        )
        return path

    def test_summarize(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "event(s)" in out
        assert "deflection" in out

    def test_summarize_json(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] > 0
        assert "deflection" in summary["by_kind"]

    def test_summarize_against_schema_file(self, trace_file, capsys):
        import pathlib

        schema = (
            pathlib.Path(__file__).resolve().parent.parent
            / "docs"
            / "trace.schema.json"
        )
        assert (
            main(["trace", "summarize", str(trace_file), "--schema", str(schema)])
            == 0
        )

    def test_invalid_trace_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "teleport", "seq": 0}\n', encoding="utf-8")
        assert main(["trace", "summarize", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_missing_file_rejected(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestSimulateCommand:
    def test_simulate_runs_all_schemes(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--n-ases", "200",
                    "--n-flows", "60",
                    "--rate", "400",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "BGP" in out and "MIRO" in out and "MIFO" in out
        assert "Median Mbps" in out

    def test_simulate_powerlaw_single_scheme(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--n-ases", "200",
                    "--n-flows", "50",
                    "--traffic", "powerlaw",
                    "--schemes", "MIFO",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "MIFO" in out and "powerlaw" in out

    def test_export_command(self, tmp_path, capsys):
        assert main(["export", "--out", str(tmp_path), "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "fig8_offload.dat" in out


class TestServeCommand:
    @pytest.fixture(autouse=True)
    def no_shm_leak(self):
        """serve must release its pool + shared memory on every exit path."""
        import gc
        import os

        if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
            yield
            return
        before = set(os.listdir("/dev/shm"))
        yield
        gc.collect()
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"

    def test_serve_with_workers_and_batching(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--events", "60",
                    "--n-ases", "80",
                    "--routing-backend", "array",
                    "--workers", "2",
                    "--persistent-pool",
                    "--batch-max", "8",
                    "--metrics",
                ]
            )
            == 0
        )
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["events"] == 60
        assert snapshot["pending_batch"] < 8
        counters = snapshot["telemetry"]["counters"]
        assert counters["service.batched_events"] > 0

    def test_serve_releases_engine_on_interrupt(self, monkeypatch, capsys):
        """Ctrl-C mid-drain must not leak the pool's /dev/shm segment."""
        from repro.service import session as session_mod

        def boom(self, n):
            raise KeyboardInterrupt

        monkeypatch.setattr(session_mod.ServiceSession, "drain", boom)
        with pytest.raises(KeyboardInterrupt):
            main(
                [
                    "serve",
                    "--events", "40",
                    "--n-ases", "80",
                    "--routing-backend", "array",
                    "--workers", "2",
                    "--persistent-pool",
                ]
            )

    def test_serve_checkpoint_roundtrip_with_batching(self, tmp_path, capsys):
        ckpt = tmp_path / "svc.ckpt.json"
        assert (
            main(
                [
                    "serve",
                    "--events", "50",
                    "--n-ases", "80",
                    "--batch-max", "4",
                    "--checkpoint-every", "25",
                    "--checkpoint-out", str(ckpt),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert ckpt.exists()
        assert (
            main(
                [
                    "serve",
                    "--events", "20",
                    "--restore-from", str(ckpt),
                    "--checkpoint-every", "0",
                ]
            )
            == 0
        )
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["events"] == 70
