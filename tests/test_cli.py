"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig5", "fig12"):
            assert name in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_topology_generation(self, tmp_path, capsys):
        out_file = tmp_path / "topo.txt"
        assert main(["topology", "--n-ases", "150", "--out", str(out_file)]) == 0
        assert out_file.exists()
        from repro.topology.loader import load_caida

        g = load_caida(out_file)
        assert len(g) == 150

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestSimulateCommand:
    def test_simulate_runs_all_schemes(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--n-ases", "200",
                    "--n-flows", "60",
                    "--rate", "400",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "BGP" in out and "MIRO" in out and "MIFO" in out
        assert "Median Mbps" in out

    def test_simulate_powerlaw_single_scheme(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--n-ases", "200",
                    "--n-flows", "50",
                    "--traffic", "powerlaw",
                    "--schemes", "MIFO",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "MIFO" in out and "powerlaw" in out

    def test_export_command(self, tmp_path, capsys):
        assert main(["export", "--out", str(tmp_path), "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "fig8_offload.dat" in out
