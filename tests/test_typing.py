"""The typing gate: every public function in ``src/repro`` is annotated.

Two layers:

* an AST-level completeness check that needs no third-party tooling —
  every function must annotate every parameter and its return type; this
  is the invariant that keeps ``mypy --strict``'s
  ``disallow_untyped_defs`` satisfiable and runs everywhere;
* the real ``mypy --strict`` run (configured in ``pyproject.toml``),
  executed only when mypy is importable — CI installs it, minimal local
  environments skip.
"""

import ast
import pathlib
import shutil
import subprocess
import sys

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def _unannotated(tree: ast.Module) -> list[str]:
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        named = args.posonlyargs + args.args + args.kwonlyargs
        missing = [
            a.arg
            for a in named
            if a.annotation is None and a.arg not in ("self", "cls")
        ]
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                missing.append(star.arg)
        if missing:
            problems.append(f"{node.name}:{node.lineno} params {missing}")
        if node.returns is None:
            problems.append(f"{node.name}:{node.lineno} missing return type")
    return problems


def test_every_function_is_fully_annotated():
    assert SRC.is_dir()
    failures = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for problem in _unannotated(tree):
            failures.append(f"{path.relative_to(SRC.parent)}: {problem}")
    assert not failures, "unannotated functions:\n" + "\n".join(failures)


def test_py_typed_marker_ships():
    assert (SRC / "py.typed").is_file()


def test_mypy_strict_passes():
    if shutil.which("mypy") is None:
        pytest.skip("mypy not installed in this environment")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", "src/repro"],
        cwd=SRC.parent.parent,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
