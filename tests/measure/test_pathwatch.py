"""Path-churn analysis over decoded trace events."""

from __future__ import annotations

import pytest

from repro.measure.pathwatch import watch_paths


def switch(flow: int, epoch: int) -> dict:
    return {"kind": "path_switch", "flow": flow, "epoch": epoch}


def truth(epoch: int, event: str = "congestion_onset") -> dict:
    return {"kind": "scenario_event", "event": event, "epoch": epoch}


class TestWatchPaths:
    def test_empty_trace(self):
        report = watch_paths([])
        assert report.switch_events == 0
        assert report.alignment == 1.0
        assert report.truth_epochs == ()

    def test_counts_and_alignment(self):
        events = [
            truth(3),
            switch(1, 3),
            switch(1, 4),
            switch(2, 9),  # outside the window after epoch 3
        ]
        report = watch_paths(events, window=2)
        assert report.switch_events == 3
        assert report.switches_by_flow == {1: 2, 2: 1}
        assert report.churn_by_epoch == {3: 1, 4: 1, 9: 1}
        assert report.truth_epochs == (3,)
        assert report.aligned_switches == 2
        assert report.alignment == pytest.approx(2 / 3)

    def test_quiet_events_are_not_truths(self):
        events = [truth(0, "initial"), truth(5, "measure_tick"), switch(1, 5)]
        report = watch_paths(events)
        assert report.truth_epochs == ()
        assert report.alignment == 0.0

    def test_flows_observed_counts_rtt_samples_too(self):
        events = [
            {"kind": "rtt_sample", "flow": 7, "epoch": 1},
            switch(8, 2),
        ]
        assert watch_paths(events).flows_observed == 2

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            watch_paths([], window=-1)
