"""The deterministic RTT observable and the per-flow monitor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.measure.rtt import PathRttMonitor, RttModel, RttModelConfig


class TestConfig:
    def test_defaults_validate(self):
        RttModelConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_delay_ms": 0.0},
            {"delay_jitter_ms": 5.0},  # >= base_delay_ms
            {"queue_delay_ms": -1.0},
            {"util_knee": 1.0},
            {"noise_ms": -0.1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RttModelConfig(**kwargs).validate()


class TestRttModel:
    def test_propagation_is_symmetric_and_cached(self):
        model = RttModel(seed=7)
        assert model.propagation_ms(3, 9) == model.propagation_ms(9, 3)
        assert model.propagation_ms(3, 9) == model.propagation_ms(3, 9)

    def test_propagation_within_jitter_band(self):
        cfg = RttModelConfig()
        model = RttModel(cfg, seed=1)
        for u, v in [(0, 1), (5, 2), (100, 7)]:
            p = model.propagation_ms(u, v)
            assert cfg.base_delay_ms - cfg.delay_jitter_ms <= p
            assert p <= cfg.base_delay_ms + cfg.delay_jitter_ms

    def test_same_seed_same_draws(self):
        a, b = RttModel(seed=42), RttModel(seed=42)
        assert a.propagation_ms(1, 2) == b.propagation_ms(1, 2)
        assert a.noise_ms(5, 9) == b.noise_ms(5, 9)

    def test_different_seeds_differ(self):
        a, b = RttModel(seed=1), RttModel(seed=2)
        assert a.propagation_ms(1, 2) != b.propagation_ms(1, 2)

    def test_queueing_grows_with_utilisation_and_caps(self):
        model = RttModel(seed=0)
        util = np.array([0.0, 0.5, 0.9, 1.0, 5.0])
        q = model.queueing_ms(util)
        assert q[0] == 0.0
        assert np.all(np.diff(q) >= 0)
        # saturated and over-saturated links hit the same finite knee
        assert q[3] == q[4] < np.inf

    def test_zero_noise_config_is_exact(self):
        model = RttModel(RttModelConfig(noise_ms=0.0), seed=3)
        assert model.noise_ms(1, 1) == 0.0

    def test_link_delays_compose_propagation_and_queueing(self):
        model = RttModel(seed=5)
        links = [(0, 1), (1, 2)]
        idle = model.link_delays_ms(links, np.zeros(2))
        loaded = model.link_delays_ms(links, np.array([0.9, 0.9]))
        assert np.all(loaded > idle)
        assert idle[0] == model.propagation_ms(0, 1)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        u=st.integers(min_value=0, max_value=10_000),
        v=st.integers(min_value=0, max_value=10_000),
    )
    def test_propagation_pure_function_of_seed_and_pair(self, seed, u, v):
        assert RttModel(seed=seed).propagation_ms(u, v) == RttModel(
            seed=seed
        ).propagation_ms(v, u)


class TestPathRttMonitor:
    LINKS = [(0, 1), (1, 2), (2, 3)]

    def _observe(self, mon, epoch, util):
        flows = [(1, [0, 1]), (2, [2])]
        return mon.observe_epoch(epoch, flows, self.LINKS, np.asarray(util))

    def test_samples_are_positive_and_counted(self):
        mon = PathRttMonitor(seed=11)
        samples, alarms = self._observe(mon, 0, [0.1, 0.1, 0.1])
        assert [s.flow_id for s in samples] == [1, 2]
        assert all(s.rtt_ms > 0 for s in samples)
        assert alarms == []
        assert mon.samples_total == 2
        assert mon.series_count == 2

    def test_same_inputs_bitwise_identical(self):
        a, b = PathRttMonitor(seed=11), PathRttMonitor(seed=11)
        for epoch in range(5):
            sa, _ = self._observe(a, epoch, [0.2, 0.4, 0.6])
            sb, _ = self._observe(b, epoch, [0.2, 0.4, 0.6])
            assert sa == sb

    def test_utilisation_shift_raises_alarm_with_truth_epoch(self):
        mon = PathRttMonitor(seed=11)
        all_alarms = []
        for epoch in range(24):
            util = [0.1] * 3 if epoch < 12 else [0.96] * 3
            _, alarms = self._observe(mon, epoch, util)
            all_alarms.extend(alarms)
        up = [a for a in all_alarms if a.direction == "up"]
        assert up, "sustained utilisation jump must alarm"
        assert abs(up[0].cp_epoch - 12) <= 1
        assert up[0].epoch >= up[0].cp_epoch
        assert up[0].after_ms > up[0].before_ms
        assert mon.alarms_total == len(all_alarms)

    def test_drop_flow_forgets_the_series(self):
        mon = PathRttMonitor(seed=11)
        self._observe(mon, 0, [0.1, 0.1, 0.1])
        mon.drop_flow(1)
        assert mon.series_count == 1
        mon.drop_flow(999)  # unknown ids are a no-op
        assert mon.series_count == 1

    def test_new_detector_carries_the_monitor_config(self):
        from repro.measure.changepoint import DetectorConfig

        mon = PathRttMonitor(seed=1, config=DetectorConfig(mode="threshold"))
        assert mon.new_detector().config.mode == "threshold"
