"""PELT correctness and the online detector (both modes)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.measure.changepoint import (
    CpAlarm,
    DetectorConfig,
    OnlineDetector,
    pelt,
)


def step_series(*segments: tuple[float, int]) -> list[float]:
    """Concatenate constant segments ``(level, length)``."""
    out: list[float] = []
    for level, length in segments:
        out.extend([level] * length)
    return out


class TestPelt:
    def test_homogeneous_series_has_no_splits(self):
        assert pelt([5.0] * 20, penalty=10.0) == []

    def test_short_series_has_no_splits(self):
        assert pelt([1.0, 100.0, 1.0], penalty=1.0, min_size=2) == []

    def test_single_clean_shift_found_exactly(self):
        values = step_series((1.0, 10), (9.0, 10))
        assert pelt(values, penalty=10.0) == [10]

    def test_two_shifts_found_exactly(self):
        values = step_series((0.0, 8), (6.0, 8), (1.0, 8))
        assert pelt(values, penalty=10.0) == [8, 16]

    def test_penalty_suppresses_small_shifts(self):
        values = step_series((1.0, 10), (1.4, 10))
        assert pelt(values, penalty=50.0) == []
        # a big enough level change survives the same penalty
        assert pelt(step_series((1.0, 10), (9.0, 10)), penalty=50.0) == [10]

    def test_min_size_respected(self):
        values = step_series((0.0, 3), (50.0, 3))
        for g in pelt(values, penalty=1.0, min_size=3):
            assert g >= 3 and len(values) - g >= 3

    def test_matches_brute_force_on_small_series(self):
        # Exhaustive optimal partitioning over all split subsets.
        import itertools

        def seg_cost(vals: list[float]) -> float:
            m = sum(vals) / len(vals)
            return sum((x - m) ** 2 for x in vals)

        values = step_series((0.0, 4), (3.0, 4), (1.0, 4))
        penalty, min_size = 4.0, 2
        n = len(values)
        best, best_splits = float("inf"), []
        interior = range(min_size, n - min_size + 1)
        for k in range(0, 4):
            for combo in itertools.combinations(interior, k):
                bounds = [0, *combo, n]
                if any(b - a < min_size for a, b in zip(bounds, bounds[1:])):
                    continue
                c = sum(
                    seg_cost(values[a:b]) for a, b in zip(bounds, bounds[1:])
                ) + penalty * k
                if c < best:
                    best, best_splits = c, list(combo)
        assert pelt(values, penalty, min_size) == best_splits


class TestDetectorConfig:
    def test_defaults_validate(self):
        DetectorConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "psychic"},
            {"penalty": 0.0},
            {"min_size": 0},
            {"window": 4},
            {"confirm": 0},
            {"factor": 1.0},
            {"warmup": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            DetectorConfig(**kwargs).validate()


class TestOnlineChangepoint:
    def _push_all(self, det: OnlineDetector, values) -> list[CpAlarm]:
        alarms = []
        for epoch, v in enumerate(values):
            alarm = det.push(v, epoch)
            if alarm is not None:
                alarms.append(alarm)
        return alarms

    def test_flat_series_never_alarms(self):
        det = OnlineDetector()
        assert self._push_all(det, [3.0] * 40) == []
        assert det.count == 40

    def test_upward_shift_alarms_once_with_direction(self):
        det = OnlineDetector()
        alarms = self._push_all(det, step_series((2.0, 10), (20.0, 10)))
        assert len(alarms) == 1
        a = alarms[0]
        assert a.direction == "up"
        # the estimated shift epoch is within one sample of the truth
        assert abs(a.epoch - 10) <= 1
        assert a.before < a.after

    def test_downward_shift_alarms(self):
        det = OnlineDetector()
        alarms = self._push_all(det, step_series((20.0, 10), (2.0, 10)))
        assert [a.direction for a in alarms] == ["down"]

    def test_two_well_separated_shifts_alarm_twice(self):
        det = OnlineDetector()
        alarms = self._push_all(
            det, step_series((2.0, 12), (20.0, 12), (2.0, 12))
        )
        assert [a.direction for a in alarms] == ["up", "down"]

    def test_window_slides_without_losing_state(self):
        det = OnlineDetector(DetectorConfig(window=16))
        alarms = self._push_all(
            det, step_series((2.0, 40), (20.0, 8))
        )
        assert [a.direction for a in alarms] == ["up"]
        assert det.count == 48

    def test_alarm_epoch_comes_from_pushed_epochs(self):
        det = OnlineDetector()
        alarms = []
        for i, v in enumerate(step_series((1.0, 8), (30.0, 8))):
            alarm = det.push(v, 100 + 2 * i)  # non-contiguous epochs
            if alarm:
                alarms.append(alarm)
        assert alarms and alarms[0].epoch in (114, 116)


class TestOnlineThreshold:
    CFG = DetectorConfig(mode="threshold", factor=1.5, warmup=4, confirm=2)

    def test_sustained_excursion_alarms(self):
        det = OnlineDetector(self.CFG)
        alarms = [det.push(v, i) for i, v in enumerate([10.0] * 6 + [20.0] * 4)]
        fired = [a for a in alarms if a is not None]
        assert len(fired) == 1
        assert fired[0].direction == "up"

    def test_single_spike_is_ignored(self):
        det = OnlineDetector(self.CFG)
        series = [10.0] * 6 + [40.0] + [10.0] * 6
        assert all(det.push(v, i) is None for i, v in enumerate(series))

    def test_rebase_allows_recovery_alarm(self):
        det = OnlineDetector(self.CFG)
        fired = []
        for i, v in enumerate([10.0] * 6 + [20.0] * 6 + [10.0] * 6):
            a = det.push(v, i)
            if a is not None:
                fired.append(a.direction)
        assert fired == ["up", "down"]


class TestPurity:
    """Detectors are pure functions of the pushed (value, epoch) series."""

    series = st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        min_size=0,
        max_size=64,
    )

    @settings(max_examples=40, deadline=None)
    @given(values=series, mode=st.sampled_from(["changepoint", "threshold"]))
    def test_identical_pushes_identical_alarms(self, values, mode):
        cfg = DetectorConfig(mode=mode)
        a, b = OnlineDetector(cfg), OnlineDetector(cfg)
        got_a = [a.push(v, i) for i, v in enumerate(values)]
        got_b = [b.push(v, i) for i, v in enumerate(values)]
        assert got_a == got_b
        assert a.count == b.count == len(values)

    @settings(max_examples=20, deadline=None)
    @given(values=series)
    def test_pelt_is_deterministic(self, values):
        assert pelt(values, 12.0) == pelt(list(values), 12.0)
