"""Windowed precision/recall/delay scoring against planted truths."""

from __future__ import annotations

import pytest

from repro.measure.eval import (
    detections_from_trace,
    planted_changepoints,
    score_changepoints,
)
from repro.scenario.events import get_scenario


class TestPlantedChangepoints:
    def test_rtt_replay_truths(self):
        spec = get_scenario("rtt_replay")
        truths = planted_changepoints(spec)
        assert len(truths) == 3
        # timeline entry i is processed at engine epoch i + 1
        kinds = [getattr(ev, "kind", None) for _, ev in spec.timeline]
        assert all(kinds[t - 1] == "congestion_onset" for t in truths)

    def test_scenario_without_onsets_has_no_truths(self):
        assert planted_changepoints(get_scenario("link_flap")) == ()

    def test_object_without_timeline_is_empty(self):
        assert planted_changepoints(object()) == ()


class TestDetectionsFromTrace:
    def test_extracts_changepoint_events_only(self):
        events = [
            {"kind": "rtt_sample", "flow": 1, "epoch": 3},
            {"kind": "changepoint", "flow": 1, "cp_epoch": 9, "epoch": 11},
            {"kind": "changepoint", "flow": 2, "cp_epoch": 18, "epoch": 20},
            {"kind": "changepoint", "flow": 2, "cp_epoch": None, "epoch": 20},
        ]
        assert detections_from_trace(events) == [(9, 11), (18, 20)]


class TestScoreChangepoints:
    def test_perfect_run(self):
        score = score_changepoints([(9, 11), (18, 20)], [9, 18])
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.mean_delay_epochs == pytest.approx(2.0)
        assert score.missed_truths == ()

    def test_no_detections_is_vacuously_precise(self):
        score = score_changepoints([], [9, 18])
        assert score.precision == 1.0
        assert score.recall == 0.0
        assert score.missed_truths == (9, 18)

    def test_no_truths_is_vacuously_recalled(self):
        score = score_changepoints([(5, 6)], [])
        assert score.recall == 1.0
        assert score.precision == 0.0
        assert score.false_positives == 1

    def test_window_bounds_matches(self):
        # cp_epoch 14 is outside [9 - 1, 9 + 4]
        score = score_changepoints([(14, 15)], [9], window=4, slack=1)
        assert score.true_positives == 0
        assert score.missed_truths == (9,)

    def test_slack_absorbs_one_early_estimate(self):
        # penalised least squares often lumps one pre-shift sample in
        score = score_changepoints([(8, 11)], [9], window=4, slack=1)
        assert score.true_positives == 1
        assert score.recall == 1.0
        score = score_changepoints([(8, 11)], [9], window=4, slack=0)
        assert score.true_positives == 0

    def test_delay_uses_earliest_matching_alarm(self):
        score = score_changepoints([(9, 15), (10, 11)], [9])
        assert score.mean_delay_epochs == pytest.approx(2.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            score_changepoints([], [], window=-1)
        with pytest.raises(ValueError):
            score_changepoints([], [], slack=-1)
