"""Tests for the MIFO daemon's greedy alt-port maintenance."""

from repro.dataplane import Network, Packet
from repro.mifo.daemon import AltCandidate, MifoDaemon
from repro.mifo.engine import MifoEngine, MifoEngineConfig
from repro.topology.relationships import Relationship


def sink_engine(router, packet, in_port):
    router.counters.forwarded += 1


def _pkt(flow, size=1000):
    return Packet(flow_id=flow, seq=0, src="S", dst="D", size=size)


class TestDaemon:
    def _net(self):
        net = Network()
        rd = net.add_router("Rd", 3, MifoEngine(MifoEngineConfig()))
        a = net.add_router("A", 4, sink_engine)
        b = net.add_router("B", 5, sink_engine)
        c = net.add_router("C", 6, sink_engine)
        rd_a, _ = net.connect_routers(rd, a, relationship_of_b=Relationship.PROVIDER)
        rd_b, _ = net.connect_routers(rd, b, relationship_of_b=Relationship.PROVIDER)
        rd_c, _ = net.connect_routers(rd, c, relationship_of_b=Relationship.PROVIDER)
        rd.fib.install("D", rd_a)
        return net, rd, (rd_a, rd_b, rd_c)

    def test_daemon_points_alt_at_max_spare(self):
        net, rd, (rd_a, rd_b, rd_c) = self._net()
        daemon = MifoDaemon(net.sim, rd, interval=0.01)
        daemon.register_alternatives(
            "D",
            [AltCandidate(rd_b, rd_b), AltCandidate(rd_c, rd_c)],
        )
        daemon.start()
        # Load port B heavily so its measured utilization is high.
        for i in range(20):
            rd_b.send(_pkt(100 + i, size=9000))
        net.run(until=0.05)
        assert rd.fib.lookup("D").alt_port is rd_c
        assert daemon.updates >= 1

    def test_daemon_tracks_shifting_load(self):
        net, rd, (rd_a, rd_b, rd_c) = self._net()
        daemon = MifoDaemon(net.sim, rd, interval=0.01)
        daemon.register_alternatives(
            "D", [AltCandidate(rd_b, rd_b), AltCandidate(rd_c, rd_c)]
        )
        daemon.start()
        for i in range(20):
            rd_b.send(_pkt(100 + i, size=9000))
        net.run(until=0.05)
        assert rd.fib.lookup("D").alt_port is rd_c
        # Now hammer C instead; after the next window B wins back.
        for i in range(40):
            rd_c.send(_pkt(200 + i, size=9000))
        net.run(until=0.08)
        assert rd.fib.lookup("D").alt_port is rd_b

    def test_no_candidates_is_harmless(self):
        net, rd, _ports = self._net()
        daemon = MifoDaemon(net.sim, rd, interval=0.01)
        daemon.register_alternatives("D", [])
        daemon.start()
        net.run(until=0.03)
        assert rd.fib.lookup("D").alt_port is None

    def test_start_idempotent(self):
        net, rd, _ = self._net()
        daemon = MifoDaemon(net.sim, rd, interval=0.01)
        daemon.start()
        daemon.start()
        net.run(until=0.025)
        # one tick chain, not two: at most ~3 sampling events
        assert net.sim.events_processed <= 4
