"""Packet-level tests for the MIFO forwarding engine (Algorithm 1).

Each test wires a minimal router topology with hand-installed FIBs and
injects packets, asserting on the engine's per-line behavior: ingress
tagging, congestion-triggered deflection, the egress Tag-Check drop, and
IP-in-IP cycle avoidance between iBGP peers.
"""

import pytest

from repro.dataplane import Network, Packet, PacketKind, PeerKind
from repro.mifo.engine import MifoEngine, MifoEngineConfig
from repro.topology.relationships import Relationship

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


def make_packet(flow=1, seq=0, dst="D", size=1000, kind=PacketKind.DATA):
    return Packet(flow_id=flow, seq=seq, src="S", dst=dst, size=size, kind=kind)


def sink_engine(router, packet, in_port):
    """Absorbing neighbor: counts deliveries, forwards nothing."""
    router.counters.forwarded += 1


@pytest.fixture
def simple_net():
    """cust(AS1) -> MID(AS2) -> {defaultAS3 | altAS4(peer) | custAS5}.

    MID's engine is the unit under test; neighbors run plain BGP engines
    and just absorb packets.
    """
    net = Network()
    engine = MifoEngine(MifoEngineConfig(congestion_threshold=0.5))
    mid = net.add_router("MID", 2, engine)
    up = net.add_router("UP", 1, sink_engine)
    default = net.add_router("DEF", 3, sink_engine)
    alt_peer = net.add_router("ALTP", 4, sink_engine)
    alt_cust = net.add_router("ALTC", 5, sink_engine)

    up_mid, mid_up = net.connect_routers(up, mid, relationship_of_b=Relationship.PEER)
    mid_def, _ = net.connect_routers(mid, default, relationship_of_b=R, queue_capacity=4)
    mid_altp, _ = net.connect_routers(mid, alt_peer, relationship_of_b=P)
    mid_altc, _ = net.connect_routers(mid, alt_cust, relationship_of_b=C)

    return {
        "net": net,
        "engine": engine,
        "mid": mid,
        "ports": {
            "mid_up": mid_up,
            "up_mid": up_mid,
            "mid_def": mid_def,
            "mid_altp": mid_altp,
            "mid_altc": mid_altc,
        },
    }


def set_upstream_rel(ports, rel):
    """Adjust what MID believes about its upstream neighbor."""
    ports["mid_up"].neighbor_relationship = rel


class TestTagging:
    def test_ebgp_ingress_from_customer_sets_bit(self, simple_net):
        mid, ports = simple_net["mid"], simple_net["ports"]
        set_upstream_rel(ports, C)
        mid.fib.install("D", ports["mid_def"])
        p = make_packet()
        mid.receive(p, ports["mid_up"])
        assert p.tag_bit is True
        assert mid.counters.tagged == 1

    @pytest.mark.parametrize("rel", [P, R])
    def test_ebgp_ingress_from_peer_or_provider_clears_bit(self, simple_net, rel):
        mid, ports = simple_net["mid"], simple_net["ports"]
        set_upstream_rel(ports, rel)
        mid.fib.install("D", ports["mid_def"])
        p = make_packet()
        p.tag_bit = True  # stale bit from a previous AS must be overwritten
        mid.receive(p, ports["mid_up"])
        assert p.tag_bit is False

    def test_host_ingress_tagged_as_own_traffic(self, simple_net):
        net, mid, ports = simple_net["net"], simple_net["mid"], simple_net["ports"]
        host_port = mid.new_port("h", peer_kind=PeerKind.HOST)
        from repro.dataplane.link import Link

        h = net.add_host("H")
        Link(net.sim, h, h.uplink, mid, host_port, rate_bps=1e9, delay_s=1e-6)
        mid.fib.install("D", ports["mid_def"])
        p = make_packet()
        mid.receive(p, host_port)
        assert p.tag_bit is True


class TestDefaultForwarding:
    def test_uncongested_goes_default(self, simple_net):
        net, mid, ports = simple_net["net"], simple_net["mid"], simple_net["ports"]
        set_upstream_rel(ports, C)
        mid.fib.install("D", ports["mid_def"], ports["mid_altc"])
        p = make_packet()
        mid.receive(p, ports["mid_up"])
        net.sim.run()
        assert mid.counters.forwarded == 1
        assert mid.counters.deflected == 0
        assert ports["mid_def"].stats.packets_sent == 1

    def test_no_alt_port_means_default_even_congested(self, simple_net):
        mid, ports = simple_net["mid"], simple_net["ports"]
        set_upstream_rel(ports, C)
        mid.fib.install("D", ports["mid_def"])  # no alternative
        for i in range(8):
            mid.receive(make_packet(flow=i), ports["mid_up"])
        assert mid.counters.deflected == 0


class TestDeflection:
    def _congest_default(self, simple_net, n=4):
        """Fill the default port queue past the 0.5 threshold."""
        mid, ports = simple_net["mid"], simple_net["ports"]
        for i in range(n):
            ports["mid_def"].send(make_packet(flow=900 + i))

    def test_congestion_deflects_new_flow_to_alt(self, simple_net):
        net, mid, ports = simple_net["net"], simple_net["mid"], simple_net["ports"]
        set_upstream_rel(ports, C)
        mid.fib.install("D", ports["mid_def"], ports["mid_altc"])
        self._congest_default(simple_net)
        p = make_packet(flow=7)
        mid.receive(p, ports["mid_up"])
        assert mid.counters.deflected == 1
        net.sim.run()
        assert ports["mid_altc"].stats.packets_sent == 1

    def test_tag_check_drop(self, simple_net):
        """Peer upstream + peer alternative: Algorithm 1 line 20."""
        mid, ports = simple_net["mid"], simple_net["ports"]
        set_upstream_rel(ports, P)
        mid.fib.install("D", ports["mid_def"], ports["mid_altp"])
        self._congest_default(simple_net)
        p = make_packet(flow=8)
        mid.receive(p, ports["mid_up"])
        assert mid.counters.dropped_valley == 1
        assert mid.counters.deflected == 0

    def test_tag_check_pass_with_customer_alt(self, simple_net):
        mid, ports = simple_net["mid"], simple_net["ports"]
        set_upstream_rel(ports, P)
        mid.fib.install("D", ports["mid_def"], ports["mid_altc"])
        self._congest_default(simple_net)
        mid.receive(make_packet(flow=9), ports["mid_up"])
        assert mid.counters.deflected == 1

    def test_tag_check_disabled_forwards_violating_packet(self, simple_net):
        engine = MifoEngine(
            MifoEngineConfig(congestion_threshold=0.5, tag_check_enabled=False)
        )
        simple_net["mid"].engine = engine
        mid, ports = simple_net["mid"], simple_net["ports"]
        set_upstream_rel(ports, P)
        mid.fib.install("D", ports["mid_def"], ports["mid_altp"])
        self._congest_default(simple_net)
        mid.receive(make_packet(flow=10), ports["mid_up"])
        assert mid.counters.dropped_valley == 0
        assert mid.counters.deflected == 1

    def test_sticky_flow_keeps_alt_while_congested(self, simple_net):
        mid, ports = simple_net["mid"], simple_net["ports"]
        set_upstream_rel(ports, C)
        mid.fib.install("D", ports["mid_def"], ports["mid_altc"])
        self._congest_default(simple_net)
        mid.receive(make_packet(flow=11, seq=0), ports["mid_up"])
        mid.receive(make_packet(flow=11, seq=1), ports["mid_up"])
        assert mid.counters.deflected == 2  # both packets of the flow

    def test_acks_not_deflected(self, simple_net):
        mid, ports = simple_net["mid"], simple_net["ports"]
        set_upstream_rel(ports, C)
        mid.fib.install("D", ports["mid_def"], ports["mid_altc"])
        self._congest_default(simple_net)
        mid.receive(make_packet(flow=12, kind=PacketKind.ACK, size=40), ports["mid_up"])
        assert mid.counters.deflected == 0
        assert mid.counters.forwarded == 1


class TestTtl:
    def test_ttl_expiry_drops(self, simple_net):
        mid, ports = simple_net["mid"], simple_net["ports"]
        set_upstream_rel(ports, C)
        mid.fib.install("D", ports["mid_def"])
        p = make_packet()
        p.ttl = 1
        mid.receive(p, ports["mid_up"])
        assert mid.counters.dropped_ttl == 1
        assert mid.counters.forwarded == 0


class TestIbgpEncapsulation:
    """Fig. 2(b): Rd deflects via iBGP peer Ra; Ra must not bounce back."""

    @pytest.fixture
    def ibgp_net(self):
        net = Network()
        rd = net.add_router("Rd", 3, MifoEngine(MifoEngineConfig(congestion_threshold=0.5)))
        ra = net.add_router("Ra", 3, MifoEngine(MifoEngineConfig(congestion_threshold=0.5)))
        up = net.add_router("UP", 1, sink_engine)
        ebgp_def = net.add_router("E4", 4, sink_engine)
        ebgp_alt = net.add_router("E6", 6, sink_engine)

        up_rd, rd_up = net.connect_routers(up, rd, relationship_of_b=R)
        rd_def, _ = net.connect_routers(rd, ebgp_def, relationship_of_b=R, queue_capacity=4)
        ra_alt, _ = net.connect_routers(ra, ebgp_alt, relationship_of_b=R)
        rd_ra, ra_rd = net.connect_routers(rd, ra)

        rd.fib.install("D", rd_def, rd_ra)
        ra.fib.install("D", ra_rd, ra_alt)
        # upstream is Rd's customer (AS1 pays AS3)
        rd_up.neighbor_relationship = C
        return {
            "net": net,
            "rd": rd,
            "ra": ra,
            "ports": {"rd_up": rd_up, "rd_def": rd_def, "ra_alt": ra_alt, "rd_ra": rd_ra},
        }

    def test_deflected_packet_encapsulated_and_exits_via_alt(self, ibgp_net):
        net, rd, ra, ports = (
            ibgp_net["net"],
            ibgp_net["rd"],
            ibgp_net["ra"],
            ibgp_net["ports"],
        )
        for i in range(4):  # congest Rd's default egress
            ports["rd_def"].send(make_packet(flow=900 + i))
        p = make_packet(flow=1)
        rd.receive(p, ports["rd_up"])
        assert rd.counters.encapsulated == 1
        net.sim.run()
        # Ra decapsulated and pushed it out its own eBGP alternative —
        # NOT back to Rd.
        assert ra.counters.decapsulated == 1
        assert ra.counters.deflected == 1
        assert ports["ra_alt"].stats.packets_sent == 1
        assert not p.is_encapsulated
        assert p.tag_bit is True  # inner bit survived the tunnel

    def test_uncongested_ra_would_send_back_without_mechanism(self, ibgp_net):
        """Sanity: Ra's *default* next hop for D is Rd — the mechanism is
        what breaks the cycle, not the FIB."""
        ra, ports = ibgp_net["ra"], ibgp_net["ports"]
        entry = ra.fib.lookup("D")
        dev, _ = entry.out_port.link.remote_of(entry.out_port)
        assert dev.name == "Rd"

    def test_encap_disabled_cycles_until_ttl_death(self):
        """Ablation: without IP-in-IP the packet ping-pongs Rd<->Ra and
        dies by TTL — the Fig-2(b) cycle made visible.  The default
        egress link is slowed so its queue stays saturated for the whole
        bounce sequence."""
        net = Network()
        no_encap = MifoEngineConfig(congestion_threshold=0.5, encap_enabled=False)
        rd = net.add_router("Rd", 3, MifoEngine(no_encap))
        ra = net.add_router("Ra", 3, MifoEngine(no_encap))
        up = net.add_router("UP", 1, sink_engine)
        e4 = net.add_router("E4", 4, sink_engine)
        e6 = net.add_router("E6", 6, sink_engine)
        _, rd_up = net.connect_routers(up, rd, relationship_of_b=R)
        rd_up.neighbor_relationship = C
        rd_def, _ = net.connect_routers(
            rd, e4, relationship_of_b=R, queue_capacity=4, rate_bps=1e5
        )
        ra_alt, _ = net.connect_routers(ra, e6, relationship_of_b=R)
        rd_ra, ra_rd = net.connect_routers(rd, ra)
        rd.fib.install("D", rd_def, rd_ra)
        ra.fib.install("D", ra_rd, ra_alt)

        for i in range(4):  # saturate the (very slow) default egress
            rd_def.send(make_packet(flow=900 + i))
        p = make_packet(flow=1)
        p.ttl = 8
        rd.receive(p, rd_up)
        net.sim.run()
        # The packet bounced between the iBGP peers (AS 3 appears in its
        # trace more than the two legitimate visits) and died by TTL.
        assert p.as_trace.count(3) >= 3
        assert rd.counters.dropped_ttl + ra.counters.dropped_ttl == 1
        assert ra_alt.stats.packets_sent == 0


class TestHashPinMode:
    """Section II-A's literal hashing semantics as an engine mode."""

    def _wire(self, fraction):
        from repro.dataplane import Network

        net = Network()
        engine = MifoEngine(
            MifoEngineConfig(
                congestion_threshold=0.5,
                pin_mode="hash",
                hash_deflect_fraction=fraction,
            )
        )
        mid = net.add_router("M", 2, engine)
        up = net.add_router("U", 1, sink_engine)
        d = net.add_router("Dd", 3, sink_engine)
        alt = net.add_router("A", 4, sink_engine)
        _, m_up = net.connect_routers(up, mid, relationship_of_b=R)
        m_up.neighbor_relationship = C
        m_d, _ = net.connect_routers(mid, d, relationship_of_b=R, queue_capacity=4)
        m_a, _ = net.connect_routers(mid, alt, relationship_of_b=C)
        mid.fib.install("D", m_d, m_a)
        return net, mid, m_up, m_d

    def _congest(self, m_d):
        for i in range(4):
            m_d.send(make_packet(flow=900 + i))

    def test_fraction_one_deflects_everything(self):
        _net, mid, m_up, m_d = self._wire(1.0)
        self._congest(m_d)
        for f in range(20):
            mid.receive(make_packet(flow=f), m_up)
        assert mid.counters.deflected == 20

    def test_fraction_zero_never_deflects(self):
        _net, mid, m_up, m_d = self._wire(0.0)
        self._congest(m_d)
        for f in range(20):
            mid.receive(make_packet(flow=f), m_up)
        assert mid.counters.deflected == 0

    def test_half_fraction_splits_flow_space(self):
        _net, mid, m_up, m_d = self._wire(0.5)
        self._congest(m_d)
        for f in range(200):
            mid.receive(make_packet(flow=f), m_up)
        # Within a loose band around half (hash uniformity).
        assert 60 <= mid.counters.deflected <= 140

    def test_packets_of_one_flow_agree(self):
        _net, mid, m_up, m_d = self._wire(0.5)
        self._congest(m_d)
        for seq in range(10):
            mid.receive(make_packet(flow=77, seq=seq), m_up)
        # Either all 10 deflected or none: no intra-flow reordering.
        assert mid.counters.deflected in (0, 10)

    def test_no_deflection_without_congestion(self):
        _net, mid, m_up, _m_d = self._wire(1.0)
        mid.receive(make_packet(flow=1), m_up)
        assert mid.counters.deflected == 0


class TestEncapsulatedTransit:
    def test_outer_header_for_other_router_not_stripped(self):
        """An encapsulated packet whose outer destination is some other
        iBGP peer is forwarded without decapsulation (full-mesh iBGP means
        this is rare, but the engine must not mis-strip)."""
        from repro.dataplane import Network

        net = Network()
        mid = net.add_router("MID", 3, MifoEngine(MifoEngineConfig()))
        nbr = net.add_router("NBR", 3, sink_engine)
        m_n, _ = net.connect_routers(mid, nbr)
        mid.fib.install("D", m_n)
        p = make_packet()
        p.encapsulate("Rx", "Ry")  # addressed to a different router
        mid.receive(p, m_n)
        assert p.is_encapsulated
        assert mid.counters.decapsulated == 0
        assert mid.counters.forwarded == 1
