"""Tests for the one-bit Tag-Check strategy."""

import pytest

from repro.mifo.tag import check_bit, tag_for_upstream, transit_allowed
from repro.topology.relationships import Relationship

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


class TestTag:
    def test_customer_upstream_sets_bit(self):
        assert tag_for_upstream(C) is True

    @pytest.mark.parametrize("rel", [P, R])
    def test_peer_provider_upstream_clears_bit(self, rel):
        assert tag_for_upstream(rel) is False

    def test_own_traffic_tagged_like_customer(self):
        assert tag_for_upstream(None) is True


class TestCheck:
    def test_bit_set_allows_any_downstream(self):
        for rel in Relationship:
            assert check_bit(True, rel)

    def test_bit_clear_requires_customer_downstream(self):
        assert check_bit(False, C)
        assert not check_bit(False, P)
        assert not check_bit(False, R)


class TestTransitAllowed:
    """AS-level composition must equal Eq. 3 on real graphs."""

    def test_fig2a_peer_chain_blocked(self, fig2a_graph):
        # Packet 1 -> 2 -> 3: both peers of AS 2 — the Fig-2(a) loop step.
        assert not transit_allowed(fig2a_graph, upstream=1, current=2, downstream=3)

    def test_fig2a_down_allowed(self, fig2a_graph):
        # 1 -> 2 -> 0: downstream is AS 2's customer.
        assert transit_allowed(fig2a_graph, upstream=1, current=2, downstream=0)

    def test_customer_upstream_allows_peer_downstream(self, fig2a_graph):
        # 0 -> 1 -> 2: upstream AS 0 is AS 1's customer.
        assert transit_allowed(fig2a_graph, upstream=0, current=1, downstream=2)

    def test_origin_can_go_anywhere(self, fig2a_graph):
        for downstream in (0, 2, 3):
            assert transit_allowed(fig2a_graph, None, 1, downstream)

    def test_equivalence_with_tag_then_check(self, fig11_graph):
        g = fig11_graph
        for u in g.nodes():
            for up in g.neighbors(u):
                for down in g.neighbors(u):
                    expected = check_bit(
                        tag_for_upstream(g.relationship(u, up)),
                        g.relationship(u, down),
                    )
                    assert transit_allowed(g, up, u, down) == expected
