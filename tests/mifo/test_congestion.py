"""Tests for the pluggable congestion detectors."""

import pytest

from repro.dataplane.events import Simulator
from repro.dataplane.link import Link
from repro.dataplane.device import Device
from repro.dataplane.packet import Packet
from repro.dataplane.port import Port
from repro.measure.changepoint import DetectorConfig
from repro.mifo.congestion import (
    HybridDetector,
    QueuingRatioDetector,
    RttChangepointDetector,
    UtilizationDetector,
)


class _Sink(Device):
    def receive(self, packet, in_port):
        pass


def wired_port(rate=1e6, queue=4):
    sim = Simulator()
    a, b = _Sink(sim, "A"), _Sink(sim, "B")
    pa, pb = Port("A:0", queue_capacity=queue), Port("B:0", queue_capacity=queue)
    Link(sim, a, pa, b, pb, rate_bps=rate, delay_s=0.001)
    return sim, pa


def pkt(size=1000):
    return Packet(flow_id=1, seq=0, src="S", dst="D", size=size)


class TestQueuingRatio:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            QueuingRatioDetector(0.0)
        with pytest.raises(ValueError):
            QueuingRatioDetector(1.5)

    def test_fires_on_backlog(self):
        _sim, p = wired_port()
        det = QueuingRatioDetector(0.5)
        assert not det(p)
        p.send(pkt())
        p.send(pkt())
        assert det(p)  # 2/4 occupied

    def test_repr(self):
        assert "0.8" in repr(QueuingRatioDetector(0.8))


class TestUtilization:
    def test_fires_after_sustained_load(self):
        sim, p = wired_port(rate=1e6)
        det = UtilizationDetector(0.5)
        assert not det(p)
        for _ in range(4):
            p.send(pkt())
        sim.run()  # 4 x 8 ms of transmission
        p.sample_utilization(0.032)  # fully busy window -> EWMA reaches 0.5
        assert det(p)

    def test_unwired_port_never_congested(self):
        det = UtilizationDetector(0.5)
        assert not det(Port("x"))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            UtilizationDetector(0.0)


class TestHybrid:
    def test_queue_component(self):
        _sim, p = wired_port()
        det = HybridDetector(queue_threshold=0.5, utilization_threshold=0.99)
        p.send(pkt())
        p.send(pkt())
        assert det(p)

    def test_neither_fires_when_idle(self):
        _sim, p = wired_port()
        assert not HybridDetector()(p)


class TestRttChangepoint:
    def test_unwired_port_never_congested(self):
        assert not RttChangepointDetector()(Port("x"))

    def test_proxy_composes_propagation_and_backlog(self):
        _sim, p = wired_port(rate=1e6, queue=8)
        det = RttChangepointDetector()
        idle = det.rtt_proxy_ms(p)
        assert idle == pytest.approx(2.0)  # 2 x 1 ms propagation
        p.send(pkt())
        p.send(pkt())
        # 2 packets x 12000 bits / 1 Mbps = 24 ms of drain time
        assert det.rtt_proxy_ms(p) == pytest.approx(idle + 24.0)

    def test_latches_on_sustained_backlog_and_releases_on_drain(self):
        sim, p = wired_port(rate=1e6, queue=8)
        det = RttChangepointDetector()
        assert not any(det(p) for _ in range(8))  # idle regime
        for _ in range(4):
            p.send(pkt())
        fired = [det(p) for _ in range(6)]
        assert any(fired), "sustained backlog must trip the detector"
        assert fired[-1], "signal stays latched while the regime holds"
        sim.run()  # drain the queue
        cleared = [det(p) for _ in range(8)]
        assert not cleared[-1], "confirmed downward shift releases the latch"

    def test_instantaneous_spike_does_not_trip(self):
        sim, p = wired_port(rate=1e6, queue=8)
        det = RttChangepointDetector()
        for _ in range(8):
            assert not det(p)
        p.send(pkt())  # one packet, immediately drained
        sim.run()
        assert not any(det(p) for _ in range(4))

    def test_deterministic_across_instances(self):
        def drive(det):
            sim, p = wired_port(rate=1e6, queue=8)
            out = [det(p) for _ in range(8)]
            for _ in range(4):
                p.send(pkt())
            out += [det(p) for _ in range(6)]
            return out

        assert drive(RttChangepointDetector()) == drive(
            RttChangepointDetector()
        )

    def test_config_validated_and_repr(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            RttChangepointDetector(DetectorConfig(mode="psychic"))
        det = RttChangepointDetector(DetectorConfig(mode="threshold"))
        assert "threshold" in repr(det)


class TestEngineIntegration:
    def test_custom_detector_overrides_threshold(self):
        """An always-congested detector deflects the first packet even
        with an empty queue."""
        from repro.dataplane import Network
        from repro.mifo.engine import MifoEngine, MifoEngineConfig
        from repro.topology.relationships import Relationship

        net = Network()
        always = lambda port: True
        mid = net.add_router("M", 2, MifoEngine(MifoEngineConfig(detector=always)))
        up = net.add_router("U", 1, lambda *a: None)
        d = net.add_router("D", 3, lambda *a: None)
        alt = net.add_router("A", 4, lambda *a: None)
        _, m_up = net.connect_routers(up, mid, relationship_of_b=Relationship.PROVIDER)
        m_up.neighbor_relationship = Relationship.CUSTOMER
        m_d, _ = net.connect_routers(mid, d, relationship_of_b=Relationship.PROVIDER)
        m_a, _ = net.connect_routers(mid, alt, relationship_of_b=Relationship.CUSTOMER)
        mid.fib.install("X", m_d, m_a)
        mid.receive(Packet(flow_id=1, seq=0, src="S", dst="X", size=100), m_up)
        assert mid.counters.deflected == 1
