"""Tests for the three tag-bit carriers (paper Section III-A4)."""


from repro.dataplane import Network, Packet
from repro.mifo.carrier import IpOptionCarrier, MplsLabelCarrier, ReservedBitCarrier
from repro.mifo.engine import MifoEngine, MifoEngineConfig
from repro.topology.relationships import Relationship

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


def pkt(size=1000):
    return Packet(flow_id=1, seq=0, src="S", dst="D", size=size)


class TestReservedBit:
    def test_zero_overhead(self):
        c = ReservedBitCarrier()
        p = pkt()
        c.tag(p, True)
        assert p.size == 1000
        assert c.read(p) is True
        c.strip(p)
        assert p.size == 1000

    def test_overwrite(self):
        c = ReservedBitCarrier()
        p = pkt()
        c.tag(p, True)
        c.tag(p, False)
        assert c.read(p) is False


class TestMplsLabel:
    def test_push_read_pop(self):
        c = MplsLabelCarrier()
        p = pkt()
        c.tag(p, True)
        assert p.size == 1004  # 4-byte shim on the wire inside the AS
        assert len(p.mpls_stack) == 1
        assert c.read(p) is True
        c.strip(p)
        assert p.size == 1000
        assert not p.mpls_stack

    def test_retag_does_not_stack(self):
        c = MplsLabelCarrier()
        p = pkt()
        c.tag(p, True)
        c.tag(p, False)
        assert len(p.mpls_stack) == 1
        assert p.size == 1004
        assert c.read(p) is False

    def test_bit_encoded_in_label(self):
        c = MplsLabelCarrier()
        p = pkt()
        c.tag(p, True)
        assert p.mpls_stack[0] & 0x1
        c.tag(p, False)
        assert not (p.mpls_stack[0] & 0x1)

    def test_strip_without_label_is_safe(self):
        c = MplsLabelCarrier()
        p = pkt()
        c.strip(p)
        assert p.size == 1000

    def test_read_falls_back_to_bit(self):
        c = MplsLabelCarrier()
        p = pkt()
        p.tag_bit = True
        assert c.read(p) is True


class TestIpOption:
    def test_option_added_once(self):
        c = IpOptionCarrier()
        p = pkt()
        c.tag(p, True)
        assert p.size == 1004
        c.tag(p, False)
        assert p.size == 1004  # option reused, not duplicated
        assert c.read(p) is False

    def test_option_survives_strip(self):
        c = IpOptionCarrier()
        p = pkt()
        c.tag(p, True)
        c.strip(p)
        assert p.size == 1004  # options are end-to-end


class TestEngineIntegration:
    def _wire(self, carrier):
        net = Network()
        engine = MifoEngine(
            MifoEngineConfig(congestion_threshold=0.5, carrier=carrier)
        )
        mid = net.add_router("M", 2, engine)
        sink = lambda *_a: None
        up = net.add_router("U", 1, sink)
        d = net.add_router("D", 3, sink)
        alt = net.add_router("A", 4, sink)
        _, m_up = net.connect_routers(up, mid, relationship_of_b=R)
        m_up.neighbor_relationship = C
        m_d, _ = net.connect_routers(mid, d, relationship_of_b=R, queue_capacity=4)
        m_a, _ = net.connect_routers(mid, alt, relationship_of_b=C)
        mid.fib.install("D", m_d, m_a)
        return net, mid, m_up, m_d

    def test_mpls_label_popped_at_as_exit(self):
        net, mid, m_up, _m_d = self._wire(MplsLabelCarrier())
        p = pkt()
        mid.receive(p, m_up)
        net.sim.run()
        # The packet left via an eBGP port: the label must be gone.
        assert not p.mpls_stack
        assert p.size == 1000

    def test_deflected_packet_also_stripped(self):
        net, mid, m_up, m_d = self._wire(MplsLabelCarrier())
        for i in range(4):
            m_d.send(pkt())
        p = pkt()
        mid.receive(p, m_up)
        net.sim.run()
        assert mid.counters.deflected == 1
        assert not p.mpls_stack

    def test_reserved_bit_default(self):
        cfg = MifoEngineConfig()
        assert isinstance(cfg.carrier, ReservedBitCarrier)
