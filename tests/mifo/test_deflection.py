"""Tests for the AS-level MIFO deflection walk — including the paper's
Theorem as an executable property, and its failure when Tag-Check is
ablated (the Fig-2(a) loop)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.propagation import RoutingCache
from repro.errors import LoopDetectedError
from repro.mifo.deflection import MifoPathBuilder
from repro.topology.relationships import Relationship

from ..conftest import as_graphs

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


def never_congested(_u, _v):
    return False


def unit_spare(_u, _v):
    return 1.0


class TestNoCongestion:
    def test_follows_default_path(self, fig11_graph):
        builder = MifoPathBuilder(
            fig11_graph, RoutingCache(fig11_graph), frozenset(fig11_graph.nodes())
        )
        out = builder.build_path(1, 5, never_congested, unit_spare)
        assert out.path == (1, 3, 4, 5)
        assert out.deflections == 0
        assert not out.used_alternative


class TestDeflection:
    def test_deflects_around_congested_core(self, fig11_graph):
        builder = MifoPathBuilder(
            fig11_graph, RoutingCache(fig11_graph), frozenset(fig11_graph.nodes())
        )
        congested = lambda u, v: (u, v) == (3, 4)
        out = builder.build_path(1, 5, congested, unit_spare)
        assert out.path == (1, 3, 6, 5)
        assert out.deflections == 1

    def test_non_capable_as_cannot_deflect(self, fig11_graph):
        builder = MifoPathBuilder(
            fig11_graph, RoutingCache(fig11_graph), frozenset({1, 2})  # AS3 not capable
        )
        congested = lambda u, v: (u, v) == (3, 4)
        out = builder.build_path(1, 5, congested, unit_spare)
        assert out.path == (1, 3, 4, 5)  # stuck with the congested default
        assert out.deflections == 0

    def test_greedy_picks_max_spare(self, fig2a_graph):
        builder = MifoPathBuilder(
            fig2a_graph, RoutingCache(fig2a_graph), frozenset(fig2a_graph.nodes())
        )
        congested = lambda u, v: (u, v) == (1, 0)
        spare = lambda u, v: {(1, 2): 10.0, (1, 3): 100.0}.get((u, v), 1.0)
        out = builder.build_path(1, 0, congested, spare)
        # Source deflects to the peer with more spare direct capacity.
        assert out.path == (1, 3, 0)

    def test_congested_alternative_avoided(self, fig2a_graph):
        builder = MifoPathBuilder(
            fig2a_graph, RoutingCache(fig2a_graph), frozenset(fig2a_graph.nodes())
        )
        congested = lambda u, v: (u, v) in {(1, 0), (1, 3)}
        spare = lambda u, v: 100.0 if (u, v) == (1, 3) else 1.0
        out = builder.build_path(1, 0, congested, spare)
        assert out.path == (1, 2, 0)

    def test_all_alternatives_congested_falls_back_to_default(self, fig2a_graph):
        builder = MifoPathBuilder(
            fig2a_graph, RoutingCache(fig2a_graph), frozenset(fig2a_graph.nodes())
        )
        out = builder.build_path(1, 0, lambda u, v: True, unit_spare)
        assert out.path == (1, 0)
        assert out.deflections == 0


class TestFig2aLoopStory:
    """The paper's central example: with the rule, no loop; without, loop."""

    def _builder(self, g, tag_check):
        return MifoPathBuilder(
            g,
            RoutingCache(g),
            frozenset(g.nodes()),
            tag_check_enabled=tag_check,
            deflect_uncongested_only=False,
        )

    def test_with_tag_check_packet_survives(self, fig2a_graph):
        # All direct links to AS 0 congested: every AS wants to deflect
        # clockwise, but Tag-Check stops peer->peer transit; the packet
        # falls back to the (congested) default at the transit AS.
        congested = lambda u, v: v == 0
        builder = self._builder(fig2a_graph, tag_check=True)
        out = builder.build_path(1, 0, congested, unit_spare)
        # Source deflects to a peer (allowed: own traffic); the peer may
        # not deflect to the third peer, so it delivers via its own
        # (congested) direct link.
        assert out.path[0] == 1 and out.path[-1] == 0
        assert len(out.path) <= 4

    def test_without_tag_check_loops(self, fig2a_graph):
        congested = lambda u, v: v == 0
        builder = self._builder(fig2a_graph, tag_check=False)
        with pytest.raises(LoopDetectedError):
            builder.build_path(1, 0, congested, unit_spare)


class TestTheorem:
    """Paper Theorem (Section III-A3), executable form: under arbitrary
    congestion, arbitrary deployment and arbitrary (seeded) greedy
    choices, the MIFO walk always terminates at the destination without
    repeating a directed link."""

    @given(
        g=as_graphs(max_nodes=10),
        congestion_seed=st.integers(0, 2**16),
        deployment_seed=st.integers(0, 2**16),
        src=st.integers(0, 9),
        dst=st.integers(0, 9),
    )
    @settings(max_examples=120, deadline=None)
    def test_loop_free_under_any_congestion(
        self, g, congestion_seed, deployment_seed, src, dst
    ):
        n = len(g)
        src, dst = src % n, dst % n
        if src == dst:
            return
        import numpy as np

        crng = np.random.default_rng(congestion_seed)
        congested_links = {
            (u, v)
            for u in g.nodes()
            for v in g.neighbors(u)
            if crng.random() < 0.4
        }
        drng = np.random.default_rng(deployment_seed)
        capable = frozenset(
            int(x) for x in drng.choice(list(g.nodes()), size=max(1, n // 2), replace=False)
        )
        builder = MifoPathBuilder(g, RoutingCache(g), capable)
        routing = builder.routing(dst)
        if not routing.has_route(src):
            return
        out = builder.build_path(
            src,
            dst,
            lambda u, v: (u, v) in congested_links,
            lambda u, v: float((u * 31 + v) % 97),
        )
        assert out.path[0] == src and out.path[-1] == dst
        links = list(zip(out.path, out.path[1:]))
        assert len(set(links)) == len(links), f"repeated link in {out.path}"
        # Walks may revisit at most one node once (up-leg + down-leg).
        assert len(out.path) <= 2 * n
