"""Tests for Table-I style topology statistics."""

import pytest

from repro.topology.asgraph import ASGraph
from repro.topology.stats import topology_stats


class TestStats:
    def test_fig2a(self, fig2a_graph):
        s = topology_stats(fig2a_graph)
        assert s.n_nodes == 4
        assert s.n_links == 6
        assert s.n_p2c_links == 3
        assert s.n_peering_links == 3
        assert s.n_tier1 == 3
        assert s.n_stubs == 1
        assert s.max_degree == 3
        assert s.mean_degree == pytest.approx(3.0)
        assert s.multihomed_fraction == 1.0

    def test_fractions(self, fig2a_graph):
        s = topology_stats(fig2a_graph)
        assert s.p2c_fraction == pytest.approx(0.5)
        assert s.peering_fraction == pytest.approx(0.5)

    def test_table_row_keys_match_paper(self, fig2a_graph):
        row = topology_stats(fig2a_graph).as_table_row()
        assert list(row) == ["# of Nodes", "# of Links", "P/C Links", "Peering Links"]

    def test_empty_graph(self):
        s = topology_stats(ASGraph())
        assert s.n_nodes == 0
        assert s.n_links == 0
        assert s.p2c_fraction == 0.0
        assert s.mean_degree == 0.0
