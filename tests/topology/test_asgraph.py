"""Tests for the ASGraph structure and its invariants."""

import pytest
from hypothesis import given

from repro.errors import TopologyError
from repro.topology.asgraph import ASGraph, link_key
from repro.topology.relationships import Relationship

from ..conftest import as_graphs

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


class TestConstruction:
    def test_add_as_idempotent(self):
        g = ASGraph()
        g.add_as(1)
        g.add_as(1)
        assert len(g) == 1

    def test_p2c_view_from_both_sides(self):
        g = ASGraph.from_links(p2c=[(1, 2)], freeze=False)
        assert g.relationship(1, 2) is C  # 2 is 1's customer
        assert g.relationship(2, 1) is R  # 1 is 2's provider
        assert g.customers(1) == [2]
        assert g.providers(2) == [1]

    def test_peering_symmetric(self):
        g = ASGraph.from_links(peering=[(1, 2)], freeze=False)
        assert g.relationship(1, 2) is P
        assert g.relationship(2, 1) is P
        assert g.peers(1) == [2] and g.peers(2) == [1]

    def test_self_loop_rejected(self):
        g = ASGraph()
        with pytest.raises(TopologyError, match="self-loop"):
            g.add_p2c(1, 1)

    def test_duplicate_link_idempotent(self):
        g = ASGraph()
        g.add_p2c(1, 2)
        g.add_p2c(1, 2)
        assert g.num_links() == 1

    def test_conflicting_relationship_rejected(self):
        g = ASGraph()
        g.add_p2c(1, 2)
        with pytest.raises(TopologyError, match="conflicting"):
            g.add_peering(1, 2)

    def test_unknown_as_queries_raise(self):
        g = ASGraph()
        with pytest.raises(TopologyError):
            g.neighbors(42)
        g.add_as(1)
        g.add_as(2)
        with pytest.raises(TopologyError):
            g.relationship(1, 2)


class TestFreeze:
    def test_freeze_blocks_mutation(self):
        g = ASGraph.from_links(p2c=[(1, 2)])
        assert g.frozen
        with pytest.raises(TopologyError, match="frozen"):
            g.add_p2c(2, 3)

    def test_freeze_rejects_provider_cycle(self):
        g = ASGraph()
        g.add_p2c(1, 2)
        g.add_p2c(2, 3)
        g.add_p2c(3, 1)  # 1 -> 2 -> 3 -> 1 in the hierarchy
        with pytest.raises(TopologyError, match="cycle"):
            g.freeze()

    def test_freeze_cycle_check_can_be_disabled(self):
        g = ASGraph()
        g.add_p2c(1, 2)
        g.add_p2c(2, 3)
        g.add_p2c(3, 1)
        g.freeze(require_acyclic_hierarchy=False)
        assert g.frozen

    def test_double_freeze_is_noop(self):
        g = ASGraph.from_links(p2c=[(1, 2)])
        assert g.freeze() is g


class TestQueries:
    def test_tier1_and_stubs(self, fig2a_graph):
        assert sorted(fig2a_graph.tier1_ases()) == [1, 2, 3]
        assert fig2a_graph.stub_ases() == [0]

    def test_degree(self, fig2a_graph):
        assert fig2a_graph.degree(0) == 3  # three providers
        assert fig2a_graph.degree(1) == 3  # one customer + two peers

    def test_connectivity(self, fig2a_graph):
        assert fig2a_graph.is_connected()
        g = ASGraph()
        g.add_p2c(1, 2)
        g.add_p2c(3, 4)
        assert not g.is_connected()

    def test_links_canonical_order(self, fig2a_graph):
        links = fig2a_graph.links()
        assert all(u < v for u, v, _rel in links)
        assert len(links) == 6

    def test_link_key(self):
        assert link_key(5, 3) == (3, 5) == link_key(3, 5)

    def test_reachable_set(self, chain_graph):
        assert chain_graph.subgraph_nodes_reachable_from(0) == {0, 1, 2}


class TestHypothesisInvariants:
    @given(as_graphs())
    def test_relationship_views_consistent(self, g):
        for u, v, rel in g.links():
            assert g.relationship(u, v) is rel
            from repro.topology.relationships import invert

            assert g.relationship(v, u) is invert(rel)

    @given(as_graphs())
    def test_degree_sums_to_twice_links(self, g):
        assert sum(g.degree(n) for n in g.nodes()) == 2 * g.num_links()

    @given(as_graphs())
    def test_customer_provider_lists_are_duals(self, g):
        for n in g.nodes():
            for c in g.customers(n):
                assert n in g.providers(c)
            for p in g.providers(n):
                assert n in g.customers(p)

    @given(as_graphs())
    def test_generated_graphs_connected(self, g):
        # Every node > 0 has a provider below it, so connectivity holds.
        assert g.is_connected()
