"""The CSR adjacency view frozen graphs expose for the array backend."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.asgraph import ASGraph
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.relationships import Relationship


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=150, seed=11))


class TestCsr:
    def test_requires_frozen(self):
        g = ASGraph()
        g.add_p2c(1, 0)
        with pytest.raises(TopologyError, match="freeze"):
            g.csr()

    def test_cached_per_graph(self, graph):
        assert graph.csr() is graph.csr()

    def test_index_is_ascending_asn_order(self, graph):
        csr = graph.csr()
        assert np.all(np.diff(csr.asns) > 0)
        assert all(csr.index[int(a)] == i for i, a in enumerate(csr.asns))
        assert csr.n_nodes == len(graph)

    def test_per_class_rows_match_graph(self, graph):
        csr = graph.csr()
        asns = csr.asns
        for i in range(csr.n_nodes):
            asn = int(asns[i])
            lo, hi = csr.cust_indptr[i], csr.cust_indptr[i + 1]
            assert [int(asns[j]) for j in csr.cust_indices[lo:hi]] == graph.customers(asn)
            lo, hi = csr.prov_indptr[i], csr.prov_indptr[i + 1]
            assert [int(asns[j]) for j in csr.prov_indices[lo:hi]] == graph.providers(asn)
            lo, hi = csr.peer_indptr[i], csr.peer_indptr[i + 1]
            assert [int(asns[j]) for j in csr.peer_indices[lo:hi]] == graph.peers(asn)

    def test_combined_rows_carry_relationships(self, graph):
        csr = graph.csr()
        asns = csr.asns
        for i in (0, csr.n_nodes // 2, csr.n_nodes - 1):
            nbrs, rels = csr.neighbors_of(i)
            seen = {
                int(asns[j]): Relationship(int(r)) for j, r in zip(nbrs, rels)
            }
            assert seen == graph.neighbors(int(asns[i]))

    def test_row_vectors_align_with_indices(self, graph):
        csr = graph.csr()
        assert len(csr.cust_rows) == len(csr.cust_indices)
        expect = np.repeat(
            np.arange(csr.n_nodes), np.diff(csr.cust_indptr)
        )
        assert np.array_equal(csr.cust_rows, expect)

    def test_edge_counts_consistent(self, graph):
        csr = graph.csr()
        assert len(csr.cust_indices) == len(csr.prov_indices)
        assert len(csr.peer_indices) % 2 == 0
        total = len(csr.cust_indices) + len(csr.prov_indices) + len(csr.peer_indices)
        assert total == len(csr.nbr_indices) == 2 * graph.num_links()
