"""Tests for the derived-topology helpers (``repro.topology.dynamics``)."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.asgraph import ASGraph
from repro.topology.dynamics import with_link, without_link
from repro.topology.relationships import Relationship


def _link_set(g: ASGraph) -> set[tuple[int, int, Relationship]]:
    return set(g.links())


class TestWithoutLink:
    def test_removes_exactly_one_link(self, fig2a_graph):
        g = without_link(fig2a_graph, 2, 3)
        assert not g.are_adjacent(2, 3)
        assert _link_set(g) == _link_set(fig2a_graph) - {
            (2, 3, fig2a_graph.relationship(2, 3))
        }

    def test_preserves_node_set_even_when_isolating(self):
        g0 = ASGraph.from_links(p2c=[(1, 0)])
        g = without_link(g0, 0, 1)
        assert sorted(g.nodes()) == [0, 1]
        assert g.degree(0) == 0

    def test_preserves_relationship_orientation(self, fig2a_graph):
        """Regression: ``links()`` orders endpoints by ASN, so a p2c link
        whose provider has the higher ASN is reported as PROVIDER — the
        copy must not degrade it to a peering."""
        # In fig2a, 1/2/3 are providers of 0; links() reports (0, 1,
        # PROVIDER) etc.  Removing the unrelated peering must keep them p2c.
        g = without_link(fig2a_graph, 2, 3)
        for provider in (1, 2, 3):
            assert g.relationship(0, provider) is Relationship.PROVIDER
            assert g.relationship(provider, 0) is Relationship.CUSTOMER

    def test_missing_link_rejected(self, fig2a_graph):
        with pytest.raises(TopologyError, match="no link"):
            without_link(fig2a_graph, 0, 99)

    def test_original_untouched(self, fig2a_graph):
        before = _link_set(fig2a_graph)
        without_link(fig2a_graph, 2, 3)
        assert _link_set(fig2a_graph) == before


class TestWithLink:
    def test_round_trip_restores_graph(self, fig2a_graph):
        for u, v, _ in list(fig2a_graph.links()):
            rel = fig2a_graph.relationship(u, v)
            again = with_link(without_link(fig2a_graph, u, v), u, v, rel)
            assert _link_set(again) == _link_set(fig2a_graph), (u, v)

    def test_rel_of_v_customer_makes_u_provider(self, fig2a_graph):
        g = without_link(fig2a_graph, 1, 0)
        g2 = with_link(g, 1, 0, Relationship.CUSTOMER)  # 0 is 1's customer
        assert g2.relationship(1, 0) is Relationship.CUSTOMER

    def test_rel_of_v_provider_makes_v_provider(self, fig2a_graph):
        g = without_link(fig2a_graph, 1, 0)
        g2 = with_link(g, 0, 1, Relationship.PROVIDER)  # 1 is 0's provider
        assert g2.relationship(0, 1) is Relationship.PROVIDER

    def test_peer_addition(self, chain_graph):
        g = with_link(chain_graph, 0, 2, Relationship.PEER)
        assert g.relationship(0, 2) is Relationship.PEER

    def test_unknown_endpoint_rejected(self, fig2a_graph):
        with pytest.raises(TopologyError, match="cannot add ASes"):
            with_link(fig2a_graph, 0, 99, Relationship.PEER)

    def test_duplicate_link_rejected(self, fig2a_graph):
        with pytest.raises(TopologyError, match="already exists"):
            with_link(fig2a_graph, 1, 2, Relationship.PEER)

    def test_provider_cycle_rejected(self, chain_graph):
        # 0 <- 1 <- 2; making 0 a provider of 2 closes a customer cycle.
        with pytest.raises(TopologyError):
            with_link(chain_graph, 2, 0, Relationship.PROVIDER)

    def test_synthetic_round_trip(self, small_internet):
        links = sorted((u, v) for u, v, _ in small_internet.links())
        for u, v in links[:: max(1, len(links) // 8)]:
            rel = small_internet.relationship(u, v)
            again = with_link(without_link(small_internet, u, v), u, v, rel)
            assert _link_set(again) == _link_set(small_internet), (u, v)
