"""Tests for the CAIDA serial-1 loader/serializer."""

import pytest
from hypothesis import given

from repro.errors import TopologyError
from repro.topology.loader import dumps_caida, load_caida, loads_caida, save_caida
from repro.topology.relationships import Relationship

from ..conftest import as_graphs

SAMPLE = """\
# inferred AS relationships
# provider|customer|-1, peer|peer|0
701|7018|0
701|9|-1
7018|9|0
"""


class TestParse:
    def test_basic(self):
        g = loads_caida(SAMPLE)
        assert g.relationship(701, 9) is Relationship.CUSTOMER
        assert g.relationship(9, 701) is Relationship.PROVIDER
        assert g.relationship(701, 7018) is Relationship.PEER
        assert g.frozen

    def test_comments_and_blank_lines_ignored(self):
        g = loads_caida("\n# x\n\n1|2|0\n")
        assert g.num_links() == 1

    def test_freeze_optional(self):
        g = loads_caida("1|2|-1", freeze=False)
        assert not g.frozen

    @pytest.mark.parametrize(
        "line, match",
        [
            ("1|2", "expected"),
            ("a|2|0", "non-integer"),
            ("1|2|7", "unknown relationship"),
        ],
    )
    def test_malformed(self, line, match):
        with pytest.raises(TopologyError, match=match):
            loads_caida(line)

    def test_error_reports_line_number(self):
        with pytest.raises(TopologyError, match="line 3"):
            loads_caida("1|2|0\n2|3|0\nbroken\n")


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path, fig2a_graph):
        path = tmp_path / "topo.txt"
        save_caida(fig2a_graph, path, header="fig2a")
        g2 = load_caida(path)
        assert g2.links() == fig2a_graph.links()
        assert path.read_text().startswith("# fig2a")

    @given(as_graphs())
    def test_dumps_loads_identity(self, g):
        assert loads_caida(dumps_caida(g)).links() == g.links()

    def test_dump_writes_provider_first(self, chain_graph):
        text = dumps_caida(chain_graph)
        assert "1|0|-1" in text
        assert "2|1|-1" in text
