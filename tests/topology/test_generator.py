"""Tests for the synthetic Internet generator."""

import pytest

from repro.errors import ConfigError
from repro.topology.generator import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    TopologyConfig,
    generate_topology,
)
from repro.topology.stats import topology_stats


class TestValidation:
    def test_too_few_tier1(self):
        with pytest.raises(ConfigError):
            TopologyConfig(n_tier1=1).validate()

    def test_n_ases_too_small(self):
        with pytest.raises(ConfigError):
            TopologyConfig(n_ases=5, n_tier1=10).validate()

    @pytest.mark.parametrize("frac", [0.0, 1.0, -0.1])
    def test_bad_transit_fraction(self, frac):
        with pytest.raises(ConfigError):
            TopologyConfig(transit_fraction=frac).validate()

    def test_bad_peering_fraction(self):
        with pytest.raises(ConfigError):
            TopologyConfig(peering_fraction=1.0).validate()

    def test_bad_max_providers(self):
        with pytest.raises(ConfigError):
            TopologyConfig(max_providers=0).validate()


class TestStructure:
    def test_deterministic_for_seed(self):
        a = generate_topology(TopologyConfig(n_ases=200, seed=5))
        b = generate_topology(TopologyConfig(n_ases=200, seed=5))
        assert a.links() == b.links()

    def test_different_seeds_differ(self):
        a = generate_topology(TopologyConfig(n_ases=200, seed=5))
        b = generate_topology(TopologyConfig(n_ases=200, seed=6))
        assert a.links() != b.links()

    def test_connected_and_frozen(self, small_internet):
        assert small_internet.frozen
        assert small_internet.is_connected()

    def test_tier1_clique_of_peers(self):
        cfg = TopologyConfig(n_ases=200, n_tier1=6)
        g = generate_topology(cfg)
        for i in range(6):
            assert not g.providers(i)
            for j in range(i + 1, 6):
                from repro.topology.relationships import Relationship

                assert g.relationship(i, j) is Relationship.PEER

    def test_every_non_tier1_has_provider(self, small_internet):
        t1 = set(small_internet.tier1_ases())
        for n in small_internet.nodes():
            if n not in t1:
                assert small_internet.providers(n), f"AS {n} has no provider"


class TestTableOneFidelity:
    """The generator must match the paper's Table-I relationship mix."""

    @pytest.mark.parametrize("n", [300, 1000, 2000])
    def test_relationship_mix(self, n):
        stats = topology_stats(generate_topology(TopologyConfig(n_ases=n)))
        assert stats.p2c_fraction == pytest.approx(0.69, abs=0.03)
        assert stats.peering_fraction == pytest.approx(0.31, abs=0.03)

    def test_most_ases_multihomed(self, small_internet):
        # Section II-B: "most of ASes are able to benefit from
        # multi-neighbor forwarding".
        stats = topology_stats(small_internet)
        assert stats.multihomed_fraction > 0.75

    def test_paper_scale_config_declared(self):
        assert PAPER_SCALE.n_ases == 44_340
        assert DEFAULT_SCALE.n_ases < PAPER_SCALE.n_ases
