"""Tests for the business-relationship algebra (paper Eq. 1-3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology.relationships import (
    Relationship,
    export_allowed,
    invert,
    is_valley_free,
    may_transit,
)

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


class TestInvert:
    def test_customer_provider_are_mutual(self):
        assert invert(C) is R
        assert invert(R) is C

    def test_peer_is_symmetric(self):
        assert invert(P) is P

    @given(st.sampled_from(list(Relationship)))
    def test_involution(self, rel):
        assert invert(invert(rel)) is rel


class TestSelectionOrder:
    def test_customer_preferred_over_peer_over_provider(self):
        # The integer order *is* the route-selection preference order.
        assert C < P < R

    def test_symbols_distinct(self):
        assert len({r.symbol for r in Relationship}) == 3


class TestMayTransit:
    """Eq. 3: transit iff upstream is a customer or downstream is one."""

    @pytest.mark.parametrize(
        "up, down, allowed",
        [
            (C, C, True),
            (C, P, True),
            (C, R, True),
            (P, C, True),
            (R, C, True),
            (P, P, False),
            (P, R, False),
            (R, P, False),
            (R, R, False),
        ],
    )
    def test_truth_table(self, up, down, allowed):
        assert may_transit(up, down) is allowed

    def test_fig2a_peer_transit_forbidden(self):
        # AS 2 receiving from peer AS 1 must not forward toward peer AS 3.
        assert not may_transit(P, P)


class TestValleyFree:
    def test_empty_and_single_step(self):
        assert is_valley_free([])
        for rel in Relationship:
            assert is_valley_free([rel])

    def test_up_then_down(self):
        assert is_valley_free([R, R, C, C])

    def test_up_peer_down(self):
        assert is_valley_free([R, P, C])

    def test_valley_rejected(self):
        # down then up = a valley.
        assert not is_valley_free([C, R])

    def test_two_peer_steps_rejected(self):
        assert not is_valley_free([P, P])

    def test_peer_then_up_rejected(self):
        assert not is_valley_free([P, R])

    @given(st.lists(st.sampled_from(list(Relationship)), max_size=8))
    def test_equivalence_with_per_hop_rule(self, steps):
        """A path is valley-free iff every interior hop satisfies Eq. 3.

        The interior hop at position i sees upstream = invert(steps[i-1])
        (how the previous AS looks from here) and downstream = steps[i].
        """
        per_hop = all(
            may_transit(invert(steps[i - 1]), steps[i]) for i in range(1, len(steps))
        )
        assert is_valley_free(steps) == per_hop


class TestExportPolicy:
    def test_customer_routes_export_everywhere(self):
        for to in Relationship:
            assert export_allowed(C, to)

    def test_local_routes_export_everywhere(self):
        for to in Relationship:
            assert export_allowed(None, to)

    @pytest.mark.parametrize("learned", [P, R])
    def test_peer_provider_routes_only_to_customers(self, learned):
        assert export_allowed(learned, C)
        assert not export_allowed(learned, P)
        assert not export_allowed(learned, R)
