"""Batched event application: equivalence, barriers, checkpoints.

``ServiceConfig.batch_max`` coalesces consecutive arrival/retirement
ticks into one engine epoch.  The properties proven here:

* the flush schedule is a pure function of the event sequence — how the
  caller chunks ``drain`` (and when it checkpoints) never changes it;
* killing a session *mid-batch* and restoring replays byte-identically
  to an uninterrupted run at the same ``batch_max`` (the buffered ticks
  travel inside the version-3 checkpoint);
* barriers (flaps, jitter, fed events, verify-cadence ticks) always
  flush, so link events are never applied stale;
* ``batch_max=1`` (the default) stays on the unbatched path: zero
  batching counters, no ``batch_flush`` trace events, and state
  identical to earlier releases.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.service import (
    BatchTick,
    FlowArrival,
    ServiceConfig,
    ServiceSession,
    ServiceTick,
)
from repro.service.stream import merge_effects
from repro.telemetry.trace import validate_events
from repro.topology.generator import TopologyConfig

TOPO = TopologyConfig(n_ases=70, seed=6)


def _cfg(**overrides):
    base = dict(
        seed=29,
        arrival_rate=60.0,
        mean_lifetime_events=8.0,
        p_link_event=0.08,
        p_capacity_event=0.08,
        record_capacity=24,
    )
    base.update(overrides)
    return ServiceConfig(**base)


class TestConfig:
    def test_batch_max_must_be_positive(self):
        with pytest.raises(ConfigError):
            ServiceConfig(seed=1, batch_max=0).validate()

    def test_default_is_unbatched(self):
        assert ServiceConfig(seed=1).batch_max == 1


class TestMergeEffects:
    def test_single_effect_returned_verbatim(self):
        s = ServiceSession(_cfg(), topology=TOPO)
        tick = ServiceTick(retire=(), event=None)
        effect = tick.apply(s.engine)
        assert merge_effects([effect]) is effect

    def test_batch_tick_counts_and_kind(self):
        ticks = tuple(ServiceTick(retire=(), event=None) for _ in range(3))
        batch = BatchTick(ticks=ticks)
        assert batch.kind == "batch"
        assert batch.events == 3


class TestDrainChunkInvariance:
    """The flush schedule must not depend on how drain() is chunked."""

    N = 48

    @pytest.fixture(scope="class")
    def one_shot(self):
        s = ServiceSession(_cfg(batch_max=8), topology=TOPO)
        s.drain(self.N)
        return s.checkpoint_json()

    @settings(max_examples=10, deadline=None)
    @given(cuts=st.lists(st.integers(min_value=1, max_value=47), max_size=4))
    def test_any_chunking_matches_one_shot(self, one_shot, cuts):
        s = ServiceSession(_cfg(batch_max=8), topology=TOPO)
        done = 0
        for cut in sorted(set(cuts)):
            s.drain(cut - done)
            done = cut
        s.drain(self.N - done)
        assert s.checkpoint_json() == one_shot


class TestMidBatchKillAndRestore:
    """Kill anywhere — including with ticks buffered — and replay."""

    N = 40

    @pytest.fixture(scope="class", params=["dict", "array"])
    def reference(self, request):
        cfg = _cfg(batch_max=16, p_link_event=0.02, p_capacity_event=0.02)
        s = ServiceSession(
            cfg, topology=TOPO, backend=request.param, telemetry=True
        )
        checkpoints = []
        for _ in range(self.N):
            checkpoints.append(s.checkpoint())
            s.step()
        return {
            "backend": request.param,
            "checkpoints": checkpoints,
            "payload": s.result().to_json(include_provenance=False),
            "counters": dict(s.telemetry.counters),
            "pending_seen": max(len(c["session"]["pending"]) for c in checkpoints),
        }

    def test_some_checkpoint_is_mid_batch(self, reference):
        # The fixture stream must actually exercise non-empty buffers,
        # or the kill tests below prove nothing about them.
        assert reference["pending_seen"] > 0

    @settings(max_examples=10, deadline=None)
    @given(kill=st.integers(min_value=0, max_value=N - 1))
    def test_restore_replays_byte_identically(self, reference, kill):
        restored = ServiceSession.restore(reference["checkpoints"][kill])
        restored.drain(self.N - kill)
        assert (
            restored.result().to_json(include_provenance=False)
            == reference["payload"]
        )
        assert dict(restored.telemetry.counters) == reference["counters"]

    def test_checkpoints_are_version_3(self, reference):
        assert all(c["version"] == 3 for c in reference["checkpoints"])


class TestPreV3Documents:
    def test_v2_document_without_pending_restores(self):
        s = ServiceSession(_cfg(), topology=TOPO)
        s.drain(10)
        state = json.loads(s.checkpoint_json())
        assert state["session"]["pending"] == []  # batch_max=1 never buffers
        state["version"] = 2
        del state["session"]["pending"]
        restored = ServiceSession.restore(state)
        assert restored._pending == []
        restored.drain(5)  # and it keeps running

    def test_unknown_pending_kind_rejected(self):
        s = ServiceSession(_cfg(batch_max=4), topology=TOPO)
        s.drain(10)
        state = json.loads(s.checkpoint_json())
        state["session"]["pending"] = [[[], "teleport", {}]]
        with pytest.raises(ConfigError, match="pending event kind"):
            ServiceSession.restore(state)


class TestBarriers:
    def test_fed_event_flushes_the_buffer(self):
        s = ServiceSession(_cfg(batch_max=64, p_link_event=0.0,
                                p_capacity_event=0.0), topology=TOPO)
        s.drain(5)
        assert len(s._pending) == 5
        nodes = sorted(s.engine.routing.graph.nodes())
        s.feed(FlowArrival(src=nodes[0], dst=nodes[-1], lifetime=5))
        s.step()
        assert s._pending == []

    def test_verify_cadence_flushes(self):
        s = ServiceSession(
            _cfg(batch_max=64, verify_every=4, p_link_event=0.0,
                 p_capacity_event=0.0),
            topology=TOPO,
        )
        for tick in range(1, 9):
            s.step()
            if tick % 4 == 0:
                assert s._pending == []

    def test_buffer_never_exceeds_batch_max(self):
        s = ServiceSession(_cfg(batch_max=6), topology=TOPO)
        for _ in range(60):
            s.step()
            assert len(s._pending) < 6


class TestTelemetry:
    def test_batched_counters_and_trace(self):
        s = ServiceSession(_cfg(batch_max=8), topology=TOPO, telemetry=True)
        s.drain(64)
        counters = dict(s.telemetry.counters)
        assert counters["service.batched_events"] > 0
        assert counters["service.batch_solves"] > 0
        assert (
            counters["service.batched_events"]
            >= counters["service.batch_solves"]
        )
        flushes = [
            e
            for e in s.telemetry.trace_events()
            if e.get("kind") == "batch_flush"
        ]
        assert flushes
        assert validate_events(flushes) == []
        assert counters["service.batched_events"] == sum(
            e["batched"] for e in flushes
        )

    def test_unbatched_path_stays_silent(self):
        s = ServiceSession(_cfg(batch_max=1), topology=TOPO, telemetry=True)
        s.drain(64)
        counters = dict(s.telemetry.counters)
        assert "service.batched_events" not in counters
        assert "service.batch_solves" not in counters
        assert not any(
            e.get("kind") == "batch_flush" for e in s.telemetry.trace_events()
        )

    def test_drain_reports_events_per_sec_gauge(self):
        s = ServiceSession(_cfg(), topology=TOPO, telemetry=True)
        s.drain(8)
        assert s.telemetry.gauges["service.events_per_sec"] > 0


class TestBatchedFinalState:
    """Batching changes record granularity, never where the state lands."""

    @staticmethod
    def _effective_flows(s):
        """Engine flow ids with the buffered ticks applied on paper.

        Buffered arrivals take the ids the engine will assign at flush
        (``next_flow_id`` onward, in buffer order) — the same prediction
        the session's expiry bookkeeping relies on.
        """
        flows = set(s.engine._flows)
        next_id = s.engine.next_flow_id
        for tk in s._pending:
            flows -= set(tk.retire)
            if isinstance(tk.event, FlowArrival):
                flows.add(next_id)
                next_id += 1
        return flows

    def test_arrivals_retirements_and_flows_match_unbatched(self):
        runs = {}
        for batch_max in (1, 16):
            s = ServiceSession(_cfg(batch_max=batch_max), topology=TOPO)
            s.drain(300)
            runs[batch_max] = s
        a, b = runs[1], runs[16]
        assert a.arrivals_total == b.arrivals_total
        assert a.retired_total == b.retired_total
        assert sorted(a._expiry) == sorted(b._expiry)
        assert self._effective_flows(a) == self._effective_flows(b)
        assert a.engine.failed_links == b.engine.failed_links
