"""Sharded dirty-set re-convergence == the serial flap hot path.

With a persistent :class:`~repro.bgp.parallel.ParallelRoutingEngine`
attached, flap re-convergence shards the dirty destinations over the
worker pool.  Parallelism must stay a wall-clock knob: the determinism
payload and every ``bgp.*``/``scenario.*``/``service.*`` counter must be
identical to the serial path (worker snapshots absorb in submission
order).  ``parallel.*`` counters are excluded — they record *how* the
work ran, the one thing the two paths legitimately disagree on.
"""

import gc
import os

import pytest

from repro import telemetry as tm
from repro.bgp.parallel import ParallelRoutingEngine
from repro.errors import ConfigError
from repro.service import ServiceConfig, ServiceSession
from repro.telemetry import Telemetry
from repro.topology.generator import TopologyConfig

TOPO = TopologyConfig(n_ases=120, seed=3)
CFG = ServiceConfig(
    seed=11,
    arrival_rate=80.0,
    mean_lifetime_events=10.0,
    p_link_event=0.05,
    p_capacity_event=0.02,
    record_capacity=32,
    batch_max=8,
)
N_EVENTS = 250


@pytest.fixture(autouse=True)
def no_shm_leak():
    """Every test must leave /dev/shm exactly as it found it."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        yield
        return
    before = set(os.listdir("/dev/shm"))
    yield
    gc.collect()
    leaked = set(os.listdir("/dev/shm")) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _run(*, sharded: bool):
    t = Telemetry()
    tm.activate(t)
    try:
        s = ServiceSession(CFG, topology=TOPO, backend="array")
        if sharded:
            engine = ParallelRoutingEngine(
                s.engine.routing.graph, n_workers=4, persistent=True
            )
            s.attach_routing_engine(engine, shard_min=4)
        s.drain(N_EVENTS)
        payload = s.result().to_json(include_provenance=False)
        blob = s.checkpoint_json()
        s.close()
    finally:
        tm.activate(None)
    counters = {
        k: v
        for k, v in t.snapshot().counters.items()
        if not k.startswith("parallel.")
    }
    return payload, blob, counters, dict(t.snapshot().counters)


class TestShardedEqualsSerial:
    @pytest.fixture(scope="class")
    def runs(self):
        serial = _run(sharded=False)
        sharded = _run(sharded=True)
        return serial, sharded

    def test_payload_identical(self, runs):
        serial, sharded = runs
        assert sharded[0] == serial[0]

    def test_checkpoint_bytes_identical(self, runs):
        serial, sharded = runs
        assert sharded[1] == serial[1]

    def test_counters_identical_outside_parallel(self, runs):
        serial, sharded = runs
        assert sharded[2] == serial[2]

    def test_sharded_run_actually_used_the_pool(self, runs):
        _, sharded = runs
        raw = sharded[3]
        assert raw.get("parallel.pool_starts", 0) >= 1
        # rebind keeps the pool across flaps: reuses, not restarts.
        assert raw.get("parallel.pool_reuses", 0) >= 1

    def test_result_meta_reports_workers(self):
        s = ServiceSession(CFG, topology=TOPO, backend="array")
        engine = ParallelRoutingEngine(
            s.engine.routing.graph, n_workers=3, persistent=True
        )
        s.attach_routing_engine(engine, shard_min=4)
        try:
            assert s.result().meta["workers"] == 3
        finally:
            s.close()
        assert s.result().meta["workers"] == 1


class TestLifecycle:
    def test_close_is_idempotent_and_detaches(self):
        s = ServiceSession(CFG, topology=TOPO, backend="array")
        engine = ParallelRoutingEngine(
            s.engine.routing.graph, n_workers=2, persistent=True
        )
        s.attach_routing_engine(engine)
        assert s.routing_engine is engine
        s.close()
        assert s.routing_engine is None
        s.close()  # idempotent
        s.drain(5)  # session still usable on the serial path

    def test_context_manager_closes(self):
        with ServiceSession(CFG, topology=TOPO, backend="array") as s:
            engine = ParallelRoutingEngine(
                s.engine.routing.graph, n_workers=2, persistent=True
            )
            s.attach_routing_engine(engine)
            s.drain(60)
        assert s.routing_engine is None

    def test_shard_min_validated(self):
        s = ServiceSession(CFG, topology=TOPO, backend="array")
        with pytest.raises(ConfigError):
            s.attach_routing_engine(None, shard_min=0)


class TestRebind:
    def test_rebind_requires_frozen_graph(self):
        from repro.errors import TopologyError
        from repro.topology.asgraph import ASGraph
        from repro.topology.generator import generate_topology

        engine = ParallelRoutingEngine(generate_topology(TOPO), n_workers=2)
        mutable = ASGraph()
        mutable.add_p2c(1, 2)
        with pytest.raises(TopologyError):
            engine.rebind(mutable)

    def test_rebind_same_graph_is_noop(self):
        from repro.topology.generator import generate_topology

        g = generate_topology(TOPO)
        engine = ParallelRoutingEngine(g, n_workers=2, persistent=True)
        with engine:
            engine.compute_many(sorted(g.nodes())[:8])
            name = engine.segment_name
            engine.rebind(g)
            assert engine.segment_name == name  # segment untouched

    def test_rebind_drops_stale_segment(self):
        from repro.topology.generator import generate_topology

        g1 = generate_topology(TOPO)
        g2 = generate_topology(TOPO)  # equal content, distinct object
        engine = ParallelRoutingEngine(g1, n_workers=2, persistent=True)
        with engine:
            first = engine.compute_many(sorted(g1.nodes())[:8])
            engine.rebind(g2)
            assert engine.segment_name is None  # re-exported lazily
            again = engine.compute_many(sorted(g2.nodes())[:8])
            digest = lambda views: {  # noqa: E731 - local comparator
                d: [v.next_hop(x) for x in sorted(g1.nodes())]
                for d, v in views.items()
            }
            assert digest(first) == digest(again)
