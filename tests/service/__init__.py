"""Tests for the streaming service mode (repro.service)."""
