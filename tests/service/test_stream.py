"""The deterministic event stream: purity, tables, and the tick wrapper."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.service import (
    CapacityJitter,
    EventStream,
    FlowArrival,
    LinkFlap,
    ServiceConfig,
    ServiceTick,
)
from repro.topology.generator import TopologyConfig, generate_topology
from repro.traffic.matrix import content_provider_ranking, zipf_weights


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=80, seed=9))


@pytest.fixture(scope="module")
def stream(graph):
    return EventStream(graph, ServiceConfig(seed=13))


class TestPurity:
    def test_event_is_pure_function_of_index(self, stream):
        for i in (0, 1, 17, 500, 12345):
            assert stream.event_at(i) == stream.event_at(i)

    def test_two_streams_agree(self, graph):
        cfg = ServiceConfig(seed=13)
        a = EventStream(graph, cfg)
        b = EventStream(graph, cfg)
        assert [a.event_at(i) for i in range(50)] == [
            b.event_at(i) for i in range(50)
        ]

    def test_seed_changes_the_sequence(self, graph):
        a = EventStream(graph, ServiceConfig(seed=1))
        b = EventStream(graph, ServiceConfig(seed=2))
        assert [a.event_at(i) for i in range(30)] != [
            b.event_at(i) for i in range(30)
        ]

    def test_negative_index_rejected(self, stream):
        with pytest.raises(ConfigError):
            stream.event_at(-1)


class TestEventMix:
    def test_all_kinds_appear(self, graph):
        s = EventStream(
            graph,
            ServiceConfig(seed=3, p_link_event=0.3, p_capacity_event=0.3),
        )
        kinds = {s.event_at(i)[1].kind for i in range(200)}
        assert kinds == {"arrival", "link_flap", "capacity_jitter"}

    def test_dt_positive_and_lifetime_at_least_one(self, stream):
        for i in range(100):
            dt, ev = stream.event_at(i)
            assert dt > 0.0
            if isinstance(ev, FlowArrival):
                assert ev.lifetime >= 1
                assert ev.src != ev.dst

    def test_jitter_factor_in_band(self, graph):
        s = EventStream(
            graph, ServiceConfig(seed=5, p_capacity_event=0.5, p_link_event=0.0)
        )
        factors = [
            ev.factor
            for _, ev in (s.event_at(i) for i in range(200))
            if isinstance(ev, CapacityJitter)
        ]
        assert factors and all(0.25 <= f <= 1.0 for f in factors)


class TestSamplingTables:
    def test_zipf_sources_are_content_ranked(self, graph, stream):
        ranked = set(content_provider_ranking(graph))
        srcs = {
            ev.src
            for _, ev in (stream.event_at(i) for i in range(300))
            if isinstance(ev, FlowArrival)
        }
        assert srcs and srcs <= ranked

    def test_zipf_destinations_are_stubs(self, graph, stream):
        stubs = set(graph.stub_ases())
        dsts = {
            ev.dst
            for _, ev in (stream.event_at(i) for i in range(300))
            if isinstance(ev, FlowArrival)
        }
        assert dsts and dsts <= stubs

    def test_uniform_mode_samples_all_nodes(self, graph):
        s = EventStream(graph, ServiceConfig(seed=7, traffic="uniform"))
        nodes = set(graph.nodes())
        pairs = [
            (ev.src, ev.dst)
            for _, ev in (s.event_at(i) for i in range(300))
            if isinstance(ev, FlowArrival)
        ]
        assert pairs
        assert {s for s, _ in pairs} <= nodes
        assert {d for _, d in pairs} <= nodes

    def test_tiny_graph_rejected(self):
        from repro.topology.asgraph import ASGraph

        lone = ASGraph.from_links(p2c=[])
        with pytest.raises(ConfigError):
            EventStream(lone, ServiceConfig())


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        w = zipf_weights(10, 1.0)
        assert w.shape == (10,)
        assert np.isclose(w.sum(), 1.0)
        assert all(w[i] > w[i + 1] for i in range(9))

    def test_alpha_sharpens_the_head(self):
        flat = zipf_weights(20, 0.5)
        steep = zipf_weights(20, 2.0)
        assert steep[0] > flat[0]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            zipf_weights(0, 1.0)
        with pytest.raises(ConfigError):
            zipf_weights(5, 0.0)


class TestServiceTick:
    def test_kind_of_pure_retirement_tick(self):
        assert ServiceTick(retire=(1, 2)).kind == "retire"

    def test_kind_follows_the_stream_event(self):
        tick = ServiceTick(event=FlowArrival(src=1, dst=2, lifetime=3))
        assert tick.kind == "arrival"
        tick = ServiceTick(
            event=LinkFlap(pick=0.5, recover_draw=0.9, max_failed=4)
        )
        assert tick.kind == "link_flap"
