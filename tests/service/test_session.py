"""ServiceSession behavior: the event loop, bounded memory, the envelope."""

import json

import pytest

from repro.errors import ConfigError
from repro.service import (
    FlowArrival,
    ServiceConfig,
    ServiceSession,
)
from repro.topology.generator import TopologyConfig

TOPO = TopologyConfig(n_ases=70, seed=4)
CFG = ServiceConfig(
    seed=21,
    arrival_rate=60.0,
    mean_lifetime_events=8.0,
    p_link_event=0.06,
    p_capacity_event=0.06,
    record_capacity=16,
)


@pytest.fixture(scope="module")
def session():
    s = ServiceSession(CFG, topology=TOPO, telemetry=True)
    s.drain(40)
    return s


class TestEventLoop:
    def test_counts_add_up(self, session):
        assert session.events_processed == 40
        assert session.arrivals_total > 0
        assert session.retired_total > 0
        # Live flows = arrivals that have not yet retired.
        assert (
            session.engine.n_flows
            == session.arrivals_total - session.retired_total
        )

    def test_clock_advances_monotonically(self, session):
        assert session.clock_s > 0.0

    def test_drain_report(self):
        s = ServiceSession(CFG, topology=TOPO)
        report = s.drain(10)
        assert report.events == 10
        assert report.arrivals >= 0
        assert report.clock_s == s.clock_s
        assert report.last_record is s.engine.records[-1]

    def test_drain_negative_rejected(self, session):
        with pytest.raises(ConfigError):
            session.drain(-1)

    def test_step_returns_the_newest_record(self):
        s = ServiceSession(CFG, topology=TOPO)
        rec = s.step()
        assert rec is s.engine.records[-1]
        assert rec.index == 1  # epoch 0 is the bootstrap pass


class TestBoundedMemory:
    def test_record_ring_capacity_holds(self, session):
        assert len(session.engine.records) == CFG.record_capacity

    def test_flow_population_turns_over(self, session):
        # Short lifetimes: the population cannot grow monotonically.
        assert session.retired_total >= 5
        assert session.engine.n_flows < session.arrivals_total

    def test_unbounded_ring_when_unset(self):
        cfg = ServiceConfig(seed=21, record_capacity=None)
        s = ServiceSession(cfg, topology=TOPO)
        s.drain(12)
        assert len(s.engine.records) == 13  # bootstrap + 12 events


class TestFeed:
    def test_fed_event_runs_before_the_stream(self):
        s = ServiceSession(CFG, topology=TOPO)
        nodes = sorted(s.engine.graph.nodes())
        s.feed(FlowArrival(src=nodes[0], dst=nodes[-1], lifetime=5))
        rec = s.step()
        assert rec.kind == "arrival"
        assert s.engine.n_flows == 1
        # The generated stream was not consumed by the fed event.
        assert s._stream_index == 0

    def test_negative_dt_rejected(self):
        s = ServiceSession(CFG, topology=TOPO)
        with pytest.raises(ConfigError):
            s.feed(FlowArrival(src=1, dst=2, lifetime=1), dt=-0.5)


class TestSnapshot:
    def test_snapshot_gauges(self, session):
        snap = session.snapshot()
        assert snap["events"] == 40
        assert snap["flows_live"] == session.engine.n_flows
        assert snap["arrivals_total"] == session.arrivals_total
        assert isinstance(snap["telemetry"], dict)
        assert snap["telemetry"]["counters"]

    def test_snapshot_without_telemetry(self):
        s = ServiceSession(CFG, topology=TOPO)
        s.drain(3)
        assert s.snapshot()["telemetry"] is None


class TestResultEnvelope:
    def test_envelope_shape(self, session):
        result = session.result()
        assert result.name == "service"
        assert "live flows" in result.series
        assert "total throughput (Gbps)" in result.series
        assert result.meta["events"] == 40
        assert result.raw is session

    def test_provenance_split(self, session):
        payload = json.loads(session.result().to_json(include_provenance=False))
        assert "backend" not in payload["meta"]
        assert "scenario_engine" not in payload["meta"]
        assert payload["meta"]["events"] == 40

    def test_same_config_same_payload(self):
        a = ServiceSession(CFG, topology=TOPO)
        b = ServiceSession(CFG, topology=TOPO)
        a.drain(25)
        b.drain(25)
        assert a.result().to_json(include_provenance=False) == b.result().to_json(
            include_provenance=False
        )

    def test_cross_backend_payload_identical(self):
        d = ServiceSession(CFG, topology=TOPO, backend="dict")
        a = ServiceSession(CFG, topology=TOPO, backend="array")
        d.drain(25)
        a.drain(25)
        assert d.result().to_json(include_provenance=False) == a.result().to_json(
            include_provenance=False
        )


class TestConfigValidation:
    def test_bad_probabilities_rejected(self):
        with pytest.raises(ConfigError):
            ServiceConfig(p_link_event=0.6, p_capacity_event=0.5).validate()

    def test_bad_traffic_rejected(self):
        with pytest.raises(ConfigError):
            ServiceConfig(traffic="bursty").validate()

    def test_bad_record_capacity_rejected(self):
        with pytest.raises(ConfigError):
            ServiceConfig(record_capacity=0).validate()

    def test_verify_every_runs(self):
        cfg = ServiceConfig(
            seed=21,
            arrival_rate=60.0,
            mean_lifetime_events=8.0,
            verify_every=5,
        )
        s = ServiceSession(cfg, topology=TOPO)
        s.drain(10)  # the verified epochs must not throw
        assert s.events_processed == 10
