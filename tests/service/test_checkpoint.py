"""Checkpoint/restore: kill at any index, replay byte-identically.

The module runs one uninterrupted reference stream, capturing a
checkpoint *at every event index* along the way.  Hypothesis then picks
kill points; each restored session replays the remaining events and must
match the reference on the determinism payload (``to_json`` without
provenance) **and** on every telemetry counter — the streaming service's
headline guarantee.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.service import FlowArrival, ServiceConfig, ServiceSession
from repro.service.checkpoint import CHECKPOINT_FORMAT, CHECKPOINT_VERSION
from repro.topology.generator import TopologyConfig

TOPO = TopologyConfig(n_ases=70, seed=6)
CFG = ServiceConfig(
    seed=29,
    arrival_rate=60.0,
    mean_lifetime_events=8.0,
    p_link_event=0.08,
    p_capacity_event=0.08,
    record_capacity=24,
)
N_EVENTS = 36


@pytest.fixture(scope="module")
def reference():
    """Uninterrupted run + a checkpoint taken before every event."""
    s = ServiceSession(CFG, topology=TOPO, telemetry=True)
    checkpoints = []
    for _ in range(N_EVENTS):
        checkpoints.append(s.checkpoint())
        s.step()
    return {
        "session": s,
        "checkpoints": checkpoints,
        "payload": s.result().to_json(include_provenance=False),
        "counters": dict(s.telemetry.counters),
    }


class TestKillAndRestore:
    @settings(max_examples=12, deadline=None)
    @given(kill=st.integers(min_value=0, max_value=N_EVENTS - 1))
    def test_restore_replays_byte_identically(self, reference, kill):
        restored = ServiceSession.restore(reference["checkpoints"][kill])
        restored.drain(N_EVENTS - kill)
        assert (
            restored.result().to_json(include_provenance=False)
            == reference["payload"]
        )
        assert restored.telemetry is not None
        assert dict(restored.telemetry.counters) == reference["counters"]

    def test_restore_at_zero_replays_the_whole_stream(self, reference):
        restored = ServiceSession.restore(reference["checkpoints"][0])
        restored.drain(N_EVENTS)
        assert (
            restored.result().to_json(include_provenance=False)
            == reference["payload"]
        )

    def test_cross_backend_restore(self, reference):
        restored = ServiceSession.restore(
            reference["checkpoints"][N_EVENTS // 2], backend="array"
        )
        restored.drain(N_EVENTS - N_EVENTS // 2)
        assert restored.engine.routing.backend == "array"
        assert (
            restored.result().to_json(include_provenance=False)
            == reference["payload"]
        )


class TestCheckpointBytes:
    def test_same_state_same_bytes(self, reference):
        s = reference["session"]
        assert s.checkpoint_json() == s.checkpoint_json()

    def test_restored_session_checkpoints_identically(self, reference):
        blob = reference["session"].checkpoint_json()
        restored = ServiceSession.restore(json.loads(blob))
        assert restored.checkpoint_json() == blob

    def test_format_and_version_stamped(self, reference):
        state = reference["checkpoints"][0]
        assert state["format"] == CHECKPOINT_FORMAT
        assert state["version"] == CHECKPOINT_VERSION

    def test_json_round_trip_through_file(self, reference, tmp_path):
        path = tmp_path / "service.ckpt.json"
        reference["session"].save_checkpoint(str(path))
        restored = ServiceSession.restore(str(path))
        assert restored.events_processed == N_EVENTS
        assert (
            restored.result().to_json(include_provenance=False)
            == reference["payload"]
        )


class TestPublishedSchema:
    def test_checkpoint_conforms_to_docs_schema(self, reference):
        jsonschema = pytest.importorskip("jsonschema")
        import pathlib

        schema_path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "docs"
            / "checkpoint.schema.json"
        )
        schema = json.loads(schema_path.read_text(encoding="utf-8"))
        blob = json.loads(reference["session"].checkpoint_json())
        jsonschema.validate(blob, schema)


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigError):
            ServiceSession.restore({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self, reference):
        state = dict(reference["checkpoints"][0])
        state["version"] = 999
        with pytest.raises(ConfigError):
            ServiceSession.restore(state)

    def test_unknown_config_key_rejected(self, reference):
        state = json.loads(json.dumps(reference["checkpoints"][0]))
        state["config"]["no_such_knob"] = 1
        with pytest.raises(ConfigError):
            ServiceSession.restore(state)


class TestFedEvents:
    def test_pending_fed_events_survive_restore(self):
        s = ServiceSession(CFG, topology=TOPO)
        s.drain(5)
        nodes = sorted(s.engine.graph.nodes())
        s.feed(FlowArrival(src=nodes[0], dst=nodes[-1], lifetime=9), dt=0.25)
        blob = s.checkpoint()
        s.drain(6)

        restored = ServiceSession.restore(blob)
        restored.drain(6)
        assert restored.result().to_json(
            include_provenance=False
        ) == s.result().to_json(include_provenance=False)


class TestDetectorState:
    """Measurement-driven detector windows are checkpointed state."""

    DET_CFG = ServiceConfig(
        seed=29,
        arrival_rate=60.0,
        mean_lifetime_events=8.0,
        p_link_event=0.08,
        p_capacity_event=0.08,
        record_capacity=24,
        detector="changepoint",
    )

    def test_oracle_checkpoint_stores_null_rtt(self, reference):
        assert reference["checkpoints"][0]["engine"]["rtt"] is None

    def test_detector_checkpoint_stores_series_rows(self):
        s = ServiceSession(self.DET_CFG, topology=TOPO)
        s.drain(20)
        rtt = s.checkpoint()["engine"]["rtt"]
        assert rtt is not None
        assert rtt["samples_total"] > 0
        assert len(rtt["series"]) == s.engine._rtt.series_count > 0
        for row in rtt["series"]:
            assert len(row) == 8
            fid, base, count, last, streak, baseline, values, epochs = row
            assert len(values) == len(epochs)
            assert count >= base + len(values)

    def test_restore_replays_detector_state_byte_identically(self):
        s = ServiceSession(self.DET_CFG, topology=TOPO, telemetry=True)
        s.drain(20)
        blob = s.checkpoint()
        s.drain(16)

        restored = ServiceSession.restore(blob)
        restored.drain(16)
        assert restored.result().to_json(
            include_provenance=False
        ) == s.result().to_json(include_provenance=False)
        assert restored.checkpoint_json() == s.checkpoint_json()
        assert restored.telemetry is not None
        assert dict(restored.telemetry.counters) == dict(s.telemetry.counters)

    def test_detector_checkpoint_conforms_to_docs_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        import pathlib

        schema_path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "docs"
            / "checkpoint.schema.json"
        )
        schema = json.loads(schema_path.read_text(encoding="utf-8"))
        s = ServiceSession(self.DET_CFG, topology=TOPO)
        s.drain(12)
        jsonschema.validate(json.loads(s.checkpoint_json()), schema)

    def test_version_one_document_without_rtt_still_restores(self, reference):
        state = json.loads(json.dumps(reference["checkpoints"][5]))
        state["version"] = 1
        del state["engine"]["rtt"]
        restored = ServiceSession.restore(state)
        assert restored.events_processed == 5


class TestTelemetryPolicy:
    def test_counterless_checkpoint_restores_without_telemetry(self):
        s = ServiceSession(CFG, topology=TOPO)  # no telemetry attached
        s.drain(8)
        restored = ServiceSession.restore(s.checkpoint())
        assert restored.telemetry is None

    def test_explicit_false_overrides_counters(self, reference):
        restored = ServiceSession.restore(
            reference["checkpoints"][3], telemetry=False
        )
        assert restored.telemetry is None
