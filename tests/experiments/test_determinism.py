"""Cross-backend determinism: the byte-identical guarantee, end to end.

The routing backends already cross-validate query by query
(``tests/bgp/test_array_routing.py``); this suite asserts the stronger,
user-visible property the parallel redesign promised: a **full experiment
run** produces byte-identical ``ExperimentResult.to_json()`` no matter
which backend (dict vs array) computed the routes, and repeated runs on
one backend are byte-identical too.

``SharedContext`` memoizes per (scale, backend), so each invocation below
clears the memo to force a genuinely fresh topology + cache + engine.
"""

import pytest

from repro.experiments import fig5, fig7, fig8
from repro.experiments.common import SharedContext


@pytest.fixture(autouse=True)
def fresh_contexts():
    """Isolate every test from previously memoized contexts."""
    saved = dict(SharedContext._cache)
    SharedContext._cache.clear()
    yield
    SharedContext._cache.clear()
    SharedContext._cache.update(saved)


def _run_json(mod, backend: str, workers: int) -> str:
    SharedContext._cache.clear()
    result = mod.run("test", backend=backend, workers=workers)
    # Provenance meta (the backend label, cache hit counters) records how
    # the result was computed and legitimately differs across backends;
    # everything else must be byte-identical.
    return result.to_json(include_provenance=False)


class TestCrossBackendDeterminism:
    @pytest.mark.parametrize("mod", [fig7, fig8], ids=lambda m: m.__name__)
    def test_serial_dict_equals_parallel_array(self, mod):
        serial = _run_json(mod, "dict", 1)
        parallel = _run_json(mod, "array", 2)
        assert serial == parallel

    def test_fig5_dict_equals_array(self):
        # fig5 is the heaviest figure at test scale; serial array keeps
        # the cross-substrate assertion without the fork overhead (the
        # worker-count invariance is covered by tests/bgp/test_parallel).
        assert _run_json(fig5, "dict", 1) == _run_json(fig5, "array", 1)

    def test_persistent_pool_equals_serial_dict(self):
        # The strongest cross-substrate claim: a full experiment routed
        # through the standing shared-memory pool is byte-identical to the
        # serial dict oracle.  Pre-warming the context is how the CLI's
        # --persistent-pool reaches experiments, so this also exercises
        # that wiring end to end.
        serial = _run_json(fig7, "dict", 1)
        SharedContext._cache.clear()
        ctx = SharedContext.get("test", backend="array", workers=2, persistent=True)
        try:
            result = fig7.run("test", backend="array", workers=2)
            assert ctx.engine.persistent and ctx.engine.pool_live
            persistent = result.to_json(include_provenance=False)
        finally:
            SharedContext.close_all()
        assert serial == persistent


class TestRepeatDeterminism:
    @pytest.mark.parametrize("backend", ["dict", "array"])
    def test_same_backend_twice_is_byte_identical(self, backend):
        assert _run_json(fig7, backend, 1) == _run_json(fig7, backend, 1)
