"""Telemetry wired through the unified experiment API, end to end.

Acceptance criteria of the observability layer: a figure run with
telemetry on records the named pipeline phases (merged across fork
workers when there are several), attaches the session delta under the
provenance key ``meta["telemetry"]``, and — because telemetry is
provenance, not physics — leaves ``to_json(include_provenance=False)``
byte-identical to a run with telemetry off.
"""

import pytest

from repro import telemetry as tm
from repro.bgp.parallel import fork_available
from repro.experiments import fig7, fig8, fig9
from repro.experiments.common import SharedContext
from repro.experiments.result import PROVENANCE_KEYS
from repro.telemetry import Telemetry

PIPELINE_PHASES = {
    "experiment.run",
    "topology.build",
    "bgp.propagate",
    "mifo.deflect",
    "flowsim.solve",
    "metrics.compute",
}


@pytest.fixture(autouse=True)
def fresh_contexts():
    saved = dict(SharedContext._cache)
    SharedContext._cache.clear()
    tm.activate(None)
    yield
    SharedContext._cache.clear()
    SharedContext._cache.update(saved)
    tm.activate(None)


def test_fig9_records_the_pipeline_phases():
    result = fig9.run("test", telemetry=True)
    telemetry = result.meta["telemetry"]
    phases = set(telemetry["spans"])
    assert PIPELINE_PHASES <= phases, phases
    assert len(phases) >= 5
    counters = telemetry["counters"]
    assert counters["bgp.destinations_converged"] > 0
    assert counters["flowsim.maxmin_iterations"] > 0


def test_telemetry_key_is_provenance():
    assert "telemetry" in PROVENANCE_KEYS
    result = fig7.run("test", telemetry=True)
    assert "telemetry" in result.meta
    assert "telemetry" not in result.to_json(include_provenance=False)


def test_disabled_run_attaches_nothing():
    result = fig7.run("test")
    assert "telemetry" not in result.meta


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_phases_merge_across_workers():
    t = Telemetry()
    result = fig8.run("test", backend="array", workers=2, telemetry=t)
    telemetry = result.meta["telemetry"]
    assert telemetry["gauges"].get("parallel.workers_used") == 2.0
    # bgp.propagate ran in the workers; its merged completion count must
    # cover every destination the run converged.
    count = telemetry["spans"]["bgp.propagate"]["count"]
    converged = telemetry["counters"]["bgp.destinations_converged"]
    assert count == converged > 0
    assert len(telemetry["spans"]) >= 5


@pytest.mark.parametrize("backend,workers", [("dict", 1), ("array", 2)])
def test_telemetry_does_not_perturb_results(backend, workers):
    if workers > 1 and not fork_available():
        pytest.skip("needs fork start method")
    SharedContext._cache.clear()
    plain = fig7.run("test", backend=backend, workers=workers)
    SharedContext._cache.clear()
    instrumented = fig7.run("test", backend=backend, workers=workers, telemetry=True)
    assert plain.to_json(include_provenance=False) == instrumented.to_json(
        include_provenance=False
    )


def test_cross_backend_determinism_with_telemetry_on():
    SharedContext._cache.clear()
    via_dict = fig7.run("test", backend="dict", telemetry=True)
    SharedContext._cache.clear()
    via_array = fig7.run("test", backend="array", telemetry=True)
    assert via_dict.to_json(include_provenance=False) == via_array.to_json(
        include_provenance=False
    )
