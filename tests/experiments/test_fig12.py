"""Acceptance tests for the testbed reproduction (Figures 11/12)."""

import numpy as np
import pytest

from repro.experiments import fig12


@pytest.fixture(scope="module")
def result():
    return fig12.run("test").raw


class TestControlPlane:
    def test_as_graph_matches_paper(self):
        g = fig12.build_as_graph()
        assert len(g) == 6
        # AS3's providers are AS4 and AS6; AS5's too.
        assert sorted(g.providers(3)) == [4, 6]
        assert sorted(g.providers(5)) == [4, 6]

    def test_build_asserts_paper_paths(self):
        # _derive_control_plane raises if the BGP substrate disagrees with
        # the paper's stated default/alternative paths.
        net, handles = fig12.build_testbed(fig12.TestbedConfig.test_scale(), mifo=True)
        assert set(handles["routers"]) == {
            "R1", "R2", "Rd", "Ra", "R4a", "R4b", "R6a", "R6b", "R5a", "R5b", "R5c",
        }
        assert len(handles["routers"]) == 11  # the paper's 11 machines


class TestHeadlines:
    def test_mifo_improves_aggregate_throughput(self, result):
        """Paper: +81%.  Accept anything in the 40-110% band at test scale."""
        assert 0.40 <= result.improvement <= 1.10

    def test_bgp_bottlenecked_near_1g(self, result):
        assert result.bgp.mean_aggregate_bps <= 1.05e9
        assert result.bgp.mean_aggregate_bps >= 0.6e9

    def test_mifo_exceeds_single_link(self, result):
        assert result.mifo.mean_aggregate_bps > 1.2e9

    def test_mifo_finishes_sooner(self, result):
        assert result.mifo.finish_time < result.bgp.finish_time

    def test_fct_tail_shorter_under_mifo(self, result):
        bgp_tail = np.percentile(result.bgp.completion_times, 90)
        mifo_tail = np.percentile(result.mifo.completion_times, 90)
        assert mifo_tail <= bgp_tail

    def test_mifo_actually_deflected(self, result):
        assert result.mifo.deflected_packets > 0
        assert result.mifo.encapsulated_packets > 0
        assert result.bgp.deflected_packets == 0

    def test_no_valley_drops_in_testbed(self, result):
        # Rd's upstreams are customers: Tag-Check always passes here.
        assert result.mifo.valley_drops == 0

    def test_all_flows_completed(self, result):
        expected = 2 * result.config.flows_per_source
        assert len(result.bgp.completion_times) == expected
        assert len(result.mifo.completion_times) == expected

    def test_render(self, result):
        out = result.render()
        assert "Fig 12(a)" in out and "Fig 12(b)" in out and "+81%" in out
