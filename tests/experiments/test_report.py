"""Tests for the text rendering helpers."""

from repro.experiments.report import ascii_series, percent, text_table


class TestTextTable:
    def test_alignment_and_title(self):
        out = text_table(["A", "Blong"], [[1, 2], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert "-+-" in lines[2]
        assert len(lines) == 5
        # aligned columns: all rows same width
        assert len(set(len(l) for l in lines[1:])) == 1

    def test_handles_mixed_types(self):
        out = text_table(["x"], [[None], [3.5]])
        assert "None" in out and "3.5" in out


class TestAsciiSeries:
    def test_empty(self):
        assert "(empty plot)" in ascii_series({}, title=None) or ascii_series({}) == ""

    def test_markers_and_legend(self):
        out = ascii_series(
            {"one": [(0, 0), (1, 1)], "two": [(0, 1), (1, 0)]},
            width=20,
            height=5,
            title="plot",
        )
        assert "A=one" in out and "B=two" in out
        assert "A" in out and "B" in out

    def test_degenerate_single_point(self):
        out = ascii_series({"s": [(1.0, 2.0)]})
        assert "s" in out


class TestPercent:
    def test_formatting(self):
        assert percent(0.5) == "50.0%"
        assert percent(0.12345, 2) == "12.35%"
