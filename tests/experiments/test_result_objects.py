"""Unit tests for the figure result containers (no simulation needed)."""

import numpy as np
import pytest

from repro.experiments.fig5 import Fig5Result
from repro.experiments.fig6 import Fig6Result
from repro.experiments.fig7 import Fig7Result
from repro.experiments.fig8 import Fig8Result
from repro.flowsim.flow import FlowRecord
from repro.flowsim.simulator import FluidSimResult


def result_with_throughputs(scheme, mbps_list, used_alt=0):
    records = [
        FlowRecord(
            flow_id=i,
            src=1,
            dst=2,
            size_bytes=m * 1e6 / 8.0,  # 1 second at m Mbps
            start_time=0.0,
            finish_time=1.0,
            path_switches=0,
            used_alternative=i < used_alt,
            initial_path_len=3,
            final_path_len=3,
        )
        for i, m in enumerate(mbps_list)
    ]
    return FluidSimResult(scheme, records, 1.0, 1, 1, 0)


class TestFig5Result:
    @pytest.fixture
    def result(self):
        return Fig5Result(
            scale_name="unit",
            results={
                (1.0, "BGP"): result_with_throughputs("BGP", [100, 200, 300]),
                (1.0, "MIRO"): result_with_throughputs("MIRO", [200, 300, 400]),
                (1.0, "MIFO"): result_with_throughputs("MIFO", [400, 600, 800]),
            },
        )

    def test_fraction_at_least(self, result):
        assert result.fraction_at_least(1.0, "MIFO", 500) == pytest.approx(2 / 3)
        assert result.fraction_at_least(1.0, "BGP", 500) == 0.0

    def test_deployments_property(self, result):
        assert result.deployments == [1.0]

    def test_rows_and_render(self, result):
        rows = result.rows()
        assert len(rows) == 3
        out = result.render()
        assert "Figure 5" in out and "MIFO" in out


class TestFig6Result:
    def test_alphas_sorted(self):
        r = Fig6Result(
            scale_name="unit",
            results={
                (1.2, "BGP"): result_with_throughputs("BGP", [100]),
                (1.2, "MIRO"): result_with_throughputs("MIRO", [100]),
                (1.2, "MIFO"): result_with_throughputs("MIFO", [100]),
                (0.8, "BGP"): result_with_throughputs("BGP", [200]),
                (0.8, "MIRO"): result_with_throughputs("MIRO", [200]),
                (0.8, "MIFO"): result_with_throughputs("MIFO", [200]),
            },
        )
        assert r.alphas == [0.8, 1.2]
        assert "alpha" in r.render()


class TestFig7Result:
    @pytest.fixture
    def result(self):
        return Fig7Result(
            scale_name="unit",
            counts={
                ("MIFO", 1.0): [100, 50, 10, 5],
                ("MIRO", 1.0): [3, 2, 1, 1],
            },
        )

    def test_median_and_fraction(self, result):
        assert result.median("MIFO", 1.0) == pytest.approx(30.0)
        assert result.fraction_with_at_least("MIFO", 1.0, 10) == pytest.approx(0.75)
        assert result.fraction_with_at_least("MIRO", 1.0, 10) == 0.0

    def test_series_log_scale(self, result):
        series = result.series()
        assert "100% MIFO" in series
        pct, logv = zip(*series["100% MIFO"])
        assert max(logv) == pytest.approx(np.log10(100))

    def test_render(self, result):
        assert "Figure 7" in result.render()


class TestFig8Result:
    def test_offload_and_render(self):
        r = Fig8Result(
            scale_name="unit",
            results={
                0.1: result_with_throughputs("MIFO", [100] * 10, used_alt=1),
                1.0: result_with_throughputs("MIFO", [100] * 10, used_alt=5),
            },
        )
        assert r.offload(0.1) == pytest.approx(0.1)
        assert r.offload(1.0) == pytest.approx(0.5)
        out = r.render()
        assert "Figure 8" in out and "10%" in out
