"""Tests for the Section II-B RIB study and the gnuplot exporter."""

import pytest

from repro.experiments import ribstudy
from repro.experiments.export import write_dat


class TestRibStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return ribstudy.run("test").raw

    def test_most_ases_multi_neighbor(self, result):
        """The paper's Section II-B claim, quantified."""
        assert result.fraction_multi_neighbor > 0.5

    def test_degree_drives_diversity(self, result):
        """'The degree of path diversity gained by an AS is dependent on
        how many neighbors it has' — positive degree/RIB correlation."""
        assert result.degree_correlation > 0.2

    def test_rib_sizes_sane(self, result):
        assert result.rib_sizes.min() >= 1
        assert result.mean_alternatives >= 0.0

    def test_render(self, result):
        out = result.render()
        assert "multi-neighbor" in out
        assert "corr(degree, RIB size)" in out


class TestWriteDat:
    def test_format(self, tmp_path):
        p = tmp_path / "series.dat"
        write_dat(
            p,
            [(1.0, 2.5), (2.0, 3.5)],
            columns=["x", "y"],
            comment="sample series",
        )
        text = p.read_text()
        lines = text.strip().splitlines()
        assert lines[0] == "# sample series"
        assert lines[1] == "# x\ty"
        assert lines[2] == "1\t2.5"
        # gnuplot-parsable: every data line splits into 2 floats
        for l in lines[2:]:
            assert len([float(v) for v in l.split("\t")]) == 2

    def test_creates_directories(self, tmp_path):
        p = tmp_path / "deep" / "dir" / "s.dat"
        write_dat(p, [(0, 0)], columns=["a", "b"])
        assert p.exists()


class TestOverhead:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import overhead

        return overhead.run("test").raw

    def test_mifo_costs_zero_extra_messages(self, result):
        assert result.mifo_messages == 0

    def test_mifo_offers_at_least_miro_alternatives(self, result):
        """MIRO's strict policy is a filtered, capped subset of the RIB."""
        assert result.mifo_alternatives >= result.miro_alternatives

    def test_miro_pays_two_messages_per_alternative(self, result):
        assert result.miro_messages == 2 * result.miro_alternatives

    def test_render(self, result):
        assert "zero additional control-plane traffic" in result.render()


class TestExportAll:
    def test_export_all_writes_gnuplot_files(self, tmp_path):
        from repro.experiments.export import export_all

        written = export_all(tmp_path, "test")
        names = {p.name for p in written}
        # one file per scheme per deployment/alpha, plus fig7/8/9/12 series
        assert "fig5_100pct_mifo.dat" in names
        assert "fig8_offload.dat" in names
        assert "fig9_switches.dat" in names
        assert any(n.startswith("fig12a_") for n in names)
        for p in written:
            lines = p.read_text().strip().splitlines()
            data = [l for l in lines if not l.startswith("#")]
            assert data, p
            for l in data:
                [float(v) for v in l.split("\t")]
