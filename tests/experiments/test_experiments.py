"""Integration tests: every paper artifact regenerates at test scale and
its headline *shape* holds.

These are the repository's acceptance tests — each asserts the qualitative
claim the paper makes for that table/figure, on the scaled-down workload.
"""

import pytest

from repro.experiments import REGISTRY, fig5, fig6, fig7, fig8, fig9, table1
from repro.experiments.common import SCALES, SharedContext, deployment_sample, get_scale
from repro.errors import ConfigError


class TestCommon:
    def test_scales_registered(self):
        assert {"test", "default", "paper"} <= set(SCALES)

    def test_get_scale_validates(self):
        with pytest.raises(ConfigError):
            get_scale("enormous")

    def test_shared_context_cached(self):
        a = SharedContext.get("test")
        b = SharedContext.get("test")
        assert a is b

    def test_deployment_sample(self):
        ctx = SharedContext.get("test")
        half = deployment_sample(ctx.graph, 0.5)
        assert len(half) == len(ctx.graph) // 2
        full = deployment_sample(ctx.graph, 1.0)
        assert len(full) == len(ctx.graph)
        with pytest.raises(ConfigError):
            deployment_sample(ctx.graph, 0.0)

    def test_deployment_sample_deterministic(self):
        ctx = SharedContext.get("test")
        assert deployment_sample(ctx.graph, 0.3) == deployment_sample(ctx.graph, 0.3)

    def test_provenance_meta_records_effective_workers(self):
        # The dict backend cannot fork-share its state, so a request for 4
        # workers silently degrades to serial — provenance must record what
        # actually ran, not what was asked for.
        res = table1.run("test", backend="dict", workers=4)
        ctx = SharedContext.get("test", backend="dict", workers=4)
        assert res.meta["workers"] == ctx.engine.effective_workers
        assert res.meta["backend"] == "dict"
        assert isinstance(res.meta["routing_cache"], dict)

    def test_provenance_meta_uniform_across_experiments(self):
        results = [
            table1.run("test"),
            fig7.run("test", deployments=(1.0,)),
        ]
        for res in results:
            assert {"backend", "workers", "routing_cache"} <= set(res.meta)

    def test_registry_complete(self):
        assert set(REGISTRY) == {
            "table1",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig12",
            "ribstudy",
            "overhead",
            "scenario",
            "service",
        }


class TestTable1:
    def test_relationship_mix_matches_paper(self):
        res = table1.run("test").raw
        assert res.stats.p2c_fraction == pytest.approx(0.69, abs=0.04)
        assert res.stats.peering_fraction == pytest.approx(0.31, abs=0.04)
        out = res.render()
        assert "44,340" in out.replace(",", ",") or "44340" in out
        assert "P/C Links" in out


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run("test").raw

    def test_mifo_dominates_miro(self, result):
        for dep in (0.5, 1.0):
            assert result.median("MIFO", dep) >= result.median("MIRO", dep)

    def test_half_mifo_beats_full_miro(self, result):
        """The paper's headline: 50% MIFO offers more paths than 100% MIRO."""
        assert result.median("MIFO", 0.5) >= result.median("MIRO", 1.0)

    def test_full_deployment_dominates(self, result):
        assert result.median("MIFO", 1.0) >= result.median("MIFO", 0.5)

    def test_render(self, result):
        out = result.render()
        assert "Figure 7" in out and "MIFO" in out and "MIRO" in out


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run("test", deployments=(1.0, 0.5)).raw

    def test_mifo_beats_bgp_everywhere(self, result):
        for dep in (1.0, 0.5):
            mifo = result.cdf(dep, "MIFO")
            bgp = result.cdf(1.0, "BGP")
            assert mifo.median >= bgp.median * 0.98

    def test_mifo_at_least_miro_at_full(self, result):
        assert (
            result.cdf(1.0, "MIFO").median >= result.cdf(1.0, "MIRO").median * 0.95
        )

    def test_render(self, result):
        out = result.render()
        assert "Figure 5" in out and ">=500 Mbps" in out


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run("test", alphas=(0.8, 1.2)).raw

    def test_mifo_beats_bgp_under_skew(self, result):
        for alpha in (0.8, 1.2):
            assert (
                result.cdf(alpha, "MIFO").median
                >= result.cdf(alpha, "BGP").median * 0.98
            )

    def test_render(self, result):
        assert "power-law" in result.render()


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run("test", deployments=(0.1, 0.5, 1.0)).raw

    def test_offload_grows_with_deployment(self, result):
        assert result.offload(1.0) >= result.offload(0.1)

    def test_full_deployment_offloads_substantially(self, result):
        # Paper: ~50% at full deployment; accept a broad band at test scale.
        assert result.offload(1.0) > 0.15

    def test_small_deployment_offloads_something(self, result):
        assert result.offload(0.1) > 0.0

    def test_render(self, result):
        assert "Figure 8" in result.render()


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run("test").raw

    def test_most_switching_flows_switch_once(self, result):
        d = result.distribution
        if d.switching_flows:
            assert d.fraction_of_switching(1) > 0.4

    def test_vast_majority_at_most_twice(self, result):
        d = result.distribution
        if d.switching_flows:
            assert d.fraction_at_most(2) > 0.8

    def test_render(self, result):
        out = result.render()
        assert "Figure 9" in out and "paper 67.7%" in out
