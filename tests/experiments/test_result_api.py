"""The unified experiment API: ExperimentResult and SharedContext keying."""

import dataclasses
import json

import pytest

from repro.experiments import ribstudy, table1
from repro.experiments.common import SCALES, ExperimentScale, SharedContext
from repro.experiments.result import (
    PROVENANCE_KEYS,
    ExperimentResult,
    freeze_series,
)


class TestExperimentResult:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run("test")

    def test_is_frozen_dataclass(self, result):
        assert isinstance(result, ExperimentResult)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.name = "other"

    def test_fields(self, result):
        assert result.name == "table1"
        assert result.scale == "test"
        assert isinstance(result.series, dict)
        assert result.meta["n_nodes"] == SCALES["test"].n_ases

    def test_to_json_roundtrip(self, result):
        payload = json.loads(result.to_json())
        assert payload["name"] == "table1"
        assert payload["scale"] == "test"
        assert set(payload) == {"name", "scale", "series", "meta"}
        assert payload["meta"]["backend"] == "dict"

    def test_render_delegates_to_raw(self, result):
        assert result.render() == result.raw.render()

    def test_attribute_shim_removed(self, result):
        # The PR-1 deprecation is complete: the envelope no longer
        # forwards missing attributes to ``raw`` — rich-result access
        # must spell out ``result.raw.<attr>``.
        with pytest.raises(AttributeError):
            result.stats
        assert result.raw.stats is not None

    def test_missing_attribute_raises(self, result):
        with pytest.raises(AttributeError):
            result.no_such_attribute

    def test_series_points_are_floats(self):
        frozen = freeze_series({"a": [(1, 2), (3.5, 4)]})
        assert frozen == {"a": ((1.0, 2.0), (3.5, 4.0))}

    def test_backends_produce_identical_meta(self):
        # Strip the whole provenance set, not just "backend": cache stats
        # and effective worker counts legitimately differ across backends
        # (and with test execution order) — that is exactly why they are
        # excluded from the determinism-checked payload.
        dict_result = ribstudy.run("test", backend="dict")
        array_result = ribstudy.run("test", backend="array")
        dmeta = {
            k: v for k, v in dict_result.meta.items() if k not in PROVENANCE_KEYS
        }
        ameta = {
            k: v for k, v in array_result.meta.items() if k not in PROVENANCE_KEYS
        }
        assert dmeta == ameta


class TestSharedContextKeying:
    def test_same_name_different_size_do_not_alias(self):
        """Regression: the cache used to key on (name, seed) only, so two
        scales sharing a name but differing in n_ases silently aliased."""
        small = ExperimentScale(
            "clash", n_ases=60, n_flows=10, arrival_rate=10.0, n_pairs=5
        )
        large = dataclasses.replace(small, n_ases=90)
        ctx_small = SharedContext.get(small)
        ctx_large = SharedContext.get(large)
        assert ctx_small is not ctx_large
        assert len(ctx_small.graph) == 60
        assert len(ctx_large.graph) == 90

    def test_full_scale_still_memoized(self):
        a = SharedContext.get("test")
        b = SharedContext.get("test")
        assert a is b

    def test_backend_partitions_the_cache(self):
        d = SharedContext.get("test", backend="dict")
        a = SharedContext.get("test", backend="array")
        assert d is not a
        assert a.routing.backend == "array"

    def test_workers_swap_engine_not_context(self):
        a = SharedContext.get("test", workers=1)
        b = SharedContext.get("test", workers=2)
        assert a is b
        assert b.engine.n_workers == 2
