"""Seed robustness: the headline orderings must hold on topologies and
workloads generated from *different* seeds, not just the defaults."""

import numpy as np
import pytest

from repro.bgp.propagation import RoutingCache
from repro.flowsim.providers import BgpProvider, MifoProvider
from repro.flowsim.simulator import FluidSimConfig, FluidSimulator
from repro.metrics.diversity import diversity_counts
from repro.mifo.deflection import MifoPathBuilder
from repro.miro.negotiation import MiroRouting
from repro.topology.generator import TopologyConfig, generate_topology
from repro.traffic.matrix import TrafficConfig, uniform_matrix


@pytest.mark.parametrize("seed", [99, 7, 12345])
class TestSeedRobustness:
    def test_mifo_never_loses_to_bgp(self, seed):
        graph = generate_topology(TopologyConfig(n_ases=300, seed=seed))
        routing = RoutingCache(graph)
        specs = uniform_matrix(
            graph, TrafficConfig(n_flows=300, arrival_rate=500.0, seed=seed)
        )
        bgp = FluidSimulator(
            graph, BgpProvider(graph, routing), FluidSimConfig()
        ).run(specs)
        mifo = FluidSimulator(
            graph,
            MifoProvider(MifoPathBuilder(graph, routing, frozenset(graph.nodes()))),
            FluidSimConfig(),
        ).run(specs)
        assert np.median(mifo.throughputs_bps()) >= np.median(
            bgp.throughputs_bps()
        ) * 0.97

    def test_diversity_gap_holds(self, seed):
        graph = generate_topology(TopologyConfig(n_ases=300, seed=seed))
        routing = RoutingCache(graph)
        rng = np.random.default_rng(seed)
        nodes = np.fromiter(graph.nodes(), dtype=np.int64)
        dests = rng.choice(nodes, size=8, replace=False)
        pairs = [
            (int(rng.choice(nodes)), int(d)) for d in dests for _ in range(6)
        ]
        pairs = [(s, d) for s, d in pairs if s != d]
        capable = frozenset(graph.nodes())
        miro = MiroRouting(graph, routing, capable)
        mifo_counts, miro_counts = diversity_counts(
            graph, routing, pairs, mifo_capable=capable, miro_routing=miro
        )
        assert np.median(mifo_counts) >= np.median(miro_counts)
        assert max(miro_counts) <= 3  # strict policy cap, every seed
