"""Telemetry under the parallel routing engine.

Two guarantees: fork workers' counters land in the parent registry, and
the degraded paths (serial, pool-creation failure) report what actually
happened — one worker, a fallback on the record — not what was asked.
"""

import pytest

from repro import telemetry as tm
from repro.bgp import parallel
from repro.bgp.parallel import ParallelRoutingEngine, fork_available
from repro.telemetry import Telemetry
from repro.topology.generator import TopologyConfig, generate_topology

DESTS = list(range(0, 12))


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=150, seed=9))


def test_serial_path_reports_one_worker(graph):
    t = Telemetry()
    tm.activate(t)
    ParallelRoutingEngine(graph, n_workers=1).compute_many(DESTS)
    assert t.gauges["parallel.workers_used"] == 1.0
    assert t.counters["bgp.destinations_converged"] == len(DESTS)


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_worker_counters_merge_into_parent(graph):
    t = Telemetry()
    tm.activate(t)
    engine = ParallelRoutingEngine(graph, n_workers=2)
    result = engine.compute_many(DESTS)
    assert sorted(result) == DESTS
    # Each destination converged exactly once, in some worker; the
    # merged total must equal the serial total regardless of scheduling.
    assert t.counters["bgp.destinations_converged"] == len(DESTS)
    assert t.counters["bgp.routes_propagated"] == sum(
        r.reachable_count() for r in result.values()
    )
    assert t.gauges["parallel.workers_used"] == 2.0
    assert t.counters["parallel.chunks"] >= 2


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_parallel_counters_equal_serial_counters(graph):
    t1 = Telemetry()
    tm.activate(t1)
    ParallelRoutingEngine(graph, n_workers=1).compute_many(DESTS)
    serial = t1.snapshot()

    t2 = Telemetry()
    tm.activate(t2)
    ParallelRoutingEngine(graph, n_workers=2).compute_many(DESTS)
    par = t2.snapshot()

    for key in ("bgp.destinations_converged", "bgp.routes_propagated"):
        assert par.counters[key] == serial.counters[key]


def test_pool_failure_reports_fallback(graph, monkeypatch):
    if not fork_available():
        pytest.skip("needs fork start method")

    def boom(self, unique, workers):
        raise OSError("Resource temporarily unavailable")

    monkeypatch.setattr(ParallelRoutingEngine, "_compute_parallel", boom)
    t = Telemetry()
    tm.activate(t)
    engine = ParallelRoutingEngine(graph, n_workers=4)
    result = engine.compute_many(DESTS)
    assert sorted(result) == DESTS
    assert t.counters["parallel.pool_fallbacks"] == 1
    assert t.gauges["parallel.workers_used"] == 1.0
    assert t.counters["bgp.destinations_converged"] == len(DESTS)


def test_disabled_telemetry_ships_no_snapshots(graph, monkeypatch):
    assert tm.active() is None
    monkeypatch.setattr(parallel, "_WORKER_GRAPH", graph)
    chunk_states, snap = parallel._compute_chunk(DESTS[:2])
    assert snap is None
    assert [d for d, _ in chunk_states] == DESTS[:2]


def test_enabled_telemetry_ships_chunk_snapshot(graph, monkeypatch):
    monkeypatch.setattr(parallel, "_WORKER_GRAPH", graph)
    t = Telemetry()
    tm.activate(t)
    chunk_states, snap = parallel._compute_chunk(DESTS[:3])
    # The chunk recorded into its own registry, not the inherited one...
    assert tm.active() is t
    assert t.counters == {}
    # ...and shipped the work as a snapshot.
    assert snap is not None
    assert snap.counters["bgp.destinations_converged"] == 3
