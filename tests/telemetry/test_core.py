"""Unit tests for the telemetry registry, spans, sessions and the sink."""

import pytest

from repro import telemetry as tm
from repro.telemetry import Telemetry, TelemetrySession
from repro.telemetry.core import _NOOP_SPAN, telemetry_session


class TestInstruments:
    def test_counters_accumulate(self):
        t = Telemetry()
        t.inc("a")
        t.inc("a", 4)
        t.inc("b", 2)
        assert t.counters == {"a": 5, "b": 2}

    def test_gauges_keep_last_value(self):
        t = Telemetry()
        t.set_gauge("workers", 4)
        t.set_gauge("workers", 2)
        assert t.gauges == {"workers": 2.0}

    def test_histogram_buckets_by_upper_bound(self):
        t = Telemetry()
        bounds = (1.0, 4.0, 8.0)
        for v in (0.5, 1.0, 3.0, 8.0, 100.0):
            t.observe("hops", v, bounds=bounds)
        snap = t.snapshot()
        got_bounds, buckets = snap.histograms["hops"]
        assert got_bounds == bounds
        # <=1, <=4, <=8, overflow
        assert buckets == (2, 1, 1, 1)

    def test_histogram_bounds_must_agree(self):
        t = Telemetry()
        t.observe("h", 1.0, bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="inconsistent"):
            t.observe("h", 1.0, bounds=(1.0, 3.0))

    def test_span_counts_and_accumulates(self):
        t = Telemetry()
        with t.span("phase"):
            pass
        with t.span("phase"):
            pass
        total, count = t.snapshot().spans["phase"]
        assert count == 2
        assert total >= 0.0

    def test_nested_spans_tag_event_phase(self):
        t = Telemetry()
        with t.span("outer"):
            with t.span("inner"):
                assert t.current_phase() == "inner"
                t.event("deflection", dst=1)
            assert t.current_phase() == "outer"
        assert t.current_phase() is None
        (ev,) = t.trace_events()
        assert ev["phase"] == "inner"

    def test_span_survives_exceptions(self):
        t = Telemetry()
        with pytest.raises(RuntimeError):
            with t.span("risky"):
                raise RuntimeError("boom")
        assert t.current_phase() is None
        assert t.snapshot().spans["risky"][1] == 1

    def test_event_ring_buffer_drops_oldest(self):
        t = Telemetry(trace_capacity=3)
        for i in range(5):
            t.event("deflection", dst=i)
        events = t.trace_events()
        assert [e["dst"] for e in events] == [2, 3, 4]
        assert [e["seq"] for e in events] == [2, 3, 4]
        snap = t.snapshot()
        assert snap.events_total == 5
        assert snap.events_dropped == 2

    def test_trace_capacity_validated(self):
        with pytest.raises(ValueError):
            Telemetry(trace_capacity=0)


class TestModuleSink:
    def test_disabled_calls_are_noops(self):
        assert tm.active() is None
        tm.inc("x")
        tm.set_gauge("g", 1)
        tm.observe("h", 1.0)
        tm.event("deflection", dst=1)
        assert tm.span("p") is _NOOP_SPAN

    def test_disabled_span_is_reentrant_noop(self):
        with tm.span("a") as s:
            with s:
                pass

    def test_activated_registry_records(self):
        t = Telemetry()
        tm.activate(t)
        tm.inc("x", 3)
        with tm.span("p"):
            tm.event("encap", router="r1", peer="p1")
        tm.activate(None)
        tm.inc("x")  # after deactivation: dropped
        assert t.counters == {"x": 3}
        assert t.trace_events()[0]["phase"] == "p"


class TestSessions:
    def test_none_and_false_yield_disabled(self):
        for spec in (None, False):
            with telemetry_session(spec) as session:
                assert session is None
                assert tm.active() is None

    def test_true_activates_fresh_registry(self):
        with telemetry_session(True) as session:
            assert isinstance(session, TelemetrySession)
            assert tm.active() is session.telemetry
        assert tm.active() is None

    def test_instance_activated_and_restored(self):
        outer = Telemetry()
        tm.activate(outer)
        inner = Telemetry()
        with telemetry_session(inner) as session:
            assert tm.active() is inner
            assert session.telemetry is inner
        assert tm.active() is outer

    def test_session_delta_isolates_reused_registry(self):
        t = Telemetry()
        t.inc("mifo.deflections", 10)
        with telemetry_session(t) as session:
            assert session is not None
            t.inc("mifo.deflections", 2)
            t.event("deflection", dst=9)
        delta = session.delta()
        assert delta.counters == {"mifo.deflections": 2}
        assert [e["dst"] for e in delta.events] == [9]

    def test_session_meta_shape(self):
        with telemetry_session(True) as session:
            assert session is not None
            tm.inc("c", 1)
            with tm.span("p"):
                pass
        meta = session.meta()
        assert meta["counters"] == {"c": 1}
        assert set(meta) == {
            "counters",
            "gauges",
            "spans",
            "histograms",
            "events_total",
            "events_dropped",
        }

    def test_render_mentions_everything(self):
        t = Telemetry()
        t.inc("mifo.deflections", 7)
        t.set_gauge("parallel.workers_used", 2)
        t.observe("mifo.path_hops", 3)
        with t.span("bgp.propagate"):
            pass
        text = t.snapshot().render()
        for needle in (
            "mifo.deflections",
            "parallel.workers_used",
            "mifo.path_hops",
            "bgp.propagate",
        ):
            assert needle in text
