"""Satellite: RoutingCache hit/miss counters agree with its own stats()."""

import pytest

from repro import telemetry as tm
from repro.bgp.propagation import RoutingCache
from repro.telemetry import Telemetry
from repro.topology.generator import TopologyConfig, generate_topology


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=120, seed=3))


@pytest.mark.parametrize("backend", ["dict", "array"])
def test_counters_agree_with_stats(graph, backend):
    t = Telemetry()
    tm.activate(t)
    cache = RoutingCache(graph, backend=backend)
    for dest in (1, 2, 1, 1, 3, 2):
        cache(dest)
    stats = cache.stats
    assert stats.hits == 3
    assert stats.misses == 3
    assert t.counters["cache.hits"] == stats.hits
    assert t.counters["cache.misses"] == stats.misses


def test_evictions_counted(graph):
    t = Telemetry()
    tm.activate(t)
    cache = RoutingCache(graph, backend="array", max_entries=2)
    for dest in (1, 2, 3, 4):
        cache(dest)
    stats = cache.stats
    assert t.counters.get("cache.evictions", 0) == stats.evictions
    assert stats.evictions == 2


def test_disabled_telemetry_leaves_stats_untouched(graph):
    assert tm.active() is None
    cache = RoutingCache(graph, backend="dict")
    cache(1)
    cache(1)
    stats = cache.stats
    assert (stats.hits, stats.misses) == (1, 1)
