"""Property tests for the snapshot merge algebra.

The parallel engine's correctness rests on ``merge`` being associative
(chunks can be absorbed as they arrive) and, for everything except the
event stream, commutative (the totals cannot depend on which worker
finished first).  Hypothesis checks both over arbitrary snapshots.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import Telemetry, TelemetrySnapshot

BOUNDS = (1.0, 4.0, 8.0)

names = st.sampled_from(["a", "b", "mifo.deflections", "cache.hits"])

counters = st.dictionaries(names, st.integers(0, 1000), max_size=4)
gauges = st.dictionaries(names, st.floats(0, 100, allow_nan=False), max_size=4)
# Span totals are dyadic rationals so float addition is exact — merge
# associativity is an algebraic property, not an ulp-level accident.
dyadic = st.integers(0, 8000).map(lambda n: n / 8.0)
spans = st.dictionaries(
    names,
    st.tuples(dyadic, st.integers(1, 50)),
    max_size=4,
)
histograms = st.dictionaries(
    st.sampled_from(["h1", "h2"]),
    st.tuples(
        st.just(BOUNDS),
        st.lists(st.integers(0, 9), min_size=4, max_size=4).map(tuple),
    ),
    max_size=2,
)
events = st.lists(
    st.builds(lambda i: {"kind": "deflection", "seq": i, "dst": i}, st.integers(0, 99)),
    max_size=4,
).map(tuple)


@st.composite
def snapshots(draw):
    evs = draw(events)
    return TelemetrySnapshot(
        counters=draw(counters),
        gauges=draw(gauges),
        spans=draw(spans),
        histograms=draw(histograms),
        events=evs,
        events_total=len(evs) + draw(st.integers(0, 5)),
        events_dropped=draw(st.integers(0, 5)),
    )


@settings(max_examples=80)
@given(snapshots(), snapshots(), snapshots())
def test_merge_is_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@settings(max_examples=80)
@given(snapshots(), snapshots())
def test_merge_totals_are_commutative(a, b):
    ab, ba = a.merge(b), b.merge(a)
    # Everything except the event stream (whose order is the merge
    # order, fixed by the engine's ordered imap) must commute.
    assert ab.counters == ba.counters
    assert ab.gauges == ba.gauges
    assert ab.spans == ba.spans
    assert ab.histograms == ba.histograms
    assert ab.events_total == ba.events_total
    assert sorted(ab.events, key=repr) == sorted(ba.events, key=repr)


@settings(max_examples=80)
@given(snapshots())
def test_empty_snapshot_is_identity_for_totals(s):
    empty = TelemetrySnapshot()
    assert empty.merge(s) == s
    merged = s.merge(empty)
    assert merged.counters == s.counters
    assert merged.events == s.events


@settings(max_examples=50)
@given(
    st.lists(st.tuples(st.sampled_from(["x", "y"]), st.integers(1, 5)), max_size=8)
)
def test_subtract_recovers_session_delta(incs):
    t = Telemetry()
    t.inc("x", 3)  # pre-session noise
    base = t.snapshot()
    for name, n in incs:
        t.inc(name, n)
    delta = t.snapshot().subtract(base)
    want: dict[str, int] = {}
    for name, n in incs:
        want[name] = want.get(name, 0) + n
    assert delta.counters == {k: v for k, v in want.items() if v}


def test_absorb_rebases_event_seq():
    parent = Telemetry()
    parent.event("deflection", dst=0)
    parent.event("deflection", dst=1)
    child = Telemetry()
    child.event("tagcheck_drop", dst=7)
    child.event("deflection", dst=8)
    parent.absorb(child.snapshot())
    seqs = [e["seq"] for e in parent.trace_events()]
    assert seqs == [0, 1, 2, 3]
    assert parent.snapshot().events_total == 4


def test_absorb_matches_snapshot_merge():
    a, b = Telemetry(), Telemetry()
    a.inc("c", 2)
    a.observe("h", 3.0, bounds=BOUNDS)
    with a.span("p"):
        pass
    b.inc("c", 5)
    b.observe("h", 9.0, bounds=BOUNDS)
    b.set_gauge("g", 4)
    merged = a.snapshot().merge(b.snapshot())
    a.absorb(b.snapshot())
    absorbed = a.snapshot()
    assert absorbed.counters == merged.counters
    assert absorbed.gauges == merged.gauges
    assert absorbed.histograms == merged.histograms
    assert absorbed.spans == merged.spans
