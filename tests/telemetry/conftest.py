"""Telemetry tests share one hygiene rule: never leak the active sink."""

import pytest

from repro import telemetry as tm


@pytest.fixture(autouse=True)
def _clean_sink():
    """Whatever a test activates, the next test starts disabled."""
    prev = tm.active()
    tm.activate(None)
    yield
    tm.activate(prev)
