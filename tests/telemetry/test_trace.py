"""Trace schema validation, JSONL round-trips and the summarizer."""

import json
import pathlib

import pytest

from repro.telemetry import trace
from repro.telemetry.trace import (
    TRACE_SCHEMA,
    read_jsonl,
    render_summary,
    summarize,
    validate_event,
    validate_events,
    write_jsonl,
)

REPO = pathlib.Path(__file__).resolve().parent.parent.parent

GOOD_DEFLECTION = {
    "kind": "deflection",
    "seq": 0,
    "phase": "mifo.deflect",
    "as": 5,
    "dst": 9,
    "upstream": 2,
    "default_nh": 3,
    "chosen": 4,
    "cause": "congested_link",
    "spare_bps": 2.5e8,
}


def test_schema_file_matches_module_constant():
    on_disk = json.loads(
        (REPO / "docs" / "trace.schema.json").read_text(encoding="utf-8")
    )
    assert on_disk == TRACE_SCHEMA


class TestValidateEvent:
    def test_good_deflection_passes(self):
        assert validate_event(GOOD_DEFLECTION) == []

    def test_minimal_event_passes(self):
        assert validate_event({"kind": "encap", "seq": 3}) == []

    def test_unknown_kind_rejected(self):
        problems = validate_event({"kind": "teleport", "seq": 0})
        assert problems and any("kind" in p for p in problems)

    def test_missing_required_rejected(self):
        assert validate_event({"kind": "deflection"})  # no seq

    def test_unknown_field_rejected(self):
        assert validate_event({"kind": "encap", "seq": 0, "wat": 1})

    def test_wrong_type_rejected(self):
        assert validate_event({"kind": "deflection", "seq": "zero"})
        assert validate_event({**GOOD_DEFLECTION, "dst": 1.5})

    def test_bool_is_not_an_integer(self):
        assert validate_event({**GOOD_DEFLECTION, "dst": True})

    def test_null_upstream_allowed(self):
        assert validate_event({**GOOD_DEFLECTION, "upstream": None}) == []

    def test_non_dict_rejected(self):
        assert validate_event([1, 2, 3])

    def test_validate_events_prefixes_indices(self):
        problems = validate_events([GOOD_DEFLECTION, {"kind": "nope", "seq": 1}])
        assert all(p.startswith("event 1:") for p in problems)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        events = [GOOD_DEFLECTION, {"kind": "encap", "seq": 1, "router": "r2"}]
        path = tmp_path / "deep" / "trace.jsonl"
        assert write_jsonl(events, path) == 2
        assert read_jsonl(path) == events

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "encap", "seq": 0}\n\n\n', encoding="utf-8")
        assert len(read_jsonl(path)) == 1

    def test_bad_json_reports_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "encap", "seq": 0}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("[1, 2]\n", encoding="utf-8")
        with pytest.raises(ValueError, match="not a JSON object"):
            read_jsonl(path)


class TestSummarize:
    def _events(self):
        evs = []
        for i in range(6):
            evs.append({**GOOD_DEFLECTION, "seq": i, "as": 5 if i < 4 else 6})
        evs.append({"kind": "tagcheck_drop", "seq": 6, "cause": "tag_check"})
        return evs

    def test_counts_and_tops(self):
        s = summarize(self._events(), top=1)
        assert s["events"] == 7
        assert s["by_kind"] == {"deflection": 6, "tagcheck_drop": 1}
        assert s["by_cause"] == {"congested_link": 6, "tag_check": 1}
        assert s["top_deflecting_ases"] == [(5, 4)]
        assert s["seq_range"] == [0, 6]
        assert s["spare_bps"]["min"] == pytest.approx(2.5e8)

    def test_empty_trace(self):
        s = summarize([])
        assert s["events"] == 0
        assert "spare_bps" not in s

    def test_render_mentions_kinds_and_ases(self):
        text = render_summary(summarize(self._events()))
        assert "deflection" in text
        assert "AS5" in text

    def test_summary_is_json_serializable(self):
        json.dumps(summarize(self._events()))


class TestDetectorDigest:
    def _events(self):
        evs = []
        seq = 0
        for flow in (1, 2):
            for epoch in range(3):
                evs.append(
                    {
                        "kind": "rtt_sample",
                        "seq": seq,
                        "flow": flow,
                        "rtt_ms": 10.0 + flow,
                        "epoch": epoch,
                        "detector": "changepoint",
                    }
                )
                seq += 1
        evs.append(
            {
                "kind": "changepoint",
                "seq": seq,
                "flow": 1,
                "epoch": 5,
                "cp_epoch": 3,
                "direction": "up",
                "rtt_ms": 40.0,
                "detector": "changepoint",
            }
        )
        return evs

    def test_measurement_events_validate(self):
        assert validate_events(self._events()) == []

    def test_bad_direction_rejected(self):
        bad = {**self._events()[-1], "direction": "sideways"}
        assert validate_event(bad)

    def test_digest_aggregates_per_detector(self):
        stats = summarize(self._events())["detector_stats"]
        assert set(stats) == {"changepoint"}
        cp = stats["changepoint"]
        assert cp["series"] == 2
        assert cp["samples"] == 6
        assert cp["detections"] == 1
        assert cp["mean_detection_delay"] == pytest.approx(2.0)

    def test_digest_absent_without_measurement_events(self):
        assert "detector_stats" not in summarize([GOOD_DEFLECTION])

    def test_render_mentions_detectors(self):
        text = render_summary(summarize(self._events()))
        assert "rtt detectors" in text
        assert "changepoint" in text

    def test_digest_is_json_serializable(self):
        json.dumps(summarize(self._events()))


def test_cli_level_schema_override(tmp_path):
    """validate_events accepts an external schema dict (the --schema path)."""
    schema = json.loads(json.dumps(TRACE_SCHEMA))  # a detached copy
    assert trace.validate_events([GOOD_DEFLECTION], schema) == []
