"""Tests for Route objects and the selection key."""

import pytest

from repro.bgp.route import Route, selection_key
from repro.topology.relationships import Relationship

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


class TestRoute:
    def test_local_route(self):
        r = Route(dest=5, as_path=(), learned_from=None)
        assert r.is_local
        assert r.next_hop is None
        assert r.length == 0

    def test_learned_route(self):
        r = Route(dest=5, as_path=(2, 3, 5), learned_from=C)
        assert not r.is_local
        assert r.next_hop == 2
        assert r.length == 3

    def test_path_must_end_at_dest(self):
        with pytest.raises(ValueError):
            Route(dest=5, as_path=(2, 3), learned_from=C)

    def test_contains(self):
        r = Route(dest=5, as_path=(2, 3, 5), learned_from=C)
        assert r.contains(3)
        assert not r.contains(7)

    def test_announced_by_prepends(self):
        r = Route(dest=5, as_path=(3, 5), learned_from=C)
        r2 = r.announced_by(2, P)
        assert r2.as_path == (2, 3, 5)
        assert r2.learned_from is P
        assert r2.dest == 5

    def test_frozen(self):
        r = Route(dest=5, as_path=(5,), learned_from=C)
        with pytest.raises(AttributeError):
            r.dest = 6


class TestSelectionKey:
    def test_class_dominates_length(self):
        long_customer = Route(dest=9, as_path=(4, 5, 6, 7, 9), learned_from=C)
        short_peer = Route(dest=9, as_path=(2, 9), learned_from=P)
        assert selection_key(long_customer) < selection_key(short_peer)

    def test_length_breaks_class_tie(self):
        a = Route(dest=9, as_path=(2, 9), learned_from=P)
        b = Route(dest=9, as_path=(3, 4, 9), learned_from=P)
        assert selection_key(a) < selection_key(b)

    def test_lowest_next_hop_is_final_tiebreak(self):
        a = Route(dest=9, as_path=(2, 9), learned_from=P)
        b = Route(dest=9, as_path=(3, 9), learned_from=P)
        assert selection_key(a) < selection_key(b)

    def test_local_route_beats_everything(self):
        local = Route(dest=9, as_path=(), learned_from=None)
        best_learned = Route(dest=9, as_path=(0, 9), learned_from=C)
        assert selection_key(local) < selection_key(best_learned)
