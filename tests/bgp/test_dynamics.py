"""Tests for BGP dynamics: link failure, withdrawal churn, repair."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.speaker import BgpNetwork
from repro.errors import TopologyError
from repro.topology.asgraph import ASGraph

from ..conftest import as_graphs


@pytest.fixture
def fig11_net(fig11_graph):
    net = BgpNetwork(fig11_graph)
    net.announce(5)
    return net


class TestFailLink:
    def test_reroutes_around_failure(self, fig11_net):
        # Default 3 -> 4 -> 5; failing (3, 4) forces the path via 6.
        assert fig11_net.best_path(3, 5) == (3, 4, 5)
        churn = fig11_net.fail_link(3, 4)
        assert churn > 0
        assert fig11_net.best_path(3, 5) == (3, 6, 5)
        assert fig11_net.best_path(1, 5) == (1, 3, 6, 5)

    def test_partition_withdraws_routes(self):
        g = ASGraph.from_links(p2c=[(1, 0), (2, 1)])
        net = BgpNetwork(g)
        net.announce(0)
        assert net.best_path(2, 0) == (2, 1, 0)
        net.fail_link(1, 0)
        assert net.best(1, 0) is None
        assert net.best(2, 0) is None  # withdrawal propagated upstream

    def test_unknown_link_rejected(self, fig11_net):
        with pytest.raises(TopologyError):
            fig11_net.fail_link(1, 5)

    def test_unrelated_failure_changes_nothing(self, fig11_net):
        before = {x: fig11_net.best_path(x, 5) for x in (1, 2, 3)}
        fig11_net.fail_link(6, 3)  # the unused alternative
        after = {x: fig11_net.best_path(x, 5) for x in (1, 2, 3)}
        assert before == after

    def test_rib_loses_failed_alternative(self, fig11_net):
        assert 6 in fig11_net.rib_neighbors(3, 5)
        fig11_net.fail_link(6, 3)
        assert 6 not in fig11_net.rib_neighbors(3, 5)


class TestRestoreLink:
    def test_restore_returns_to_original(self, fig11_net):
        fig11_net.fail_link(3, 4)
        assert fig11_net.best_path(3, 5) == (3, 6, 5)
        fig11_net.restore_link(3, 4)
        assert fig11_net.best_path(3, 5) == (3, 4, 5)
        assert set(fig11_net.rib_neighbors(3, 5)) == {4, 6}

    def test_restore_of_up_link_is_noop(self, fig11_net):
        assert fig11_net.restore_link(3, 4) == 0


class TestFailureProperties:
    @given(g=as_graphs(max_nodes=9), link_idx=st.integers(0, 50))
    @settings(max_examples=50, deadline=None)
    def test_fail_restore_round_trip(self, g, link_idx):
        """Failing and restoring any link returns to the converged state."""
        links = g.links()
        u, v, _rel = links[link_idx % len(links)]
        net = BgpNetwork(g)
        net.announce(0)
        before_paths = {x: net.best_path(x, 0) for x in g.nodes()}
        before_ribs = {x: net.rib_neighbors(x, 0) for x in g.nodes()}
        net.fail_link(u, v)
        net.restore_link(u, v)
        assert {x: net.best_path(x, 0) for x in g.nodes()} == before_paths
        assert {x: net.rib_neighbors(x, 0) for x in g.nodes()} == before_ribs

    @given(g=as_graphs(max_nodes=9), link_idx=st.integers(0, 50))
    @settings(max_examples=50, deadline=None)
    def test_post_failure_state_is_failure_free_convergence(self, g, link_idx):
        """Converging then failing (u,v) must equal converging on the graph
        without (u,v) — re-convergence reaches the true fixed point."""
        links = g.links()
        u, v, rel = links[link_idx % len(links)]
        net = BgpNetwork(g)
        net.announce(0)
        net.fail_link(u, v)

        # Reference: rebuild the graph without that link.
        from repro.topology.relationships import Relationship

        ref = ASGraph()
        for n in g.nodes():
            ref.add_as(n)
        for a, b, r in links:
            if (a, b) == (u, v):
                continue
            if r is Relationship.CUSTOMER:
                ref.add_p2c(a, b)
            elif r is Relationship.PROVIDER:
                ref.add_p2c(b, a)
            else:
                ref.add_peering(a, b)
        ref.freeze()
        ref_net = BgpNetwork(ref)
        ref_net.announce(0)

        for x in g.nodes():
            assert net.best_path(x, 0) == ref_net.best_path(x, 0), x
