"""Cross-validation of the array routing backend against the dict oracle.

The acceptance bar for ``repro.bgp.array_routing``: on seeded synthetic
topologies, every query (``best_path``, ``rib``, ``alternatives``,
``reachable_count`` and friends) must be **identical** to the dict-based
:class:`~repro.bgp.propagation.DestinationRouting` — not statistically
close, equal.
"""

import pytest

from repro.bgp.array_routing import ArrayDestinationRouting, compute_array_routing
from repro.bgp.propagation import compute_routing
from repro.errors import NoRouteError, TopologyError
from repro.topology.asgraph import ASGraph
from repro.topology.generator import TopologyConfig, generate_topology

SEEDS = (2014, 7, 99)


@pytest.fixture(scope="module", params=SEEDS)
def graph_pair(request):
    graph = generate_topology(TopologyConfig(n_ases=250, seed=request.param))
    return graph


def _destinations(graph):
    nodes = sorted(graph.nodes())
    # a spread of destinations: stubs, middle, and the largest providers
    return nodes[:5] + nodes[len(nodes) // 2 : len(nodes) // 2 + 5] + nodes[-5:]


class TestCrossValidation:
    def test_identical_output_on_seeded_topologies(self, graph_pair):
        graph = graph_pair
        for dest in _destinations(graph):
            array = compute_array_routing(graph, dest)
            oracle = compute_routing(graph, dest)
            assert array.reachable_count() == oracle.reachable_count()
            for x in graph.nodes():
                assert array.has_route(x) == oracle.has_route(x)
                if not oracle.has_route(x):
                    continue
                assert array.best_class(x) == oracle.best_class(x)
                assert array.best_len(x) == oracle.best_len(x)
                assert array.next_hop(x) == oracle.next_hop(x)
                assert array.best_path(x) == oracle.best_path(x)
                assert array.rib(x) == oracle.rib(x)
                assert array.rib(x, loop_filter=False) == oracle.rib(
                    x, loop_filter=False
                )
                assert array.alternatives(x) == oracle.alternatives(x)

    def test_entries_are_plain_python_ints(self, graph_pair):
        """Byte-identical includes types: no numpy scalars may leak out."""
        graph = graph_pair
        dest = sorted(graph.nodes())[0]
        array = compute_array_routing(graph, dest)
        src = sorted(graph.nodes())[-1]
        for hop in array.best_path(src):
            assert type(hop) is int
        for entry in array.rib(src):
            assert type(entry.neighbor) is int
            assert type(entry.length) is int
        nh = array.next_hop(src)
        assert nh is None or type(nh) is int
        assert type(array.best_len(src)) is int


class TestEdgeCases:
    def test_requires_frozen_graph(self):
        g = ASGraph()
        g.add_p2c(1, 0)
        with pytest.raises(TopologyError, match="freeze"):
            compute_array_routing(g, 0)

    def test_unknown_destination(self):
        g = ASGraph.from_links(p2c=[(1, 0)])
        with pytest.raises(TopologyError):
            compute_array_routing(g, 99)

    def test_destination_itself(self):
        g = ASGraph.from_links(p2c=[(1, 0), (2, 0)], peering=[(1, 2)])
        r = compute_array_routing(g, 0)
        assert r.next_hop(0) is None
        assert r.best_class(0) is None
        assert r.best_path(0) == (0,)
        assert r.rib(0) == ()
        assert r.alternatives(0) == ()

    def test_no_route_raises(self):
        g = ASGraph()
        g.add_p2c(1, 0)
        g.add_as(9)  # isolated
        g.freeze()
        r = compute_array_routing(g, 0)
        assert not r.has_route(9)
        with pytest.raises(NoRouteError):
            r.next_hop(9)
        with pytest.raises(NoRouteError):
            r.best_path(9)
        with pytest.raises(NoRouteError):
            r.best_class(9)
        with pytest.raises(NoRouteError):
            r.best_len(9)

    def test_unknown_query_node(self):
        g = ASGraph.from_links(p2c=[(1, 0)])
        r = compute_array_routing(g, 0)
        with pytest.raises(TopologyError):
            r.has_route(42)

    def test_state_roundtrip(self):
        g = ASGraph.from_links(p2c=[(1, 0), (2, 1), (2, 3)], peering=[(1, 3)])
        original = compute_array_routing(g, 0)
        rebuilt = ArrayDestinationRouting.from_state(g, 0, original.state())
        for x in g.nodes():
            assert rebuilt.has_route(x) == original.has_route(x)
            if original.has_route(x):
                assert rebuilt.best_path(x) == original.best_path(x)
                assert rebuilt.rib(x) == original.rib(x)
