"""Regression tests for latent bugs fixed alongside the static verifier.

Three fixes, each with the failure mode it guards against:

1. ``ArrayDestinationRouting`` trusted ``from_state()`` payloads: a
   reachable node whose next-hop slot held the ``-1`` sentinel would
   silently index ``asns[-1]`` (numpy wraparound) and return the *last*
   ASN as a next hop — a wrong answer instead of an error.
2. ``ParallelRoutingEngine.compute_many`` had no fallback when ``fork``
   exists but pool creation fails (fd/process limits, sandboxes): the
   whole run died on an ``OSError`` that only affects wall-clock.
3. ``RoutingCache.precompute`` silently accepted an engine whose backend
   differed from the cache's, mixing dict and array substrates in one
   cache.
"""

import numpy as np
import pytest

from repro.bgp import parallel as parallel_mod
from repro.bgp.array_routing import ArrayDestinationRouting, compute_array_routing
from repro.bgp.parallel import ParallelRoutingEngine
from repro.bgp.propagation import RoutingCache
from repro.errors import ConfigError, RoutingError
from repro.topology.generator import TopologyConfig, generate_topology


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=150, seed=11))


def _corrupted(routing: ArrayDestinationRouting, victim: int) -> ArrayDestinationRouting:
    """Rebuild ``routing`` with ``victim``'s next-hop slot zeroed to -1."""
    cust, peer, export, cls, nh = routing.state()
    nh = nh.copy()
    nh[routing.csr.index[victim]] = np.int32(-1)
    return ArrayDestinationRouting.from_state(
        routing.graph, routing.dest, (cust, peer, export, cls, nh)
    )


class TestCorruptedStateGuards:
    """Fix 1: no-hop sentinel on a reachable node must raise, not wrap."""

    def _pick(self, graph):
        dest = sorted(graph.nodes())[0]
        routing = compute_array_routing(graph, dest)
        # a node at distance >= 2 so some *other* node routes through it
        for x in sorted(graph.nodes()):
            if x != dest and routing.has_route(x) and routing.best_len(x) == 1:
                for y in sorted(graph.nodes()):
                    if (
                        y not in (x, dest)
                        and routing.has_route(y)
                        and len(routing.best_path(y)) > 2
                        and routing.best_path(y)[1] == x
                    ):
                        return routing, x, y
        pytest.skip("topology has no two-hop default path")

    def test_next_hop_raises_instead_of_wrapping(self, graph):
        routing, victim, _ = self._pick(graph)
        bad = _corrupted(routing, victim)
        assert bad.has_route(victim)  # still claims reachability...
        with pytest.raises(RoutingError, match="no next hop"):
            bad.next_hop(victim)  # ...so the dead slot must be loud

    def test_best_path_raises_instead_of_wrapping(self, graph):
        routing, victim, upstream = self._pick(graph)
        bad = _corrupted(routing, victim)
        with pytest.raises(RoutingError, match="dead-ends"):
            bad.best_path(upstream)

    def test_intact_state_round_trips(self, graph):
        dest = sorted(graph.nodes())[0]
        routing = compute_array_routing(graph, dest)
        rebuilt = ArrayDestinationRouting.from_state(graph, dest, routing.state())
        probe = sorted(graph.nodes())[-1]
        assert rebuilt.best_path(probe) == routing.best_path(probe)
        assert rebuilt.rib(probe) == routing.rib(probe)


class _BrokenContext:
    """A multiprocessing context whose pool creation always fails."""

    def Pool(self, *args, **kwargs):  # noqa: N802 - multiprocessing API
        raise OSError("Resource temporarily unavailable")


class _BrokenMultiprocessing:
    @staticmethod
    def get_all_start_methods():
        return ["fork"]  # claim fork support so the parallel path is taken

    @staticmethod
    def get_context(method):
        assert method == "fork"
        return _BrokenContext()


class TestPoolFailureFallback:
    """Fix 2: pool creation failing with OSError degrades to serial."""

    def test_oserror_falls_back_to_serial(self, graph, monkeypatch):
        dests = list(range(0, 12))
        expected = {
            d: r.best_path(140)
            for d, r in ParallelRoutingEngine(graph, n_workers=1)
            .compute_many(dests)
            .items()
        }
        monkeypatch.setattr(parallel_mod, "multiprocessing", _BrokenMultiprocessing())
        engine = ParallelRoutingEngine(graph, n_workers=4)
        assert engine.effective_workers == 4  # parallel path *is* attempted
        result = engine.compute_many(dests)
        assert {d: r.best_path(140) for d, r in result.items()} == expected

    def test_non_oserror_still_propagates(self, graph, monkeypatch):
        class _Exploding(_BrokenContext):
            def Pool(self, *args, **kwargs):  # noqa: N802
                raise ValueError("not a resource problem")

        class _Mp(_BrokenMultiprocessing):
            @staticmethod
            def get_context(method):
                return _Exploding()

        monkeypatch.setattr(parallel_mod, "multiprocessing", _Mp())
        engine = ParallelRoutingEngine(graph, n_workers=4)
        with pytest.raises(ValueError, match="not a resource problem"):
            engine.compute_many(list(range(8)))


class TestPrecomputeBackendMismatch:
    """Fix 3: filling a cache from a different-backend engine is an error."""

    @pytest.mark.parametrize(
        ("cache_backend", "engine_backend"),
        [("dict", "array"), ("array", "dict")],
    )
    def test_mismatch_rejected(self, graph, cache_backend, engine_backend):
        cache = RoutingCache(graph, backend=cache_backend)
        engine = ParallelRoutingEngine(graph, n_workers=1, backend=engine_backend)
        with pytest.raises(ConfigError, match="does not match cache backend"):
            cache.precompute([0, 1], engine=engine)
        assert len(cache) == 0  # nothing partially inserted

    def test_matching_backend_still_fills(self, graph):
        cache = RoutingCache(graph, backend="array")
        engine = ParallelRoutingEngine(graph, n_workers=1, backend="array")
        assert cache.precompute([0, 1, 2], engine=engine) == 3
        assert len(cache) == 3
