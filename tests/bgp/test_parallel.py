"""Edge cases of the parallel routing engine.

The contract: worker count changes wall-clock, never results — including
degenerate inputs (empty destination lists, unknown destinations) and the
serial fallback.
"""

import pytest

from repro.bgp.parallel import ParallelRoutingEngine, fork_available, resolve_workers
from repro.bgp.propagation import RoutingCache
from repro.errors import ConfigError, TopologyError
from repro.topology.asgraph import ASGraph
from repro.topology.generator import TopologyConfig, generate_topology


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=200, seed=5))


DESTS = list(range(0, 30))


def _snapshot(routing_map, graph, probes=(3, 50, 199)):
    """A comparable digest of every destination's converged state."""
    out = {}
    for dest, r in sorted(routing_map.items()):
        out[dest] = tuple(
            (r.best_path(x), r.rib(x)) for x in probes if r.has_route(x)
        ) + (r.reachable_count(),)
    return out


class TestFallbacks:
    def test_single_worker_equals_serial(self, graph):
        serial = ParallelRoutingEngine(graph, n_workers=1)
        assert serial.effective_workers == 1
        expected = _snapshot(serial.compute_many(DESTS), graph)
        if fork_available():
            parallel = ParallelRoutingEngine(graph, n_workers=2)
            assert _snapshot(parallel.compute_many(DESTS), graph) == expected

    def test_dict_backend_is_always_serial(self, graph):
        engine = ParallelRoutingEngine(graph, n_workers=4, backend="dict")
        assert engine.effective_workers == 1
        result = engine.compute_many(DESTS[:3])
        assert sorted(result) == DESTS[:3]
        assert result[0].best_path(100) == engine.compute(0).best_path(100)

    def test_empty_destination_list(self, graph):
        engine = ParallelRoutingEngine(graph, n_workers=2)
        assert engine.compute_many([]) == {}
        assert engine.compute_many(iter(())) == {}

    def test_duplicates_computed_once(self, graph):
        engine = ParallelRoutingEngine(graph, n_workers=1)
        result = engine.compute_many([7, 7, 7, 8])
        assert sorted(result) == [7, 8]


class TestErrors:
    def test_missing_destination_raises_from_worker(self, graph):
        for workers in (1, 2):
            engine = ParallelRoutingEngine(graph, n_workers=workers)
            with pytest.raises(TopologyError):
                engine.compute_many([0, 1, 999_999])

    def test_rejects_unfrozen_graph(self):
        g = ASGraph()
        g.add_p2c(1, 0)
        with pytest.raises(TopologyError, match="freeze"):
            ParallelRoutingEngine(g)

    def test_rejects_bad_knobs(self, graph):
        with pytest.raises(ConfigError):
            ParallelRoutingEngine(graph, backend="quantum")
        with pytest.raises(ConfigError):
            ParallelRoutingEngine(graph, n_workers=0)
        with pytest.raises(ConfigError):
            ParallelRoutingEngine(graph, chunk_size=0)
        with pytest.raises(ConfigError):
            resolve_workers(-3)


class TestDeterminism:
    @pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
    @pytest.mark.parametrize("workers", [2, 3])
    @pytest.mark.parametrize("chunk_size", [None, 1, 7])
    def test_identical_across_worker_counts(self, graph, workers, chunk_size):
        baseline = _snapshot(
            ParallelRoutingEngine(graph, n_workers=1).compute_many(DESTS), graph
        )
        engine = ParallelRoutingEngine(
            graph, n_workers=workers, chunk_size=chunk_size
        )
        assert _snapshot(engine.compute_many(DESTS), graph) == baseline


class TestCacheIntegration:
    def test_precompute_through_engine(self, graph):
        cache = RoutingCache(graph, backend="array")
        engine = ParallelRoutingEngine(graph, n_workers=2)
        n = cache.precompute(DESTS[:10], engine=engine)
        assert n == 10
        assert len(cache) == 10
        # precomputation is capacity planning: no demand counters touched
        assert cache.stats.hits == 0 and cache.stats.misses == 0
        before = cache.stats
        r = cache(DESTS[0])  # a hit, not a recompute
        assert cache.stats.hits == before.hits + 1
        assert r.best_path(150) == engine.compute(DESTS[0]).best_path(150)

    def test_precompute_skips_cached(self, graph):
        cache = RoutingCache(graph, backend="array")
        assert cache.precompute([1, 2]) == 2
        assert cache.precompute([1, 2, 3]) == 1
