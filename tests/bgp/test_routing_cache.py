"""LRU semantics, stats, and bulk precomputation of :class:`RoutingCache`."""

import pytest

from repro.bgp.propagation import RoutingCache
from repro.errors import ConfigError
from repro.topology.generator import TopologyConfig, generate_topology


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=120, seed=3))


class TestLru:
    def test_eviction_order_is_least_recently_used(self, graph):
        cache = RoutingCache(graph, max_entries=3)
        cache(0), cache(1), cache(2)
        cache(0)  # refresh 0: eviction order is now 1, 2, 0
        cache(3)  # evicts 1
        assert 0 in cache and 2 in cache and 3 in cache
        assert 1 not in cache
        cache(4)  # evicts 2
        assert 2 not in cache and 0 in cache

    def test_hit_returns_same_object(self, graph):
        cache = RoutingCache(graph)
        assert cache(0) is cache(0)

    def test_unbounded_by_default(self, graph):
        cache = RoutingCache(graph)
        for d in range(10):
            cache(d)
        assert len(cache) == 10
        assert cache.stats.evictions == 0


class TestStats:
    def test_counters(self, graph):
        cache = RoutingCache(graph, max_entries=2)
        cache(0)
        cache(0)
        cache(1)
        cache(2)  # evicts 0
        s = cache.stats
        assert (s.hits, s.misses, s.evictions) == (1, 3, 1)
        assert s.hit_rate == pytest.approx(0.25)

    def test_empty_hit_rate(self, graph):
        assert RoutingCache(graph).stats.hit_rate == 0.0


class TestBackends:
    def test_rejects_unknown_backend(self, graph):
        with pytest.raises(ConfigError):
            RoutingCache(graph, backend="fpga")

    @pytest.mark.parametrize("backend", ["dict", "array"])
    def test_backends_agree(self, graph, backend):
        cache = RoutingCache(graph, backend=backend)
        r = cache(0)
        assert r.reachable_count() == len(graph)
        assert r.best_path(100)[-1] == 0

    def test_precompute_serial(self, graph):
        cache = RoutingCache(graph, backend="array")
        assert cache.precompute(range(5)) == 5
        assert len(cache) == 5
        assert cache.stats.misses == 0

    def test_precompute_respects_max_entries(self, graph):
        cache = RoutingCache(graph, max_entries=3)
        cache.precompute(range(5))
        assert len(cache) == 3
        assert cache.stats.evictions == 2
