"""Cross-validation: the fast three-stage computation must agree with the
message-level oracle on every graph hypothesis can throw at it.

This is the strongest correctness evidence for the routing substrate: two
independently written models (O(E) algorithmic vs exhaustive message
passing) converging to identical best paths and identical multi-neighbor
RIBs.
"""

from hypothesis import given, settings

from repro.bgp.propagation import compute_routing
from repro.bgp.speaker import BgpNetwork

from ..conftest import as_graphs


@given(as_graphs(max_nodes=10))
@settings(max_examples=60, deadline=None)
def test_best_paths_agree(g):
    dest = 0
    fast = compute_routing(g, dest)
    oracle = BgpNetwork(g)
    oracle.announce(dest)
    for x in g.nodes():
        if x == dest:
            continue
        oracle_path = oracle.best_path(x, dest)
        if oracle_path is None:
            assert not fast.has_route(x)
            continue
        assert fast.has_route(x)
        assert fast.best_path(x) == oracle_path, (
            f"AS {x}: fast={fast.best_path(x)} oracle={oracle_path}"
        )


@given(as_graphs(max_nodes=10))
@settings(max_examples=60, deadline=None)
def test_ribs_agree(g):
    dest = 0
    fast = compute_routing(g, dest)
    oracle = BgpNetwork(g)
    oracle.announce(dest)
    for x in g.nodes():
        if x == dest:
            continue
        fast_rib = {e.neighbor for e in fast.rib(x)}
        oracle_rib = set(oracle.rib_neighbors(x, dest))
        assert fast_rib == oracle_rib, f"AS {x}: {fast_rib} vs {oracle_rib}"


@given(as_graphs(max_nodes=10))
@settings(max_examples=40, deadline=None)
def test_best_classes_agree(g):
    dest = 0
    fast = compute_routing(g, dest)
    oracle = BgpNetwork(g)
    oracle.announce(dest)
    for x in g.nodes():
        if x == dest or not fast.has_route(x):
            continue
        best = oracle.best(x, dest)
        assert best is not None
        assert fast.best_class(x) is best.learned_from
        assert fast.best_len(x) == best.length
