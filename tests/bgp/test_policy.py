"""Tests for export/import policy and best-route selection."""

from repro.bgp.policy import accepts, can_export, local_preference, select_best
from repro.bgp.route import Route
from repro.topology.relationships import Relationship

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


def route(path, learned):
    return Route(dest=path[-1], as_path=tuple(path), learned_from=learned)


class TestExport:
    def test_customer_route_exports_to_all(self):
        r = route([2, 9], C)
        assert can_export(r, C) and can_export(r, P) and can_export(r, R)

    def test_provider_route_only_to_customers(self):
        r = route([2, 9], R)
        assert can_export(r, C)
        assert not can_export(r, P)
        assert not can_export(r, R)

    def test_peer_route_only_to_customers(self):
        r = route([2, 9], P)
        assert can_export(r, C)
        assert not can_export(r, P)


class TestImport:
    def test_loop_rejected(self):
        assert not accepts(3, route([2, 3, 9], C))

    def test_clean_route_accepted(self):
        assert accepts(7, route([2, 3, 9], C))


class TestSelection:
    def test_empty(self):
        assert select_best([]) is None

    def test_prefers_customer_class(self):
        best = select_best([route([5, 9], P), route([6, 7, 8, 9], C)])
        assert best.learned_from is C

    def test_prefers_shorter_within_class(self):
        best = select_best([route([5, 6, 9], P), route([7, 9], P)])
        assert best.next_hop == 7

    def test_tiebreak_lowest_next_hop(self):
        best = select_best([route([5, 9], P), route([3, 9], P)])
        assert best.next_hop == 3

    def test_local_preference_values(self):
        assert local_preference(route([2, 9], C)) > local_preference(route([2, 9], P))
        assert local_preference(route([2, 9], P)) > local_preference(route([2, 9], R))
        assert local_preference(Route(dest=9, as_path=(), learned_from=None)) == 110
