"""Tests for the fast three-stage per-destination routing computation."""

import pytest

from repro.bgp.propagation import RoutingCache, compute_routing
from repro.errors import NoRouteError, TopologyError
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship, is_valley_free

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


class TestBasics:
    def test_requires_frozen_graph(self):
        g = ASGraph()
        g.add_p2c(1, 0)
        with pytest.raises(TopologyError, match="freeze"):
            compute_routing(g, 0)

    def test_unknown_destination(self, fig2a_graph):
        with pytest.raises(TopologyError):
            compute_routing(fig2a_graph, 99)

    def test_destination_itself(self, fig2a_graph):
        r = compute_routing(fig2a_graph, 0)
        assert r.next_hop(0) is None
        assert r.best_class(0) is None
        assert r.best_path(0) == (0,)
        assert r.rib(0) == ()

    def test_no_route_raises(self):
        g = ASGraph()
        g.add_p2c(1, 0)
        g.add_as(9)  # isolated
        g.freeze()
        r = compute_routing(g, 0)
        assert not r.has_route(9)
        with pytest.raises(NoRouteError):
            r.next_hop(9)
        with pytest.raises(NoRouteError):
            r.best_path(9)


class TestFig2a:
    """Paper Fig. 2(a): three peers above a shared customer."""

    def test_default_paths_direct(self, fig2a_graph):
        r = compute_routing(fig2a_graph, 0)
        for asn in (1, 2, 3):
            assert r.next_hop(asn) == 0
            assert r.best_class(asn) is C
            assert r.best_path(asn) == (asn, 0)

    def test_alternatives_via_peers(self, fig2a_graph):
        r = compute_routing(fig2a_graph, 0)
        # AS 1 hears the route from customer-side AS 0 directly and from
        # both peers (their best routes are customer routes, exportable
        # to peers).
        assert [e.neighbor for e in r.rib(1)] == [0, 2, 3]
        alts = r.alternatives(1)
        assert {e.neighbor for e in alts} == {2, 3}
        assert all(e.relationship is P for e in alts)
        assert all(e.length == 2 for e in alts)


class TestFig11:
    """The six-AS testbed graph: paper Section V-B paths."""

    def test_default_paths(self, fig11_graph):
        r = compute_routing(fig11_graph, 5)
        assert r.best_path(1) == (1, 3, 4, 5)
        assert r.best_path(2) == (2, 3, 4, 5)
        assert r.best_path(3) == (3, 4, 5)

    def test_as3_has_alternative_via_6(self, fig11_graph):
        r = compute_routing(fig11_graph, 5)
        assert {e.neighbor for e in r.alternatives(3)} == {6}

    def test_tiebreak_chose_lower_asn(self, fig11_graph):
        # AS3's two provider routes tie on class and length; AS 4 < AS 6.
        r = compute_routing(fig11_graph, 5)
        assert r.next_hop(3) == 4


class TestChain:
    def test_provider_route_chains_down(self, chain_graph):
        r = compute_routing(chain_graph, 2)
        # AS 0 reaches the top provider 2 via its provider 1.
        assert r.best_path(0) == (0, 1, 2)
        assert r.best_class(0) is R
        assert r.best_len(0) == 2

    def test_customer_route_chains_up(self, chain_graph):
        r = compute_routing(chain_graph, 0)
        assert r.best_path(2) == (2, 1, 0)
        assert r.best_class(2) is C


class TestInvariants:
    """Structural invariants on a generated Internet."""

    @pytest.fixture(scope="class")
    def routing(self, small_internet):
        return [compute_routing(small_internet, d) for d in (0, 50, 250, 299)]

    def test_full_reachability(self, small_internet, routing):
        for r in routing:
            assert r.reachable_count() == len(small_internet)

    def test_default_paths_valley_free(self, small_internet, routing):
        for r in routing:
            for x in list(small_internet.nodes())[::7]:
                path = r.best_path(x)
                steps = [
                    small_internet.relationship(path[i], path[i + 1])
                    for i in range(len(path) - 1)
                ]
                assert is_valley_free(steps), (path, steps)

    def test_default_paths_loop_free(self, small_internet, routing):
        for r in routing:
            for x in small_internet.nodes():
                path = r.best_path(x)
                assert len(set(path)) == len(path)

    def test_path_length_decreases_hop_by_hop(self, small_internet, routing):
        for r in routing:
            for x in list(small_internet.nodes())[::13]:
                if x == r.dest:
                    continue
                nh = r.next_hop(x)
                assert r.best_len(nh) == r.best_len(x) - 1

    def test_rib_first_entry_is_default(self, small_internet, routing):
        for r in routing:
            for x in list(small_internet.nodes())[::7]:
                if x == r.dest:
                    continue
                rib = r.rib(x)
                assert rib, f"AS {x} has empty RIB"
                assert rib[0].neighbor == r.next_hop(x)

    def test_rib_entries_never_contain_self(self, small_internet, routing):
        for r in routing:
            for x in list(small_internet.nodes())[::17]:
                for e in r.rib(x):
                    if e.neighbor == r.dest:
                        continue
                    assert x not in r.best_path(e.neighbor)

    def test_rib_lengths_consistent(self, small_internet, routing):
        for r in routing:
            for x in list(small_internet.nodes())[::23]:
                if x == r.dest:
                    continue
                for e in r.rib(x):
                    assert e.length == r.best_len(e.neighbor) + 1


class TestRoutingCache:
    def test_caches(self, fig2a_graph):
        cache = RoutingCache(fig2a_graph)
        a = cache(0)
        b = cache(0)
        assert a is b
        assert len(cache) == 1

    def test_eviction(self, fig2a_graph):
        cache = RoutingCache(fig2a_graph, max_entries=2)
        cache(0), cache(1), cache(2)
        assert len(cache) == 2
