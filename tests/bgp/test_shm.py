"""Lifecycle of the shared-memory CSR export and the persistent pool.

Three fronts, matching the guarantees :mod:`repro.bgp.shm` and
``ParallelRoutingEngine(persistent=True)`` document:

* **segment lifecycle** — create → attach (same process and in a child)
  → close unlinks exactly once, on explicit close *and* on garbage
  collection, with ``/dev/shm`` provably clean afterwards;
* **reuse determinism** — two consecutive propagations over one standing
  pool are byte-identical to two fresh engines and to the serial path;
* **crash resilience** — a SIGKILLed worker degrades the call to serial
  (correct results, fallback on the telemetry record), the broken pool is
  discarded, the next call rebuilds it, and close still leaves no
  segment behind.
"""

import gc
import os
import signal
import time

import numpy as np
import pytest

from repro import telemetry as tm
from repro.bgp.parallel import ParallelRoutingEngine
from repro.bgp.shm import CsrSegment, attach_csr
from repro.errors import TopologyError
from repro.topology.generator import TopologyConfig, generate_topology

DESTS = list(range(0, 24))


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=150, seed=9))


@pytest.fixture(autouse=True)
def no_shm_leak():
    """Every test must leave /dev/shm exactly as it found it."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        yield
        return
    before = set(os.listdir("/dev/shm"))
    yield
    gc.collect()
    leaked = set(os.listdir("/dev/shm")) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _segment_exists(name: str) -> bool:
    return os.path.exists(os.path.join("/dev/shm", name))


def _digest(routing_map):
    """A byte-comparable digest of every destination's result arrays."""
    return {
        dest: tuple(arr.tobytes() for arr in r.state())
        for dest, r in sorted(routing_map.items())
    }


class TestSegmentLifecycle:
    def test_roundtrip_same_process(self, graph):
        csr = graph.csr()
        with CsrSegment.create(csr) as segment:
            assert _segment_exists(segment.manifest.segment)
            with attach_csr(segment.manifest) as attached:
                shared = attached.csr
                assert shared.n_nodes == csr.n_nodes
                assert shared.index == csr.index
                np.testing.assert_array_equal(shared.asns, csr.asns)
                np.testing.assert_array_equal(shared.cust_indptr, csr.cust_indptr)
                np.testing.assert_array_equal(shared.nbr_indices, csr.nbr_indices)
                np.testing.assert_array_equal(shared.nbr_rel, csr.nbr_rel)
                # attached arrays are views, not copies, and read-only
                assert not shared.asns.flags.owndata
                assert not shared.asns.flags.writeable
                with pytest.raises(ValueError):
                    # the runtime twin of the static rule: attached arrays
                    # refuse in-place stores
                    shared.asns[0] = 1  # mifolint: disable=MF003 (deliberate)
        assert segment.closed

    def test_attach_in_forked_child(self, graph):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("needs the fork start method")
        import multiprocessing

        csr = graph.csr()
        with CsrSegment.create(csr) as segment:
            ctx = multiprocessing.get_context("fork")
            ok = ctx.Value("i", 0)

            def child(manifest, flag):
                with attach_csr(manifest) as attached:
                    same = attached.csr.index == csr.index and bool(
                        (attached.csr.asns == csr.asns).all()
                    )
                flag.value = 1 if same else -1

            p = ctx.Process(target=child, args=(segment.manifest, ok))
            p.start()
            p.join(timeout=30)
            assert ok.value == 1

    def test_close_unlinks_and_blocks_attach(self, graph):
        segment = CsrSegment.create(graph.csr())
        name = segment.manifest.segment
        assert _segment_exists(name)
        segment.close()
        assert segment.closed
        assert not _segment_exists(name)
        segment.close()  # idempotent
        with pytest.raises(TopologyError, match="does not exist"):
            attach_csr(segment.manifest)

    def test_gc_unlinks(self, graph):
        segment = CsrSegment.create(graph.csr())
        name = segment.manifest.segment
        del segment
        gc.collect()
        assert not _segment_exists(name)

    def test_pinned_name(self, graph):
        with CsrSegment.create(graph.csr(), name="mifo_test_pin") as segment:
            assert segment.manifest.segment == "mifo_test_pin"
            assert _segment_exists("mifo_test_pin")
        assert not _segment_exists("mifo_test_pin")


class TestPersistentDeterminism:
    def test_reuse_matches_fresh_engines_and_serial(self, graph):
        serial = _digest(
            ParallelRoutingEngine(graph, n_workers=1).compute_many(DESTS)
        )
        with ParallelRoutingEngine(graph, n_workers=2, persistent=True) as engine:
            first = _digest(engine.compute_many(DESTS))
            assert engine.pool_live
            second = _digest(engine.compute_many(DESTS))
        with ParallelRoutingEngine(graph, n_workers=2, persistent=True) as fresh:
            third = _digest(fresh.compute_many(DESTS))
        assert first == second == third == serial

    def test_pool_and_segment_reused_across_calls(self, graph):
        with ParallelRoutingEngine(graph, n_workers=2, persistent=True) as engine:
            assert not engine.pool_live and engine.segment_name is None
            with tm.telemetry_session(True) as session:
                engine.compute_many(DESTS[:8])
                name = engine.segment_name
                engine.compute_many(DESTS[8:16])
                assert engine.segment_name == name
                counters = session.delta().counters
            assert counters["parallel.pool_starts"] == 1
            assert counters["parallel.pool_reuses"] == 1
            assert counters["bgp.destinations_converged"] == 16
        assert not _segment_exists(name)

    def test_close_then_reuse_recreates(self, graph):
        engine = ParallelRoutingEngine(graph, n_workers=2, persistent=True)
        engine.compute_many(DESTS[:4])
        first_name = engine.segment_name
        engine.close()
        assert not engine.pool_live and engine.segment_name is None
        result = engine.compute_many(DESTS[:4])
        assert sorted(result) == DESTS[:4]
        assert engine.segment_name is not None
        assert engine.segment_name != first_name or _segment_exists(
            engine.segment_name
        )
        engine.close()

    def test_unknown_destination_raises(self, graph):
        with ParallelRoutingEngine(graph, n_workers=2, persistent=True) as engine:
            with pytest.raises(TopologyError, match="999999"):
                engine.compute_many([0, 999_999])


class TestCrashRecovery:
    def test_killed_worker_falls_back_then_rebuilds(self, graph):
        serial = _digest(
            ParallelRoutingEngine(graph, n_workers=1).compute_many(DESTS)
        )
        with ParallelRoutingEngine(graph, n_workers=2, persistent=True) as engine:
            engine.compute_many(DESTS[:4])  # spin the pool up
            pool = engine._resources.pool
            assert pool is not None
            victims = list(pool._processes.values())
            assert victims
            for proc in victims:
                os.kill(proc.pid, signal.SIGKILL)
            # give the executor a beat to notice the corpses
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and any(
                p.is_alive() for p in victims
            ):
                time.sleep(0.05)
            with tm.telemetry_session(True) as session:
                crashed = _digest(engine.compute_many(DESTS))
                counters = session.delta().counters
            assert crashed == serial
            assert counters.get("parallel.pool_fallbacks", 0) == 1
            assert not engine.pool_live  # broken pool was discarded
            rebuilt = _digest(engine.compute_many(DESTS))
            assert rebuilt == serial
            assert engine.pool_live
            name = engine.segment_name
        assert name is not None and not _segment_exists(name)
