"""Tests for the message-level BGP model (RIBs + speakers)."""

import pytest

from repro.bgp.rib import AdjRibIn, LocRib
from repro.bgp.route import Route
from repro.bgp.speaker import BgpNetwork
from repro.errors import TopologyError
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


class TestAdjRibIn:
    def test_update_and_withdraw(self):
        rib = AdjRibIn(owner=7)
        r = Route(dest=9, as_path=(2, 9), learned_from=C)
        assert rib.update(9, 2, r)
        assert not rib.update(9, 2, r)  # no change
        assert rib.route_from(9, 2) == r
        assert rib.update(9, 2, None)  # withdraw
        assert rib.route_from(9, 2) is None
        assert not rib.update(9, 2, None)  # double-withdraw is a no-op

    def test_looping_route_treated_as_withdrawal(self):
        rib = AdjRibIn(owner=7)
        good = Route(dest=9, as_path=(2, 9), learned_from=C)
        rib.update(9, 2, good)
        looping = Route(dest=9, as_path=(2, 7, 9), learned_from=C)
        assert rib.update(9, 2, looping)  # replaces the good route with nothing
        assert rib.candidates(9) == []

    def test_neighbors_offering_sorted(self):
        rib = AdjRibIn(owner=7)
        rib.update(9, 5, Route(dest=9, as_path=(5, 9), learned_from=C))
        rib.update(9, 2, Route(dest=9, as_path=(2, 9), learned_from=C))
        assert rib.neighbors_offering(9) == [2, 5]


class TestLocRib:
    def test_originate_wins(self):
        loc = LocRib(owner=9)
        loc.originate(9)
        adj = AdjRibIn(owner=9)
        adj.update(9, 2, Route(dest=9, as_path=(2, 9), learned_from=C))
        assert not loc.reselect(9, adj)  # local route never displaced
        assert loc.best(9).is_local

    def test_reselect_reports_change(self):
        loc = LocRib(owner=7)
        adj = AdjRibIn(owner=7)
        adj.update(9, 5, Route(dest=9, as_path=(5, 9), learned_from=P))
        assert loc.reselect(9, adj)
        adj.update(9, 2, Route(dest=9, as_path=(2, 9), learned_from=C))
        assert loc.reselect(9, adj)
        assert loc.next_hop(9) == 2
        assert loc.best_relationship(9) is C

    def test_withdrawal_clears_best(self):
        loc = LocRib(owner=7)
        adj = AdjRibIn(owner=7)
        adj.update(9, 5, Route(dest=9, as_path=(5, 9), learned_from=P))
        loc.reselect(9, adj)
        adj.update(9, 5, None)
        assert loc.reselect(9, adj)
        assert loc.best(9) is None
        assert loc.destinations() == []


class TestBgpNetwork:
    def test_requires_frozen(self):
        g = ASGraph()
        g.add_p2c(1, 0)
        with pytest.raises(TopologyError):
            BgpNetwork(g)

    def test_fig2a_convergence(self, fig2a_graph):
        net = BgpNetwork(fig2a_graph)
        messages = net.announce(0)
        assert messages > 0
        for asn in (1, 2, 3):
            assert net.next_hop(asn, 0) == 0
            assert net.best_path(asn, 0) == (asn, 0)
            # Peers offer alternatives: full RIB visibility.
            assert set(net.rib_neighbors(asn, 0)) == {0} | ({1, 2, 3} - {asn})

    def test_valley_free_blocks_peer_transit(self, fig2a_graph):
        net = BgpNetwork(fig2a_graph)
        net.announce(0)
        # AS 1's best is its customer route; had AS 1 only a peer route it
        # could not transit.  Check the export side: AS 1 announces its
        # customer route to peers (so they have alternatives), which is
        # legal; but no AS should ever learn a path through two peer links.
        for asn in (1, 2, 3):
            for nb in net.rib_neighbors(asn, 0):
                path = net.speakers[asn].adj_in.route_from(0, nb).as_path
                # A 2-peer-hop path like (2, 3, 0) from AS 1 would mean a
                # peer exported a peer route.
                if len(path) >= 2 and nb != 0:
                    # nb exported its customer route (direct to 0).
                    assert path[-2] in (1, 2, 3)
                    assert path == (nb, 0)

    def test_message_budget(self, small_internet):
        net = BgpNetwork(small_internet)
        with pytest.raises(RuntimeError, match="budget"):
            net.announce(0, max_messages=3)
