"""Edge-case tests for route propagation: exotic tie-breaks, deep chains,
peer-only reachability, disconnected fragments."""


from repro.bgp.propagation import compute_routing
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


class TestTieBreaks:
    def test_shorter_customer_route_wins(self):
        # dest 0; AS 3 reaches it via customer chains 3->1->0 and 3->0.
        g = ASGraph.from_links(p2c=[(3, 1), (1, 0), (3, 0)])
        r = compute_routing(g, 0)
        assert r.best_path(3) == (3, 0)

    def test_lowest_next_hop_on_equal_length(self):
        # two equal-length customer routes via 1 and 2: pick AS 1.
        g = ASGraph.from_links(p2c=[(4, 1), (4, 2), (1, 0), (2, 0)])
        r = compute_routing(g, 0)
        assert r.next_hop(4) == 1

    def test_customer_beats_much_shorter_peer(self):
        # AS 5's customer chain to 0 is long; its peer 9 offers 2 hops.
        g = ASGraph.from_links(
            p2c=[(5, 4), (4, 3), (3, 0), (9, 0)],
            peering=[(5, 9)],
        )
        r = compute_routing(g, 0)
        assert r.best_class(5) is C
        assert r.best_path(5) == (5, 4, 3, 0)
        # ... but the peer route is still in the RIB as an alternative.
        assert 9 in {e.neighbor for e in r.alternatives(5)}

    def test_peer_beats_provider(self):
        g = ASGraph.from_links(
            p2c=[(7, 5), (7, 0), (9, 0)],  # 7 provider of 5; 7 reaches 0
            peering=[(5, 9)],
        )
        r = compute_routing(g, 0)
        assert r.best_class(5) is P
        assert r.best_path(5) == (5, 9, 0)


class TestDeepChains:
    def test_long_provider_chain(self):
        # 0 <- 1 <- 2 <- ... <- 9 (each provider of the previous).
        g = ASGraph.from_links(p2c=[(i + 1, i) for i in range(9)])
        r = compute_routing(g, 9)
        assert r.best_path(0) == tuple(range(10))
        assert r.best_class(0) is R
        assert r.best_len(0) == 9

    def test_long_customer_chain(self):
        g = ASGraph.from_links(p2c=[(i + 1, i) for i in range(9)])
        r = compute_routing(g, 0)
        assert r.best_path(9) == tuple(range(9, -1, -1))
        assert r.best_class(9) is C


class TestPeerOnlyReachability:
    def test_one_peer_hop_reachable(self):
        g = ASGraph.from_links(p2c=[(1, 0)], peering=[(1, 2)])
        r = compute_routing(g, 0)
        assert r.best_path(2) == (2, 1, 0)
        assert r.best_class(2) is P

    def test_two_peer_hops_unreachable(self):
        # 3 -peer- 2 -peer- 1 -> 0: valley-free forbids transit at 2.
        g = ASGraph.from_links(p2c=[(1, 0)], peering=[(1, 2), (2, 3)])
        r = compute_routing(g, 0)
        assert r.has_route(2)
        assert not r.has_route(3)

    def test_provider_rescues_peer_deadend(self):
        # As above, but 3 also buys transit from 4, which peers with 1.
        g = ASGraph.from_links(
            p2c=[(1, 0), (4, 3)],
            peering=[(1, 2), (2, 3), (4, 1)],
        )
        r = compute_routing(g, 0)
        assert r.has_route(3)
        assert r.best_path(3) == (3, 4, 1, 0)


class TestFragments:
    def test_unreachable_island(self):
        g = ASGraph()
        g.add_p2c(1, 0)
        g.add_p2c(9, 8)
        g.freeze()
        r = compute_routing(g, 0)
        assert r.reachable_count() == 2
        assert not r.has_route(8)
        assert not r.has_route(9)

    def test_single_node_graph(self):
        g = ASGraph()
        g.add_as(5)
        g.freeze()
        r = compute_routing(g, 5)
        assert r.best_path(5) == (5,)
        assert r.reachable_count() == 1
