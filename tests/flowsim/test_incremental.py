"""The incremental path-pooled solver vs the cold water-filling oracle.

The contract under test is *bitwise* equality: after any sequence of
``add_flow``/``remove_flow``/``move_flow``/``set_capacity`` mutations,
:class:`~repro.flowsim.incremental.IncrementalMaxMin` must produce the
exact float64 rate vector and per-link load that
:func:`~repro.flowsim.maxmin.maxmin_rates` computes from a freshly built
incidence over the same flows — at the simulator's default grouping
tolerance and at ``group_rtol=0``.  Plus unit coverage of the slab
mechanics the contract rides on: path interning, exact-fit free-list
recycling, the memo tick, and input validation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.errors import SimulationError
from repro.flowsim.incremental import IncrementalMaxMin
from repro.flowsim.maxmin import build_incidence, maxmin_rates


def assert_matches_oracle(solver: IncrementalMaxMin, capacity) -> None:
    """Solve and compare every rate and the link load bit for bit."""
    cap = np.asarray(capacity, dtype=np.float64)
    flows = list(solver.flows())
    incidence = build_incidence([list(p) for _, p in flows], cap.shape[0])
    load = np.zeros(cap.shape[0])
    expected = maxmin_rates(
        incidence,
        cap,
        unconstrained_rate=solver.unconstrained_rate,
        tol=solver.tol,
        group_rtol=solver.group_rtol,
        load_out=load,
    )
    solver.set_capacity(cap)
    solver.solve()
    for (fid, _), want in zip(flows, expected):
        got = solver.rate_of(fid)
        assert got == want or (math.isnan(got) and math.isnan(want)), (
            fid,
            got,
            want,
        )
    got_load = solver.link_load()[: cap.shape[0]]
    assert np.array_equal(got_load, load)
    # Feasibility (the oracle's own hypothesis suite proves the
    # bottleneck property; bitwise equality transfers it here).
    assert np.all(got_load <= cap * (1 + 1e-6) + 1e-6)


@st.composite
def solver_scripts(draw):
    """A capacity vector plus a mutation script over a small link space."""
    n_links = draw(st.integers(1, 8))
    caps = draw(
        st.lists(
            st.floats(1.0, 500.0, allow_nan=False),
            min_size=n_links,
            max_size=n_links,
        )
    )
    paths = st.lists(
        st.integers(0, n_links - 1), min_size=0, max_size=4, unique=True
    )
    n_ops = draw(st.integers(1, 25))
    ops = []
    alive = 0
    next_id = 0
    for _ in range(n_ops):
        choices = ["add"]
        if alive:
            choices += ["remove", "move"]
        op = draw(st.sampled_from(choices))
        if op == "add":
            ops.append(("add", next_id, draw(paths)))
            next_id += 1
            alive += 1
        elif op == "remove":
            ops.append(("remove", draw(st.integers(0, next_id - 1)), None))
        else:
            ops.append(("move", draw(st.integers(0, next_id - 1)), draw(paths)))
    return np.asarray(caps), ops


def apply_script(solver: IncrementalMaxMin, ops) -> None:
    for op, fid, path in ops:
        if op == "add":
            solver.add_flow(fid, path)
        elif op == "remove":
            solver.remove_flow(fid)
        elif solver.has_flow(fid):
            solver.move_flow(fid, path)


class TestOracleEquality:
    @pytest.mark.parametrize("group_rtol", [0.0, 1e-3])
    @given(script=solver_scripts())
    @settings(max_examples=60, deadline=None)
    def test_final_state_bitwise_equal(self, group_rtol, script):
        caps, ops = script
        solver = IncrementalMaxMin(group_rtol=group_rtol)
        apply_script(solver, ops)
        assert_matches_oracle(solver, caps)

    @given(script=solver_scripts())
    @settings(max_examples=25, deadline=None)
    def test_every_intermediate_state_bitwise_equal(self, script):
        """Solving after *each* mutation (the simulator's access pattern)
        must agree with a cold solve at every step, not just the last."""
        caps, ops = script
        solver = IncrementalMaxMin(group_rtol=0.0)
        solver.set_capacity(caps)
        for op in ops:
            apply_script(solver, [op])
            assert_matches_oracle(solver, caps)

    @given(script=solver_scripts(), scale=st.floats(0.25, 4.0))
    @settings(max_examples=25, deadline=None)
    def test_capacity_change_resolves(self, script, scale):
        caps, ops = script
        solver = IncrementalMaxMin(group_rtol=0.0)
        apply_script(solver, ops)
        assert_matches_oracle(solver, caps)
        assert_matches_oracle(solver, caps * scale)


class SolverMachine(RuleBasedStateMachine):
    """Stateful mirror: every step the incremental solver must match a
    cold :func:`maxmin_rates` run over the surviving flows."""

    N_LINKS = 6

    paths = st.lists(st.integers(0, N_LINKS - 1), max_size=4, unique=True)

    @initialize()
    def setup(self):
        self.solver = IncrementalMaxMin(group_rtol=0.0)
        self.caps = np.linspace(10.0, 60.0, self.N_LINKS)
        self.solver.set_capacity(self.caps)
        self.next_id = 0

    @rule(path=paths)
    def add(self, path):
        self.solver.add_flow(self.next_id, path)
        self.next_id += 1

    @rule(data=st.data())
    def remove(self, data):
        fid = data.draw(st.integers(0, max(self.next_id, 1)))
        self.solver.remove_flow(fid)  # unknown ids are ignored

    @rule(data=st.data(), path=paths)
    def move(self, data, path):
        if not self.next_id:
            return
        fid = data.draw(st.integers(0, self.next_id - 1))
        if self.solver.has_flow(fid):
            self.solver.move_flow(fid, path)

    @rule(factor=st.sampled_from([0.5, 1.0, 2.0]))
    def rescale_capacity(self, factor):
        self.caps = self.caps * factor
        self.solver.set_capacity(self.caps)

    @invariant()
    def matches_oracle(self):
        if self.next_id:
            assert_matches_oracle(self.solver, self.caps)


TestSolverMachine = SolverMachine.TestCase
TestSolverMachine.settings = settings(
    max_examples=30, stateful_step_count=20, deadline=None
)


class TestPoolMechanics:
    def test_identical_paths_share_a_column(self):
        solver = IncrementalMaxMin()
        solver.add_flow(0, [0, 1])
        solver.add_flow(1, [0, 1])
        solver.add_flow(2, [0, 1])
        assert solver.n_flows == 3
        assert solver.n_paths == 1
        assert solver.pool_hits == 2

    def test_freed_segment_is_recycled_exact_fit(self):
        solver = IncrementalMaxMin()
        solver.add_flow(0, [0, 1])
        solver.remove_flow(0)
        solver.add_flow(1, [2, 3])  # same length -> recycled segment
        assert solver.cols_reused == 1
        assert solver.n_paths == 1

    def test_different_length_does_not_recycle(self):
        solver = IncrementalMaxMin()
        solver.add_flow(0, [0, 1])
        solver.remove_flow(0)
        solver.add_flow(1, [2])  # shorter path -> fresh column
        assert solver.cols_reused == 0
        assert solver.n_paths == 1

    def test_pooled_column_survives_partial_removal(self):
        solver = IncrementalMaxMin()
        solver.add_flow(0, [0])
        solver.add_flow(1, [0])
        solver.remove_flow(0)
        solver.set_capacity(np.array([10.0]))
        solver.solve()
        assert solver.rate_of(1) == 10.0
        assert solver.n_paths == 1

    def test_move_is_remove_plus_add(self):
        solver = IncrementalMaxMin()
        solver.set_capacity(np.array([8.0, 2.0]))
        solver.add_flow(0, [0])
        solver.move_flow(0, [1])
        solver.solve()
        assert solver.rate_of(0) == 2.0

    def test_remove_unknown_is_noop(self):
        solver = IncrementalMaxMin()
        solver.remove_flow(99)
        assert solver.n_flows == 0

    def test_duplicate_add_raises(self):
        solver = IncrementalMaxMin()
        solver.add_flow(0, [0])
        with pytest.raises(SimulationError, match="already in the solver"):
            solver.add_flow(0, [1])

    def test_move_unknown_raises(self):
        solver = IncrementalMaxMin()
        with pytest.raises(SimulationError, match="not in the solver"):
            solver.move_flow(7, [0])

    def test_path_beyond_capacity_raises(self):
        solver = IncrementalMaxMin()
        solver.add_flow(0, [5])
        solver.set_capacity(np.ones(3))
        with pytest.raises(
            SimulationError, match="outside the capacity vector"
        ):
            solver.solve()

    def test_linkless_flow_unconstrained(self):
        solver = IncrementalMaxMin(unconstrained_rate=123.0)
        solver.add_flow(0, [])
        solver.set_capacity(np.zeros(0))
        solver.solve()
        assert solver.rate_of(0) == 123.0


class TestMemo:
    def test_untouched_state_is_a_memo_hit(self):
        solver = IncrementalMaxMin()
        solver.set_capacity(np.array([10.0, 4.0]))
        solver.add_flow(0, [0])
        solver.add_flow(1, [0, 1])
        assert solver.solve() is True
        rounds = solver.stats()["maxmin_iterations"]
        assert rounds > 0
        assert solver.solve() is False
        assert solver.stats()["warm_rounds_saved"] == rounds
        assert solver.stats()["hits"] == 1

    def test_linkless_flow_keeps_memo_valid(self):
        """Arrival/departure of a flow that crosses no link cannot change
        the fill, so it must not invalidate the memo."""
        solver = IncrementalMaxMin()
        solver.set_capacity(np.array([5.0]))
        solver.add_flow(0, [0])
        solver.solve()
        solver.add_flow(1, [])
        assert solver.pending is False
        assert solver.solve() is False
        assert solver.rate_of(1) == math.inf
        solver.remove_flow(1)
        assert solver.pending is False

    def test_mutation_invalidates_memo(self):
        solver = IncrementalMaxMin()
        solver.set_capacity(np.array([5.0]))
        solver.add_flow(0, [0])
        solver.solve()
        solver.add_flow(1, [0])
        assert solver.pending is True
        assert solver.solve() is True
        assert solver.rate_of(0) == 2.5

    def test_identical_capacity_keeps_memo_valid(self):
        solver = IncrementalMaxMin()
        caps = np.array([5.0, 7.0])
        solver.set_capacity(caps)
        solver.add_flow(0, [0, 1])
        solver.solve()
        solver.set_capacity(caps.copy())
        assert solver.pending is False
        solver.set_capacity(caps * 2)
        assert solver.pending is True

    def test_invalidate_forces_resolve(self):
        solver = IncrementalMaxMin()
        solver.set_capacity(np.array([5.0]))
        solver.add_flow(0, [0])
        solver.solve()
        solver.invalidate()
        assert solver.pending is True
        assert solver.solve() is True

    def test_memoized_solves_never_exceed_cold_rounds(self):
        """stats()['maxmin_iterations'] counts only rounds actually run —
        the incremental ≤ full telemetry guarantee at the object level."""
        solver = IncrementalMaxMin()
        solver.set_capacity(np.array([10.0, 4.0]))
        solver.add_flow(0, [0])
        solver.add_flow(1, [0, 1])
        cold_rounds = 0
        for _ in range(5):
            solver.invalidate()
            solver.solve()
            cold_rounds = solver.stats()["maxmin_iterations"]
        for _ in range(5):
            solver.solve()  # memo hits: no new rounds
        assert solver.stats()["maxmin_iterations"] == cold_rounds
        assert solver.stats()["solves"] == 5
        assert solver.stats()["hits"] == 5


class TestBufferReuse:
    def test_growth_then_shrink_stays_correct(self):
        """Drive the slab through growth, mass removal (free-list churn)
        and re-growth; every checkpoint must match the cold oracle."""
        solver = IncrementalMaxMin(group_rtol=0.0)
        caps = np.linspace(5.0, 50.0, 10)
        rng = np.random.default_rng(42)
        for fid in range(200):
            n = int(rng.integers(0, 5))
            path = rng.choice(10, size=n, replace=False).tolist()
            solver.add_flow(fid, path)
        assert_matches_oracle(solver, caps)
        for fid in range(0, 200, 2):
            solver.remove_flow(fid)
        assert_matches_oracle(solver, caps)
        for fid in range(200, 400):
            n = int(rng.integers(1, 5))
            path = rng.choice(10, size=n, replace=False).tolist()
            solver.add_flow(fid, path)
        assert_matches_oracle(solver, caps)
        assert solver.cols_reused > 0
        assert solver.pool_hits > 0

    def test_link_load_buffer_covers_capacity(self):
        solver = IncrementalMaxMin()
        solver.set_capacity(np.ones(100))
        solver.add_flow(0, [3])
        solver.solve()
        assert solver.link_load().shape[0] >= 100
        assert solver.link_load()[3] == 1.0
        assert not solver.link_load()[:3].any()
