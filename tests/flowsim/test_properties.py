"""Hypothesis property tests for the fluid simulator as a whole."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.propagation import RoutingCache
from repro.flowsim.flow import FlowSpec
from repro.flowsim.providers import BgpProvider, MifoProvider
from repro.flowsim.simulator import FluidSimConfig, FluidSimulator
from repro.mifo.deflection import MifoPathBuilder

from ..conftest import as_graphs


@st.composite
def workloads(draw):
    """A random graph plus a random small workload on it."""
    g = draw(as_graphs(min_nodes=4, max_nodes=10))
    nodes = sorted(g.nodes())
    n_flows = draw(st.integers(1, 12))
    flows = []
    for i in range(n_flows):
        src = draw(st.sampled_from(nodes))
        dst = draw(st.sampled_from(nodes))
        if src == dst:
            dst = nodes[(nodes.index(src) + 1) % len(nodes)]
        size = draw(st.floats(1e4, 5e6))
        start = draw(st.floats(0.0, 0.05))
        flows.append(FlowSpec(i, src, dst, size, start))
    return g, flows


class TestFluidProperties:
    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_all_routable_flows_complete(self, workload):
        g, flows = workload
        sim = FluidSimulator(
            g,
            BgpProvider(g, RoutingCache(g)),
            FluidSimConfig(skip_unroutable=True),
        )
        res = sim.run(flows)
        assert len(res.records) + res.unroutable == len(flows)
        for r in res.records:
            assert r.finish_time >= r.start_time
            assert math.isfinite(r.throughput_bps)

    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_throughput_never_exceeds_line_rate(self, workload):
        g, flows = workload
        cap = 1e9
        sim = FluidSimulator(
            g,
            BgpProvider(g, RoutingCache(g)),
            FluidSimConfig(link_capacity_bps=cap, skip_unroutable=True),
        )
        res = sim.run(flows)
        for r in res.records:
            assert r.throughput_bps <= cap * 1.01

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_mifo_run_is_loop_free_and_complete(self, workload):
        g, flows = workload
        rc = RoutingCache(g)
        sim = FluidSimulator(
            g,
            MifoProvider(MifoPathBuilder(g, rc, frozenset(g.nodes()))),
            FluidSimConfig(skip_unroutable=True),
        )
        # Would raise LoopDetectedError on any invariant violation.
        res = sim.run(flows)
        assert len(res.records) + res.unroutable == len(flows)
        for r in res.records:
            # A directed AS-level link is never reused, so final paths are
            # bounded by 2|V| nodes.
            assert r.final_path_len <= 2 * len(g)

    @given(workloads(), st.floats(0.1, 0.9))
    @settings(max_examples=25, deadline=None)
    def test_bgp_records_independent_of_thresholds(self, workload, clear):
        """BGP never reroutes, so congestion thresholds cannot affect it."""
        g, flows = workload
        rc = RoutingCache(g)
        a = FluidSimulator(
            g,
            BgpProvider(g, rc),
            FluidSimConfig(skip_unroutable=True),
        ).run(flows)
        b = FluidSimulator(
            g,
            BgpProvider(g, rc),
            FluidSimConfig(
                skip_unroutable=True,
                congest_threshold=max(clear, 0.95),
                clear_threshold=clear,
            ),
        ).run(flows)
        assert [r.finish_time for r in a.records] == [r.finish_time for r in b.records]
