"""Incremental vs full solver, end to end over the figure experiments.

The simulator's ``solver="incremental"`` mode is an optimization, not a
model change: for every figure experiment the serialized result must be
byte-identical to ``solver="full"`` (modulo provenance), on both routing
backends.  Telemetry must tell the truth about the saved work: the
incremental run's ``flowsim.maxmin_iterations`` never exceeds the full
run's on the same event stream, and both modes emit a schema-valid
``solver_stats`` trace event.
"""

import pytest

from repro.experiments import fig5, fig6, fig8, fig9
from repro.experiments.common import SharedContext
from repro.telemetry import Telemetry
from repro.telemetry.trace import validate_events

FIG8_DEPLOYMENTS = (0.1, 0.5, 1.0)  # subset: keeps the matrix fast


@pytest.fixture(autouse=True)
def fresh_contexts():
    saved = dict(SharedContext._cache)
    SharedContext._cache.clear()
    yield
    SharedContext._cache.clear()
    SharedContext._cache.update(saved)


def _run(mod, solver: str, backend: str = "dict", telemetry=None):
    SharedContext._cache.clear()
    kwargs = {"backend": backend, "solver": solver}
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    if mod is fig8:
        kwargs["deployments"] = FIG8_DEPLOYMENTS
    return mod.run("test", **kwargs)


def _json(mod, solver: str, backend: str = "dict") -> str:
    return _run(mod, solver, backend).to_json(include_provenance=False)


class TestByteIdentity:
    @pytest.mark.parametrize(
        "mod", [fig5, fig6, fig8, fig9], ids=lambda m: m.__name__
    )
    def test_incremental_equals_full(self, mod):
        assert _json(mod, "incremental") == _json(mod, "full")

    def test_incremental_equals_full_on_array_backend(self, mod=fig9):
        assert _json(mod, "incremental", "array") == _json(mod, "full", "array")

    def test_solver_mode_is_backend_independent(self):
        assert _json(fig9, "incremental", "dict") == _json(
            fig9, "incremental", "array"
        )


class TestTelemetryCrosscheck:
    def _solver_stats(self, mod, solver: str):
        t = Telemetry()
        _run(mod, solver, telemetry=t)
        events = [
            e for e in t.trace_events() if e.get("kind") == "solver_stats"
        ]
        assert events, "no solver_stats event emitted"
        assert validate_events(events) == []
        return events, t.counters

    def test_incremental_iterations_never_exceed_full(self):
        inc_events, inc_counters = self._solver_stats(fig9, "incremental")
        full_events, full_counters = self._solver_stats(fig9, "full")
        inc_iters = inc_counters["flowsim.maxmin_iterations"]
        full_iters = full_counters["flowsim.maxmin_iterations"]
        assert 0 < inc_iters <= full_iters
        # Per-run event payloads agree with the counter totals.
        assert sum(e["maxmin_iterations"] for e in inc_events) == inc_iters
        assert sum(e["maxmin_iterations"] for e in full_events) == full_iters

    def test_solver_stats_labels_and_savings(self):
        inc_events, _ = self._solver_stats(fig9, "incremental")
        full_events, _ = self._solver_stats(fig9, "full")
        assert {e["solver"] for e in inc_events} == {"incremental"}
        assert {e["solver"] for e in full_events} == {"full"}
        # The pooled solver actually recycled columns at test scale…
        assert sum(e["cols_reused"] for e in inc_events) > 0
        # …and the full solver reports no pool/memo savings by definition.
        for e in full_events:
            assert e["pool_hits"] == 0
            assert e["cols_reused"] == 0
            assert e["warm_rounds_saved"] == 0

    def test_pool_counters_reach_the_session(self):
        _, counters = self._solver_stats(fig9, "incremental")
        assert counters.get("flowsim.cols_reused", 0) > 0
