"""Tests for the event-driven fluid simulator."""

import math

import pytest

from repro.bgp.propagation import RoutingCache
from repro.errors import NoRouteError, SimulationError
from repro.flowsim.flow import FlowSpec
from repro.flowsim.providers import BgpProvider, MifoProvider
from repro.flowsim.simulator import FluidSimConfig, FluidSimulator
from repro.mifo.deflection import MifoPathBuilder
from repro.topology.asgraph import ASGraph


def bgp_sim(graph, **cfg):
    return FluidSimulator(graph, BgpProvider(graph, RoutingCache(graph)), FluidSimConfig(**cfg))


def mifo_sim(graph, capable=None, **cfg):
    rc = RoutingCache(graph)
    capable = frozenset(graph.nodes()) if capable is None else capable
    return FluidSimulator(
        graph, MifoProvider(MifoPathBuilder(graph, rc, capable)), FluidSimConfig(**cfg)
    )


class TestConfig:
    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            FluidSimConfig(link_capacity_bps=0).validate()

    def test_bad_thresholds(self):
        with pytest.raises(SimulationError):
            FluidSimConfig(congest_threshold=0.5, clear_threshold=0.9).validate()


class TestSingleFlow:
    def test_solo_flow_runs_at_line_rate(self, fig11_graph):
        sim = bgp_sim(fig11_graph)
        spec = FlowSpec(flow_id=1, src=1, dst=5, size_bytes=1e6, start_time=0.0)
        res = sim.run([spec])
        assert len(res.records) == 1
        rec = res.records[0]
        assert rec.throughput_bps == pytest.approx(1e9, rel=1e-3)
        assert rec.duration == pytest.approx(8e6 / 1e9, rel=1e-3)
        assert rec.path_switches == 0

    def test_empty_workload(self, fig11_graph):
        res = bgp_sim(fig11_graph).run([])
        assert res.records == []
        assert res.duration == 0.0


class TestSharing:
    def test_two_flows_share_bottleneck(self, fig11_graph):
        # Both flows traverse 3->4 under BGP: each gets ~500 Mbps.
        sim = bgp_sim(fig11_graph)
        specs = [
            FlowSpec(flow_id=1, src=1, dst=5, size_bytes=1e6, start_time=0.0),
            FlowSpec(flow_id=2, src=2, dst=5, size_bytes=1e6, start_time=0.0),
        ]
        res = sim.run(specs)
        ths = sorted(r.throughput_bps for r in res.records)
        # Identical simultaneous flows split the 1 Gbps bottleneck evenly
        # and finish together at ~500 Mbps each.
        assert ths[0] == pytest.approx(500e6, rel=1e-2)
        assert ths[1] == pytest.approx(500e6, rel=1e-2)

    def test_mifo_deflects_second_flow(self, fig11_graph):
        # With MIFO, AS3 moves one flow to 3->6->5: both ~1 Gbps.
        sim = mifo_sim(fig11_graph)
        specs = [
            FlowSpec(flow_id=1, src=1, dst=5, size_bytes=4e6, start_time=0.0),
            FlowSpec(flow_id=2, src=2, dst=5, size_bytes=4e6, start_time=0.004),
        ]
        res = sim.run(specs)
        by_id = {r.flow_id: r for r in res.records}
        assert by_id[2].used_alternative or by_id[1].used_alternative
        total_throughput = sum(r.throughput_bps for r in res.records)
        assert total_throughput > 1.5e9  # near 2x the single-path case

    def test_sequential_flows_do_not_interact(self, fig11_graph):
        sim = bgp_sim(fig11_graph)
        specs = [
            FlowSpec(flow_id=1, src=1, dst=5, size_bytes=1e6, start_time=0.0),
            FlowSpec(flow_id=2, src=2, dst=5, size_bytes=1e6, start_time=1.0),
        ]
        res = sim.run(specs)
        for r in res.records:
            assert r.throughput_bps == pytest.approx(1e9, rel=1e-3)


class TestUnroutable:
    @pytest.fixture
    def partitioned(self):
        g = ASGraph()
        g.add_p2c(1, 0)
        g.add_p2c(3, 2)
        return g.freeze()

    def test_raises_by_default(self, partitioned):
        sim = bgp_sim(partitioned)
        with pytest.raises(NoRouteError):
            sim.run([FlowSpec(flow_id=1, src=0, dst=2, size_bytes=1e6, start_time=0.0)])

    def test_skip_option(self, partitioned):
        sim = bgp_sim(partitioned, skip_unroutable=True)
        res = sim.run(
            [
                FlowSpec(flow_id=1, src=0, dst=2, size_bytes=1e6, start_time=0.0),
                FlowSpec(flow_id=2, src=0, dst=1, size_bytes=1e6, start_time=0.0),
            ]
        )
        assert res.unroutable == 1
        assert len(res.records) == 1


class TestConservation:
    def test_all_flows_complete_with_exact_bytes(self, small_internet):
        from repro.traffic.matrix import TrafficConfig, uniform_matrix

        specs = uniform_matrix(
            small_internet, TrafficConfig(n_flows=150, arrival_rate=500.0, seed=3)
        )
        res = mifo_sim(small_internet).run(specs)
        assert len(res.records) == 150
        for r in res.records:
            assert r.finish_time > r.start_time
            assert math.isfinite(r.throughput_bps)
            assert r.throughput_bps <= 1e9 * 1.001

    def test_result_metrics(self, small_internet):
        from repro.traffic.matrix import TrafficConfig, uniform_matrix

        specs = uniform_matrix(
            small_internet, TrafficConfig(n_flows=100, arrival_rate=1000.0, seed=4)
        )
        res = mifo_sim(small_internet).run(specs)
        assert 0.0 <= res.fraction_on_alternative() <= 1.0
        hist = res.switch_histogram()
        assert sum(hist.values()) == pytest.approx(1.0)

    def test_deterministic(self, small_internet):
        from repro.traffic.matrix import TrafficConfig, uniform_matrix

        specs = uniform_matrix(
            small_internet, TrafficConfig(n_flows=80, arrival_rate=1000.0, seed=5)
        )
        a = mifo_sim(small_internet).run(specs)
        b = mifo_sim(small_internet).run(specs)
        assert [r.finish_time for r in a.records] == [r.finish_time for r in b.records]
        assert [r.path_switches for r in a.records] == [r.path_switches for r in b.records]

    def test_event_budget(self, small_internet):
        from repro.traffic.matrix import TrafficConfig, uniform_matrix

        specs = uniform_matrix(
            small_internet, TrafficConfig(n_flows=50, arrival_rate=1000.0, seed=6)
        )
        sim = bgp_sim(small_internet, max_events=3)
        with pytest.raises(SimulationError, match="events"):
            sim.run(specs)


class TestControlPlaneStaleness:
    def test_stale_view_lags_live(self, fig11_graph):
        """The stale snapshot only updates at the control-plane interval."""
        sim = bgp_sim(fig11_graph, control_plane_interval=100.0)
        # Two heavy flows congest 3->4; run them.
        specs = [
            FlowSpec(flow_id=1, src=1, dst=5, size_bytes=5e6, start_time=0.0),
            FlowSpec(flow_id=2, src=2, dst=5, size_bytes=5e6, start_time=0.0),
        ]
        sim.run(specs)
        # After the run, the live view saw congestion on (3, 4) at some
        # point; the stale view was snapshotted only at t=0 (empty).
        assert not sim._stale_congested_fn(3, 4)

    def test_stale_view_refreshes(self, fig11_graph):
        sim = bgp_sim(fig11_graph, control_plane_interval=0.001)
        specs = [
            FlowSpec(flow_id=1, src=1, dst=5, size_bytes=8e6, start_time=0.0),
            FlowSpec(flow_id=2, src=2, dst=5, size_bytes=8e6, start_time=0.0),
            FlowSpec(flow_id=3, src=1, dst=5, size_bytes=8e6, start_time=0.05),
        ]
        sim.run(specs)
        # With a tiny interval the snapshot tracked the live view: by the
        # third arrival the (3,4) link's stale state had been refreshed
        # at least once while congested.
        assert sim._stale_alloc.shape[0] > 0

    def test_unknown_links_report_defaults(self, fig11_graph):
        sim = bgp_sim(fig11_graph)
        assert not sim._stale_congested_fn(1, 3)
        assert sim._stale_spare_fn(1, 3) == sim.config.link_capacity_bps


class TestSolverModes:
    """The incremental pooled solver is a drop-in for the full solver."""

    def _records(self, graph, specs, **cfg):
        return mifo_sim(graph, **cfg).run(specs).records

    def test_modes_agree_bitwise_on_real_workload(self, small_internet):
        from repro.traffic.matrix import TrafficConfig, uniform_matrix

        specs = uniform_matrix(
            small_internet, TrafficConfig(n_flows=120, arrival_rate=800.0, seed=9)
        )
        inc = self._records(small_internet, specs, solver="incremental")
        full = self._records(small_internet, specs, solver="full")
        assert inc == full  # FlowRecord dataclass equality is exact floats

    def test_modes_agree_with_out_of_order_flow_ids(self, fig11_graph):
        """Arrival order opposite to flow-id order: the active list's
        insertion-ordered invariant (bisect.insort by flow id) must keep
        the reroute consult order — and hence the records — identical."""
        specs = [
            FlowSpec(flow_id=9, src=1, dst=5, size_bytes=4e6, start_time=0.0),
            FlowSpec(flow_id=5, src=2, dst=5, size_bytes=4e6, start_time=0.002),
            FlowSpec(flow_id=1, src=1, dst=5, size_bytes=4e6, start_time=0.004),
        ]
        inc = self._records(fig11_graph, specs, solver="incremental")
        full = self._records(fig11_graph, specs, solver="full")
        assert inc == full

    def test_spec_order_does_not_matter(self, fig11_graph):
        specs = [
            FlowSpec(flow_id=i, src=1 + (i % 2), dst=5, size_bytes=2e6,
                     start_time=0.001 * (i % 3))
            for i in range(6)
        ]
        forward = self._records(fig11_graph, specs, solver="incremental")
        backward = self._records(fig11_graph, list(reversed(specs)),
                                 solver="incremental")
        assert forward == backward

    def test_simulator_instance_is_reusable(self, fig11_graph):
        """Back-to-back runs on one simulator reuse the persistent alloc
        buffer and the pooled solver; state from run one must not leak."""
        specs = [
            FlowSpec(flow_id=1, src=1, dst=5, size_bytes=4e6, start_time=0.0),
            FlowSpec(flow_id=2, src=2, dst=5, size_bytes=4e6, start_time=0.004),
        ]
        sim = mifo_sim(fig11_graph)
        first = sim.run(specs).records
        second = sim.run(specs).records
        fresh = mifo_sim(fig11_graph).run(specs).records
        assert first == second == fresh

    def test_bad_solver_rejected(self):
        with pytest.raises(SimulationError, match="solver"):
            FluidSimConfig(solver="magic").validate()


class TestRttSampling:
    """The fluid simulator's opt-in RTT observable."""

    SPECS = [
        FlowSpec(flow_id=1, src=1, dst=5, size_bytes=4e6, start_time=0.0),
        FlowSpec(flow_id=2, src=2, dst=5, size_bytes=4e6, start_time=0.004),
    ]

    def _traced(self, graph, **cfg):
        from repro import telemetry as tm
        from repro.telemetry import Telemetry

        telem = Telemetry()
        tm.activate(telem)
        try:
            res = mifo_sim(graph, **cfg).run(self.SPECS)
        finally:
            tm.activate(None)
        return res, telem.trace_events(), dict(telem.counters)

    def test_off_by_default(self, fig11_graph):
        _, events, counters = self._traced(fig11_graph)
        assert not any(e["kind"] == "rtt_sample" for e in events)
        assert "measure.rtt_samples" not in counters

    def test_sampling_emits_per_flow_events(self, fig11_graph):
        res, events, counters = self._traced(fig11_graph, rtt_sampling=True)
        samples = [e for e in events if e["kind"] == "rtt_sample"]
        assert counters["measure.rtt_samples"] == len(samples) > 0
        assert {s["flow"] for s in samples} == {1, 2}
        assert all(s["rtt_ms"] > 0 for s in samples)
        assert all("time_s" in s for s in samples)

    def test_sampling_does_not_perturb_the_physics(self, fig11_graph):
        plain = mifo_sim(fig11_graph).run(self.SPECS).records
        sampled, _, _ = self._traced(fig11_graph, rtt_sampling=True)
        assert sampled.records == plain

    def test_rtt_seed_changes_samples_only(self, fig11_graph):
        res_a, ev_a, _ = self._traced(fig11_graph, rtt_sampling=True, rtt_seed=1)
        res_b, ev_b, _ = self._traced(fig11_graph, rtt_sampling=True, rtt_seed=2)
        assert res_a.records == res_b.records
        rtts_a = [e["rtt_ms"] for e in ev_a if e["kind"] == "rtt_sample"]
        rtts_b = [e["rtt_ms"] for e in ev_b if e["kind"] == "rtt_sample"]
        assert rtts_a != rtts_b

    def test_bad_rtt_seed_rejected(self):
        with pytest.raises(SimulationError):
            FluidSimConfig(rtt_seed=-1).validate()
