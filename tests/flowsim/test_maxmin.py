"""Property-based tests for the max-min fair allocator.

The two defining properties of max-min fairness are asserted over random
instances: feasibility (no link over capacity) and the bottleneck property
(every flow crosses a saturated link on which its rate is maximal).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowsim.maxmin import build_incidence, maxmin_rates


@st.composite
def allocation_instances(draw):
    n_links = draw(st.integers(1, 10))
    n_flows = draw(st.integers(1, 14))
    flow_links = [
        draw(
            st.lists(
                st.integers(0, n_links - 1), min_size=0, max_size=4, unique=True
            )
        )
        for _ in range(n_flows)
    ]
    caps = draw(
        st.lists(
            st.floats(1.0, 1000.0, allow_nan=False),
            min_size=n_links,
            max_size=n_links,
        )
    )
    return flow_links, np.asarray(caps)


class TestBuildIncidence:
    def test_shape_and_content(self):
        inc = build_incidence([[0, 2], [1], []], 3)
        assert inc.shape == (3, 3)
        dense = inc.toarray()
        assert dense[0, 0] == 1 and dense[2, 0] == 1
        assert dense[1, 1] == 1
        assert dense[:, 2].sum() == 0

    def test_empty(self):
        inc = build_incidence([], 5)
        assert inc.shape == (5, 0)


class TestMaxminBasics:
    def test_single_flow_gets_capacity(self):
        inc = build_incidence([[0]], 1)
        rates = maxmin_rates(inc, np.array([100.0]))
        assert rates[0] == pytest.approx(100.0)

    def test_equal_split(self):
        inc = build_incidence([[0], [0], [0], [0]], 1)
        rates = maxmin_rates(inc, np.array([100.0]))
        assert np.allclose(rates, 25.0)

    def test_waterfilling_two_levels(self):
        # Flows A,B share link 0 (cap 10); flow B also crosses link 1
        # (cap 4).  B is bottlenecked at 4, A takes the rest: 6.
        inc = build_incidence([[0], [0, 1]], 2)
        rates = maxmin_rates(inc, np.array([10.0, 4.0]), group_rtol=0.0)
        assert rates[1] == pytest.approx(4.0)
        assert rates[0] == pytest.approx(6.0)

    def test_classic_line_network(self):
        # Three links in a line; one long flow over all, one short per link.
        # Long flow gets cap/2 on the tightest link; shorts fill the rest.
        inc = build_incidence([[0, 1, 2], [0], [1], [2]], 3)
        rates = maxmin_rates(
            inc, np.array([10.0, 10.0, 10.0]), group_rtol=0.0
        )
        assert rates[0] == pytest.approx(5.0)
        assert np.allclose(rates[1:], 5.0)

    def test_linkless_flow_unconstrained(self):
        inc = build_incidence([[], [0]], 1)
        rates = maxmin_rates(inc, np.array([7.0]), unconstrained_rate=42.0)
        assert rates[0] == 42.0
        assert rates[1] == pytest.approx(7.0)

    def test_no_flows(self):
        inc = build_incidence([], 3)
        assert maxmin_rates(inc, np.ones(3)).shape == (0,)

    def test_capacity_shape_mismatch(self):
        inc = build_incidence([[0]], 1)
        with pytest.raises(ValueError):
            maxmin_rates(inc, np.ones(2))


class TestMaxminProperties:
    @given(allocation_instances())
    @settings(max_examples=150, deadline=None)
    def test_feasibility(self, instance):
        flow_links, caps = instance
        inc = build_incidence(flow_links, len(caps))
        rates = maxmin_rates(inc, caps, unconstrained_rate=0.0, group_rtol=0.0)
        load = inc @ rates
        assert np.all(load <= caps * (1 + 1e-6) + 1e-6)

    @given(allocation_instances())
    @settings(max_examples=150, deadline=None)
    def test_bottleneck_property(self, instance):
        """Each constrained flow crosses a saturated link where it is among
        the maximally allocated flows — the max-min optimality condition."""
        flow_links, caps = instance
        inc = build_incidence(flow_links, len(caps))
        rates = maxmin_rates(inc, caps, unconstrained_rate=0.0, group_rtol=0.0)
        load = inc @ rates
        dense = inc.toarray().astype(bool)
        for f, links in enumerate(flow_links):
            if not links:
                continue
            ok = False
            for l in links:
                saturated = load[l] >= caps[l] * (1 - 1e-6) - 1e-6
                if saturated:
                    flows_on_l = np.flatnonzero(dense[l])
                    if rates[f] >= rates[flows_on_l].max() - 1e-6:
                        ok = True
                        break
            assert ok, (f, rates, load, caps, flow_links)

    @given(allocation_instances())
    @settings(max_examples=100, deadline=None)
    def test_rates_nonnegative(self, instance):
        flow_links, caps = instance
        inc = build_incidence(flow_links, len(caps))
        rates = maxmin_rates(inc, caps, unconstrained_rate=0.0, group_rtol=0.0)
        assert np.all(rates >= 0.0)

    @given(allocation_instances())
    @settings(max_examples=60, deadline=None)
    def test_grouping_tolerance_bounded_error(self, instance):
        """group_rtol trades exactness for speed; the deviation from the
        exact allocation must stay within a few times the tolerance."""
        flow_links, caps = instance
        inc = build_incidence(flow_links, len(caps))
        exact = maxmin_rates(inc, caps, unconstrained_rate=0.0, group_rtol=0.0)
        approx = maxmin_rates(inc, caps, unconstrained_rate=0.0, group_rtol=1e-3)
        denom = np.maximum(exact, 1e-9)
        assert np.all(np.abs(approx - exact) / denom <= 0.05)
