"""The unified config surface: dict round-trip, strictness, registry."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    CONFIG_TYPES,
    FluidSimConfig,
    MifoEngineConfig,
    ScenarioConfig,
    ServiceConfig,
    TopologyConfig,
    config_from_dict,
    config_to_dict,
)
from repro.errors import ConfigError

# ---------------------------------------------------------------------------
# Per-class strategies producing instances that pass their own validate().
# ---------------------------------------------------------------------------
topology_configs = st.builds(
    TopologyConfig,
    n_ases=st.integers(min_value=50, max_value=500),
    n_tier1=st.integers(min_value=3, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)

scenario_configs = st.builds(
    ScenarioConfig,
    mode=st.sampled_from(["incremental", "full"]),
    verify=st.booleans(),
    crosscheck=st.booleans(),
    link_capacity_bps=st.floats(min_value=1e6, max_value=1e12),
    congest_threshold=st.floats(min_value=0.5, max_value=0.99),
    clear_threshold=st.floats(min_value=0.1, max_value=0.49),
    record_capacity=st.one_of(
        st.none(), st.integers(min_value=1, max_value=4096)
    ),
)

service_configs = st.builds(
    ServiceConfig,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    arrival_rate=st.floats(min_value=1.0, max_value=1e4),
    mean_lifetime_events=st.floats(min_value=1.0, max_value=1e4),
    p_link_event=st.floats(min_value=0.0, max_value=0.4),
    p_capacity_event=st.floats(min_value=0.0, max_value=0.4),
    max_failed_links=st.integers(min_value=1, max_value=16),
    traffic=st.sampled_from(["zipf", "uniform"]),
    zipf_alpha=st.floats(min_value=0.1, max_value=3.0),
    record_capacity=st.one_of(
        st.none(), st.integers(min_value=1, max_value=4096)
    ),
    checkpoint_every=st.integers(min_value=0, max_value=1000),
    verify_every=st.integers(min_value=0, max_value=1000),
)


def _roundtrip(config):
    cls = type(config)
    restored = config_from_dict(cls, config_to_dict(config))
    for field in dataclasses.fields(cls):
        value = getattr(config, field.name)
        if isinstance(value, (bool, int, float, str, type(None), tuple)):
            assert getattr(restored, field.name) == value, field.name


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(config=topology_configs)
    def test_topology(self, config):
        _roundtrip(config)

    @settings(max_examples=50, deadline=None)
    @given(config=scenario_configs)
    def test_scenario(self, config):
        _roundtrip(config)

    @settings(max_examples=50, deadline=None)
    @given(config=service_configs)
    def test_service(self, config):
        _roundtrip(config)

    def test_defaults_roundtrip_for_every_registered_class(self):
        for cls in CONFIG_TYPES.values():
            _roundtrip(cls())

    def test_float_values_roundtrip_exactly(self):
        # JSON repr round-trips Python floats bit for bit — the property
        # the checkpoint format's byte-identity rests on.
        import json

        cfg = ServiceConfig(arrival_rate=1.0 / 3.0, zipf_alpha=0.1 + 0.2)
        data = json.loads(json.dumps(config_to_dict(cfg)))
        restored = config_from_dict(ServiceConfig, data)
        assert restored.arrival_rate == cfg.arrival_rate
        assert restored.zipf_alpha == cfg.zipf_alpha


class TestStrictness:
    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="no field"):
            config_from_dict(TopologyConfig, {"n_asse": 100})

    def test_validate_runs_on_the_way_in(self):
        with pytest.raises(ConfigError):
            config_from_dict(ServiceConfig, {"p_link_event": 0.9,
                                             "p_capacity_event": 0.9})

    def test_missing_keys_keep_defaults(self):
        cfg = config_from_dict(ServiceConfig, {"seed": 99})
        assert cfg.seed == 99
        assert cfg.arrival_rate == ServiceConfig().arrival_rate

    def test_non_dataclass_rejected(self):
        with pytest.raises(ConfigError):
            config_to_dict({"not": "a config"})
        with pytest.raises(ConfigError):
            config_from_dict(dict, {})

    def test_instance_passed_as_type_rejected(self):
        with pytest.raises(ConfigError):
            config_to_dict(TopologyConfig)


class TestSerialization:
    def test_object_fields_dropped(self):
        data = config_to_dict(MifoEngineConfig())
        assert "carrier" not in data

    def test_tuples_become_lists_and_back(self):
        @dataclasses.dataclass(frozen=True)
        class _WithTuple:
            items: tuple = (1, 2, 3)

        data = config_to_dict(_WithTuple())
        assert data["items"] == [1, 2, 3]
        restored = config_from_dict(_WithTuple, data)
        assert restored.items == (1, 2, 3)

    def test_registry_covers_every_layer(self):
        assert set(CONFIG_TYPES) == {
            "topology",
            "mifo",
            "flowsim",
            "scenario",
            "service",
            "rtt",
            "detector",
        }
        assert CONFIG_TYPES["flowsim"] is FluidSimConfig
