"""Tests for the MIRO baseline (strict policy, bounded alternatives)."""

import pytest

from repro.bgp.propagation import RoutingCache
from repro.errors import NoRouteError
from repro.miro.negotiation import MiroConfig, MiroRouting


def never(_u, _v):
    return False


def unit(_u, _v):
    return 1.0


@pytest.fixture
def full_miro(fig2a_graph):
    return MiroRouting(
        fig2a_graph, RoutingCache(fig2a_graph), frozenset(fig2a_graph.nodes())
    )


class TestAvailablePaths:
    def test_default_first(self, full_miro):
        paths = full_miro.available_paths(1, 0)
        assert paths[0] == (1, 0)

    def test_strict_policy_filters_class(self, full_miro):
        # AS 1's default to AS 0 is a customer route; the peer alternatives
        # (via 2 or 3) have a *different* local preference class and are
        # excluded by the strict policy.
        paths = full_miro.available_paths(1, 0)
        assert paths == [(1, 0)]

    def test_same_class_alternative_included(self, fig11_graph):
        miro = MiroRouting(
            fig11_graph, RoutingCache(fig11_graph), frozenset(fig11_graph.nodes())
        )
        # AS 3's default to AS 5 is a provider route via 4; the route via 6
        # is also provider-class: the strict policy admits it.
        paths = miro.available_paths(3, 5)
        assert (3, 4, 5) in paths
        assert (3, 6, 5) in paths

    def test_cap_respected(self, small_internet):
        miro = MiroRouting(
            small_internet,
            RoutingCache(small_internet),
            frozenset(small_internet.nodes()),
            MiroConfig(max_alternatives=1),
        )
        for src in list(small_internet.nodes())[::31]:
            if src == 0:
                continue
            assert len(miro.available_paths(src, 0)) <= 2

    def test_non_capable_source_has_default_only(self, fig11_graph):
        miro = MiroRouting(fig11_graph, RoutingCache(fig11_graph), frozenset())
        assert miro.available_paths(3, 5) == [(3, 4, 5)]

    def test_bilateral_requirement(self, fig11_graph):
        # AS 3 capable but AS 6 (the alternative's head) not: no alternative.
        miro = MiroRouting(fig11_graph, RoutingCache(fig11_graph), frozenset({3, 4}))
        assert miro.available_paths(3, 5) == [(3, 4, 5)]

    def test_no_route_raises(self):
        from repro.topology.asgraph import ASGraph

        g = ASGraph()
        g.add_p2c(1, 0)
        g.add_as(9)
        g.freeze()
        miro = MiroRouting(g, RoutingCache(g), frozenset(g.nodes()))
        with pytest.raises(NoRouteError):
            miro.available_paths(9, 0)


class TestChoosePath:
    def test_uncongested_stays_default(self, fig11_graph):
        miro = MiroRouting(
            fig11_graph, RoutingCache(fig11_graph), frozenset(fig11_graph.nodes())
        )
        path, used_alt = miro.choose_path(3, 5, never, unit)
        assert path == (3, 4, 5)
        assert not used_alt

    def test_congested_default_picks_alternative(self, fig11_graph):
        miro = MiroRouting(
            fig11_graph, RoutingCache(fig11_graph), frozenset(fig11_graph.nodes())
        )
        congested = lambda u, v: (u, v) == (3, 4)
        path, used_alt = miro.choose_path(3, 5, congested, unit)
        assert path == (3, 6, 5)
        assert used_alt

    def test_equally_congested_alternative_not_preferred(self, fig11_graph):
        miro = MiroRouting(
            fig11_graph, RoutingCache(fig11_graph), frozenset(fig11_graph.nodes())
        )
        congested = lambda u, v: (u, v) in {(3, 4), (3, 6)}
        path, used_alt = miro.choose_path(3, 5, congested, unit)
        assert path == (3, 4, 5)
        assert not used_alt
