"""Tests for switch-distribution and offload metrics."""

import pytest

from repro.flowsim.flow import FlowRecord
from repro.metrics.offload import offload_fraction
from repro.metrics.stability import switch_distribution


def rec(flow_id, switches=0, used_alt=False):
    return FlowRecord(
        flow_id=flow_id,
        src=1,
        dst=2,
        size_bytes=1e6,
        start_time=0.0,
        finish_time=1.0,
        path_switches=switches,
        used_alternative=used_alt,
        initial_path_len=3,
    )


class TestSwitchDistribution:
    def test_paper_style_metrics(self):
        records = (
            [rec(i, 0) for i in range(50)]
            + [rec(100 + i, 1) for i in range(30)]
            + [rec(200 + i, 2) for i in range(15)]
            + [rec(300 + i, 3) for i in range(5)]
        )
        d = switch_distribution(records)
        assert d.total_flows == 100
        assert d.switching_flows == 50
        assert d.fraction_of_switching(1) == pytest.approx(0.6)
        assert d.fraction_at_most(2) == pytest.approx(0.9)
        assert d.fraction_switching == pytest.approx(0.5)

    def test_bucket_aggregation(self):
        d = switch_distribution([rec(1, 9)], max_bucket=5)
        assert d.histogram == {5: 1}

    def test_empty(self):
        d = switch_distribution([])
        assert d.fraction_of_switching(1) == 0.0
        assert d.fraction_at_most(2) == 0.0
        assert d.fraction_switching == 0.0


class TestOffload:
    def test_fraction(self):
        records = [rec(1, used_alt=True), rec(2), rec(3), rec(4, used_alt=True)]
        assert offload_fraction(records) == pytest.approx(0.5)

    def test_empty(self):
        assert offload_fraction([]) == 0.0

    def test_record_throughput_property(self):
        r = rec(1)
        assert r.throughput_bps == pytest.approx(8e6)
        assert r.duration == pytest.approx(1.0)


class TestSummary:
    def _result(self):
        from repro.flowsim.simulator import FluidSimResult

        records = [
            rec(1, switches=1, used_alt=True),
            rec(2),
            rec(3),
            rec(4, switches=2, used_alt=True),
        ]
        return FluidSimResult(
            scheme="MIFO",
            records=records,
            duration=2.0,
            events=10,
            reallocations=10,
            unroutable=0,
        )

    def test_summarize(self):
        from repro.metrics.summary import summarize

        s = summarize(self._result())
        assert s.scheme == "MIFO"
        assert s.n_flows == 4
        assert s.median_mbps == pytest.approx(8.0)
        assert s.offload_fraction == pytest.approx(0.5)
        assert s.fraction_switching == pytest.approx(0.5)
        assert s.mean_switches == pytest.approx(0.75)

    def test_empty(self):
        from repro.flowsim.simulator import FluidSimResult
        from repro.metrics.summary import summarize

        s = summarize(
            FluidSimResult("BGP", [], 0.0, 0, 0, 0)
        )
        assert s.n_flows == 0 and s.median_mbps == 0.0

    def test_comparison_rows(self):
        from repro.metrics.summary import comparison_rows

        rows = comparison_rows([self._result()])
        assert rows[0][0] == "MIFO"
        assert rows[0][1] == 4
