"""Tests for the Fig-7 path-diversity counting DP."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.propagation import RoutingCache
from repro.errors import NoRouteError
from repro.metrics.diversity import (
    count_bgp_paths,
    count_mifo_paths,
    diversity_counts,
)
from repro.miro.negotiation import MiroRouting

from ..conftest import as_graphs


class TestBgpCount:
    def test_route_exists(self, fig2a_graph):
        rc = RoutingCache(fig2a_graph)
        assert count_bgp_paths(rc, 1, 0) == 1

    def test_no_route(self):
        from repro.topology.asgraph import ASGraph

        g = ASGraph()
        g.add_p2c(1, 0)
        g.add_as(9)
        g.freeze()
        assert count_bgp_paths(RoutingCache(g), 9, 0) == 0


class TestMifoCount:
    def test_fig2a_full_deployment(self, fig2a_graph):
        rc = RoutingCache(fig2a_graph)
        capable = frozenset(fig2a_graph.nodes())
        # From AS 1 toward AS 0: direct (1,0); via each peer that then
        # goes direct ((1,2,0), (1,3,0)).  The peers may NOT deflect
        # onward (Tag-Check: arrived from peer).
        assert count_mifo_paths(fig2a_graph, rc, capable, 1, 0) == 3

    def test_no_deployment_equals_bgp(self, fig2a_graph):
        rc = RoutingCache(fig2a_graph)
        assert count_mifo_paths(fig2a_graph, rc, frozenset(), 1, 0) == 1

    def test_fig11(self, fig11_graph):
        rc = RoutingCache(fig11_graph)
        capable = frozenset(fig11_graph.nodes())
        # 1 -> 3 -> {4,6} -> 5: two paths (AS 1 has a single provider).
        assert count_mifo_paths(fig11_graph, rc, capable, 1, 5) == 2

    def test_partial_deployment_monotone(self, fig11_graph):
        rc = RoutingCache(fig11_graph)
        with_3 = count_mifo_paths(fig11_graph, rc, frozenset({3}), 1, 5)
        without = count_mifo_paths(fig11_graph, rc, frozenset(), 1, 5)
        assert with_3 >= without

    def test_no_route_raises(self):
        from repro.topology.asgraph import ASGraph

        g = ASGraph()
        g.add_p2c(1, 0)
        g.add_as(9)
        g.freeze()
        with pytest.raises(NoRouteError):
            count_mifo_paths(g, RoutingCache(g), frozenset(), 9, 0)

    def test_max_count_clamps(self, small_internet):
        rc = RoutingCache(small_internet)
        capable = frozenset(small_internet.nodes())
        n = count_mifo_paths(small_internet, rc, capable, 150, 0, max_count=3)
        assert n <= 3 * 4  # clamped per node; result stays small

    @given(g=as_graphs(max_nodes=9), seed=st.integers(0, 999))
    @settings(max_examples=50, deadline=None)
    def test_count_at_least_bgp_and_terminates(self, g, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        nodes = list(g.nodes())
        src, dst = rng.choice(nodes, size=2, replace=False)
        src, dst = int(src), int(dst)
        rc = RoutingCache(g)
        if not rc(dst).has_route(src):
            return
        capable = frozenset(
            int(x) for x in rng.choice(nodes, size=len(nodes) // 2 + 1, replace=False)
        )
        n = count_mifo_paths(g, rc, capable, src, dst)
        assert n >= 1  # at least the default path

    @given(g=as_graphs(max_nodes=9))
    @settings(max_examples=40, deadline=None)
    def test_full_deployment_dominates_partial(self, g):
        rc = RoutingCache(g)
        nodes = sorted(g.nodes())
        src, dst = nodes[-1], nodes[0]
        if src == dst or not rc(dst).has_route(src):
            return
        full = count_mifo_paths(g, rc, frozenset(nodes), src, dst)
        half = count_mifo_paths(g, rc, frozenset(nodes[: len(nodes) // 2]), src, dst)
        assert full >= half


class TestDiversityCounts:
    def test_joint_series(self, small_internet):
        rc = RoutingCache(small_internet)
        capable = frozenset(small_internet.nodes())
        miro = MiroRouting(small_internet, rc, capable)
        pairs = [(10, 0), (20, 0), (30, 0)]
        mifo_counts, miro_counts = diversity_counts(
            small_internet, rc, pairs, mifo_capable=capable, miro_routing=miro
        )
        assert len(mifo_counts) == len(miro_counts) == 3
        # MIFO's multiplicative diversity dominates MIRO's bounded list.
        assert sum(mifo_counts) >= sum(miro_counts)
