"""Tests for the path-stretch metric."""

import pytest

from repro.bgp.propagation import RoutingCache
from repro.flowsim.flow import FlowRecord
from repro.metrics.stretch import StretchStats, path_stretch


def rec(src, dst, final_len, initial_len=None):
    return FlowRecord(
        flow_id=1,
        src=src,
        dst=dst,
        size_bytes=1e6,
        start_time=0.0,
        finish_time=1.0,
        path_switches=0,
        used_alternative=final_len != initial_len,
        initial_path_len=initial_len or final_len,
        final_path_len=final_len,
    )


class TestStretch:
    def test_default_path_has_stretch_one(self, fig11_graph):
        rc = RoutingCache(fig11_graph)
        # default 1 -> 3 -> 4 -> 5: 4 nodes
        stats = path_stretch([rec(1, 5, 4)], rc)
        assert stats.mean == pytest.approx(1.0)
        assert stats.fraction_stretched == 0.0

    def test_deflected_longer_path(self, fig11_graph):
        rc = RoutingCache(fig11_graph)
        # a 5-node path where default is 4 nodes: stretch 4/3
        stats = path_stretch([rec(1, 5, 5)], rc)
        assert stats.mean == pytest.approx(4 / 3)
        assert stats.fraction_stretched == 1.0

    def test_mixed_population(self, fig11_graph):
        rc = RoutingCache(fig11_graph)
        stats = path_stretch([rec(1, 5, 4), rec(1, 5, 5)], rc)
        assert stats.median == pytest.approx((1.0 + 4 / 3) / 2)
        assert stats.fraction_stretched == pytest.approx(0.5)
        assert stats.max == pytest.approx(4 / 3)

    def test_legacy_records_skipped(self, fig11_graph):
        rc = RoutingCache(fig11_graph)
        stats = path_stretch([rec(1, 5, 0)], rc)
        assert stats == StretchStats(0.0, 0.0, 0.0, 0.0, 0.0)

    def test_from_fluid_run(self, fig11_graph):
        from repro.flowsim import FluidSimulator, MifoProvider
        from repro.flowsim.flow import FlowSpec
        from repro.mifo import MifoPathBuilder

        rc = RoutingCache(fig11_graph)
        sim = FluidSimulator(
            fig11_graph,
            MifoProvider(
                MifoPathBuilder(fig11_graph, rc, frozenset(fig11_graph.nodes()))
            ),
        )
        res = sim.run(
            [
                FlowSpec(1, 1, 5, 4e6, 0.0),
                FlowSpec(2, 2, 5, 4e6, 0.004),
            ]
        )
        stats = path_stretch(res.records, rc)
        assert stats.mean >= 1.0
        assert stats.max <= 2.0  # the 3->6->5 detour adds no hops here
