"""Tests for empirical CDF helpers."""

import numpy as np
import pytest

from repro.metrics.cdf import Cdf, survival_series


class TestCdf:
    def test_basic(self):
        c = Cdf.from_samples([1, 2, 3, 4])
        assert c.at(2) == pytest.approx(0.5)
        assert c.at(0) == 0.0
        assert c.at(4) == 1.0
        assert len(c) == 4

    def test_fraction_at_least(self):
        c = Cdf.from_samples([100, 200, 300, 400, 500])
        assert c.fraction_at_least(300) == pytest.approx(3 / 5)
        assert c.fraction_at_least(501) == 0.0
        assert c.fraction_at_least(0) == 1.0

    def test_median_and_percentiles(self):
        c = Cdf.from_samples(range(1, 102))
        assert c.median == pytest.approx(51)
        assert c.percentile(90) == pytest.approx(91)

    def test_empty(self):
        c = Cdf.from_samples([])
        assert c.at(5) == 0.0
        assert c.fraction_at_least(5) == 0.0
        xs, ys = c.series()
        assert xs.size == 0 and ys.size == 0

    def test_series_monotone(self):
        c = Cdf.from_samples(np.random.default_rng(0).normal(size=500))
        xs, ys = c.series(points=30)
        assert np.all(np.diff(xs) > 0)
        assert np.all(np.diff(ys) >= 0)
        assert ys[-1] == pytest.approx(100.0)


class TestSurvival:
    def test_descending_layout(self):
        pct, vals = survival_series([5, 1, 9, 3])
        assert list(vals) == [9, 5, 3, 1]
        assert pct[-1] == pytest.approx(100.0)
        assert pct[0] == pytest.approx(25.0)

    def test_empty(self):
        pct, vals = survival_series([])
        assert pct.size == 0 and vals.size == 0
