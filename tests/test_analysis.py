"""Tests for the what-if / explain diagnostics."""

import pytest

from repro.analysis import explain_path
from repro.bgp.propagation import RoutingCache
from repro.errors import NoRouteError
from repro.mifo.deflection import MifoPathBuilder


@pytest.fixture
def builder(fig11_graph):
    return MifoPathBuilder(
        fig11_graph, RoutingCache(fig11_graph), frozenset(fig11_graph.nodes())
    )


def never(_u, _v):
    return False


def unit(_u, _v):
    return 1.0


class TestExplainPath:
    def test_matches_builder_walk(self, builder):
        congested = lambda u, v: (u, v) == (3, 4)
        spare = lambda u, v: 5.0
        explained = explain_path(builder, 1, 5, congested, spare)
        walked = builder.build_path(1, 5, congested, spare)
        assert explained.path == walked.path
        assert explained.deflections == walked.deflections

    def test_uncongested_narrative(self, builder):
        e = explain_path(builder, 1, 5, never, unit)
        assert e.path == (1, 3, 4, 5)
        assert e.deflections == 0
        text = e.describe()
        assert "follows the default path" in text
        assert "DEFLECTS" not in text

    def test_deflection_narrative_lists_candidates(self, builder):
        congested = lambda u, v: (u, v) == (3, 4)
        e = explain_path(builder, 1, 5, congested, unit)
        assert e.deflections == 1
        text = e.describe()
        assert "DEFLECTS to AS 6" in text
        assert "CHOSEN" in text
        hop3 = next(h for h in e.hops if h.asn == 3)
        assert hop3.default_congested
        assert hop3.deflected_to == 6
        assert any(c.chosen for c in hop3.candidates)

    def test_tag_check_verdict_surfaces(self, fig2a_graph):
        b = MifoPathBuilder(
            fig2a_graph,
            RoutingCache(fig2a_graph),
            frozenset(fig2a_graph.nodes()),
            deflect_uncongested_only=False,
        )
        congested = lambda u, v: v == 0
        # From AS 1's perspective the first deflection is legal (own
        # traffic); at the peer, the remaining peer candidate must be
        # reported as forbidden by Tag-Check.
        e = explain_path(b, 1, 0, congested, unit)
        text = e.describe()
        assert "forbidden by Tag-Check" in text

    def test_non_capable_hop_reported(self, fig11_graph):
        b = MifoPathBuilder(fig11_graph, RoutingCache(fig11_graph), frozenset({1}))
        congested = lambda u, v: (u, v) == (3, 4)
        e = explain_path(b, 1, 5, congested, unit)
        assert "not MIFO-capable" in e.describe()
        assert e.path == (1, 3, 4, 5)

    def test_no_route_raises(self):
        from repro.topology.asgraph import ASGraph

        g = ASGraph()
        g.add_p2c(1, 0)
        g.add_as(9)
        g.freeze()
        b = MifoPathBuilder(g, RoutingCache(g), frozenset(g.nodes()))
        with pytest.raises(NoRouteError):
            explain_path(b, 9, 0, never, unit)
