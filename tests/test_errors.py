"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.TopologyError,
            errors.RoutingError,
            errors.NoRouteError,
            errors.ForwardingError,
            errors.LoopDetectedError,
            errors.SimulationError,
            errors.ConfigError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_no_route_carries_endpoints(self):
        e = errors.NoRouteError(3, 9)
        assert e.source == 3 and e.destination == 9
        assert "AS 3" in str(e) and "AS 9" in str(e)
        assert isinstance(e, errors.RoutingError)

    def test_loop_detected_carries_path(self):
        e = errors.LoopDetectedError([1, 2, 3, 1])
        assert e.path == [1, 2, 3, 1]
        assert "1 -> 2 -> 3 -> 1" in str(e)
        assert isinstance(e, errors.ForwardingError)

    def test_package_exports(self):
        import repro

        assert repro.errors is errors
        assert repro.__version__
