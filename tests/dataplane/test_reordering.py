"""Packet-reordering tests — why MIFO pins flows to paths.

Section II-A: "To avoid packet reordering issues, forwarding is
deterministic at the flow level."  These tests measure arrival-order
inversions at the receiver with flow pinning on (sticky / hash modes) and
off (per-packet deflection), on a topology where the default and
alternative paths have *different* latencies, so path flapping visibly
reorders."""



from repro.dataplane import Network
from repro.mifo.engine import MifoEngine, MifoEngineConfig, bgp_engine
from repro.topology.relationships import Relationship

C, P, R = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER


def build(engine_cfg: MifoEngineConfig):
    """src host -> M (MIFO) -> {default via D | alt via A} -> dst router E
    -> dst host.  The alternative leg has much lower latency than the
    default, so packets switching paths overtake in-flight ones."""
    net = Network()
    m = net.add_router("M", 2, MifoEngine(engine_cfg))
    d = net.add_router("D", 3, bgp_engine)
    a = net.add_router("A", 4, bgp_engine)
    e = net.add_router("E", 5, bgp_engine)
    src = net.add_host("S")
    dst = net.add_host("T")
    _, m_s = net.attach_host(src, m)
    _, e_t = net.attach_host(dst, e)
    # Default leg: slow-ish rate -> queue builds -> congestion signal;
    # high latency.
    m_d, _ = net.connect_routers(
        m, d, relationship_of_b=R, rate_bps=5e7, delay_s=5e-3, queue_capacity=16
    )
    d_e, _ = net.connect_routers(d, e, relationship_of_b=C, rate_bps=1e9, delay_s=5e-3)
    # Alternative leg: fast and short.
    m_a, _ = net.connect_routers(
        m, a, relationship_of_b=C, rate_bps=1e9, delay_s=1e-4
    )
    a_e, _ = net.connect_routers(a, e, relationship_of_b=C, rate_bps=1e9, delay_s=1e-4)

    m.fib.install("T", m_d, m_a)
    d.fib.install("T", d_e)
    a.fib.install("T", a_e)
    e.fib.install("T", e_t)
    return net, src, dst


class TestReordering:
    def test_unpinned_deflection_reorders(self):
        """sticky_flows=False deflects per packet: whenever the default
        queue hovers around the threshold, consecutive packets alternate
        between a 10 ms and a 0.2 ms path — heavy reordering."""
        cfg = MifoEngineConfig(
            congestion_threshold=0.3, sticky_flows=False
        )
        net, src, dst = build(cfg)
        src.start_cbr(1, "T", rate_bps=6e7, packet_size=1000, total_bytes=1e6)
        net.run(until=5.0)
        assert dst.cbr_inversions.get(1, 0) > 10

    def test_sticky_pinning_bounds_reordering(self):
        """With the paper's flow pinning, the only reordering window is
        the single mid-flow switch (in-flight default packets arrive after
        the first alt packets) — inversions stay bounded near the
        in-flight window size, instead of recurring per packet."""
        cfg = MifoEngineConfig(
            congestion_threshold=0.3, sticky_flows=True, min_switch_interval=0.05
        )
        net, src, dst = build(cfg)
        src.start_cbr(1, "T", rate_bps=6e7, packet_size=1000, total_bytes=1e6)
        net.run(until=5.0)
        sticky = dst.cbr_inversions.get(1, 0)

        cfg2 = MifoEngineConfig(congestion_threshold=0.3, sticky_flows=False)
        net2, src2, dst2 = build(cfg2)
        src2.start_cbr(1, "T", rate_bps=6e7, packet_size=1000, total_bytes=1e6)
        net2.run(until=5.0)
        unpinned = dst2.cbr_inversions.get(1, 0)

        assert sticky < unpinned
        # bounded: a few cooldown-limited switches x one in-flight window
        assert sticky <= 80

    def test_hash_ineligible_flow_never_reorders(self):
        """A flow outside the hash's deflect bucket never leaves the
        default path: zero inversions, by construction."""
        cfg = MifoEngineConfig(
            congestion_threshold=0.3,
            pin_mode="hash",
            hash_deflect_fraction=0.0,
        )
        net, src, dst = build(cfg)
        src.start_cbr(1, "T", rate_bps=6e7, packet_size=1000, total_bytes=1e6)
        net.run(until=5.0)
        assert dst.cbr_inversions.get(1, 0) == 0

    def test_hash_eligible_flow_pins_like_sticky(self):
        """Eligible flows get the same sticky stability (bounded
        inversions), not per-packet flapping."""
        cfg = MifoEngineConfig(
            congestion_threshold=0.3,
            pin_mode="hash",
            hash_deflect_fraction=1.0,
            min_switch_interval=0.05,
        )
        net, src, dst = build(cfg)
        src.start_cbr(1, "T", rate_bps=6e7, packet_size=1000, total_bytes=1e6)
        net.run(until=5.0)
        assert dst.cbr_inversions.get(1, 0) <= 80

    def test_no_congestion_no_reordering(self):
        cfg = MifoEngineConfig(congestion_threshold=0.99)
        net, src, dst = build(cfg)
        src.start_cbr(1, "T", rate_bps=1e7, packet_size=1000, total_bytes=2e5)
        net.run(until=5.0)
        assert dst.cbr_inversions.get(1, 0) == 0
        assert dst.cbr_received[1] == 2e5
