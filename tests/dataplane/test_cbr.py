"""Unit tests for the CBR traffic source."""

import pytest

from repro.dataplane import Network
from repro.mifo.engine import bgp_engine
from repro.topology.relationships import Relationship


def wire():
    net = Network()
    r1 = net.add_router("R1", 1, bgp_engine)
    r2 = net.add_router("R2", 2, bgp_engine)
    a = net.add_host("A")
    b = net.add_host("B")
    _, r1_a = net.attach_host(a, r1)
    _, r2_b = net.attach_host(b, r2)
    p12, p21 = net.connect_routers(r1, r2, relationship_of_b=Relationship.PEER)
    r1.fib.install("B", p12)
    r2.fib.install("B", r2_b)
    r2.fib.install("A", p21)
    r1.fib.install("A", r1_a)
    return net, a, b


class TestCbr:
    def test_rate_and_accounting(self):
        net, a, b = wire()
        s = a.start_cbr(1, "B", rate_bps=8e6, packet_size=1000, total_bytes=100_000)
        net.run(until=2.0)
        assert s.sent_bytes == 100_000
        assert s.sent_packets == 100
        assert not s.running
        assert b.cbr_received[1] == 100_000
        # 100 packets at 8 Mb/s with 1 kB packets = 1 ms apart = ~0.1 s
        # of sending; everything arrives shortly after.

    def test_unbounded_until_stopped(self):
        net, a, b = wire()
        s = a.start_cbr(1, "B", rate_bps=8e6, packet_size=1000)
        net.sim.schedule(0.0105, s.stop)
        net.run(until=1.0)
        assert not s.running
        assert 9 <= s.sent_packets <= 12

    def test_delayed_start(self):
        net, a, b = wire()
        a.start_cbr(1, "B", rate_bps=8e6, total_bytes=5000, delay=0.5)
        net.run(until=0.4)
        assert b.cbr_received.get(1, 0) == 0
        net.run(until=2.0)
        assert b.cbr_received[1] == 5000

    def test_bad_rate(self):
        net, a, _b = wire()
        with pytest.raises(ValueError):
            a.start_cbr(1, "B", rate_bps=0)

    def test_start_idempotent(self):
        net, a, _b = wire()
        s = a.start_cbr(1, "B", rate_bps=8e6, total_bytes=2000)
        s.start()  # second start must not double the stream
        net.run(until=1.0)
        assert s.sent_packets == 2
