"""Tests for the Network wiring helper and the throughput sampler."""

import pytest

from repro.dataplane import Network, PeerKind, ThroughputSampler
from repro.errors import ConfigError
from repro.mifo.engine import bgp_engine
from repro.topology.relationships import Relationship


class TestWiring:
    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_router("R", 1, bgp_engine)
        with pytest.raises(ConfigError):
            net.add_router("R", 2, bgp_engine)
        with pytest.raises(ConfigError):
            net.add_host("R")

    def test_type_checked_getters(self):
        net = Network()
        net.add_router("R", 1, bgp_engine)
        net.add_host("H")
        assert net.router("R").asn == 1
        assert net.host("H").name == "H"
        with pytest.raises(ConfigError):
            net.router("H")
        with pytest.raises(ConfigError):
            net.host("R")

    def test_same_as_becomes_ibgp(self):
        net = Network()
        a = net.add_router("A", 3, bgp_engine)
        b = net.add_router("B", 3, bgp_engine)
        pa, pb = net.connect_routers(a, b)
        assert pa.peer_kind is PeerKind.IBGP
        assert pb.peer_kind is PeerKind.IBGP
        assert a.ibgp_ports["B"] is pa
        assert b.ibgp_ports["A"] is pb

    def test_cross_as_needs_relationship(self):
        net = Network()
        a = net.add_router("A", 1, bgp_engine)
        b = net.add_router("B", 2, bgp_engine)
        with pytest.raises(ConfigError):
            net.connect_routers(a, b)

    def test_ebgp_annotations_mirrored(self):
        net = Network()
        a = net.add_router("A", 1, bgp_engine)
        b = net.add_router("B", 2, bgp_engine)
        pa, pb = net.connect_routers(a, b, relationship_of_b=Relationship.CUSTOMER)
        assert pa.peer_kind is PeerKind.EBGP
        assert pa.neighbor_as == 2
        assert pa.neighbor_relationship is Relationship.CUSTOMER
        assert pb.neighbor_relationship is Relationship.PROVIDER


class TestSampler:
    def test_series_and_stop(self):
        net = Network()
        h = net.add_host("H")
        r = net.add_router("R", 1, bgp_engine)
        net.attach_host(h, r)
        sampler = ThroughputSampler(net, [h], interval=0.1)
        sampler.start()
        net.sim.schedule(0.35, sampler.stop)
        net.run()
        # Samples at 0, .1, .2, .3 and the stop point.
        assert len(sampler.times) == 5
        assert sampler.series_bps() == [(pytest.approx(t), 0.0) for t in (0.1, 0.2, 0.3, 0.35)]
        assert sampler.mean_bps() == 0.0

    def test_bad_interval(self):
        net = Network()
        with pytest.raises(ConfigError):
            ThroughputSampler(net, [], interval=0.0)
