"""Link-failure failover tests: MIFO's congestion signal doubles as a
fast local-repair mechanism (queues back up on carrier loss, the engine
deflects), while plain BGP blackholes until control-plane reconvergence.

CBR (feedback-free) traffic is used so the forward direction is measured
in isolation — TCP's ack-clocking would couple it to the reverse path,
which crosses the same failed link.
"""

import pytest

from repro.mifo.engine import MifoEngineConfig
from repro.netbuild import BuildConfig, build_network
from repro.topology.asgraph import ASGraph


@pytest.fixture
def fig11():
    return ASGraph.from_links(p2c=[(3, 1), (3, 2), (4, 3), (6, 3), (4, 5), (6, 5)])


def find_link(net, a_name, b_name):
    for link in net.links:
        names = {d.name for d in (link._end_a[0], link._end_b[0])}
        if names == {a_name, b_name}:
            return link
    raise AssertionError(f"no link {a_name}-{b_name}")


def build(fig11, *, mifo: bool):
    return build_network(
        fig11,
        expand={3},
        mifo_capable={3} if mifo else set(),
        hosts_at=[1, 5],
        config=BuildConfig(mifo_config=MifoEngineConfig(congestion_threshold=0.5)),
    )


class TestLinkModel:
    def test_fail_stalls_transmission(self, fig11):
        built = build(fig11, mifo=False)
        link = find_link(built.net, "R3.4", "R4")
        _, h1 = built.hosts["H1"]
        _, h5 = built.hosts["H5"]
        h1.start_cbr(1, "H5", rate_bps=100e6, total_bytes=2e6)
        built.net.sim.schedule(0.002, link.fail)
        built.run(until=2.0)
        # Some bytes got through before the failure; far from all.
        delivered = h5.cbr_received.get(1, 0)
        assert 0 < delivered < 2e6 * 0.5

    def test_restore_resumes(self, fig11):
        built = build(fig11, mifo=False)
        link = find_link(built.net, "R3.4", "R4")
        _, h1 = built.hosts["H1"]
        _, h5 = built.hosts["H5"]
        h1.start_cbr(1, "H5", rate_bps=100e6, total_bytes=1e6)
        built.net.sim.schedule(0.002, link.fail)
        built.net.sim.schedule(0.010, link.restore)
        built.run(until=5.0)
        # The stalled queue drains after restore; only drop-tail losses
        # during the outage are missing.
        assert h5.cbr_received.get(1, 0) > 0.7e6


class TestMifoFailover:
    def test_mifo_repairs_bgp_blackholes(self, fig11):
        """Fail the default 3->4 link mid-transfer: MIFO keeps delivering
        via 3->6->5; BGP delivery stops at the failure point."""

        def delivered(mifo: bool):
            built = build(fig11, mifo=mifo)
            link = find_link(built.net, "R3.4", "R4")
            _, h1 = built.hosts["H1"]
            _, h5 = built.hosts["H5"]
            h1.start_cbr(1, "H5", rate_bps=200e6, total_bytes=5e6)
            built.net.sim.schedule(0.002, link.fail)
            built.run(until=5.0)
            return h5.cbr_received.get(1, 0), built

        bgp_bytes, _ = delivered(mifo=False)
        mifo_bytes, built = delivered(mifo=True)
        assert bgp_bytes < 1e6  # blackholed after ~2 ms of delivery
        assert mifo_bytes > 4.5e6  # nearly everything arrived
        assert built.counters_total("deflected") > 0
        assert built.counters_total("encapsulated") > 0
        assert built.counters_total("dropped_ttl") == 0

    def test_failover_loss_window_is_queue_sized(self, fig11):
        """Only the packets committed to the dead egress before the queue
        signal fired are lost — a data-plane-scale loss window, not a
        BGP-timer one."""
        built = build(fig11, mifo=True)
        link = find_link(built.net, "R3.4", "R4")
        _, h1 = built.hosts["H1"]
        _, h5 = built.hosts["H5"]
        sender = h1.start_cbr(1, "H5", rate_bps=200e6, total_bytes=5e6)
        built.net.sim.schedule(0.002, link.fail)
        built.run(until=5.0)
        lost = sender.sent_bytes - h5.cbr_received.get(1, 0)
        # Loss bounded by ~queue capacity (64 packets x 1 kB) plus the
        # handful in flight.
        assert lost <= 80 * 1000
