"""Byte/packet conservation properties of the packet plane.

Whatever enters a link's tx queue either arrives at the far side or is
accounted as a drop — under arbitrary packet sizes, bursts and queue
capacities.  These invariants underpin every throughput number in the
Fig-12 reproduction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.device import Device
from repro.dataplane.events import Simulator
from repro.dataplane.link import Link
from repro.dataplane.packet import Packet
from repro.dataplane.port import Port


class Counter(Device):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.packets = 0
        self.bytes = 0

    def receive(self, packet, in_port):
        self.packets += 1
        self.bytes += packet.size


@st.composite
def bursts(draw):
    queue = draw(st.integers(1, 32))
    sizes = draw(st.lists(st.integers(40, 9000), min_size=1, max_size=80))
    rate = draw(st.sampled_from([1e6, 1e8, 1e9]))
    return queue, sizes, rate


class TestConservation:
    @given(bursts())
    @settings(max_examples=60, deadline=None)
    def test_sent_plus_dropped_equals_offered(self, burst):
        queue, sizes, rate = burst
        sim = Simulator()
        a = Counter(sim, "A")
        b = Counter(sim, "B")
        pa = a.add_port(Port("A:0", queue_capacity=queue))
        pb = b.add_port(Port("B:0", queue_capacity=queue))
        Link(sim, a, pa, b, pb, rate_bps=rate, delay_s=1e-4)
        accepted_bytes = 0
        for i, size in enumerate(sizes):
            p = Packet(flow_id=1, seq=i, src="S", dst="D", size=size)
            if pa.send(p):
                accepted_bytes += size
        sim.run()
        assert pa.stats.packets_sent + pa.stats.packets_dropped == len(sizes)
        assert b.packets == pa.stats.packets_sent
        assert b.bytes == pa.stats.bytes_sent == accepted_bytes

    @given(bursts())
    @settings(max_examples=40, deadline=None)
    def test_fifo_delivery_order(self, burst):
        queue, sizes, rate = burst
        sim = Simulator()
        received = []

        class Order(Device):
            def receive(self, packet, in_port):
                received.append(packet.seq)

        a = Order(sim, "A")
        b = Order(sim, "B")
        pa = a.add_port(Port("A:0", queue_capacity=queue))
        pb = b.add_port(Port("B:0", queue_capacity=queue))
        Link(sim, a, pa, b, pb, rate_bps=rate, delay_s=1e-4)
        for i, size in enumerate(sizes):
            pa.send(Packet(flow_id=1, seq=i, src="S", dst="D", size=size))
        sim.run()
        assert received == sorted(received)

    @given(bursts())
    @settings(max_examples=40, deadline=None)
    def test_busy_time_matches_bytes(self, burst):
        queue, sizes, rate = burst
        sim = Simulator()
        a = Counter(sim, "A")
        b = Counter(sim, "B")
        pa = a.add_port(Port("A:0", queue_capacity=queue))
        pb = b.add_port(Port("B:0", queue_capacity=queue))
        Link(sim, a, pa, b, pb, rate_bps=rate, delay_s=1e-4)
        for i, size in enumerate(sizes):
            pa.send(Packet(flow_id=1, seq=i, src="S", dst="D", size=size))
        sim.run()
        expected = pa.stats.bytes_sent * 8.0 / rate
        assert abs(pa.stats.busy_time - expected) < 1e-9 * max(1.0, expected)
