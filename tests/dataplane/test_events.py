"""Tests for the DES core."""

import pytest

from repro.dataplane.events import EventQueue, Simulator
from repro.errors import SimulationError


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        out = []
        q.push(2.0, lambda: out.append("b"))
        q.push(1.0, lambda: out.append("a"))
        q.push(3.0, lambda: out.append("c"))
        while q:
            _t, cb = q.pop()
            cb()
        assert out == ["a", "b", "c"]

    def test_fifo_among_equal_times(self):
        q = EventQueue()
        out = []
        for i in range(5):
            q.push(1.0, lambda i=i: out.append(i))
        while q:
            q.pop()[1]()
        assert out == [0, 1, 2, 3, 4]

    def test_peek(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        assert q.peek_time() == 5.0
        assert len(q) == 1


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.schedule(0.5, lambda: times.append(sim.now))
        end = sim.run()
        assert times == [0.5, 1.0]
        assert end == 1.0

    def test_nested_scheduling(self):
        sim = Simulator()
        out = []

        def first():
            out.append(sim.now)
            sim.schedule(2.0, lambda: out.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert out == [1.0, 3.0]

    def test_until_pauses_but_keeps_events(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, lambda: out.append(1))
        sim.schedule(5.0, lambda: out.append(5))
        sim.run(until=2.0)
        assert out == [1]
        assert sim.now == 2.0
        sim.run()
        assert out == [1, 5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_event_budget(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(SimulationError, match="budget"):
            sim.run(max_events=10)

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as e:
                errors.append(e)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1
