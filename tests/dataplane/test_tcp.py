"""Tests for the TCP Reno substrate."""

import pytest

from repro.dataplane import Network
from repro.dataplane.tcp import TcpConfig
from repro.mifo.engine import bgp_engine
from repro.topology.relationships import Relationship


def two_host_net(rate=1e8, queue=16):
    """A <-> R1 <-> R2 <-> B with configurable middle-link rate."""
    net = Network()
    r1 = net.add_router("R1", 1, bgp_engine)
    r2 = net.add_router("R2", 2, bgp_engine)
    a = net.add_host("A")
    b = net.add_host("B")
    _, r1_a = net.attach_host(a, r1, rate_bps=1e9)
    _, r2_b = net.attach_host(b, r2, rate_bps=1e9)
    p12, p21 = net.connect_routers(
        r1, r2, relationship_of_b=Relationship.PEER, rate_bps=rate, queue_capacity=queue
    )
    r1.fib.install("B", p12)
    r1.fib.install("A", r1_a)
    r2.fib.install("A", p21)
    r2.fib.install("B", r2_b)
    return net, a, b


class TestBulkTransfer:
    def test_completes_and_utilizes_link(self):
        net, a, _b = two_host_net(rate=1e8)
        s = a.start_flow(1, "B", 1_000_000)
        net.run(until=60.0)
        assert s.completed
        assert s.goodput_bps > 0.75e8  # >75% of the 100 Mbps bottleneck

    def test_byte_count_exact(self):
        net, a, b = two_host_net()
        s = a.start_flow(1, "B", 500_000, config=TcpConfig(mss=1000))
        net.run(until=60.0)
        assert s.completed
        assert s.total_segments == 500
        assert b.receivers[1].next_expected == 500
        assert b.delivered_bytes == 500_000

    def test_tiny_flow(self):
        net, a, _b = two_host_net()
        s = a.start_flow(1, "B", 1)  # single segment
        net.run(until=10.0)
        assert s.completed
        assert s.total_segments == 1

    def test_duration_property_requires_completion(self):
        net, a, _b = two_host_net()
        s = a.start_flow(1, "B", 1_000_000)
        with pytest.raises(RuntimeError):
            _ = s.duration


class TestFairness:
    def test_two_flows_share_fairly(self):
        net, a, _b = two_host_net(rate=1e8, queue=32)
        s1 = a.start_flow(1, "B", 1_500_000)
        s2 = a.start_flow(2, "B", 1_500_000)
        net.run(until=120.0)
        assert s1.completed and s2.completed
        g1, g2 = s1.goodput_bps, s2.goodput_bps
        assert 0.3 < g1 / g2 < 3.0  # coarse TCP fairness
        assert g1 + g2 > 0.7e8


class TestLossRecovery:
    def test_survives_heavy_congestion(self):
        # Tiny queue forces repeated loss; the flow must still complete.
        net, a, _b = two_host_net(rate=1e7, queue=4)
        s = a.start_flow(1, "B", 300_000)
        net.run(until=120.0)
        assert s.completed
        assert s.retransmissions > 0

    def test_delayed_start(self):
        net, a, _b = two_host_net()
        s = a.start_flow(1, "B", 100_000, delay=1.0)
        net.run(until=30.0)
        assert s.completed
        assert s.start_time == pytest.approx(1.0)


class TestReceiver:
    def test_out_of_order_reassembly(self):
        from repro.dataplane.events import Simulator
        from repro.dataplane.host import Host
        from repro.dataplane.packet import Packet
        from repro.dataplane.tcp import TcpReceiver

        sim = Simulator()
        host = Host(sim, "B")
        rcv = TcpReceiver(sim, host, flow_id=1, peer="A")
        sent_acks = []
        host.transmit = lambda p: sent_acks.append(p.seq)  # type: ignore

        def data(seq):
            return Packet(flow_id=1, seq=seq, src="A", dst="B", size=1040)

        rcv.on_data(data(0))
        rcv.on_data(data(2))  # gap
        rcv.on_data(data(1))  # fills gap -> cumulative jump
        assert sent_acks == [1, 1, 3]
        assert rcv.next_expected == 3
        assert rcv.delivered_bytes == 3 * 1000

    def test_duplicate_data_reacked(self):
        from repro.dataplane.events import Simulator
        from repro.dataplane.host import Host
        from repro.dataplane.packet import Packet
        from repro.dataplane.tcp import TcpReceiver

        sim = Simulator()
        host = Host(sim, "B")
        rcv = TcpReceiver(sim, host, flow_id=1, peer="A")
        acks = []
        host.transmit = lambda p: acks.append(p.seq)  # type: ignore
        d = Packet(flow_id=1, seq=0, src="A", dst="B", size=1040)
        rcv.on_data(d)
        rcv.on_data(Packet(flow_id=1, seq=0, src="A", dst="B", size=1040))
        assert acks == [1, 1]
        assert rcv.next_expected == 1
