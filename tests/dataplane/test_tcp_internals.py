"""White-box tests of TCP sender internals: RTT estimation, RTO backoff,
window evolution, Karn's rule — behaviors the bulk-transfer tests only
exercise implicitly."""

import pytest

from repro.dataplane.events import Simulator
from repro.dataplane.host import Host
from repro.dataplane.packet import PacketKind
from repro.dataplane.tcp import TcpConfig, TcpSender


class LoopbackHost(Host):
    """Host whose transmit() is captured instead of wired to a link."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.transmitted = []

    def transmit(self, packet):
        self.transmitted.append(packet)
        return True


@pytest.fixture
def sender():
    sim = Simulator()
    host = LoopbackHost(sim, "S")
    s = TcpSender(sim, host, flow_id=1, dst="D", total_bytes=50_000,
                  config=TcpConfig(mss=1000))
    return sim, host, s


class TestWindow:
    def test_initial_window_sent_at_start(self, sender):
        _sim, host, s = sender
        s.start()
        assert len(host.transmitted) == int(s.cwnd)
        assert all(p.kind is PacketKind.DATA for p in host.transmitted)
        assert [p.seq for p in host.transmitted] == list(range(int(s.cwnd)))

    def test_slow_start_doubles_per_rtt(self, sender):
        sim, host, s = sender
        s.start()
        first_burst = len(host.transmitted)
        # ACK everything outstanding: cwnd += 1 per ACK in slow start.
        for ack in range(1, first_burst + 1):
            s.on_ack(ack)
        assert s.cwnd == pytest.approx(s.config.initial_cwnd + first_burst)

    def test_congestion_avoidance_linear(self, sender):
        _sim, _host, s = sender
        s.start()
        s.cwnd = s.ssthresh = 10.0
        s.snd_nxt = 20
        s.snd_una = 10
        before = s.cwnd
        s.on_ack(11)
        assert s.cwnd == pytest.approx(before + 1.0 / before)

    def test_completion_fires_once(self, sender):
        sim, host, s = sender
        done = []
        s.on_complete = lambda snd: done.append(snd)
        s.start()
        # ACK cumulatively to the end.
        s.on_ack(s.total_segments)
        assert s.completed
        assert len(done) == 1
        assert s.finish_time == sim.now


class TestFastRetransmit:
    def test_three_dupacks_trigger_retransmit(self, sender):
        _sim, host, s = sender
        s.start()
        sent_before = len(host.transmitted)
        for _ in range(3):
            s.on_ack(0)
        assert len(host.transmitted) == sent_before + 1
        assert host.transmitted[-1].seq == 0
        assert s.in_recovery
        assert s.retransmissions == 1

    def test_two_dupacks_do_not(self, sender):
        _sim, host, s = sender
        s.start()
        sent_before = len(host.transmitted)
        for _ in range(2):
            s.on_ack(0)
        assert len(host.transmitted) == sent_before

    def test_newreno_partial_ack_retransmits_next_hole(self, sender):
        _sim, host, s = sender
        s.start()
        for _ in range(3):
            s.on_ack(0)  # enter recovery, retransmit seq 0
        assert s.in_recovery
        s.on_ack(1)  # partial: seq 1 is also missing
        # The hole (seq 1) was retransmitted immediately; the freed window
        # may additionally admit new segments after it.
        retransmitted = [p.seq for p in host.transmitted if p.seq == 1]
        assert len(retransmitted) >= 2  # original + NewReno retransmit
        assert s.retransmissions == 2  # seq 0 (fast rtx) + seq 1 (partial)
        assert s.in_recovery

    def test_full_ack_exits_recovery(self, sender):
        _sim, _host, s = sender
        s.start()
        for _ in range(3):
            s.on_ack(0)
        recover = s.recover_seq
        s.on_ack(recover)
        assert not s.in_recovery
        assert s.cwnd == pytest.approx(s.ssthresh)


class TestRto:
    def test_timeout_backoff_and_go_back_n(self, sender):
        sim, host, s = sender
        s.start()
        nxt_before = s.snd_nxt
        rto_before = s._rto
        sim.run(until=rto_before + 0.001)
        # Timer fired: seq 0 retransmitted, window collapsed, go-back-N.
        assert s.retransmissions >= 1
        assert s.cwnd == s.config.initial_cwnd
        assert s.snd_nxt == s.snd_una + 1 <= nxt_before
        assert s._rto == pytest.approx(min(rto_before * 2, s.config.max_rto))

    def test_progress_cancels_stale_timer(self):
        sim = Simulator()
        host = LoopbackHost(sim, "S")
        s = TcpSender(sim, host, flow_id=1, dst="D", total_bytes=50_000,
                      config=TcpConfig(mss=1000, initial_rto=0.3, min_rto=0.2))
        s.start()
        sim.schedule(0.01, lambda: s.on_ack(1))  # progress re-arms the timer
        sim.run(until=0.15)
        # The original timer (armed at t=0, due t=0.3) was invalidated by
        # progress; the re-armed timer (due ~0.21) has not fired yet.
        assert s.retransmissions == 0


class TestRttEstimation:
    def test_srtt_converges(self, sender):
        sim, host, s = sender
        s.start()
        # Deliver ACK for seq 0 at t=0.05: one clean RTT sample.
        sim.schedule(0.05, lambda: s.on_ack(1))
        sim.run(until=0.051)
        assert s._srtt == pytest.approx(0.05, abs=1e-6)
        assert s._rto >= s.config.min_rto

    def test_karns_rule_skips_retransmitted(self, sender):
        sim, host, s = sender
        s.start()
        for _ in range(3):
            s.on_ack(0)  # retransmit seq 0
        srtt_before = s._srtt
        s.on_ack(1)  # ACK covering the retransmitted segment
        assert s._srtt == srtt_before  # no sample taken
