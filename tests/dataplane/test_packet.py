"""Tests for packets, headers and the flow hash."""

import pytest

from repro.dataplane.packet import Packet, PacketKind, flow_hash


def pkt(**kw):
    base = dict(flow_id=1, seq=0, src="S", dst="D", size=1000)
    base.update(kw)
    return Packet(**base)


class TestEncapsulation:
    def test_encap_decap_round_trip(self):
        p = pkt()
        size0 = p.size
        p.encapsulate("Rd", "Ra")
        assert p.is_encapsulated
        assert p.size == size0 + Packet.ENCAP_OVERHEAD
        assert p.outer.src_router == "Rd"
        assert p.outer.dst_router == "Ra"
        outer = p.decapsulate()
        assert outer.src_router == "Rd"
        assert not p.is_encapsulated
        assert p.size == size0

    def test_double_encap_rejected(self):
        p = pkt()
        p.encapsulate("A", "B")
        with pytest.raises(ValueError):
            p.encapsulate("A", "C")

    def test_decap_without_outer_rejected(self):
        with pytest.raises(ValueError):
            pkt().decapsulate()

    def test_tag_bit_survives_encapsulation(self):
        p = pkt(tag_bit=True)
        p.encapsulate("A", "B")
        assert p.tag_bit is True
        p.decapsulate()
        assert p.tag_bit is True


class TestTrace:
    def test_as_trace_records(self):
        p = pkt()
        p.record_as(3)
        p.record_as(4)
        assert p.as_trace == [3, 4]


class TestFlowHash:
    def test_deterministic(self):
        assert flow_hash(42) == flow_hash(42)

    def test_range(self):
        for fid in range(200):
            assert flow_hash(fid, 4) in range(4)

    def test_roughly_uniform(self):
        buckets = [0, 0]
        for fid in range(1000):
            buckets[flow_hash(fid, 2)] += 1
        assert abs(buckets[0] - buckets[1]) < 150

    def test_kinds(self):
        assert pkt().kind is PacketKind.DATA
        assert pkt(kind=PacketKind.ACK).kind is PacketKind.ACK
