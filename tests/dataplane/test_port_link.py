"""Tests for ports (queues, congestion signal) and links (timing)."""

import pytest

from repro.dataplane.device import Device
from repro.dataplane.events import Simulator
from repro.dataplane.link import Link
from repro.dataplane.packet import Packet
from repro.dataplane.port import PeerKind, Port


class Recorder(Device):
    """Device that records (packet, time) arrivals."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, packet, in_port):
        self.received.append((packet, self.sim.now))


def pkt(flow=1, size=1000):
    return Packet(flow_id=flow, seq=0, src="S", dst="D", size=size)


@pytest.fixture
def wire():
    sim = Simulator()
    a = Recorder(sim, "A")
    b = Recorder(sim, "B")
    pa = a.add_port(Port("A:0", queue_capacity=4))
    pb = b.add_port(Port("B:0", queue_capacity=4))
    link = Link(sim, a, pa, b, pb, rate_bps=1e6, delay_s=0.01)
    return sim, a, b, pa, pb, link


class TestTransmission:
    def test_timing_serialization_plus_delay(self, wire):
        sim, _a, b, pa, _pb, _link = wire
        pa.send(pkt(size=1000))  # 8 ms at 1 Mbps + 10 ms delay
        sim.run()
        assert len(b.received) == 1
        _p, t = b.received[0]
        assert t == pytest.approx(0.018)

    def test_fifo_order_and_pipelining(self, wire):
        sim, _a, b, pa, _pb, _link = wire
        for i in range(3):
            pa.send(pkt(flow=i))
        sim.run()
        assert [p.flow_id for p, _t in b.received] == [0, 1, 2]
        # serialization is sequential: 8, 16, 24 ms; each + 10 ms delay
        times = [t for _p, t in b.received]
        assert times == pytest.approx([0.018, 0.026, 0.034])

    def test_full_duplex_no_interference(self, wire):
        sim, a, b, pa, pb, _link = wire
        pa.send(pkt(flow=1))
        pb.send(pkt(flow=2))
        sim.run()
        assert len(a.received) == 1 and len(b.received) == 1
        assert a.received[0][1] == pytest.approx(0.018)
        assert b.received[0][1] == pytest.approx(0.018)

    def test_unwired_port_rejects_send(self):
        p = Port("lonely")
        with pytest.raises(RuntimeError):
            p.send(pkt())


class TestDropTail:
    def test_overflow_drops(self, wire):
        sim, _a, b, pa, _pb, _link = wire
        results = [pa.send(pkt(flow=i)) for i in range(7)]
        # 1 transmitting + 4 queued accepted; rest dropped.
        assert results.count(True) == 5
        assert results.count(False) == 2
        assert pa.stats.packets_dropped == 2
        sim.run()
        assert len(b.received) == 5

    def test_queuing_ratio(self, wire):
        _sim, _a, _b, pa, _pb, _link = wire
        assert pa.queuing_ratio == 0.0
        pa.send(pkt())  # starts transmitting immediately
        assert pa.queue_length == 1
        pa.send(pkt())
        pa.send(pkt())
        assert pa.queuing_ratio == pytest.approx(3 / 4)


class TestStats:
    def test_counters(self, wire):
        sim, _a, _b, pa, _pb, _link = wire
        pa.send(pkt(size=500))
        pa.send(pkt(size=500))
        sim.run()
        assert pa.stats.packets_sent == 2
        assert pa.stats.bytes_sent == 1000
        assert pa.stats.busy_time == pytest.approx(2 * 500 * 8 / 1e6)

    def test_utilization_window_smoothing(self, wire):
        sim, _a, _b, pa, _pb, _link = wire
        pa.send(pkt(size=1000))
        sim.run()
        u1 = pa.sample_utilization(0.016)  # window fully busy: 8ms tx / 16ms
        assert 0.2 < u1 <= 0.5  # EWMA from 0 toward 0.5
        u2 = pa.sample_utilization(0.032)  # idle window decays
        assert u2 < u1

    def test_spare_capacity_zero_when_queue_full(self, wire):
        _sim, _a, _b, pa, _pb, _link = wire
        for i in range(6):
            pa.send(pkt(flow=i))
        assert pa.spare_capacity(0.0) == 0.0

    def test_remote_of_validates(self, wire):
        _sim, _a, _b, _pa, _pb, link = wire
        with pytest.raises(ValueError):
            link.remote_of(Port("other"))

    def test_bad_rate_rejected(self):
        sim = Simulator()
        a, b = Recorder(sim, "A"), Recorder(sim, "B")
        with pytest.raises(ValueError):
            Link(sim, a, Port("x"), b, Port("y"), rate_bps=0)

    def test_peer_kind_annotation(self):
        p = Port("x", peer_kind=PeerKind.IBGP)
        assert p.peer_kind is PeerKind.IBGP
