"""Behavioral tests for :class:`repro.scenario.engine.ScenarioEngine`."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, SimulationError
from repro.scenario.engine import ScenarioConfig, ScenarioEngine
from repro.scenario.events import (
    FlashCrowd,
    LinkFail,
    LinkRecover,
    ScenarioSpec,
    TrafficRamp,
    get_scenario,
)
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship
from repro.traffic.matrix import TrafficConfig, uniform_matrix


def _demands(graph, n=60, seed=99):
    return uniform_matrix(graph, TrafficConfig(n_flows=n, seed=seed))


def _engine(graph, spec, *, demands=None, **cfg):
    return ScenarioEngine(
        graph,
        demands if demands is not None else _demands(graph),
        spec,
        config=ScenarioConfig(**cfg) if cfg else None,
    )


class TestConfig:
    def test_defaults_validate(self):
        ScenarioConfig().validate()

    def test_bad_mode(self):
        with pytest.raises(ConfigError, match="mode"):
            ScenarioConfig(mode="lazy").validate()

    def test_bad_thresholds(self):
        with pytest.raises(SimulationError):
            ScenarioConfig(congest_threshold=0.5, clear_threshold=0.8).validate()

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            ScenarioConfig(link_capacity_bps=0).validate()


class TestRun:
    def test_link_flap_end_to_end(self, small_internet):
        spec = get_scenario("link_flap")
        engine = _engine(small_internet, spec, crosscheck=True)
        run = engine.run()
        assert run.scenario == "link_flap"
        assert run.n_events == len(spec.timeline) == 4
        assert len(run.records) == 5
        first = run.records[0]
        assert first.kind == "initial"
        assert first.index == 0
        assert first.flows_total == 60
        # The fail/recover pairs cancel out: original adjacency restored.
        assert set(engine.graph.links()) == set(small_internet.links())
        for rec in run.records:
            assert rec.flows_unroutable >= 0
            assert rec.flows_total >= rec.flows_unroutable
            assert rec.mean_rate_mbps >= 0.0
        # Each link event re-certified at least its dirty destinations.
        for rec in run.records[1:]:
            assert rec.verified_dests >= rec.dirty_dests

    def test_runs_are_deterministic(self, small_internet):
        spec = get_scenario("flash_crowd")
        a = _engine(small_internet, spec).run()
        b = _engine(small_internet, spec).run()
        assert a.records == b.records

    def test_traffic_ramp_grows_population(self, small_internet):
        spec = ScenarioSpec("ramp", "x", ((1.0, TrafficRamp(frac=0.5)),))
        engine = _engine(small_internet, spec)
        run = engine.run()
        assert run.records[0].flows_total == 60
        assert run.records[1].flows_total == 60 + engine.frac_to_count(0.5) == 90

    def test_flash_crowd_targets_popular_dst(self, small_internet):
        engine = _engine(
            small_internet,
            ScenarioSpec("crowd", "x", ((1.0, FlashCrowd(frac=0.25)),)),
        )
        engine.step(0.0, None)
        popular = engine.pick_popular_dst()
        before = len(engine._flows)
        engine.step(1.0, FlashCrowd(frac=0.25))
        added = [
            f for fid, f in engine._flows.items() if fid >= before
        ]
        assert added and all(f.dst == popular for f in added)

    def test_unroutable_flow_retried_on_recovery(self):
        # 0 <- 1 <- 2 with one demand 2 -> 0; cutting the access link 1-0
        # strands the flow, recovery restores it.
        graph = ASGraph.from_links(p2c=[(1, 0), (2, 1)])
        demands = _demands(graph, n=1)
        demands[0] = type(demands[0])(
            flow_id=0, src=2, dst=0, size_bytes=10e6, start_time=0.0
        )
        spec = ScenarioSpec(
            "strand",
            "cut and restore the only access link",
            ((1.0, LinkFail(u=1, v=0)), (2.0, LinkRecover())),
        )
        run = ScenarioEngine(graph, demands, spec).run()
        assert [r.flows_unroutable for r in run.records] == [0, 1, 0]
        assert run.records[2].flows_rerouted == 1


class TestPrimitives:
    def test_recover_without_failure(self, fig2a_graph):
        engine = _engine(fig2a_graph, get_scenario("link_flap"), demands=[])
        with pytest.raises(ConfigError, match="no failed link"):
            engine.recover_link()

    def test_recover_specific_unfailed_link(self, fig2a_graph):
        engine = _engine(fig2a_graph, get_scenario("link_flap"), demands=[])
        engine.fail_link(2, 3)
        with pytest.raises(ConfigError, match="not currently failed"):
            engine.recover_link(1, 2)

    def test_recover_specific_link_out_of_order(self, fig2a_graph):
        engine = _engine(fig2a_graph, get_scenario("link_flap"), demands=[])
        engine.fail_link(2, 3)
        engine.fail_link(1, 2)
        engine.recover_link(2, 3)  # not the most recent failure
        assert engine.graph.are_adjacent(2, 3)
        assert not engine.graph.are_adjacent(1, 2)
        assert engine.graph.relationship(2, 3) is Relationship.PEER

    def test_pick_link_unknown_strategy(self, fig2a_graph):
        engine = _engine(fig2a_graph, get_scenario("link_flap"), demands=[])
        with pytest.raises(ConfigError, match="pick strategy"):
            engine.pick_link("loneliest")

    def test_pick_edge_peering_returns_peer_link(self, small_internet):
        engine = _engine(small_internet, get_scenario("edge_flap"), demands=[])
        u, v = engine.pick_link("edge-peering")
        assert small_internet.relationship(u, v) is Relationship.PEER

    def test_duplicate_flow_ids_rejected(self, fig2a_graph):
        demands = _demands(fig2a_graph, n=2)
        clash = type(demands[0])(
            flow_id=demands[0].flow_id,
            src=1,
            dst=0,
            size_bytes=10e6,
            start_time=0.0,
        )
        with pytest.raises(ConfigError, match="duplicate flow id"):
            _engine(fig2a_graph, get_scenario("link_flap"), demands=[demands[0], clash])
