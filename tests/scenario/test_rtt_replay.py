"""The ``rtt_replay`` demo gate: measurement-driven deflection end to end.

One scenario, three detectors.  The timeline plants three congestion
onsets (engine epochs 9, 18, 27) separated by quiet measurement ticks;
the measurement-driven engines must (a) localise the planted shifts from
RTT samples alone with high precision/recall, (b) deflect at least one
flow the oracle also deflects, (c) show no unexplained path churn, and
(d) stay byte-identical across routing backends and across the
incremental/full control-plane modes — the observability layer inherits
the repo's determinism contract wholesale.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry as tm
from repro.measure.eval import (
    detections_from_trace,
    planted_changepoints,
    score_changepoints,
)
from repro.measure.pathwatch import watch_paths
from repro.scenario.engine import ScenarioConfig, ScenarioEngine
from repro.scenario.events import get_scenario
from repro.telemetry import Telemetry
from repro.telemetry.trace import validate_events
from repro.topology.generator import TopologyConfig, generate_topology
from repro.traffic.matrix import TrafficConfig, uniform_matrix

N_ASES = 200
TOPO_SEED = 2014
N_FLOWS = 60
FLOW_SEED = 77

PRECISION_FLOOR = 0.9
RECALL_FLOOR = 0.8


def _run(graph, demands, detector, *, backend="dict", mode="incremental"):
    """Play rtt_replay once; returns (records, trace events, counters)."""
    telem = Telemetry()
    tm.activate(telem)
    try:
        engine = ScenarioEngine(
            graph,
            demands,
            get_scenario("rtt_replay"),
            backend=backend,
            config=ScenarioConfig(detector=detector, mode=mode, verify=False),
        )
        run = engine.run()
    finally:
        tm.activate(None)
    return run.records, telem.trace_events(), dict(telem.counters)


@pytest.fixture(scope="module")
def graph():
    return generate_topology(TopologyConfig(n_ases=N_ASES, seed=TOPO_SEED))


@pytest.fixture(scope="module")
def demands(graph):
    return uniform_matrix(
        graph, TrafficConfig(n_flows=N_FLOWS, seed=FLOW_SEED)
    )


@pytest.fixture(scope="module")
def runs(graph, demands):
    """The three detector runs plus the determinism replicas."""
    return {
        "changepoint": _run(graph, demands, "changepoint"),
        "threshold": _run(graph, demands, "threshold"),
        "oracle": _run(graph, demands, "oracle"),
        "changepoint_array": _run(
            graph, demands, "changepoint", backend="array"
        ),
        "changepoint_full": _run(graph, demands, "changepoint", mode="full"),
    }


def _deflected(events, cause):
    return {
        e["flow"]
        for e in events
        if e.get("kind") == "path_switch" and e.get("cause") == cause
    }


TRUTHS = planted_changepoints(get_scenario("rtt_replay"))


class TestDetectionQuality:
    def test_truths_are_planted_where_documented(self):
        assert TRUTHS == (9, 18, 27)

    @pytest.mark.parametrize("detector", ["changepoint", "threshold"])
    def test_precision_and_recall(self, runs, detector):
        _, events, _ = runs[detector]
        score = score_changepoints(detections_from_trace(events), TRUTHS)
        assert score.precision >= PRECISION_FLOOR, score
        assert score.recall >= RECALL_FLOOR, score
        assert score.mean_delay_epochs <= 4.0, score

    def test_samples_flow_every_epoch(self, runs):
        _, events, counters = runs["changepoint"]
        samples = [e for e in events if e.get("kind") == "rtt_sample"]
        assert counters["measure.rtt_samples"] == len(samples) > 0
        assert counters["measure.alarms"] >= len(TRUTHS)
        # every sample carries the detector provenance
        assert all(s["detector"] == "changepoint" for s in samples)


class TestDeflection:
    def test_detector_deflections_overlap_oracle(self, runs):
        _, cp_events, _ = runs["changepoint"]
        _, oracle_events, _ = runs["oracle"]
        detector_moved = _deflected(cp_events, "rtt_alarm")
        oracle_moved = _deflected(oracle_events, "congested_link")
        assert detector_moved, "the changepoint run must deflect something"
        assert detector_moved & oracle_moved, (
            "measurement-driven deflection must agree with the oracle on "
            f"at least one flow (detector={sorted(detector_moved)}, "
            f"oracle={sorted(oracle_moved)})"
        )

    def test_path_churn_is_explained_by_the_timeline(self, runs):
        _, events, _ = runs["changepoint"]
        report = watch_paths(events)
        assert set(report.truth_epochs) == set(TRUTHS)
        assert report.switch_events > 0
        assert report.alignment >= 0.9, report
        # per-epoch churn must add up to the switch total
        assert sum(report.churn_by_epoch.values()) == report.switch_events

    def test_oracle_run_emits_no_measurement_events(self, runs):
        _, events, _ = runs["oracle"]
        kinds = {e["kind"] for e in events}
        assert "rtt_sample" not in kinds
        assert "changepoint" not in kinds


class TestDeterminism:
    def test_cross_backend_byte_identity(self, runs):
        rec_dict, ev_dict, cnt_dict = runs["changepoint"]
        rec_arr, ev_arr, cnt_arr = runs["changepoint_array"]
        assert rec_dict == rec_arr
        assert json.dumps(ev_dict, sort_keys=True) == json.dumps(
            ev_arr, sort_keys=True
        )
        assert cnt_dict == cnt_arr

    def test_incremental_vs_full_byte_identity(self, runs):
        rec_inc, ev_inc, _ = runs["changepoint"]
        rec_full, ev_full, _ = runs["changepoint_full"]
        assert rec_inc == rec_full
        assert json.dumps(ev_inc, sort_keys=True) == json.dumps(
            ev_full, sort_keys=True
        )

    def test_repeat_run_is_identical(self, graph, demands, runs):
        again = _run(graph, demands, "changepoint")
        assert again[0] == runs["changepoint"][0]
        assert again[1] == runs["changepoint"][1]


class TestTraceConformance:
    @pytest.mark.parametrize("detector", ["changepoint", "threshold"])
    def test_events_validate_against_the_schema(self, runs, detector):
        _, events, _ = runs[detector]
        assert validate_events(events) == []
