"""The incremental-vs-full acceptance gate.

Every built-in scenario must produce **byte-identical**
``to_json(include_provenance=False)`` output whether routing is updated
incrementally (dirty-set re-propagation, rebased clean destinations,
memoized max-min solves) or fully recomputed after every event.  This is
the determinism contract that lets the incremental engine replace the
baseline without a correctness argument in every consumer.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import scenario as scenario_exp
from repro.scenario.events import SCENARIOS


def _payload(name: str, *, mode: str, backend: str = "dict", **kw) -> str:
    result = scenario_exp.run(
        "test", backend=backend, scenario=name, mode=mode, **kw
    )
    return result.to_json(include_provenance=False)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_incremental_matches_full(name):
    assert _payload(name, mode="incremental") == _payload(name, mode="full")


def test_array_backend_matches_dict():
    assert _payload("edge_flap", mode="incremental", backend="array") == _payload(
        "edge_flap", mode="incremental"
    )


def test_crosschecked_run_agrees(name="edge_flap"):
    """With the per-event state diff enabled the run must both pass the
    oracle and still serialize identically."""
    assert _payload(name, mode="incremental", crosscheck=True) == _payload(
        name, mode="full", crosscheck=True
    )


def test_provenance_records_mode_split():
    result = scenario_exp.run("test", scenario="edge_flap", mode="incremental")
    engine_meta = result.meta["scenario_engine"]
    assert engine_meta["mode"] == "incremental"
    # The edge-peering flap is the incremental showcase: most work rebased.
    assert engine_meta["dests_rebased"] > engine_meta["dests_recomputed"]
    # ... and none of that may leak into the determinism payload.
    payload = json.loads(result.to_json(include_provenance=False))
    assert "scenario_engine" not in payload["meta"]
    assert "backend" not in payload["meta"]
