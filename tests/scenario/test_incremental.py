"""Dirty-set correctness of :class:`repro.scenario.incremental.IncrementalRouting`.

The load-bearing property: after ``advance()``, *every* cached view —
recomputed or rebased — must serve state identical to a from-scratch
convergence on the new graph.  ``crosscheck()`` is that oracle; these
tests drive it over hand-built graphs (where the dirty set is known
exactly) and synthetic internets (where it is not).
"""

from __future__ import annotations

import pytest

from repro.bgp.propagation import compute_routing
from repro.errors import ConfigError, TopologyError
from repro.scenario.incremental import IncrementalRouting
from repro.topology.asgraph import ASGraph
from repro.topology.dynamics import with_link, without_link
from repro.topology.relationships import Relationship


def _next_hops(view, nodes):
    return {x: view.next_hop(x) if view.has_route(x) else None for x in nodes}


class TestRoutingSourceSurface:
    def test_matches_full_convergence(self, fig2a_graph):
        routing = IncrementalRouting(fig2a_graph)
        nodes = sorted(fig2a_graph.nodes())
        for dest in nodes:
            assert _next_hops(routing(dest), nodes) == _next_hops(
                compute_routing(fig2a_graph, dest), nodes
            )

    def test_views_are_cached(self, fig2a_graph):
        routing = IncrementalRouting(fig2a_graph)
        assert len(routing) == 0
        assert 0 not in routing
        view = routing(0)
        assert routing(0) is view
        assert 0 in routing
        assert len(routing) == 1
        routing(2)
        assert routing.cached_destinations() == (0, 2)

    def test_unknown_backend_rejected(self, fig2a_graph):
        with pytest.raises(ConfigError, match="backend"):
            IncrementalRouting(fig2a_graph, backend="gpu")

    def test_unknown_policy_rejected(self, fig2a_graph):
        with pytest.raises(ConfigError, match="recompute policy"):
            IncrementalRouting(fig2a_graph, recompute="some")


class TestDirtyTest:
    """Exact dirty sets on Fig. 2(a): ASes 1-3 mutually peering, AS 0
    their shared customer."""

    def test_peer_link_between_non_customers_is_inert(self, fig2a_graph):
        routing = IncrementalRouting(fig2a_graph)
        routing(0)  # every peer exports its customer route across 2-3
        routing(1)  # 2 and 3 hold peer-learned routes: no export over 2-3
        assert routing.dirty_destinations(2, 3) == (0,)

    def test_customer_link_is_dirty_for_local_dest(self, fig2a_graph):
        routing = IncrementalRouting(fig2a_graph)
        routing(0)
        # AS 0 originates dest 0 locally: announced to everyone, so the
        # access link 1-0 always carries an export.
        assert routing.dirty_destinations(0, 1) == (0,)

    def test_chain_provider_loss(self, chain_graph):
        # 0 <- 1 <- 2.  For dest 2, cutting 1-0 strands AS 0.
        routing = IncrementalRouting(chain_graph)
        routing(2)
        assert routing.dirty_destinations(0, 1) == (2,)

    def test_advance_removal_and_rebase(self, fig2a_graph):
        routing = IncrementalRouting(fig2a_graph)
        routing(0)
        routing(1)
        new_graph = without_link(fig2a_graph, 2, 3)
        dirty = routing.advance(new_graph, 2, 3)
        assert dirty == (0,)
        assert routing.dests_recomputed == 1
        assert routing.dests_rebased == 1
        assert routing.graph is new_graph
        # The oracle: every view (including the rebased dest 1) must
        # equal a fresh convergence on the new graph.
        routing.crosscheck()

    def test_advance_addition(self, fig2a_graph):
        shrunk = without_link(fig2a_graph, 2, 3)
        routing = IncrementalRouting(shrunk)
        routing(0)
        routing(1)
        restored = with_link(shrunk, 2, 3, Relationship.PEER)
        dirty = routing.advance(restored, 2, 3)
        assert dirty == (0,)
        routing.crosscheck()

    def test_advance_rejects_unchanged_graph(self, fig2a_graph):
        routing = IncrementalRouting(fig2a_graph)
        with pytest.raises(TopologyError, match="differ by link"):
            routing.advance(fig2a_graph, 2, 3)

    def test_all_policy_reports_same_dirty_set(self, fig2a_graph):
        inc = IncrementalRouting(fig2a_graph, recompute="dirty")
        full = IncrementalRouting(fig2a_graph, recompute="all")
        for r in (inc, full):
            r(0)
            r(1)
        new_graph = without_link(fig2a_graph, 2, 3)
        assert inc.advance(new_graph, 2, 3) == full.advance(new_graph, 2, 3)
        # ... but the recompute accounting differs: that is the point.
        assert inc.dests_recomputed == 1
        assert full.dests_recomputed == 2
        assert full.dests_rebased == 0


@pytest.mark.parametrize("backend", ["dict", "array"])
class TestSyntheticCrossValidation:
    """Flap several links of a 300-AS internet and let ``crosscheck()``
    refute any stale rebased view."""

    def test_flap_links_stays_exact(self, small_internet, backend):
        routing = IncrementalRouting(small_internet, backend=backend)
        dests = sorted(small_internet.nodes())[::40]  # a spread of dests
        for d in dests:
            routing(d)
        links = sorted((u, v) for u, v, _ in small_internet.links())
        graph = small_internet
        for u, v in links[:: max(1, len(links) // 4)][:4]:
            rel = graph.relationship(u, v)
            shrunk = without_link(graph, u, v)
            routing.advance(shrunk, u, v)
            routing.crosscheck()
            graph = with_link(shrunk, u, v, rel)
            routing.advance(graph, u, v)
            routing.crosscheck()
        # Net effect of every flap is zero: back on the original topology
        # the views must match fresh convergence there too.
        nodes = sorted(graph.nodes())
        for d in dests:
            assert _next_hops(routing(d), nodes) == _next_hops(
                compute_routing(small_internet, d), nodes
            )
