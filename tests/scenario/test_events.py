"""Unit tests for the scenario event vocabulary and timeline specs."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.scenario.events import (
    SCENARIOS,
    CapacityScale,
    CongestionOnset,
    FlashCrowd,
    LinkFail,
    LinkRecover,
    ScenarioSpec,
    TrafficRamp,
    get_scenario,
    _resolve_link,
)


class TestBuiltins:
    def test_all_builtin_timelines_validate(self):
        for name, spec in SCENARIOS.items():
            assert spec.name == name
            spec.validate()  # must not raise
            assert spec.timeline, name
            assert spec.description

    def test_get_scenario(self):
        assert get_scenario("link_flap") is SCENARIOS["link_flap"]

    def test_get_scenario_unknown(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            get_scenario("nope")

    def test_events_are_frozen(self):
        ev = LinkFail(u=1, v=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            ev.u = 3  # type: ignore[misc]

    def test_event_kinds_unique(self):
        kinds = {
            LinkFail.kind,
            LinkRecover.kind,
            CapacityScale.kind,
            TrafficRamp.kind,
            FlashCrowd.kind,
            CongestionOnset.kind,
        }
        assert len(kinds) == 6


class TestSpecValidation:
    def test_decreasing_times_rejected(self):
        spec = ScenarioSpec(
            "bad", "times go backwards", ((2.0, LinkFail()), (1.0, LinkRecover()))
        )
        with pytest.raises(ConfigError, match="non-decreasing"):
            spec.validate()

    def test_negative_time_rejected(self):
        spec = ScenarioSpec("bad", "negative start", ((-1.0, LinkFail()),))
        with pytest.raises(ConfigError):
            spec.validate()

    def test_equal_times_allowed(self):
        ScenarioSpec(
            "ok", "simultaneous", ((1.0, LinkFail()), (1.0, TrafficRamp()))
        ).validate()


class TestEventValidation:
    """Parameter validation happens at apply() time; none of these need a
    live engine because validation fires before any engine call."""

    def test_capacity_scale_negative_factor(self):
        with pytest.raises(ConfigError, match="must be >= 0"):
            CapacityScale(factor=-0.5, u=1, v=2).apply(None)  # type: ignore[arg-type]

    def test_traffic_ramp_nonpositive_frac(self):
        with pytest.raises(ConfigError, match="must be > 0"):
            TrafficRamp(frac=0.0).apply(None)  # type: ignore[arg-type]

    def test_flash_crowd_nonpositive_frac(self):
        with pytest.raises(ConfigError, match="must be > 0"):
            FlashCrowd(frac=-1.0).apply(None)  # type: ignore[arg-type]

    def test_congestion_onset_out_of_range(self):
        with pytest.raises(ConfigError, match="outside"):
            CongestionOnset(utilization=1.5, u=1, v=2).apply(None)  # type: ignore[arg-type]

    def test_resolve_link_needs_target_or_pick(self):
        with pytest.raises(ConfigError, match="pick strategy"):
            _resolve_link(None, None, None, None)  # type: ignore[arg-type]

    def test_resolve_link_explicit_endpoints_win(self):
        # With explicit endpoints the engine is never consulted.
        assert _resolve_link(None, 3, 7, "busiest") == (3, 7)  # type: ignore[arg-type]
