"""Derive mifolint's protected-field sets from source instead of hand lists.

Three sets used to be hand-maintained frozensets in
``tools/mifolint/core.py`` and drifted whenever state grew.  They are
now computed from the code that *defines* them:

* **checkpointed state** — the union of underscore attributes *read* by
  ``repro.service.checkpoint.capture`` and underscore attributes
  *written* by the restore functions.  Capture reads define what the
  payload contains; restore writes define what replay rebuilds; their
  union is exactly the state whose out-of-band mutation breaks
  restore-then-replay byte identity.
* **slab state** — attributes of ``IncrementalMaxMin`` carrying a
  ``# mifocheck: slab-state`` marker on their ``__init__`` assignment
  line.  A purely syntactic rule cannot reproduce this set (some slab
  fields are rebound wholesale in ``solve``; some bookkeeping ints are
  stored just like arrays), so the solver declares it and MC104
  cross-checks the declaration against the subscript-store/``np.add.at``
  footprint of the slab-maintenance methods.
* **CSR arrays** — the ``np.ndarray``-annotated dataclass fields of
  ``CsrAdjacency``.

All three derivations raise :class:`DerivationError` when they come up
empty — an empty protected set silently disables MF003, which is the
exact failure mode this module exists to prevent.

Stdlib-only: everything works on the AST / source text, never imports
``repro``.
"""

from __future__ import annotations

import ast
import functools
import pathlib
import re

__all__ = [
    "DerivationError",
    "checkpointed_state_fields",
    "checkpointed_state_fields_from_ast",
    "csr_array_fields",
    "csr_array_fields_from_ast",
    "slab_state_fields",
    "slab_state_fields_from_source",
]

#: repo root: tools/mifocheck/derive.py -> tools/mifocheck -> tools -> root
_ROOT = pathlib.Path(__file__).resolve().parents[2]

_CHECKPOINT_PATH = _ROOT / "src" / "repro" / "service" / "checkpoint.py"
_SLAB_PATH = _ROOT / "src" / "repro" / "flowsim" / "incremental.py"
_TOPOLOGY_PATH = _ROOT / "src" / "repro" / "topology" / "asgraph.py"

#: the attr and the marker must share a line — ``[^#\n]*`` keeps a
#: docstring's ``self._x`` from pairing with a later line's marker
SLAB_MARKER_RE = re.compile(r"self\.(_\w+)\b[^#\n]*#\s*mifocheck:\s*slab-state")


class DerivationError(RuntimeError):
    """A derived protected-field set came out empty or unreadable."""


def _find_function(tree: ast.Module, name: str) -> ast.FunctionDef | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def checkpointed_state_fields_from_ast(
    tree: ast.Module,
    *,
    capture: str = "capture",
    restores: tuple[str, ...] = ("_restore_engine", "_restore_session_state"),
) -> frozenset[str]:
    """Underscore attrs read by ``capture`` + written by the restores.

    The restore side collects *store* targets only (plain stores and the
    bases of subscript stores like ``eng._alloc[idx] = v``) — loads such
    as ``session._base_graph`` are inputs to the rebuild, not
    checkpointed state, and must not enter the protected set.
    """
    fields: set[str] = set()
    cap = _find_function(tree, capture)
    if cap is not None:
        for node in ast.walk(cap):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr.startswith("_")
            ):
                fields.add(node.attr)
    for name in restores:
        fn = _find_function(tree, name)
        if fn is None:
            continue
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute):
                if isinstance(node.ctx, ast.Store) and node.attr.startswith("_"):
                    fields.add(node.attr)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                fields.update(_subscript_store_bases(node))
    return frozenset(f for f in fields if f.startswith("_"))


def _subscript_store_bases(node: ast.Assign | ast.AugAssign) -> set[str]:
    """Underscore attr bases of subscript stores: ``x._f[i] = v``."""
    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
    out: set[str] = set()
    for t in targets:
        if (
            isinstance(t, ast.Subscript)
            and isinstance(t.value, ast.Attribute)
            and t.value.attr.startswith("_")
        ):
            out.add(t.value.attr)
    return out


@functools.cache
def checkpointed_state_fields() -> frozenset[str]:
    """The derived checkpointed-state set of the real tree (cached)."""
    try:
        tree = ast.parse(_CHECKPOINT_PATH.read_text(encoding="utf-8"))
    except (OSError, SyntaxError) as exc:  # pragma: no cover - repo damage
        raise DerivationError(f"cannot parse {_CHECKPOINT_PATH}: {exc}") from exc
    fields = checkpointed_state_fields_from_ast(tree)
    if not fields:
        raise DerivationError(
            f"derived checkpointed-state set from {_CHECKPOINT_PATH} is empty"
        )
    return fields


def slab_state_fields_from_source(source: str) -> frozenset[str]:
    """Attrs carrying ``# mifocheck: slab-state`` markers in ``source``."""
    return frozenset(SLAB_MARKER_RE.findall(source))


@functools.cache
def slab_state_fields() -> frozenset[str]:
    """The declared slab-state set of the real tree (cached)."""
    try:
        source = _SLAB_PATH.read_text(encoding="utf-8")
    except OSError as exc:  # pragma: no cover - repo damage
        raise DerivationError(f"cannot read {_SLAB_PATH}: {exc}") from exc
    fields = slab_state_fields_from_source(source)
    if not fields:
        raise DerivationError(
            f"no '# mifocheck: slab-state' markers found in {_SLAB_PATH}"
        )
    return fields


def csr_array_fields_from_ast(
    tree: ast.Module, *, class_name: str = "CsrAdjacency"
) -> frozenset[str]:
    """``np.ndarray``-annotated dataclass fields of the CSR class."""
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and node.name == class_name):
            continue
        fields: set[str] = set()
        for stmt in node.body:
            if not (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ):
                continue
            ann = stmt.annotation
            if (
                isinstance(ann, ast.Attribute)
                and ann.attr == "ndarray"
                and isinstance(ann.value, ast.Name)
                and ann.value.id in {"np", "numpy"}
            ):
                fields.add(stmt.target.id)
        return frozenset(fields)
    return frozenset()


@functools.cache
def csr_array_fields() -> frozenset[str]:
    """The derived CSR-array set of the real tree (cached)."""
    try:
        tree = ast.parse(_TOPOLOGY_PATH.read_text(encoding="utf-8"))
    except (OSError, SyntaxError) as exc:  # pragma: no cover - repo damage
        raise DerivationError(f"cannot parse {_TOPOLOGY_PATH}: {exc}") from exc
    fields = csr_array_fields_from_ast(tree)
    if not fields:
        raise DerivationError(
            f"derived CSR-array set from {_TOPOLOGY_PATH} is empty"
        )
    return fields
