"""MC102 — fork-boundary determinism.

Parallel workers communicate results and telemetry back to the parent
exclusively through value returns merged in submission order.  Two
families of checks keep that boundary deterministic:

**Merge-algebra completeness.**  Every field of the telemetry snapshot
dataclass must be folded by the merge function (``Telemetry.absorb``)
or declared implicitly-derived in the module-level
``MERGE_DERIVED_FIELDS`` tuple.  A field that is neither is silently
dropped at the fork boundary — exactly the regression deleting one
``absorb`` entry would introduce.

**Worker-side hygiene**, over every function reachable (via the call
graph) from a worker entry point — the callables handed to
``pool.imap``/``pool.map`` *and* any ``initializer=`` callable given to
a pool constructor (``multiprocessing.Pool`` or
``ProcessPoolExecutor``), which runs in every worker before its first
task and is therefore just as worker-side as the task body:

* telemetry emissions whose snapshot field is *not* merged (an ``inc``
  is fine because ``counters`` merges; a ``span`` in a worker is a bug
  the moment ``spans`` stops merging);
* ``global`` statements — parent-side globals do not exist in forked
  children, so rebinding them there is dead state at best (the
  telemetry module itself is exempt: its ``activate`` sink swap is the
  sanctioned mechanism workers use to install a local sink; globals
  named in ``AnalysisConfig.worker_state_globals`` are likewise exempt,
  the declared one-way worker-state installs a pool initializer
  performs, such as the shared-memory CSR attachment);
* iteration over set literals / ``set()`` results, whose order can
  differ across processes;
* nondeterministic pool dispatch (``imap_unordered``, ``map_async``,
  ``apply_async``) anywhere in the parallel module.
"""

from __future__ import annotations

import ast
import pathlib

from ..config import AnalysisConfig
from ..program import FunctionId, Program
from ...lintshared import Finding

CODE = "MC102"
DESCRIPTION = (
    "telemetry or state crossing the worker fork boundary is not covered "
    "by the deterministic snapshot-merge algebra"
)

#: emission method -> the snapshot field its data lands in
EMISSION_FIELDS = {
    "inc": "counters",
    "set_gauge": "gauges",
    "observe": "histograms",
    "span": "spans",
    "event": "events",
}

_ORDERED_DISPATCH = {"imap", "map"}
_UNORDERED_DISPATCH = {"imap_unordered", "map_async", "apply_async", "starmap_async"}


def _snapshot_fields(
    program: Program, cfg: AnalysisConfig
) -> tuple[dict[str, int], str] | None:
    """Snapshot dataclass field -> line, plus the module's rel path."""
    info = program.modules.get(cfg.telemetry_module)
    if info is None:
        return None
    cls = info.classes.get(cfg.snapshot_class)
    if cls is None:
        return None
    fields: dict[str, int] = {}
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields[stmt.target.id] = stmt.lineno
    return fields, cfg.telemetry_module


def _merged_fields(program: Program, cfg: AnalysisConfig) -> set[str]:
    """Snapshot fields the merge function reads, plus declared-derived."""
    info = program.modules.get(cfg.telemetry_module)
    if info is None:
        return set()
    merged: set[str] = set()
    for cls in info.classes.values():
        fn = cls.methods.get(cfg.merge_function)
        if fn is None:
            continue
        # only reads *of the snapshot parameter* count as merging — the
        # sink's own fields (self.spans etc.) must not mask a deleted
        # snap.<field> fold.
        params = [a.arg for a in fn.args.args if a.arg != "self"]
        snap_param = params[0] if params else None
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == snap_param
            ):
                merged.add(node.attr)
    for stmt in info.tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == cfg.merge_derived_decl
            for t in targets
        ):
            continue
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    merged.add(elt.value)
    return merged


def _worker_entries(program: Program, cfg: AnalysisConfig) -> list[FunctionId]:
    """Callables that run inside workers, per the parallel module's AST.

    Two ways a function crosses into a worker: as the first argument of
    ordered pool dispatch (``.imap``/``.map``), or as the
    ``initializer=`` keyword of a pool constructor — the latter runs in
    every worker before its first task (the shared-memory attach path),
    so its reachable closure needs the same hygiene checks.
    """
    info = program.modules.get(cfg.parallel_module)
    if info is None:
        return []
    entries: list[FunctionId] = []

    def add(candidate: ast.expr) -> None:
        if isinstance(candidate, ast.Name):
            resolved = program.resolve_symbol(info.name, candidate.id)
            if resolved is not None and resolved[0] == "function":
                entries.append(f"{resolved[1]}:{resolved[2]}")

    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _ORDERED_DISPATCH
            and node.args
        ):
            add(node.args[0])
        for kw in node.keywords:
            if kw.arg == "initializer":
                add(kw.value)
    return entries


def _check_worker_body(
    program: Program,
    cfg: AnalysisConfig,
    root: pathlib.Path,
    fid: FunctionId,
    merged: set[str],
) -> list[Finding]:
    located = program.function_node(fid)
    if located is None:
        return []
    info, _cls, fn = located
    path = program.rel_path(info, root)
    findings: list[Finding] = []
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Global)
            and info.name != cfg.telemetry_module
            and not all(n in cfg.worker_state_globals for n in node.names)
        ):
            findings.append(
                Finding(
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=CODE,
                    message=(
                        f"'global {', '.join(node.names)}' in worker-reachable "
                        f"{fid.partition(':')[2]}(): forked children cannot "
                        "publish globals back to the parent"
                    ),
                )
            )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            kind = node.func.attr
            field = EMISSION_FIELDS.get(kind)
            if field is not None and field not in merged:
                findings.append(
                    Finding(
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        code=CODE,
                        message=(
                            f"telemetry {kind}() in worker-reachable "
                            f"{fid.partition(':')[2]}() lands in snapshot "
                            f"field '{field}', which the merge algebra does "
                            "not fold"
                        ),
                    )
                )
        elif isinstance(node, (ast.For, ast.comprehension)):
            it = node.iter
            if isinstance(it, ast.Set) or (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id in {"set", "frozenset"}
            ):
                findings.append(
                    Finding(
                        path=path,
                        line=it.lineno,
                        col=it.col_offset,
                        code=CODE,
                        message=(
                            "iteration over a set in worker-reachable "
                            f"{fid.partition(':')[2]}(): ordering is not "
                            "deterministic across processes"
                        ),
                    )
                )
    return findings


def run(
    program: Program, cfg: AnalysisConfig, root: pathlib.Path
) -> list[Finding]:
    findings: list[Finding] = []
    merged = _merged_fields(program, cfg)
    snap = _snapshot_fields(program, cfg)
    if snap is not None:
        fields, mod_name = snap
        info = program.modules[mod_name]
        path = program.rel_path(info, root)
        for field, line in sorted(fields.items(), key=lambda kv: kv[1]):
            if field not in merged:
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=0,
                        code=CODE,
                        message=(
                            f"snapshot field '{field}' is not folded by "
                            f"{cfg.merge_function}() and not declared in "
                            f"{cfg.merge_derived_decl}: it is dropped at the "
                            "fork boundary"
                        ),
                    )
                )
    par = program.modules.get(cfg.parallel_module)
    if par is not None:
        par_path = program.rel_path(par, root)
        for node in ast.walk(par.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _UNORDERED_DISPATCH
            ):
                findings.append(
                    Finding(
                        path=par_path,
                        line=node.lineno,
                        col=node.col_offset,
                        code=CODE,
                        message=(
                            f"nondeterministic pool dispatch "
                            f"'{node.func.attr}': worker results must merge "
                            "in submission order (use imap/map)"
                        ),
                    )
                )
    for fid in sorted(program.reachable_from(_worker_entries(program, cfg))):
        findings.extend(_check_worker_body(program, cfg, root, fid, merged))
    return findings
