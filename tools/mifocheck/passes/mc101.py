"""MC101 — checkpoint completeness.

Every instance attribute assigned in the checkpoint-target classes must
be one of:

* **captured** — its name appears among the attribute reads of
  ``checkpoint.capture`` (directly, or via a property/method of the same
  class whose *name* capture reads: ``capture`` reading ``eng.epoch``
  covers ``_event_no`` because the ``epoch`` property reads it);
* **declared derivable** — listed in the class's ``DERIVABLE`` dict with
  a non-empty reason, or annotated inline on its first assignment with
  ``# mifocheck: derivable: <reason>``;
* **suppressed** — ``# mifocheck: disable=MC101`` on the assignment line;
* otherwise it is flagged at its first assignment site.

Stale bookkeeping is flagged too: a ``DERIVABLE`` entry naming an
attribute the class no longer assigns, an entry with an empty reason,
and an entry for an attribute capture already covers (redundant — the
declaration would mask a future capture regression).
"""

from __future__ import annotations

import ast
import pathlib
import re

from ..config import AnalysisConfig
from ..program import ClassInfo, Program
from ...lintshared import Finding

CODE = "MC101"
DESCRIPTION = (
    "instance attribute of a checkpoint-target class is neither captured "
    "by checkpoint.capture nor declared derivable with a reason"
)

_DERIVABLE_RE = re.compile(r"#\s*mifocheck:\s*derivable\b[\s:,—–-]*(.*)")


def _captured_names(program: Program, cfg: AnalysisConfig) -> set[str] | None:
    """Every attribute name read anywhere inside ``capture``."""
    info = program.modules.get(cfg.checkpoint_module)
    if info is None:
        return None
    cap = info.functions.get(cfg.capture_function)
    if cap is None:
        return None
    names: set[str] = set()
    for node in ast.walk(cap):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            names.add(node.attr)
    return names


def _alias_covered(cls: ClassInfo, captured: set[str]) -> set[str]:
    """Attrs covered because a captured-name property/method reads them."""
    covered: set[str] = set()
    for name, fn in cls.methods.items():
        if name not in captured:
            continue
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                covered.add(node.attr)
    return covered


def _inline_derivable(lines: list[str], line: int) -> bool:
    """Non-empty-reason ``# mifocheck: derivable`` marker on ``line``."""
    if not 1 <= line <= len(lines):
        return False
    m = _DERIVABLE_RE.search(lines[line - 1])
    return bool(m) and bool(m.group(1).strip())


def run(
    program: Program, cfg: AnalysisConfig, root: pathlib.Path
) -> list[Finding]:
    findings: list[Finding] = []
    captured = _captured_names(program, cfg)
    if captured is None:
        ck = program.modules.get(cfg.checkpoint_module)
        path = program.rel_path(ck, root) if ck else cfg.checkpoint_module
        findings.append(
            Finding(
                path=path,
                line=1,
                col=0,
                code=CODE,
                message=(
                    f"checkpoint writer {cfg.checkpoint_module}."
                    f"{cfg.capture_function} not found; cannot prove "
                    "checkpoint completeness"
                ),
            )
        )
        return findings
    for mod_name, cls_name in cfg.checkpoint_targets:
        info = program.modules.get(mod_name)
        cls = info.classes.get(cls_name) if info else None
        if info is None or cls is None:
            findings.append(
                Finding(
                    path=mod_name if info is None else program.rel_path(info, root),
                    line=1,
                    col=0,
                    code=CODE,
                    message=f"checkpoint target {mod_name}.{cls_name} not found",
                )
            )
            continue
        path = program.rel_path(info, root)
        covered = captured | _alias_covered(cls, captured)
        for attr, (line, col) in sorted(cls.attrs.items(), key=lambda kv: kv[1]):
            if attr in covered:
                continue
            if attr in cls.derivable and cls.derivable[attr].strip():
                continue
            if _inline_derivable(info.lines, line):
                continue
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=col,
                    code=CODE,
                    message=(
                        f"instance attribute '{attr}' of {cls_name} is not "
                        f"captured by {cfg.capture_function}() and not "
                        "declared derivable"
                    ),
                )
            )
        for attr, reason in sorted(cls.derivable.items()):
            if attr not in cls.attrs:
                findings.append(
                    Finding(
                        path=path,
                        line=cls.derivable_line,
                        col=0,
                        code=CODE,
                        message=(
                            f"stale DERIVABLE entry '{attr}' on {cls_name}: "
                            "no such instance attribute is assigned"
                        ),
                    )
                )
            elif not reason.strip():
                findings.append(
                    Finding(
                        path=path,
                        line=cls.derivable_line,
                        col=0,
                        code=CODE,
                        message=(
                            f"DERIVABLE entry '{attr}' on {cls_name} has an "
                            "empty reason"
                        ),
                    )
                )
            elif attr in covered:
                findings.append(
                    Finding(
                        path=path,
                        line=cls.derivable_line,
                        col=0,
                        code=CODE,
                        message=(
                            f"redundant DERIVABLE entry '{attr}' on "
                            f"{cls_name}: the attribute is already captured "
                            "(the declaration would mask a capture regression)"
                        ),
                    )
                )
    return findings
