"""Pass registry and runner for mifocheck.

Each pass module exposes ``CODE``, ``DESCRIPTION``, and
``run(program, cfg, root) -> list[Finding]``.  The runner parses the
package once into a :class:`~tools.mifocheck.program.Program`, hands the
same model to every selected pass, drops per-line-suppressed findings
(``# mifocheck: disable=MC1xx`` — mifolint spellings work too), and
returns findings paired with their source-line text so the CLI can
apply baselines by content fingerprint.
"""

from __future__ import annotations

import pathlib

from ..config import AnalysisConfig
from ..program import Program
from ...lintshared import Finding, suppressed
from . import mc101, mc102, mc103, mc104

__all__ = ["PASSES", "RULES", "run_passes"]

PASSES = (mc101, mc102, mc103, mc104)

RULES: dict[str, str] = {p.CODE: p.DESCRIPTION for p in PASSES}


def _source_lines(
    program: Program, cfg: AnalysisConfig, root: pathlib.Path
) -> dict[str, list[str]]:
    sources: dict[str, list[str]] = {}
    for info in program.modules.values():
        sources[program.rel_path(info, root)] = info.lines
    core = cfg.mifolint_core
    if core.exists():
        try:
            rel = str(core.relative_to(root))
        except ValueError:
            rel = str(core)
        sources[rel] = core.read_text(encoding="utf-8").splitlines()
    return sources


def run_passes(
    cfg: AnalysisConfig,
    *,
    select: set[str] | None = None,
    program: Program | None = None,
) -> tuple[list[tuple[Finding, str]], Program]:
    """Run the selected passes; returns ``(finding, line_text)`` pairs."""
    prog = program if program is not None else Program(cfg.source_root, cfg.package)
    root = cfg.source_root.parent
    raw: list[Finding] = []
    for p in PASSES:
        if select is not None and p.CODE not in select:
            continue
        raw.extend(p.run(prog, cfg, root))
    sources = _source_lines(prog, cfg, root)
    kept: list[tuple[Finding, str]] = []
    for f in sorted(raw, key=lambda f: (f.path, f.line, f.code, f.message)):
        lines = sources.get(f.path, [])
        if suppressed(lines, f.line, f.code):
            continue
        text = lines[f.line - 1] if 1 <= f.line <= len(lines) else ""
        kept.append((f, text))
    return kept, prog
