"""MC104 — protected-field inference.

MF003 in mifolint protects checkpointed service state, the solver slab,
and the frozen CSR arrays from out-of-band mutation — but a protection
list that must be edited by hand whenever state grows is itself a drift
hazard.  This pass derives the three sets from the code that defines
them (see :mod:`tools.mifocheck.derive`) and checks:

* each derived set is non-empty (an empty set silently disables MF003);
* the declared slab-state markers are consistent with the solver's
  actual mutation footprint: every attribute subscript-stored or
  ``np.add.at``-targeted inside the slab-maintenance methods must carry
  a marker (dict-valued bookkeeping attrs are exempt — they are keyed
  caches, not slab arrays), and every marker must name an attribute
  ``__init__`` actually assigns;
* ``tools/mifolint/core.py`` contains no hand-maintained frozenset that
  disagrees with the derived sets — a stale literal is flagged with the
  exact missing/extra field names.
"""

from __future__ import annotations

import ast
import pathlib

from ..config import AnalysisConfig
from ..derive import (
    checkpointed_state_fields_from_ast,
    csr_array_fields_from_ast,
    slab_state_fields_from_source,
)
from ..program import Program
from ...lintshared import Finding

CODE = "MC104"
DESCRIPTION = (
    "a protected-field set (checkpointed state, slab, CSR) is empty, "
    "inconsistent with the mutation footprint, or restated stale in mifolint"
)

#: mifolint names -> which derived set they must match
_MIFOLINT_SETS = ("SERVICE_STATE_FIELDS", "SLAB_FIELDS", "CSR_FIELDS")


def _derived_sets(
    program: Program, cfg: AnalysisConfig
) -> dict[str, tuple[frozenset[str], str]]:
    """name -> (fields, defining module) for the three derived sets."""
    out: dict[str, tuple[frozenset[str], str]] = {}
    ck = program.modules.get(cfg.checkpoint_module)
    if ck is not None:
        out["SERVICE_STATE_FIELDS"] = (
            checkpointed_state_fields_from_ast(
                ck.tree,
                capture=cfg.capture_function,
                restores=cfg.restore_functions,
            ),
            cfg.checkpoint_module,
        )
    slab = program.modules.get(cfg.slab_module)
    if slab is not None:
        out["SLAB_FIELDS"] = (
            slab_state_fields_from_source(slab.source),
            cfg.slab_module,
        )
    topo = program.modules.get(cfg.topology_module)
    if topo is not None:
        out["CSR_FIELDS"] = (
            csr_array_fields_from_ast(topo.tree, class_name=cfg.csr_class),
            cfg.topology_module,
        )
    return out


def _dict_valued_attrs(cls_node: ast.ClassDef) -> set[str]:
    """Attrs whose ``__init__`` assignment is a dict literal/ctor."""
    out: set[str] = set()
    for stmt in cls_node.body:
        if not (isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            is_dict = isinstance(value, ast.Dict) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in {"dict", "defaultdict"}
            )
            if not is_dict:
                continue
            for t in targets:
                if (
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ):
                    out.add(t.attr)
    return out


def _slab_mutation_core(
    program: Program, cfg: AnalysisConfig
) -> tuple[dict[str, int], set[str]] | None:
    """(attr -> first mutation line) in slab methods, + dict-attr set."""
    info = program.modules.get(cfg.slab_module)
    cls = info.classes.get(cfg.slab_class) if info else None
    if info is None or cls is None:
        return None
    mutated: dict[str, int] = {}

    def note(attr: str, line: int) -> None:
        if attr not in mutated:
            mutated[attr] = line

    for name in cfg.slab_methods:
        fn = cls.methods.get(name)
        if fn is None:
            continue
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    list(node.targets)
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for t in targets:
                    if (
                        isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Attribute)
                        and isinstance(t.value.value, ast.Name)
                        and t.value.value.id == "self"
                    ):
                        note(t.value.attr, t.lineno)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "at"
                and isinstance(node.func.value, ast.Attribute)
                and node.args
            ):
                # np.add.at(self._x, idx, v) mutates self._x in place
                first = node.args[0]
                if (
                    isinstance(first, ast.Attribute)
                    and isinstance(first.value, ast.Name)
                    and first.value.id == "self"
                ):
                    note(first.attr, node.lineno)
    return mutated, _dict_valued_attrs(cls.node)


def _mifolint_literals(core_path: pathlib.Path) -> dict[str, tuple[frozenset[str], int]]:
    """Hand-maintained ``NAME = frozenset({...})`` literals in mifolint."""
    try:
        tree = ast.parse(core_path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return {}
    out: dict[str, tuple[frozenset[str], int]] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            t, v = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            t, v = stmt.target, stmt.value
        else:
            continue
        if not (isinstance(t, ast.Name) and t.id in _MIFOLINT_SETS):
            continue
        elts: list[ast.expr] | None = None
        if isinstance(v, ast.Call) and isinstance(v.func, ast.Name) and v.func.id == "frozenset":
            if v.args and isinstance(v.args[0], (ast.Set, ast.List, ast.Tuple)):
                elts = v.args[0].elts
        elif isinstance(v, ast.Set):
            elts = v.elts
        if elts is None:
            continue  # an import or computed expression, not a hand list
        names = frozenset(
            e.value for e in elts if isinstance(e, ast.Constant) and isinstance(e.value, str)
        )
        out[t.id] = (names, stmt.lineno)
    return out


def run(
    program: Program, cfg: AnalysisConfig, root: pathlib.Path
) -> list[Finding]:
    findings: list[Finding] = []
    derived = _derived_sets(program, cfg)
    for name, (fields, mod_name) in sorted(derived.items()):
        if not fields:
            info = program.modules[mod_name]
            findings.append(
                Finding(
                    path=program.rel_path(info, root),
                    line=1,
                    col=0,
                    code=CODE,
                    message=(
                        f"derived set {name} from {mod_name} is empty: "
                        "MF003 protection would be silently disabled"
                    ),
                )
            )
    core = _slab_mutation_core(program, cfg)
    if core is not None and "SLAB_FIELDS" in derived:
        mutated, dict_attrs = core
        markers = derived["SLAB_FIELDS"][0]
        info = program.modules[cfg.slab_module]
        path = program.rel_path(info, root)
        cls = info.classes[cfg.slab_class]
        for attr, line in sorted(mutated.items(), key=lambda kv: kv[1]):
            if attr in markers or attr in dict_attrs or not attr.startswith("_"):
                continue
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=0,
                    code=CODE,
                    message=(
                        f"slab-maintenance methods mutate '{attr}' but its "
                        "__init__ assignment carries no "
                        "'# mifocheck: slab-state' marker"
                    ),
                )
            )
        for attr in sorted(markers):
            if attr not in cls.attrs:
                findings.append(
                    Finding(
                        path=path,
                        line=1,
                        col=0,
                        code=CODE,
                        message=(
                            f"stale slab-state marker '{attr}': "
                            f"{cfg.slab_class} never assigns it"
                        ),
                    )
                )
    literals = _mifolint_literals(cfg.mifolint_core)
    if literals:
        try:
            core_rel = str(cfg.mifolint_core.relative_to(root))
        except ValueError:
            core_rel = str(cfg.mifolint_core)
        for name, (names, line) in sorted(literals.items()):
            if name not in derived:
                continue
            want = derived[name][0]
            if names == want:
                continue
            missing = ", ".join(sorted(want - names)) or "-"
            extra = ", ".join(sorted(names - want)) or "-"
            findings.append(
                Finding(
                    path=core_rel,
                    line=line,
                    col=0,
                    code=CODE,
                    message=(
                        f"hand-maintained {name} in mifolint disagrees with "
                        f"the derived set (missing: {missing}; extra: {extra}); "
                        "import it from tools.mifocheck.derive instead"
                    ),
                )
            )
    return findings
