"""MC103 — stream purity.

The deterministic event stream is the root of every replay guarantee:
``EventStream.event_at(index)`` must be a pure function of
``(config.seed, index)``.  This pass takes the call-graph closure of
``event_at`` and flags, in any reachable function:

* stores to ``self`` (plain, augmented, or through a subscript) —
  the stream may not keep a cursor;
* wall-clock reads (``time.time``/``perf_counter``/``monotonic``/
  ``datetime.now``...);
* unseeded randomness — any stdlib ``random.*`` call, and the legacy
  ``np.random.*`` global-state samplers (``default_rng``/``Generator``/
  ``SeedSequence``/``PCG64`` are the sanctioned seeded constructors);
* telemetry emissions (they read and mutate the process-global sink);
* loads of module globals that are rebound via a ``global`` statement
  anywhere in their defining module (mutable-global reads).

Additionally, any function named in ``cfg.stream_forbidden`` that shows
up in the closure is itself a finding: the service-mode batching and
flush machinery (``ServiceSession._flush``/``_apply``,
``BatchTick.apply``) reads session state by design, so the pure sampler
reaching it would couple event *generation* to event *application*
order — exactly the coupling replay determinism forbids.
"""

from __future__ import annotations

import ast
import pathlib

from ..config import AnalysisConfig
from ..program import FunctionId, Program
from ...lintshared import Finding
from .mc102 import EMISSION_FIELDS

CODE = "MC103"
DESCRIPTION = (
    "the event-stream sampler reads state not derived from (seed, index): "
    "clocks, mutable globals, unseeded randomness, or self-mutation"
)

_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
}

_NP_UNSEEDED = {
    "random",
    "rand",
    "randn",
    "randint",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "seed",
    "standard_normal",
    "uniform",
    "normal",
    "poisson",
}


def _entry(program: Program, cfg: AnalysisConfig) -> FunctionId | None:
    fid = f"{cfg.stream_module}:{cfg.stream_class}.{cfg.stream_method}"
    return fid if program.function_node(fid) is not None else None


def _dotted_receiver(node: ast.Attribute) -> str | None:
    if isinstance(node.value, ast.Name):
        return node.value.id
    if isinstance(node.value, ast.Attribute) and isinstance(
        node.value.value, ast.Name
    ):
        # np.random.<fn> — report the inner attribute as receiver
        return f"{node.value.value.id}.{node.value.attr}"
    return None


def _check_body(
    program: Program, root: pathlib.Path, fid: FunctionId
) -> list[Finding]:
    located = program.function_node(fid)
    if located is None:
        return []
    info, _cls, fn = located
    path = program.rel_path(info, root)
    fname = fid.partition(":")[2]
    findings: list[Finding] = []

    def flag(node: ast.AST, msg: str) -> None:
        findings.append(
            Finding(
                path=path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=CODE,
                message=f"{msg} in stream-reachable {fname}()",
            )
        )

    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for t in targets:
                base = t.value if isinstance(t, ast.Subscript) else t
                if (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                ):
                    flag(t, f"store to self.{base.attr} (stream must be cursor-free)")
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            recv = _dotted_receiver(node.func)
            attr = node.func.attr
            if recv is not None and (recv, attr) in _CLOCK_CALLS:
                flag(node, f"wall-clock read {recv}.{attr}()")
            elif recv == "random":
                flag(node, f"unseeded stdlib randomness random.{attr}()")
            elif recv in {"np.random", "numpy.random"} and attr in _NP_UNSEEDED:
                flag(node, f"global-state numpy randomness {recv}.{attr}()")
            elif attr in EMISSION_FIELDS and recv in {"tm", "telemetry"}:
                flag(node, f"telemetry emission {recv}.{attr}()")
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in info.global_decls:
                flag(node, f"read of mutable module global '{node.id}'")
        elif isinstance(node, ast.Global):
            flag(node, f"'global {', '.join(node.names)}' statement")
    return findings


def run(
    program: Program, cfg: AnalysisConfig, root: pathlib.Path
) -> list[Finding]:
    entry = _entry(program, cfg)
    if entry is None:
        info = program.modules.get(cfg.stream_module)
        path = program.rel_path(info, root) if info else cfg.stream_module
        return [
            Finding(
                path=path,
                line=1,
                col=0,
                code=CODE,
                message=(
                    f"stream entry point {cfg.stream_class}."
                    f"{cfg.stream_method} not found; cannot prove purity"
                ),
            )
        ]
    findings: list[Finding] = []
    closure = program.reachable_from([entry])
    forbidden = set(cfg.stream_forbidden) & set(closure)
    for fid in sorted(forbidden):
        located = program.function_node(fid)
        if located is None:  # pragma: no cover - closure members resolve
            continue
        info, _cls, fn = located
        findings.append(
            Finding(
                path=program.rel_path(info, root),
                line=getattr(fn, "lineno", 1),
                col=getattr(fn, "col_offset", 0),
                code=CODE,
                message=(
                    f"batch-application helper {fid.partition(':')[2]}() is "
                    f"reachable from {cfg.stream_class}.{cfg.stream_method} "
                    "(event generation must not depend on application order)"
                ),
            )
        )
    for fid in sorted(closure):
        findings.extend(_check_body(program, root, fid))
    return findings
