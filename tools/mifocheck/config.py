"""Analysis configuration for mifocheck.

All the repo-specific knowledge the passes need — which module holds the
checkpoint writer, which classes must be checkpoint-complete, where the
worker pool lives, which class is the pure event stream — is collected
here in one declarative object instead of being spread through the pass
implementations.  The planted-bug fixture corpus under
``tests/tools/fixtures/`` re-points these names at miniature packages to
prove each pass fires; the defaults describe ``src/repro``.
"""

from __future__ import annotations

import dataclasses
import pathlib

__all__ = ["AnalysisConfig", "default_config", "REPO_ROOT"]

#: tools/mifocheck/config.py -> tools/mifocheck -> tools -> repo root
REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@dataclasses.dataclass(frozen=True, slots=True)
class AnalysisConfig:
    """Names binding the generic passes to a concrete package."""

    #: directory containing the package to analyze (its child dirs are
    #: top-level packages; ``src`` for the real tree)
    source_root: pathlib.Path
    #: dotted name of the package to load into the program model
    package: str

    # -- MC101 checkpoint completeness ---------------------------------
    #: module holding the checkpoint writer + restore functions
    checkpoint_module: str
    #: function whose attribute *reads* define the captured-state set
    capture_function: str
    #: functions whose attribute *writes* also count as checkpointed
    #: state (restore must write everything capture reads)
    restore_functions: tuple[str, ...]
    #: (module, class) pairs whose instance attributes must all be
    #: captured, declared derivable, or flagged
    checkpoint_targets: tuple[tuple[str, str], ...]

    # -- MC102 fork-boundary determinism -------------------------------
    #: module holding the worker pool dispatch
    parallel_module: str
    #: module defining the snapshot type + merge algebra
    telemetry_module: str
    #: snapshot dataclass whose fields define the merge algebra domain
    snapshot_class: str
    #: function that folds a snapshot into a live sink; every snapshot
    #: field must appear in it (or in MERGE_DERIVED_FIELDS)
    merge_function: str
    #: module-level tuple naming snapshot fields that merge derives
    #: implicitly instead of reading (e.g. drop accounting)
    merge_derived_decl: str
    #: globals a pool initializer may rebind: the sanctioned one-way
    #: worker-state installs (e.g. the shared-memory CSR attachment).
    #: Any other ``global`` in worker-reachable code is still a finding.
    worker_state_globals: tuple[str, ...]

    # -- MC103 stream purity -------------------------------------------
    #: module + class + method defining the pure stream entry point
    stream_module: str
    stream_class: str
    stream_method: str

    # -- MC104 protected-field inference -------------------------------
    #: module holding the slab solver (slab-state markers live there)
    slab_module: str
    slab_class: str
    #: methods allowed to mutate slab state; used for the auto-core
    #: consistency check (subscript stores / np.add.at targets)
    slab_methods: tuple[str, ...]
    #: module + class whose np.ndarray fields define the CSR array set
    topology_module: str
    csr_class: str
    #: path (relative to repo root) of the mifolint core that must
    #: consume — not restate — the derived sets
    mifolint_core: pathlib.Path

    # -- MC103 stream purity, continued --------------------------------
    #: fully qualified FunctionIds (``module:Class.method``) that must
    #: NEVER enter the stream method's call-graph closure — the batching
    #: and flush machinery reads session state, so the pure sampler
    #: calling into it would couple event generation to application
    #: order.  Defaulted (trailing field) so fixture configs built from
    #: explicit field dicts keep working.
    stream_forbidden: tuple[str, ...] = ()


def default_config(root: pathlib.Path | None = None) -> AnalysisConfig:
    """The configuration describing the real ``src/repro`` tree."""
    base = root if root is not None else REPO_ROOT
    return AnalysisConfig(
        source_root=base / "src",
        package="repro",
        checkpoint_module="repro.service.checkpoint",
        capture_function="capture",
        restore_functions=("_restore_engine", "_restore_session_state"),
        checkpoint_targets=(
            ("repro.service.session", "ServiceSession"),
            ("repro.service.stream", "EventStream"),
            ("repro.scenario.engine", "ScenarioEngine"),
            ("repro.scenario.engine", "_SimFlow"),
            ("repro.scenario.incremental", "IncrementalRouting"),
            ("repro.flowsim.warmstart", "WarmStartSolver"),
            ("repro.flowsim.incremental", "IncrementalMaxMin"),
            ("repro.measure.rtt", "PathRttMonitor"),
            ("repro.measure.changepoint", "OnlineDetector"),
        ),
        parallel_module="repro.bgp.parallel",
        telemetry_module="repro.telemetry.core",
        snapshot_class="TelemetrySnapshot",
        merge_function="absorb",
        merge_derived_decl="MERGE_DERIVED_FIELDS",
        worker_state_globals=("_WORKER_CSR",),
        stream_module="repro.service.stream",
        stream_class="EventStream",
        stream_method="event_at",
        stream_forbidden=(
            "repro.service.session:ServiceSession._flush",
            "repro.service.session:ServiceSession._apply",
            "repro.service.stream:BatchTick.apply",
            "repro.service.stream:merge_effects",
        ),
        slab_module="repro.flowsim.incremental",
        slab_class="IncrementalMaxMin",
        slab_methods=("_intern", "seed_free_segments", "add_flow", "remove_flow"),
        topology_module="repro.topology.asgraph",
        csr_class="CsrAdjacency",
        mifolint_core=base / "tools" / "mifolint" / "core.py",
    )
