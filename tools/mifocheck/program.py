"""Whole-program model for mifocheck.

Parses every module of one package exactly once and exposes:

* a dotted-name **module table** (package ``__init__`` files are named
  by the package itself, e.g. ``repro.telemetry``);
* **import resolution** — alias chains are followed through re-exporting
  ``__init__`` modules so ``tm.active`` resolves to
  ``repro.telemetry.core.active`` even when ``tm`` aliases the package;
* a per-class **instance-attribute inventory**: every ``self._x``
  assignment site (plain, annotated, or augmented stores), with the
  first line it appears on;
* a conservative intra-package **call graph** over function ids of the
  form ``"module:qualname"`` (``"repro.bgp.parallel:_compute_chunk"``,
  ``"repro.telemetry.core:Telemetry.snapshot"``).

The call graph resolves only what it can prove: direct names, ``self``
methods, locals assigned from resolved constructors, direct
``Cls(...).m()`` chains, and module-alias attribute calls.  Unresolvable
dynamic dispatch produces no edge — passes that need soundness in the
other direction (e.g. MC103 purity) pair the graph with their own
syntactic checks on the reachable bodies.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib

__all__ = ["ClassInfo", "FunctionId", "ModuleInfo", "Program"]

FunctionId = str  # "dotted.module:qualname"

_MAX_ALIAS_DEPTH = 8


@dataclasses.dataclass(slots=True)
class ClassInfo:
    """One class definition plus its instance-attribute inventory."""

    name: str
    module: str
    node: ast.ClassDef
    #: every method (properties included), by name
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef]
    #: names of ``@property``-decorated methods
    properties: set[str]
    #: instance attribute -> (line, col) of its first ``self.X = ...``
    attrs: dict[str, tuple[int, int]]
    #: ``DERIVABLE = {"attr": "reason"}`` class declaration, if present
    derivable: dict[str, str]
    derivable_line: int


@dataclasses.dataclass(slots=True)
class ModuleInfo:
    """One parsed module of the analyzed package."""

    name: str
    path: pathlib.Path
    source: str
    lines: list[str]
    tree: ast.Module
    #: local alias -> dotted target ("pkg.mod" or "pkg.mod.symbol")
    imports: dict[str, str]
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef]
    classes: dict[str, ClassInfo]
    #: names rebound via a ``global`` statement anywhere in the module
    global_decls: set[str]
    #: module-level simple assignment targets
    module_assigns: set[str]


def _is_property(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in fn.decorator_list:
        if isinstance(dec, ast.Name) and dec.id == "property":
            return True
        if isinstance(dec, ast.Attribute) and dec.attr in {"property", "cached_property"}:
            return True
    return False


def _self_attr_stores(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[str, int, int]]:
    """``(attr, line, col)`` for every plain ``self.X`` store in ``fn``."""
    out: list[tuple[str, int, int]] = []
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for t in targets:
            if (
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
            ):
                out.append((t.attr, t.lineno, t.col_offset))
    return out


def _parse_derivable(cls: ast.ClassDef) -> tuple[dict[str, str], int]:
    """Read a class-level ``DERIVABLE = {"attr": "reason"}`` literal."""
    for stmt in cls.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if not (isinstance(target, ast.Name) and target.id == "DERIVABLE"):
            continue
        entries: dict[str, str] = {}
        if isinstance(value, ast.Dict):
            for k, v in zip(value.keys, value.values):
                if isinstance(k, ast.Constant) and isinstance(k.value, str):
                    reason = v.value if isinstance(v, ast.Constant) and isinstance(v.value, str) else ""
                    entries[k.value] = reason
        return entries, stmt.lineno
    return {}, 0


def _build_class(name: str, module: str, node: ast.ClassDef) -> ClassInfo:
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    properties: set[str] = set()
    attrs: dict[str, tuple[int, int]] = {}
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[stmt.name] = stmt
            if _is_property(stmt):
                properties.add(stmt.name)
    for fn in methods.values():
        for attr, line, col in _self_attr_stores(fn):
            if attr not in attrs or (line, col) < attrs[attr]:
                attrs[attr] = (line, col)
    derivable, derivable_line = _parse_derivable(node)
    return ClassInfo(
        name=name,
        module=module,
        node=node,
        methods=methods,
        properties=properties,
        attrs=attrs,
        derivable=derivable,
        derivable_line=derivable_line,
    )


def _module_name_for(path: pathlib.Path, source_root: pathlib.Path) -> str:
    rel = path.relative_to(source_root)
    parts = list(rel.parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _resolve_relative(
    module_name: str, target: str | None, level: int, is_package_init: bool
) -> str | None:
    """Absolute dotted base of a ``from``-import inside ``module_name``."""
    if level == 0:
        return target or ""
    parts = module_name.split(".")
    # level=1 in a plain module means "the containing package"; in a
    # package __init__ the module name *is* the package, so one fewer
    # component is stripped.
    strip = level if not is_package_init else level - 1
    if strip > len(parts):
        return None
    base_parts = parts[: len(parts) - strip] if strip else parts
    base = ".".join(base_parts)
    if target:
        base = f"{base}.{target}" if base else target
    return base


class Program:
    """The parsed package: module table, inventories, call graph."""

    def __init__(self, source_root: pathlib.Path, package: str) -> None:
        self.source_root = source_root
        self.package = package
        self.modules: dict[str, ModuleInfo] = {}
        self._load()
        self._edges: dict[FunctionId, set[FunctionId]] | None = None

    # -- loading -------------------------------------------------------

    def _load(self) -> None:
        pkg_dir = self.source_root / self.package.replace(".", "/")
        if not pkg_dir.is_dir():
            raise FileNotFoundError(f"package directory not found: {pkg_dir}")
        for path in sorted(pkg_dir.rglob("*.py")):
            name = _module_name_for(path, self.source_root)
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
            is_init = path.name == "__init__.py"
            imports: dict[str, str] = {}
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname:
                            imports[alias.asname] = alias.name
                        else:
                            imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
                elif isinstance(node, ast.ImportFrom):
                    base = _resolve_relative(name, node.module, node.level, is_init)
                    if base is None:
                        continue
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        bound = alias.asname or alias.name
                        imports[bound] = f"{base}.{alias.name}" if base else alias.name
            functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
            classes: dict[str, ClassInfo] = {}
            for stmt in tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions[stmt.name] = stmt
                elif isinstance(stmt, ast.ClassDef):
                    classes[stmt.name] = _build_class(stmt.name, name, stmt)
            global_decls = {
                n
                for node in ast.walk(tree)
                if isinstance(node, ast.Global)
                for n in node.names
            }
            module_assigns: set[str] = set()
            for stmt in tree.body:
                if isinstance(stmt, ast.Assign):
                    for t in stmt.targets:
                        if isinstance(t, ast.Name):
                            module_assigns.add(t.id)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    module_assigns.add(stmt.target.id)
            self.modules[name] = ModuleInfo(
                name=name,
                path=path,
                source=source,
                lines=source.splitlines(),
                tree=tree,
                imports=imports,
                functions=functions,
                classes=classes,
                global_decls=global_decls,
                module_assigns=module_assigns,
            )

    # -- symbol resolution ---------------------------------------------

    def resolve_symbol(
        self, module: str, name: str, _depth: int = 0
    ) -> tuple[str, str, str] | None:
        """Resolve ``name`` in ``module`` to ``(kind, module, symbol)``.

        ``kind`` is ``"function"``, ``"class"``, or ``"module"`` (symbol
        empty for modules).  Returns ``None`` for names the analysis
        cannot prove anything about (builtins, third-party, locals).
        """
        if _depth > _MAX_ALIAS_DEPTH:
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.functions:
            return ("function", module, name)
        if name in info.classes:
            return ("class", module, name)
        target = info.imports.get(name)
        if target is None:
            return None
        if target in self.modules:
            return ("module", target, "")
        head, _, leaf = target.rpartition(".")
        if head and head in self.modules:
            return self.resolve_symbol(head, leaf, _depth + 1)
        return None

    def resolve_attr(
        self, module: str, base: str, attr: str
    ) -> tuple[str, str, str] | None:
        """Resolve ``base.attr`` where ``base`` may alias a module."""
        resolved = self.resolve_symbol(module, base)
        if resolved is None:
            # `import a.b.c` binds `a`; the chain lives in the table
            info = self.modules.get(module)
            if info is not None:
                dotted = info.imports.get(base)
                if dotted is not None and f"{dotted}.{attr}" in self.modules:
                    return ("module", f"{dotted}.{attr}", "")
            return None
        kind, mod, sym = resolved
        if kind == "module":
            if f"{mod}.{attr}" in self.modules:
                return ("module", f"{mod}.{attr}", "")
            return self.resolve_symbol(mod, attr)
        return None

    # -- function bodies -----------------------------------------------

    def function_ids(self) -> list[FunctionId]:
        out: list[FunctionId] = []
        for mod in self.modules.values():
            out.extend(f"{mod.name}:{fn}" for fn in mod.functions)
            for cls in mod.classes.values():
                out.extend(f"{mod.name}:{cls.name}.{m}" for m in cls.methods)
        return out

    def function_node(
        self, fid: FunctionId
    ) -> tuple[ModuleInfo, ClassInfo | None, ast.FunctionDef | ast.AsyncFunctionDef] | None:
        mod_name, _, qual = fid.partition(":")
        info = self.modules.get(mod_name)
        if info is None:
            return None
        if "." in qual:
            cls_name, _, meth = qual.partition(".")
            cls = info.classes.get(cls_name)
            if cls is None or meth not in cls.methods:
                return None
            return (info, cls, cls.methods[meth])
        fn = info.functions.get(qual)
        if fn is None:
            return None
        return (info, None, fn)

    # -- call graph ----------------------------------------------------

    def call_graph(self) -> dict[FunctionId, set[FunctionId]]:
        if self._edges is None:
            self._edges = {
                fid: self._callees(fid) for fid in self.function_ids()
            }
        return self._edges

    def _class_method_id(self, mod: str, cls: str, meth: str) -> FunctionId | None:
        info = self.modules.get(mod)
        if info is None:
            return None
        c = info.classes.get(cls)
        if c is not None and meth in c.methods:
            return f"{mod}:{cls}.{meth}"
        return None

    def _callable_id(self, resolved: tuple[str, str, str] | None) -> FunctionId | None:
        """Function id a resolved symbol calls into (ctor -> __init__)."""
        if resolved is None:
            return None
        kind, mod, sym = resolved
        if kind == "function":
            return f"{mod}:{sym}"
        if kind == "class":
            return self._class_method_id(mod, sym, "__init__")
        return None

    def _callees(self, fid: FunctionId) -> set[FunctionId]:
        located = self.function_node(fid)
        if located is None:
            return set()
        info, cls, fn = located
        edges: set[FunctionId] = set()
        # locals assigned from resolvable constructors: v = Cls(...)
        var_types: dict[str, tuple[str, str]] = {}
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            ctor = self._resolve_call_target(info, node.value)
            if ctor is None or ctor[0] != "class":
                continue
            for t in node.targets:
                if isinstance(t, ast.Name):
                    var_types[t.id] = (ctor[1], ctor[2])
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                cid = self._callable_id(self.resolve_symbol(info.name, func.id))
                if cid is not None:
                    edges.add(cid)
            elif isinstance(func, ast.Attribute):
                recv = func.value
                if isinstance(recv, ast.Name):
                    if recv.id == "self" and cls is not None:
                        mid = self._class_method_id(info.name, cls.name, func.attr)
                        if mid is not None:
                            edges.add(mid)
                        continue
                    if recv.id in var_types:
                        mod, c = var_types[recv.id]
                        mid = self._class_method_id(mod, c, func.attr)
                        if mid is not None:
                            edges.add(mid)
                        continue
                    cid = self._callable_id(
                        self.resolve_attr(info.name, recv.id, func.attr)
                    )
                    if cid is not None:
                        edges.add(cid)
                elif isinstance(recv, ast.Call):
                    # direct Cls(...).m() chain
                    ctor = self._resolve_call_target(info, recv)
                    if ctor is not None and ctor[0] == "class":
                        init = self._class_method_id(ctor[1], ctor[2], "__init__")
                        if init is not None:
                            edges.add(init)
                        mid = self._class_method_id(ctor[1], ctor[2], func.attr)
                        if mid is not None:
                            edges.add(mid)
        return edges

    def _resolve_call_target(
        self, info: ModuleInfo, call: ast.Call
    ) -> tuple[str, str, str] | None:
        func = call.func
        if isinstance(func, ast.Name):
            return self.resolve_symbol(info.name, func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            return self.resolve_attr(info.name, func.value.id, func.attr)
        return None

    def reachable_from(self, entries: list[FunctionId]) -> set[FunctionId]:
        graph = self.call_graph()
        seen: set[FunctionId] = set()
        frontier = [e for e in entries if e in graph]
        while frontier:
            fid = frontier.pop()
            if fid in seen:
                continue
            seen.add(fid)
            frontier.extend(graph.get(fid, ()))
        return seen

    def rel_path(self, info: ModuleInfo, root: pathlib.Path) -> str:
        try:
            return str(info.path.relative_to(root))
        except ValueError:
            return str(info.path)
