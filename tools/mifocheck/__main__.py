"""CLI for mifocheck: ``python -m tools.mifocheck [options]``.

Exit status is 1 when any unsuppressed, unbaselined finding remains,
0 otherwise.  Stdlib-only — safe to run in CI without installing the
repro package or its dependencies.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .config import REPO_ROOT, default_config
from .passes import RULES, run_passes
from ..lintshared import (
    findings_to_json,
    findings_to_sarif,
    load_baseline,
    render_text,
    save_baseline,
    split_baselined,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.mifocheck",
        description="Whole-program static analysis (MC101-MC104) over src/repro.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="repository root containing src/ and tools/ (default: this repo)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help="baseline file of grandfathered findings to subtract",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        help="write current findings as a new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule codes and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}: {RULES[code]}")
        return 0

    select: set[str] | None = None
    if args.select:
        select = {c.strip() for c in args.select.split(",") if c.strip()}
        unknown = select - set(RULES)
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}")

    cfg = default_config(args.root.resolve())
    start = time.perf_counter()  # mifolint: disable=MF004 (tools cannot import repro.telemetry)
    pairs, _program = run_passes(cfg, select=select)
    runtime = time.perf_counter() - start  # mifolint: disable=MF004 (tools cannot import repro.telemetry)

    if args.write_baseline is not None:
        save_baseline(args.write_baseline, pairs, tool="mifocheck")
        print(
            f"mifocheck: baselined {len(pairs)} finding(s) -> {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    baseline = load_baseline(args.baseline) if args.baseline else {}
    fresh, grandfathered = split_baselined(pairs, baseline)

    if args.format == "json":
        report = findings_to_json(
            fresh,
            tool="mifocheck",
            runtime_s=runtime,
            extra={"baselined": len(grandfathered)},
        )
    elif args.format == "sarif":
        report = findings_to_sarif(fresh, tool="mifocheck", rules=RULES)
    else:
        report = render_text(fresh)
        if report:
            report += "\n"

    if args.output is not None:
        args.output.write_text(report, encoding="utf-8")
    elif report:
        sys.stdout.write(report)

    note = f"mifocheck: {len(fresh)} finding(s) in {runtime:.2f}s"
    if grandfathered:
        note += f" ({len(grandfathered)} baselined)"
    print(note, file=sys.stderr)
    return 1 if fresh else 0


if __name__ == "__main__":
    raise SystemExit(main())
