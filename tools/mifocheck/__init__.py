"""mifocheck — whole-program static analysis for the repro package.

Where :mod:`tools.mifolint` lints one file at a time, mifocheck parses
all of ``src/repro`` into a single program model (module table, per-class
instance-attribute inventory, conservative call graph) and runs
whole-program passes against it:

* **MC101** checkpoint completeness — every instance attribute of the
  session/solver/scenario classes is captured, declared derivable, or
  flagged;
* **MC102** fork-boundary determinism — worker-emitted telemetry is
  covered by the snapshot merge algebra and results merge in
  deterministic order;
* **MC103** stream purity — ``EventStream.event_at`` reads only
  ``(seed, index)``-derived state;
* **MC104** protected-field inference — mifolint's MF003 field sets are
  derived from source, cross-checked, never hand-maintained.

Run ``python -m tools.mifocheck`` (stdlib-only; never imports repro).
"""

from __future__ import annotations

from .config import AnalysisConfig, default_config
from .passes import RULES, run_passes
from .program import Program
from ..lintshared import Finding

__all__ = [
    "AnalysisConfig",
    "Finding",
    "Program",
    "RULES",
    "default_config",
    "run_passes",
]
