"""CLI: ``python -m tools.mifolint [paths...]``."""

from __future__ import annotations

import argparse
import sys

from .core import RULES, lint_paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mifolint",
        description="MIFO repo-specific AST lint rules (MF001-MF005)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"], help="files or directories"
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to enforce (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, desc in sorted(RULES.items()):
            print(f"{code}  {desc}")
        return 0

    select = None
    if args.select:
        select = frozenset(c.strip() for c in args.select.split(",") if c.strip())
        unknown = select - RULES.keys()
        if unknown:
            print(f"unknown rule code(s): {sorted(unknown)}", file=sys.stderr)
            return 2

    violations = lint_paths(args.paths, select=select)
    for v in violations:
        print(v.render())
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
