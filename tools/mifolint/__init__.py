"""mifolint — custom AST lint rules for the MIFO reproduction.

Rules the generic linters can't express (see :mod:`tools.mifolint.core`):

* ``MF001`` — no unseeded ``random`` / ``numpy.random`` in library code;
* ``MF002`` — no iteration over unordered sets in routing hot paths;
* ``MF003`` — no mutation of a frozen ``ASGraph`` or of the CSR arrays
  shared by forked ``ParallelRoutingEngine`` workers;
* ``MF004`` — no direct ``time.time()`` / ``perf_counter()`` clock reads
  in library code outside ``repro.telemetry`` (use spans or ``Stopwatch``).

Run as ``python -m tools.mifolint src tests`` (exit code 1 on findings).
"""

from .core import RULES, Violation, lint_file, lint_paths, lint_source

__all__ = ["RULES", "Violation", "lint_file", "lint_paths", "lint_source"]
