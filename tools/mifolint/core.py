"""The lint rules and the single-pass AST visitor that applies them.

Three rules, each encoding a repo invariant that generic linters cannot
express because it depends on *this* codebase's semantics:

``MF001`` — **no unseeded randomness in library code.**  Every result in
``src/repro`` must be reproducible from explicit seeds.  Module-level
``random.*`` functions draw from interpreter-global state;
``numpy.random.*`` legacy functions draw from numpy-global state; and a
bare ``default_rng()`` seeds from the OS.  All are flagged; constructing
a seeded generator (``random.Random(seed)``, ``default_rng(seed)``) is
the approved pattern.  Applies to library paths only — tests may use
whatever their fixtures seed.

``MF002`` — **no iteration over unordered sets in determinism-critical
hot paths** (``repro.bgp``, ``repro.mifo``, ``repro.topology``,
``repro.flowsim``).  Set iteration order depends on insertion history
and hash seeding; routing code that iterates a set can silently break
the determinism the byte-identical cross-backend guarantee rests on, and
in the fluid solver the iteration order decides float accumulation order
— the incremental-vs-full bitwise contract.  Iterate ``sorted(the_set)``
instead.  (Dict/dict-view iteration is fine: insertion-ordered by
construction.)

``MF003`` — **no mutation of a frozen ASGraph, of shared CSR arrays, or
of the incremental solver's slab state.**  Outside ``repro.topology``
every ``ASGraph`` is frozen by contract, so calling its mutators is at
best a latent ``TopologyError`` and at worst state corruption; the
:class:`~repro.topology.asgraph.CsrAdjacency` arrays are shared
read-only across all destinations *and across forked parallel-engine
workers* (copy-on-write), so writing to them corrupts every concurrent
reader.  Likewise the :class:`~repro.flowsim.incremental.IncrementalMaxMin`
slab/extent/multiplicity arrays persist across simulator events; only
``repro.flowsim.incremental`` itself may store into them.  And the
scenario engine / service session fields the service checkpoint
serializes (``_flows``, ``_congested``, ``_tick``, the stream cursor,
...) are restore-critical state: a store from outside the owning class
desynchronizes the live process from what :mod:`repro.service.checkpoint`
would capture, silently breaking the restore-replays-byte-identically
guarantee — only ``repro.service`` (the restore path) may write them
from outside.  Flags mutator calls outside ``repro.topology`` and any
store into a CSR field, a graph-private structure, a solver slab field,
or a checkpointed service-state field.

``MF004`` — **no ad-hoc clocks in library code.**  Every timing in
``src/repro`` must flow through ``repro.telemetry`` (spans for phase
timing, :class:`~repro.telemetry.Stopwatch` for ad-hoc elapsed time) so
the zero-overhead guarantee is auditable and all measurements share one
clock discipline.  Direct ``time.time()`` / ``time.perf_counter()`` /
``time.monotonic()`` (and their ``_ns`` / ``process_time`` variants)
calls are flagged everywhere in the library except inside
``repro.telemetry`` itself.  ``time.sleep()`` is not a clock read and is
not flagged.

``MF005`` — **every public class and function in library code carries a
docstring.**  ``src/repro`` is grown across many sessions by authors with
no shared memory; the docstring is the only durable statement of intent a
public surface gets.  Names with a leading underscore (which covers
dunders), ``@overload`` stubs, property ``setter``/``deleter``/``getter``
companions, ellipsis/``pass`` stub bodies (Protocol members, abstract
declarations), and functions nested inside other functions are exempt.

Suppression: append ``# mifolint: disable=MF00X`` (or ``# noqa: MF00X``)
to the offending line.

The MF003 protection sets (CSR arrays, solver slab, checkpointed service
state) are **derived from source** by :mod:`tools.mifocheck.derive` —
from the checkpoint writer's reads/writes, the solver's ``slab-state``
markers, and the CSR dataclass annotations — never hand-maintained here.
mifocheck's MC104 pass cross-checks the derivations; growing the state
updates the lint automatically.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from collections.abc import Iterable, Sequence

from ..lintshared import DISABLE_RE as _DISABLE_RE
from ..lintshared import Finding as Violation
from ..lintshared import suppressed as _suppressed
from ..mifocheck.derive import (
    checkpointed_state_fields,
    csr_array_fields,
    slab_state_fields,
)

__all__ = [
    "PathPolicy",
    "RULES",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: rule code -> one-line description (also shown by ``--list-rules``).
RULES: dict[str, str] = {
    "MF001": "unseeded random/numpy.random in library code breaks reproducibility",
    "MF002": "iteration over an unordered set in a determinism-critical hot path",
    "MF003": "mutation of a frozen ASGraph, shared CSR arrays, solver slab state, "
    "or checkpointed service state",
    "MF004": "direct time.time()/perf_counter() in library code; use repro.telemetry",
    "MF005": "public class/function in library code without a docstring",
}

#: clock-reading functions of the stdlib ``time`` module (MF004).
TIMER_FUNCS: frozenset[str] = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: routing hot paths for MF002 (module path fragments, POSIX style).
#: ``repro/flowsim`` joined when the incremental solver landed: flow and
#: link iteration order there decides float accumulation order, which the
#: byte-identical incremental-vs-full solver contract depends on.
#: ``repro/scenario`` and ``repro/service`` joined with the streaming
#: service: the per-event loop and the checkpoint serializer must emit
#: deterministic orderings or restore-replay byte-identity breaks.
#: ``repro/measure`` joined with the measurement subsystem: detectors
#: are pure functions of their pushed series and the RTT observable is
#: seeded, so any unordered iteration there breaks the cross-backend
#: bitwise-identity contract on traces and checkpoints.
HOT_PATHS: tuple[str, ...] = (
    "repro/bgp/",
    "repro/mifo/",
    "repro/topology/",
    "repro/flowsim/",
    "repro/scenario/",
    "repro/service/",
    "repro/measure/",
)

#: ASGraph mutator methods (MF003a) — only repro.topology may call these.
GRAPH_MUTATORS: frozenset[str] = frozenset(
    {"add_as", "add_p2c", "add_peering", "_add_link"}
)

#: CsrAdjacency array fields (MF003b) — never assignment targets, anywhere.
#: Derived from the ``np.ndarray``-annotated fields of the CSR dataclass.
CSR_FIELDS: frozenset[str] = csr_array_fields()

#: ASGraph internal structures (MF003b) — writable only through ``self``.
GRAPH_PRIVATES: frozenset[str] = frozenset(
    {"_nbr", "_customers", "_providers", "_peers", "_links", "_csr", "_frozen"}
)

#: IncrementalMaxMin slab bookkeeping (MF003c) — the column slab, extent
#: and multiplicity arrays encode the live link×path incidence; a write
#: from anywhere but ``repro/flowsim/incremental.py`` silently corrupts
#: every later allocation (the solver reuses them across events).
#: Derived from the ``# mifocheck: slab-state`` markers in the solver.
SLAB_FIELDS: frozenset[str] = slab_state_fields()

#: Checkpointed service state (MF003d) — every field the service
#: checkpoint serializes (scenario-engine data plane, flow table, session
#: stream cursor).  A store from outside the owning class (``self``)
#: desynchronizes the live process from its checkpoint; only
#: ``repro.service`` — the restore path — may write them externally.
#: Derived from the checkpoint writer: the union of what ``capture``
#: reads and what the restore functions write.
SERVICE_STATE_FIELDS: frozenset[str] = checkpointed_state_fields()

# Violation, _DISABLE_RE, and _suppressed come from tools.lintshared,
# shared with mifocheck so suppressions and rendering behave identically
# across both analyzers (this also makes "# mifocheck: disable=..."
# spellings work for MF rules and vice versa).


@dataclasses.dataclass(frozen=True, slots=True)
class PathPolicy:
    """Which rule families apply to a file, decided from its path.

    ``library`` gates MF001/MF003a/MF004 (reproducibility + frozen-state
    + clock discipline), ``hot`` gates MF002 (set-iteration order), and
    ``docstrings`` gates MF005 separately so the repo's own tooling
    (``tools/``, ``benchmarks/``) can be held to the determinism rules
    without requiring a docstring on every helper.  The ``allow_*``
    flags name the single module that legitimately owns each protected
    mechanism.  MF003 store checks apply everywhere regardless.
    """

    library: bool
    hot: bool
    docstrings: bool
    allow_mutators: bool = False
    allow_timers: bool = False
    allow_slab: bool = False
    allow_service: bool = False


class _Visitor(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        source_lines: Sequence[str],
        *,
        library: bool,
        hot: bool,
        docstrings: bool,
        allow_mutators: bool = False,
        allow_timers: bool = False,
        allow_slab: bool = False,
        allow_service: bool = False,
    ) -> None:
        self.path = path
        self.source_lines = source_lines
        self.library = library  #: MF001 + MF003a + MF004 apply
        self.hot = hot  #: routing hot path — MF002 applies
        self.docstrings = docstrings  #: MF005 applies
        #: repro.topology builds graphs, so mutator calls are legitimate there
        self.allow_mutators = allow_mutators
        #: repro.telemetry owns the clocks, so raw time.* reads are fine there
        self.allow_timers = allow_timers
        #: repro.flowsim.incremental owns the slab, so its stores are fine
        self.allow_slab = allow_slab
        #: repro.service owns checkpoint restore, so its state stores are fine
        self.allow_service = allow_service
        self.violations: list[Violation] = []
        #: names bound to the stdlib ``random`` module
        self.random_aliases: set[str] = set()
        #: names bound to the ``numpy`` module
        self.numpy_aliases: set[str] = set()
        #: names bound to ``numpy.random`` itself
        self.nprandom_aliases: set[str] = set()
        #: name -> member imported from stdlib ``random``
        self.random_members: dict[str, str] = {}
        #: name -> member imported from ``numpy.random``
        self.nprandom_members: dict[str, str] = {}
        #: names bound to the stdlib ``time`` module
        self.time_aliases: set[str] = set()
        #: name -> member imported from stdlib ``time``
        self.time_members: dict[str, str] = {}
        #: current function nesting depth (MF005 skips nested functions)
        self._func_depth = 0

    # ------------------------------------------------------------------
    # import tracking (MF001)
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name in ("numpy", "numpy.random"):
                # ``import numpy.random as npr`` binds numpy.random itself.
                if alias.asname and alias.name == "numpy.random":
                    self.nprandom_aliases.add(bound)
                else:
                    self.numpy_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self.random_members[alias.asname or alias.name] = alias.name
        elif node.module == "time":
            for alias in node.names:
                self.time_members[alias.asname or alias.name] = alias.name
        elif node.module == "numpy.random":
            for alias in node.names:
                self.nprandom_members[alias.asname or alias.name] = alias.name
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.nprandom_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # calls: MF001 + MF003a
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self.library:
            self._check_random_call(node)
            self._check_mutator_call(node)
            self._check_timer_call(node)
        self.generic_visit(node)

    def _check_timer_call(self, node: ast.Call) -> None:
        if self.allow_timers:
            return
        func = node.func
        # time.<fn>(...) on a stdlib-time alias
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.time_aliases
            and func.attr in TIMER_FUNCS
        ):
            self._add(
                node, "MF004",
                f"direct time.{func.attr}() call; use a repro.telemetry span "
                f"(phase timing) or telemetry.Stopwatch (ad-hoc elapsed time)",
            )
            return
        # from time import <fn>; <fn>(...)
        if isinstance(func, ast.Name) and func.id in self.time_members:
            member = self.time_members[func.id]
            if member in TIMER_FUNCS:
                self._add(
                    node, "MF004",
                    f"direct time.{member}() call; use a repro.telemetry span "
                    f"(phase timing) or telemetry.Stopwatch (ad-hoc elapsed time)",
                )

    def _check_random_call(self, node: ast.Call) -> None:
        func = node.func
        seeded = bool(node.args or node.keywords)
        # random.<fn>(...) / rnd.<fn>(...) on a stdlib-random alias
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.random_aliases
        ):
            if func.attr == "Random" and seeded:
                return
            self._add(node, "MF001", f"call to random.{func.attr}() uses global or "
                      f"OS-seeded state; construct random.Random(seed) instead")
            return
        # from random import <fn>; <fn>(...)
        if isinstance(func, ast.Name) and func.id in self.random_members:
            member = self.random_members[func.id]
            if member == "Random" and seeded:
                return
            self._add(node, "MF001", f"call to random.{member}() uses global or "
                      f"OS-seeded state; construct random.Random(seed) instead")
            return
        # np.random.<fn>(...) / npr.<fn>(...)
        attr_chain = self._nprandom_attr(func)
        if attr_chain is not None:
            if attr_chain in ("default_rng", "Generator", "SeedSequence") and seeded:
                return
            self._add(node, "MF001", f"call to numpy.random.{attr_chain}() draws "
                      f"global or OS-seeded state; use default_rng(seed)")
            return
        # from numpy.random import default_rng; default_rng(...)
        if isinstance(func, ast.Name) and func.id in self.nprandom_members:
            member = self.nprandom_members[func.id]
            if member in ("default_rng", "Generator", "SeedSequence") and seeded:
                return
            self._add(node, "MF001", f"call to numpy.random.{member}() draws "
                      f"global or OS-seeded state; use default_rng(seed)")

    def _nprandom_attr(self, func: ast.expr) -> str | None:
        """``np.random.X`` or ``npr.X`` -> ``"X"``; anything else -> None."""
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        if isinstance(value, ast.Name) and value.id in self.nprandom_aliases:
            return func.attr
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in self.numpy_aliases
        ):
            return func.attr
        return None

    def _check_mutator_call(self, node: ast.Call) -> None:
        if self.allow_mutators:
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in GRAPH_MUTATORS
            and not self._is_self_call(func)
        ):
            self._add(
                node, "MF003",
                f"call to ASGraph.{func.attr}() outside repro.topology — graphs "
                f"are frozen by contract once routing code sees them",
            )

    @staticmethod
    def _is_self_call(func: ast.Attribute) -> bool:
        return isinstance(func.value, ast.Name) and func.value.id in ("self", "cls")

    # ------------------------------------------------------------------
    # iteration: MF002
    # ------------------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self.hot:
            self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.expr) -> None:
        if self.hot:
            for gen in getattr(node, "generators", ()):
                self._check_set_iteration(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _check_set_iteration(self, it: ast.expr) -> None:
        if self._is_set_expr(it):
            self._add(
                it, "MF002",
                "iteration over an unordered set in a routing hot path; iterate "
                "sorted(...) (or an insertion-ordered dict) for determinism",
            )

    def _is_set_expr(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")
        ):
            return True
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # ``a.keys() | b.keys()`` and friends produce sets; flag when
            # either side is set-ish or a dict-view call.
            return any(
                self._is_set_expr(side) or self._is_keys_call(side)
                for side in (expr.left, expr.right)
            )
        return False

    @staticmethod
    def _is_keys_call(expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "keys"
        )

    # ------------------------------------------------------------------
    # docstrings: MF005
    # ------------------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if (
            self.docstrings
            and self._func_depth == 0
            and not node.name.startswith("_")
            and ast.get_docstring(node) is None
        ):
            self._add(
                node, "MF005",
                f"public class {node.name!r} has no docstring",
            )
        self.generic_visit(node)

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if (
            self.docstrings
            and self._func_depth == 0
            and not node.name.startswith("_")
            and ast.get_docstring(node) is None
            and not self._docstring_exempt(node)
        ):
            self._add(
                node, "MF005",
                f"public function {node.name!r} has no docstring",
            )
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    @staticmethod
    def _docstring_exempt(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """Overload stubs, property companions, and stub bodies need no
        docstring of their own — the canonical definition carries it."""
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if isinstance(target, ast.Name) and target.id == "overload":
                return True
            if isinstance(target, ast.Attribute) and target.attr in (
                "overload",
                "setter",
                "deleter",
                "getter",
            ):
                return True
        body = node.body
        if len(body) == 1:
            only = body[0]
            if isinstance(only, ast.Pass):
                return True
            if (
                isinstance(only, ast.Expr)
                and isinstance(only.value, ast.Constant)
                and only.value.value is Ellipsis
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # stores: MF003b
    # ------------------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store(target)
        self.generic_visit(node)

    def _check_store(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt)
            return
        if isinstance(target, ast.Attribute):
            if target.attr in CSR_FIELDS:
                self._add(
                    target, "MF003",
                    f"assignment to CSR field .{target.attr} — these arrays are "
                    f"shared read-only across destinations and forked workers",
                )
            elif target.attr in GRAPH_PRIVATES and not self._is_self_call(target):
                self._add(
                    target, "MF003",
                    f"assignment to ASGraph internal .{target.attr} from outside "
                    f"the class bypasses the freeze() contract",
                )
            elif target.attr in SLAB_FIELDS and not self.allow_slab:
                self._add(
                    target, "MF003",
                    f"assignment to solver slab field .{target.attr} — only "
                    f"repro.flowsim.incremental may mutate the pooled "
                    f"incidence state it reuses across events",
                )
            elif (
                target.attr in SERVICE_STATE_FIELDS
                and not self.allow_service
                and not self._is_self_call(target)
            ):
                self._add(
                    target, "MF003",
                    f"assignment to checkpointed service state .{target.attr} "
                    f"from outside the owning class — only the repro.service "
                    f"restore path may write it, or checkpoint/replay "
                    f"byte-identity silently breaks",
                )
        elif isinstance(target, ast.Subscript):
            value = target.value
            if isinstance(value, ast.Attribute) and value.attr in CSR_FIELDS:
                self._add(
                    target, "MF003",
                    f"element store into CSR array .{value.attr} — these arrays "
                    f"are shared read-only across destinations and forked workers",
                )
            elif (
                isinstance(value, ast.Attribute)
                and value.attr in SLAB_FIELDS
                and not self.allow_slab
            ):
                self._add(
                    target, "MF003",
                    f"element store into solver slab array .{value.attr} — only "
                    f"repro.flowsim.incremental may mutate the pooled "
                    f"incidence state it reuses across events",
                )
            elif (
                isinstance(value, ast.Attribute)
                and value.attr in SERVICE_STATE_FIELDS
                and not self.allow_service
                and not self._is_self_call(value)
            ):
                self._add(
                    target, "MF003",
                    f"element store into checkpointed service state "
                    f".{value.attr} from outside the owning class — only the "
                    f"repro.service restore path may write it, or "
                    f"checkpoint/replay byte-identity silently breaks",
                )

    # ------------------------------------------------------------------
    def _add(self, node: ast.expr | ast.stmt, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if _suppressed(self.source_lines, line, code):
            return
        self.violations.append(
            Violation(
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )


def _classify(path: pathlib.Path) -> PathPolicy:
    """Decide which rule families apply to ``path``.

    ``src/`` library code gets everything; the repo's own tooling
    (``tools/``, ``benchmarks/``) is held to the determinism and clock
    rules (MF001/MF004 and the always-on MF003 stores) but not MF005
    docstrings and not the hot-path set-iteration rule; tests get only
    the always-on MF003 store checks.
    """
    posix = path.as_posix()
    library = "/src/" in f"/{posix}" or posix.startswith("src/")
    if library:
        return PathPolicy(
            library=True,
            hot=any(fragment in posix for fragment in HOT_PATHS),
            docstrings=True,
            allow_mutators="repro/topology/" in posix,
            allow_timers="repro/telemetry/" in posix,
            allow_slab="repro/flowsim/incremental" in posix,
            allow_service="repro/service/" in posix,
        )
    tooling = any(
        f"/{posix}".startswith(f"/{prefix}") or f"/{prefix}" in f"/{posix}"
        for prefix in ("tools/", "benchmarks/")
    )
    return PathPolicy(library=tooling, hot=False, docstrings=False)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    library: bool = True,
    hot: bool = True,
    docstrings: bool | None = None,
    allow_mutators: bool = False,
    allow_timers: bool = False,
    allow_slab: bool = False,
    allow_service: bool = False,
) -> list[Violation]:
    """Lint one source string (the unit-test entry point).

    ``docstrings`` defaults to ``library`` — src-style code must document
    its public surface unless told otherwise.
    """
    tree = ast.parse(source, filename=path)
    visitor = _Visitor(
        path,
        source.splitlines(),
        library=library,
        hot=hot,
        docstrings=library if docstrings is None else docstrings,
        allow_mutators=allow_mutators,
        allow_timers=allow_timers,
        allow_slab=allow_slab,
        allow_service=allow_service,
    )
    visitor.visit(tree)
    return sorted(visitor.violations, key=lambda v: (v.line, v.col, v.code))


def lint_file(path: pathlib.Path) -> list[Violation]:
    policy = _classify(path)
    return lint_source(
        path.read_text(encoding="utf-8"),
        str(path),
        library=policy.library,
        hot=policy.hot,
        docstrings=policy.docstrings,
        allow_mutators=policy.allow_mutators,
        allow_timers=policy.allow_timers,
        allow_slab=policy.allow_slab,
        allow_service=policy.allow_service,
    )


def lint_paths(
    paths: Iterable[str | pathlib.Path],
    *,
    select: frozenset[str] | None = None,
) -> list[Violation]:
    """Lint every ``.py`` file under the given files/directories."""
    files: list[pathlib.Path] = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    violations: list[Violation] = []
    for f in files:
        found = lint_file(f)
        if select is not None:
            found = [v for v in found if v.code in select]
        violations.extend(found)
    return violations
