"""Infrastructure shared by the repo's static analyzers.

:mod:`tools.mifolint` (single-pass, per-file rules MF001–MF005) and
:mod:`tools.mifocheck` (whole-program passes MC101–MC104) report through
the same primitives so a finding looks and suppresses identically no
matter which tool produced it:

* :class:`Finding` — one rule violation at a concrete source location,
  with the canonical ``path:line:col: CODE message`` rendering;
* :func:`suppressed` — the per-line suppression test.  All three comment
  spellings are interchangeable and cross-tool compatible::

      # mifolint: disable=MF003
      # mifocheck: disable=MC101 — reason is free text after the codes
      # noqa: MF004,MC103

* baseline files — grandfathered findings keyed by a content fingerprint
  (rule code + path + the stripped source line), so baselined findings
  survive unrelated line-number drift but resurface when the offending
  line itself changes;
* machine output — :func:`findings_to_json` and :func:`findings_to_sarif`
  for CI artifacts.

Everything here is stdlib-only on purpose: the lint CI jobs run without
installing the ``repro`` package or its numpy/scipy dependencies.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import re
from collections.abc import Iterable, Sequence

__all__ = [
    "DISABLE_RE",
    "Finding",
    "findings_to_json",
    "findings_to_sarif",
    "fingerprint",
    "load_baseline",
    "render_text",
    "save_baseline",
    "split_baselined",
    "suppressed",
]

#: one regex accepts every suppression spelling; free text (a reason) may
#: follow the code list and is ignored by the match.
DISABLE_RE = re.compile(
    r"#\s*(?:(?:mifolint|mifocheck):\s*disable=|noqa:\s*)([A-Z0-9, ]+)"
)


@dataclasses.dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a concrete source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def suppressed(source_lines: Sequence[str], line: int, code: str) -> bool:
    """Whether ``code`` is suppressed on 1-indexed ``line`` of the file."""
    if not 1 <= line <= len(source_lines):
        return False
    m = DISABLE_RE.search(source_lines[line - 1])
    return bool(m) and code in {c.strip() for c in m.group(1).split(",")}


# ----------------------------------------------------------------------
# baseline files
# ----------------------------------------------------------------------


def fingerprint(finding: Finding, line_text: str) -> str:
    """Content-addressed identity of a finding for baseline matching.

    Deliberately excludes the line *number* (pure drift must not
    resurface a grandfathered finding) but includes the stripped line
    *text* (editing the offending line does resurface it).
    """
    key = f"{finding.code}::{pathlib.PurePosixPath(finding.path).name}::{line_text.strip()}"
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: str | pathlib.Path) -> dict[str, dict[str, object]]:
    """``fingerprint -> entry`` from a baseline file (empty if absent)."""
    p = pathlib.Path(path)
    if not p.exists():
        return {}
    data = json.loads(p.read_text(encoding="utf-8"))
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"malformed baseline file {p}: 'entries' is not a dict")
    return entries


def save_baseline(
    path: str | pathlib.Path,
    findings: Iterable[tuple[Finding, str]],
    *,
    tool: str,
) -> None:
    """Write ``(finding, line_text)`` pairs as a baseline file."""
    entries = {
        fingerprint(f, text): {
            "code": f.code,
            "path": f.path,
            "message": f.message,
        }
        for f, text in findings
    }
    doc = {"tool": tool, "version": 1, "entries": entries}
    pathlib.Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def split_baselined(
    findings: Iterable[tuple[Finding, str]],
    baseline: dict[str, dict[str, object]],
) -> tuple[list[Finding], list[Finding]]:
    """Partition into (new, grandfathered) against a loaded baseline."""
    new: list[Finding] = []
    old: list[Finding] = []
    for f, text in findings:
        (old if fingerprint(f, text) in baseline else new).append(f)
    return new, old


# ----------------------------------------------------------------------
# machine-readable output
# ----------------------------------------------------------------------


def render_text(findings: Iterable[Finding]) -> str:
    """One rendered finding per line (the human/CI-log format)."""
    return "\n".join(f.render() for f in findings)


def findings_to_json(
    findings: Sequence[Finding],
    *,
    tool: str,
    runtime_s: float | None = None,
    extra: dict[str, object] | None = None,
) -> str:
    """The CI-artifact JSON document (sorted keys, stable ordering)."""
    by_code: dict[str, int] = {}
    for f in findings:
        by_code[f.code] = by_code.get(f.code, 0) + 1
    doc: dict[str, object] = {
        "tool": tool,
        "version": 1,
        "findings": [dataclasses.asdict(f) for f in findings],
        "summary": {"total": len(findings), "by_code": dict(sorted(by_code.items()))},
    }
    if runtime_s is not None:
        doc["runtime_s"] = round(runtime_s, 4)
    if extra:
        doc.update(extra)
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def findings_to_sarif(
    findings: Sequence[Finding],
    *,
    tool: str,
    rules: dict[str, str],
) -> str:
    """A minimal SARIF 2.1.0 log (one run, one result per finding)."""
    sarif = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool,
                        "rules": [
                            {"id": code, "shortDescription": {"text": desc}}
                            for code, desc in sorted(rules.items())
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": f.code,
                        "level": "error",
                        "message": {"text": f.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": pathlib.PurePosixPath(f.path).as_posix()
                                    },
                                    "region": {
                                        "startLine": f.line,
                                        "startColumn": max(1, f.col),
                                    },
                                }
                            }
                        ],
                    }
                    for f in findings
                ],
            }
        ],
    }
    return json.dumps(sarif, indent=2, sort_keys=True) + "\n"
