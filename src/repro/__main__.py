"""``python -m repro`` — see :mod:`repro.cli`."""

from .cli import main

raise SystemExit(main())
