"""Plain-text rendering of experiment results (tables + ASCII series).

Every experiment's ``render()`` goes through these helpers so the bench
output visually matches the paper's tables and figures without a plotting
dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["text_table", "ascii_series", "percent"]


def percent(x: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * x:.{digits}f}%"


def text_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_series(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render one or more (x, y) series as a character plot.

    Each series gets a marker letter; collisions show the later series.
    Crude but sufficient to see CDFs cross and curves dominate.
    """
    pts = [(x, y) for s in series.values() for (x, y) in s]
    if not pts:
        return title or "(empty plot)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ABCDEFGH"
    legend = []
    for idx, (name, s) in enumerate(series.items()):
        m = markers[idx % len(markers)]
        legend.append(f"{m}={name}")
        for x, y in s:
            cx = int((x - x0) / (x1 - x0) * (width - 1))
            cy = int((y - y0) / (y1 - y0) * (height - 1))
            grid[height - 1 - cy][cx] = m
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel} [{y0:.3g} .. {y1:.3g}]   " + "  ".join(legend))
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel} [{x0:.3g} .. {x1:.3g}]")
    return "\n".join(lines)
