"""Experiment harness (system S10 in DESIGN.md) — one module per paper
artifact, each exposing the unified entry point
``run(scale, *, backend="dict", workers=1, **extras) -> ExperimentResult``
(see :mod:`repro.experiments.result`); ``result.render()`` produces the
human-readable report, ``result.to_json()`` the machine-readable one.

Registry keys match the DESIGN.md experiment index: ``table1``, ``fig5``,
``fig6``, ``fig7``, ``fig8``, ``fig9``, ``fig12``.
"""

from . import (
    export,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig12,
    overhead,
    ribstudy,
    scenario,
    service,
    table1,
)
from .common import SCALES, ExperimentScale, SharedContext, deployment_sample, get_scale
from .result import ExperimentResult

#: name -> module with a ``run(scale)`` entry point.
REGISTRY = {
    "table1": table1,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig12": fig12,
    "ribstudy": ribstudy,
    "overhead": overhead,
    "scenario": scenario,
    "service": service,
}

__all__ = [
    "REGISTRY",
    "SCALES",
    "ExperimentResult",
    "ExperimentScale",
    "SharedContext",
    "deployment_sample",
    "get_scale",
    "table1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig12",
    "ribstudy",
    "overhead",
    "scenario",
    "service",
    "export",
]
