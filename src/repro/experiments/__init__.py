"""Experiment harness (system S10 in DESIGN.md) — one module per paper
artifact, each exposing ``run(scale) -> result`` with ``result.render()``.

Registry keys match the DESIGN.md experiment index: ``table1``, ``fig5``,
``fig6``, ``fig7``, ``fig8``, ``fig9``, ``fig12``.
"""

from . import export, fig5, fig6, fig7, fig8, fig9, fig12, overhead, ribstudy, table1
from .common import SCALES, ExperimentScale, SharedContext, deployment_sample, get_scale

#: name -> module with a ``run(scale)`` entry point.
REGISTRY = {
    "table1": table1,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig12": fig12,
    "ribstudy": ribstudy,
    "overhead": overhead,
}

__all__ = [
    "REGISTRY",
    "SCALES",
    "ExperimentScale",
    "SharedContext",
    "deployment_sample",
    "get_scale",
    "table1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig12",
    "ribstudy",
    "overhead",
    "export",
]
