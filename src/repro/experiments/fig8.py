"""Figure 8 — traffic offloaded to alternative paths vs MIFO deployment.

The paper counts flows transferred on alternative paths over total flows,
for deployment 10%..100%: ~50% of flows ride alternatives at full
deployment, and even 10% deployment offloads ~9% of traffic.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from .. import telemetry as tm
from ..flowsim.simulator import FluidSimResult
from ..traffic.matrix import TrafficConfig, uniform_matrix
from .common import (
    SharedContext,
    deployment_sample,
    get_scale,
    instrumented_run,
    provenance_meta,
    run_scheme,
)
from .report import ascii_series, percent, text_table
from .result import ExperimentResult, freeze_series

__all__ = ["Fig8Result", "run"]

DEPLOYMENTS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclasses.dataclass
class Fig8Result:
    """Paper Fig. 8: traffic offloaded to alternative paths."""
    scale_name: str
    #: deployment ratio -> fluid result (MIFO)
    results: dict[float, FluidSimResult]

    def offload(self, deployment: float) -> float:
        """Fraction of traffic on alternatives at ``deployment``."""
        return self.results[deployment].fraction_on_alternative()

    def rows(self) -> list[list[object]]:
        """Table rows: one per deployment ratio."""
        return [
            [f"{dep:.0%}", percent(self.offload(dep))]
            for dep in sorted(self.results)
        ]

    def render(self) -> str:
        """Human-readable report table."""
        table = text_table(
            ["MIFO deployment", "Traffic on alternative paths"],
            self.rows(),
            title=f"Figure 8: Traffic offload vs deployment (scale={self.scale_name})",
        )
        series = {
            "offload %": [
                (dep * 100, self.offload(dep) * 100) for dep in sorted(self.results)
            ]
        }
        return table + "\n\n" + ascii_series(
            series,
            title="Fig 8: % of flows on alternative paths vs deployment %",
            xlabel="% deployed",
            ylabel="% offloaded",
        )


@instrumented_run
def run(
    scale: str = "default",
    *,
    backend: str = "dict",
    workers: int | None = 1,
    deployments: Sequence[float] = DEPLOYMENTS,
    solver: str = "incremental",
) -> ExperimentResult:
    """Reproduce paper Fig. 8 (offload vs deployment)."""
    sc = get_scale(scale)
    ctx = SharedContext.get(sc, backend=backend, workers=workers)
    specs = uniform_matrix(
        ctx.graph,
        TrafficConfig(
            n_flows=sc.n_flows, arrival_rate=sc.arrival_rate, seed=sc.seed + 4
        ),
    )
    results: dict[float, FluidSimResult] = {}
    for dep in deployments:
        capable = deployment_sample(ctx.graph, dep)
        results[dep] = run_scheme(ctx, "MIFO", capable, specs, solver=solver)
    raw = Fig8Result(scale_name=sc.name, results=results)

    with tm.span("metrics.compute"):
        series = {
            "offload %": [
                (dep * 100, raw.offload(dep) * 100) for dep in sorted(results)
            ]
        }
        meta: dict[str, object] = dict(provenance_meta(ctx))
        for dep in sorted(results):
            meta[f"offload[{dep:.0%}]"] = raw.offload(dep)
    return ExperimentResult(
        name="fig8", scale=sc.name, series=freeze_series(series), meta=meta, raw=raw
    )
