"""Shared scaffolding for the per-figure experiment modules.

Every experiment accepts an :class:`ExperimentScale` controlling topology
size and workload volume.  Three presets:

* ``test``  — seconds; used by the integration test suite;
* ``default`` — a laptop-scale run whose *shapes* reproduce the paper
  (minutes; what the benches run);
* ``paper`` — the paper's full magnitudes (44,340 ASes, 10^6 flows);
  provided for completeness, expect hours.

All experiments share one topology and one routing cache per scale+seed so
a bench that regenerates several figures pays for BGP convergence once.
"""

from __future__ import annotations

import dataclasses
import functools
from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from .. import telemetry as tm
from ..bgp.parallel import ParallelRoutingEngine
from ..bgp.propagation import RoutingCache
from ..errors import ConfigError
from ..mifo.deflection import MifoPathBuilder
from ..miro.negotiation import MiroConfig, MiroRouting
from ..flowsim.providers import BgpProvider, MifoProvider, MiroProvider, PathProvider
from ..flowsim.simulator import FluidSimConfig, FluidSimulator
from ..topology.asgraph import ASGraph
from ..topology.generator import TopologyConfig, generate_topology

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..flowsim.flow import FlowSpec
    from ..flowsim.simulator import FluidSimResult
    from ..telemetry.core import EventValue
    from ..verify.report import VerificationReport

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "SharedContext",
    "deployment_sample",
    "instrumented_run",
    "make_provider",
    "provenance_meta",
]


@dataclasses.dataclass(frozen=True)
class ExperimentScale:
    """Size knobs for a whole experiment family."""

    name: str
    n_ases: int
    n_flows: int
    arrival_rate: float  #: flow starts per second (Poisson)
    n_pairs: int  #: sampled AS pairs for the diversity figure
    seed: int = 2014

    def topology_config(self) -> TopologyConfig:
        """The TopologyConfig this scale generates."""
        return TopologyConfig(n_ases=self.n_ases, seed=self.seed)


SCALES: dict[str, ExperimentScale] = {
    "test": ExperimentScale("test", n_ases=300, n_flows=400, arrival_rate=400.0, n_pairs=60),
    # "bench" trades a little statistical smoothness for wall-clock so the
    # full per-figure bench suite finishes in minutes.
    "bench": ExperimentScale(
        "bench", n_ases=1200, n_flows=1200, arrival_rate=1200.0, n_pairs=250
    ),
    "default": ExperimentScale(
        "default", n_ases=2000, n_flows=2500, arrival_rate=1500.0, n_pairs=400
    ),
    # The paper's Section IV magnitudes.  The arrival rate is the paper's
    # 100 flows/s; at 44k ASes that yields the paper's load level.
    "paper": ExperimentScale(
        "paper", n_ases=44_340, n_flows=1_000_000, arrival_rate=100.0, n_pairs=2000
    ),
}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Resolve a scale name (or pass an ExperimentScale through)."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ConfigError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None


class SharedContext:
    """Topology + routing cache shared across figures at one scale.

    Contexts are memoized on the **full** frozen :class:`ExperimentScale`
    plus the routing backend — not just ``(name, seed)``, which silently
    aliased two scales sharing a name but differing in ``n_ases``.

    ``workers`` and ``persistent`` select how the context's
    :class:`~repro.bgp.parallel.ParallelRoutingEngine` parallelizes when
    an experiment bulk-fills the routing cache (see :meth:`precompute`);
    they deliberately do not participate in the memo key because they
    change wall-clock, never results.  A persistent engine owns a worker
    pool and a shared-memory CSR export — the context closes the old
    engine whenever it swaps in a new one, and :meth:`close` /
    :meth:`close_all` release everything explicitly (engines also release
    on garbage collection, so leaked contexts cannot leak ``/dev/shm``
    segments).
    """

    _cache: dict[tuple[ExperimentScale, str], "SharedContext"] = {}

    def __init__(
        self,
        scale: ExperimentScale,
        *,
        backend: str = "dict",
        workers: int | None = 1,
        persistent: bool = False,
    ) -> None:
        self.scale = scale
        self.backend = backend
        self.workers = workers
        self.persistent = persistent
        with tm.span("topology.build"):
            self.graph: ASGraph = generate_topology(scale.topology_config())
        self.routing = RoutingCache(self.graph, backend=backend)
        self.engine = ParallelRoutingEngine(
            self.graph, n_workers=workers, backend=backend, persistent=persistent
        )

    @classmethod
    def get(
        cls,
        scale: str | ExperimentScale,
        *,
        backend: str = "dict",
        workers: int | None = 1,
        persistent: bool | None = None,
    ) -> "SharedContext":
        """The memoized context for ``scale`` (built on first use).

        ``persistent=None`` (the default) keeps whatever pool mode the
        memoized context already runs — experiment modules pass only
        ``workers``, so a CLI- or benchmark-selected persistent engine
        survives the experiment's own ``get`` call.
        """
        sc = get_scale(scale)
        key = (sc, backend)
        ctx = cls._cache.get(key)
        if ctx is None:
            ctx = cls(sc, backend=backend, workers=workers, persistent=bool(persistent))
            cls._cache[key] = ctx
        elif (workers is not None and workers != ctx.workers) or (
            persistent is not None and persistent != ctx.persistent
        ):
            # same topology/cache, new parallelism knobs: swap the engine,
            # releasing the old one's pool/segment (if any) first.
            ctx.workers = workers if workers is not None else ctx.workers
            if persistent is not None:
                ctx.persistent = persistent
            ctx.engine.close()
            ctx.engine = ParallelRoutingEngine(
                ctx.graph,
                n_workers=ctx.workers,
                backend=backend,
                persistent=ctx.persistent,
            )
        return ctx

    def close(self) -> None:
        """Release this context's engine resources (pool + shm segment)."""
        self.engine.close()

    @classmethod
    def close_all(cls) -> None:
        """Release engine resources of every memoized context.

        The memo itself survives (topology + routing cache stay warm);
        persistent engines transparently re-create their pool on next use.
        """
        for ctx in cls._cache.values():
            ctx.close()

    def precompute(self, dests: Iterable[int]) -> int:
        """Bulk-converge ``dests`` through the parallel engine."""
        engine = self.engine if self.engine.effective_workers > 1 else None
        return self.routing.precompute(dests, engine=engine)

    def verify(
        self,
        *,
        capable: frozenset[int] | None = None,
        events: "Sequence[dict[str, EventValue]] | None" = None,
    ) -> "VerificationReport":
        """Post-run invariant gate: statically re-prove loop-freedom,
        valley-freedom and FIB/RIB consistency over every destination this
        context's cache has converged.  Raises
        :class:`~repro.errors.VerificationError` on refutation.

        ``events`` — a recorded telemetry trace (sequence of event dicts);
        when given, the gate also cross-checks every recorded deflection
        decision against FIB state (``verify.gate.crosscheck_trace``)."""
        from ..verify.gate import post_run_gate

        return post_run_gate(
            self.graph, self.routing, capable=capable, events=events
        )


def provenance_meta(ctx: SharedContext) -> dict[str, Any]:
    """Standard provenance entries for an experiment's ``meta``.

    Records what the run *actually used*, not what was requested: the
    parallel routing engine silently degrades to serial when the backend
    cannot fork-share its state (the ``dict`` backend) or the platform
    lacks ``fork``, so ``workers`` here is
    :attr:`~repro.bgp.parallel.ParallelRoutingEngine.effective_workers`,
    which may be 1 even though ``run(..., workers=8)`` was asked for.
    All keys live in :data:`~repro.experiments.result.PROVENANCE_KEYS`
    and therefore stay outside the determinism-checked payload.
    """
    return {
        "backend": ctx.backend,
        "workers": ctx.engine.effective_workers,
        "routing_cache": dataclasses.asdict(ctx.routing.stats),
    }


def instrumented_run(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Give an experiment's ``run()`` the unified telemetry keyword.

    The wrapped function accepts ``telemetry=`` (a
    :class:`~repro.telemetry.Telemetry`, ``True`` for a fresh throwaway
    registry, or ``None``/``False`` for off — see
    :func:`repro.telemetry.telemetry_session`), times the whole call under
    an ``experiment.run`` span, and attaches the session's delta to
    ``result.meta["telemetry"]``.  The key lives in
    :data:`~repro.experiments.result.PROVENANCE_KEYS`, so enabling
    telemetry never perturbs the determinism-checked payload.
    """

    @functools.wraps(fn)
    def wrapper(
        *args: Any,
        telemetry: "tm.Telemetry | bool | None" = None,
        **kwargs: Any,
    ) -> Any:
        with tm.telemetry_session(telemetry) as session:
            with tm.span("experiment.run"):
                result = fn(*args, **kwargs)
            if session is not None:
                result.meta["telemetry"] = session.meta()
        return result

    return wrapper


def deployment_sample(
    graph: ASGraph, ratio: float, *, seed: int = 77
) -> frozenset[int]:
    """A deterministic random sample of ASes deploying MIFO/MIRO.

    ``ratio`` in (0, 1]; 1.0 returns every AS.
    """
    if not 0.0 < ratio <= 1.0:
        raise ConfigError(f"deployment ratio {ratio} outside (0, 1]")
    nodes = sorted(graph.nodes())
    if ratio >= 1.0:
        return frozenset(nodes)
    rng = np.random.default_rng(seed)
    k = max(1, int(round(len(nodes) * ratio)))
    return frozenset(int(x) for x in rng.choice(nodes, size=k, replace=False))


def make_provider(
    scheme: str,
    graph: ASGraph,
    routing: RoutingCache,
    capable: frozenset[int],
    *,
    miro_config: MiroConfig | None = None,
) -> PathProvider:
    """Instantiate the path provider for one of the three schemes."""
    scheme = scheme.upper()
    if scheme == "BGP":
        return BgpProvider(graph, routing)
    if scheme == "MIRO":
        return MiroProvider(MiroRouting(graph, routing, capable, miro_config))
    if scheme == "MIFO":
        return MifoProvider(MifoPathBuilder(graph, routing, capable))
    raise ConfigError(f"unknown scheme {scheme!r}")


def run_scheme(
    ctx: SharedContext,
    scheme: str,
    capable: frozenset[int],
    specs: "list[FlowSpec]",
    *,
    sim_config: FluidSimConfig | None = None,
    solver: str | None = None,
) -> "FluidSimResult":
    """Run one (scheme, deployment) fluid simulation over ``specs``.

    ``solver`` overrides :attr:`FluidSimConfig.solver` (``"incremental"``
    or ``"full"``) without the caller building a whole config; results are
    byte-identical either way.
    """
    # Converge every destination the workload will touch up front — on a
    # parallel context this shards across workers instead of paying for
    # each destination at first use inside the (serial) simulator loop.
    ctx.precompute({spec.dst for spec in specs})
    provider = make_provider(scheme, ctx.graph, ctx.routing, capable)
    config = sim_config or FluidSimConfig()
    if solver is not None:
        config = dataclasses.replace(config, solver=solver)
    sim = FluidSimulator(ctx.graph, provider, config)
    return sim.run(specs)
