"""Figure 5 — flow-throughput CDF under uniform traffic, by deployment.

The paper runs one million 10 MB flows between uniformly random AS pairs
and plots the end-to-end throughput CDF of BGP vs MIRO vs MIFO at 100%,
50% and 10% deployment.  Headline shape: both multipath schemes dominate
BGP; MIFO dominates MIRO at every deployment ratio (e.g. at 100%: ~80% of
MIFO flows exceed 500 Mbps vs ~50% for MIRO); even 10% deployment yields a
visible MIFO gain.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence


from .. import telemetry as tm
from ..flowsim.simulator import FluidSimResult
from ..metrics.cdf import Cdf
from ..traffic.matrix import TrafficConfig, uniform_matrix
from .common import (
    SharedContext,
    deployment_sample,
    get_scale,
    instrumented_run,
    provenance_meta,
    run_scheme,
)
from .report import ascii_series, percent, text_table
from .result import ExperimentResult, freeze_series

__all__ = ["Fig5Result", "run"]

DEPLOYMENTS = (1.0, 0.5, 0.1)
SCHEMES = ("BGP", "MIRO", "MIFO")


@dataclasses.dataclass
class Fig5Result:
    """CDF per (deployment ratio, scheme)."""

    scale_name: str
    #: (deployment, scheme) -> fluid result
    results: dict[tuple[float, str], FluidSimResult]

    def cdf(self, deployment: float, scheme: str) -> Cdf:
        """Throughput CDF for one (deployment, scheme) cell."""
        return Cdf.from_samples(self.results[(deployment, scheme)].throughputs_bps())

    def fraction_at_least(
        self, deployment: float, scheme: str, mbps: float = 500.0
    ) -> float:
        """Fraction of flows at or above ``mbps``."""
        return self.cdf(deployment, scheme).fraction_at_least(mbps * 1e6)

    @property
    def deployments(self) -> list[float]:
        """Deployment ratios present, descending."""
        return sorted({dep for dep, _s in self.results}, reverse=True)

    def rows(self) -> list[list[object]]:
        """Table rows: one per (deployment, scheme)."""
        rows = []
        for dep in self.deployments:
            for scheme in SCHEMES:
                if scheme == "BGP" and dep != self.deployments[0]:
                    continue  # BGP has no deployment knob
                c = self.cdf(dep, scheme)
                rows.append(
                    [
                        f"{dep:.0%}",
                        scheme,
                        f"{c.median / 1e6:.0f}",
                        percent(c.fraction_at_least(500e6)),
                        percent(c.fraction_at_least(100e6)),
                    ]
                )
        return rows

    def render(self) -> str:
        """Human-readable report table."""
        table = text_table(
            ["Deployment", "Scheme", "Median Mbps", ">=500 Mbps", ">=100 Mbps"],
            self.rows(),
            title=f"Figure 5: Throughput vs deployment ratio (uniform traffic, scale={self.scale_name})",
        )
        plots = []
        for dep in self.deployments:
            series: dict[str, list[tuple[float, float]]] = {}
            for scheme in SCHEMES:
                key = (dep, scheme)
                xs, ys = self.cdf(*key).series(points=40, lo=0.0, hi=1e9)
                series[scheme] = list(zip(xs / 1e6, ys))
            plots.append(
                ascii_series(
                    series,
                    title=f"Fig 5 ({dep:.0%} deployed): CDF(%) vs throughput (Mbps)",
                    xlabel="Mbps",
                    ylabel="CDF %",
                )
            )
        return table + "\n\n" + "\n\n".join(plots)


@instrumented_run
def run(
    scale: str = "default",
    *,
    backend: str = "dict",
    workers: int | None = 1,
    deployments: Sequence[float] = DEPLOYMENTS,
    solver: str = "incremental",
) -> ExperimentResult:
    """Reproduce paper Fig. 5 (throughput vs deployment)."""
    sc = get_scale(scale)
    ctx = SharedContext.get(sc, backend=backend, workers=workers)
    specs = uniform_matrix(
        ctx.graph,
        TrafficConfig(
            n_flows=sc.n_flows, arrival_rate=sc.arrival_rate, seed=sc.seed + 1
        ),
    )
    results: dict[tuple[float, str], FluidSimResult] = {}
    bgp_result = run_scheme(ctx, "BGP", frozenset(), specs, solver=solver)
    for dep in deployments:
        capable = deployment_sample(ctx.graph, dep)
        results[(dep, "BGP")] = bgp_result
        for scheme in ("MIRO", "MIFO"):
            results[(dep, scheme)] = run_scheme(
                ctx, scheme, capable, specs, solver=solver
            )
    raw = Fig5Result(scale_name=sc.name, results=results)

    series: dict[str, list[tuple[float, float]]] = {}
    meta: dict[str, object] = dict(provenance_meta(ctx))
    with tm.span("metrics.compute"):
        for dep in raw.deployments:
            for scheme in SCHEMES:
                c = raw.cdf(dep, scheme)
                xs, ys = c.series(points=40, lo=0.0, hi=1e9)
                series[f"{dep:.0%} {scheme}"] = list(zip(xs / 1e6, ys))
                meta[f"median_mbps[{dep:.0%} {scheme}]"] = c.median / 1e6
                meta[f"frac_ge_500mbps[{dep:.0%} {scheme}]"] = c.fraction_at_least(
                    500e6
                )
    return ExperimentResult(
        name="fig5", scale=sc.name, series=freeze_series(series), meta=meta, raw=raw
    )
