"""Section II-B claim — multi-neighbor forwarding availability in the RIB.

"By examining the BGP RIB provided by Routeview, we found that most of
ASes are able to benefit from multi-neighbor forwarding" and "the degree
of path diversity gained by an AS is therefore dependent on how many
neighbors it has" (paper Section II-B).

This experiment measures, over sampled destinations: how many RIB
alternatives each AS holds (the zero-overhead multipath MIFO mines), the
fraction of ASes with at least one alternative, and the correlation
between node degree and alternative count — the quantitative form of the
paper's two claims.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .. import telemetry as tm
from .common import SharedContext, get_scale, instrumented_run, provenance_meta
from .report import percent, text_table
from .result import ExperimentResult

__all__ = ["RibStudyResult", "run"]


@dataclasses.dataclass
class RibStudyResult:
    """RIB alternative-route study over all (AS, dest) pairs."""
    scale_name: str
    #: per-(AS, destination) RIB sizes (including the default route)
    rib_sizes: np.ndarray
    #: per-sample node degree aligned with rib_sizes
    degrees: np.ndarray

    @property
    def fraction_multi_neighbor(self) -> float:
        """ASes holding >= 2 routes (default + at least one alternative)."""
        return float((self.rib_sizes >= 2).mean())

    @property
    def mean_alternatives(self) -> float:
        """Mean alternatives per (AS, destination) pair."""
        return float((self.rib_sizes - 1).mean())

    @property
    def degree_correlation(self) -> float:
        """Pearson correlation between degree and RIB size."""
        if self.rib_sizes.size < 2 or self.degrees.std() == 0:
            return 0.0
        return float(np.corrcoef(self.degrees, self.rib_sizes)[0, 1])

    def rows(self) -> list[list[object]]:
        """Table rows of the summary statistics."""
        qs = np.percentile(self.rib_sizes, [50, 90, 99])
        return [
            ["ASes with >=1 alternative", percent(self.fraction_multi_neighbor)],
            ["mean alternatives per (AS, dest)", f"{self.mean_alternatives:.2f}"],
            ["median RIB size", f"{qs[0]:.0f}"],
            ["p90 RIB size", f"{qs[1]:.0f}"],
            ["p99 RIB size", f"{qs[2]:.0f}"],
            ["corr(degree, RIB size)", f"{self.degree_correlation:.2f}"],
        ]

    def render(self) -> str:
        """Human-readable report table."""
        return text_table(
            ["Metric", "Value"],
            self.rows(),
            title=(
                "Section II-B study: multi-neighbor forwarding availability "
                f"in the BGP RIB (scale={self.scale_name})"
            ),
        )


@instrumented_run
def run(
    scale: str = "default",
    *,
    backend: str = "dict",
    workers: int | None = 1,
    n_destinations: int = 20,
) -> ExperimentResult:
    """Run the RIB alternative-route study."""
    sc = get_scale(scale)
    ctx = SharedContext.get(sc, backend=backend, workers=workers)
    graph = ctx.graph
    rng = np.random.default_rng(sc.seed + 6)
    nodes = np.fromiter(graph.nodes(), dtype=np.int64)
    dests = rng.choice(nodes, size=min(n_destinations, len(nodes)), replace=False)
    ctx.precompute(int(d) for d in dests)

    with tm.span("metrics.compute"):
        sizes: list[int] = []
        degrees: list[int] = []
        for d in dests:
            routing = ctx.routing(int(d))
            for x in graph.nodes():
                if x == int(d) or not routing.has_route(x):
                    continue
                sizes.append(len(routing.rib(x)))
                degrees.append(graph.degree(x))
        raw = RibStudyResult(
            scale_name=sc.name,
            rib_sizes=np.asarray(sizes),
            degrees=np.asarray(degrees),
        )
        meta: dict[str, object] = {
            **provenance_meta(ctx),
            "n_destinations": int(len(dests)),
            "fraction_multi_neighbor": raw.fraction_multi_neighbor,
            "mean_alternatives": raw.mean_alternatives,
            "degree_correlation": raw.degree_correlation,
        }
    return ExperimentResult(
        name="ribstudy", scale=sc.name, series={}, meta=meta, raw=raw
    )
