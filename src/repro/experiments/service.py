"""Streaming-service experiment — the long-lived session as an artifact.

Drives one :class:`~repro.service.session.ServiceSession` through a
scale-sized slice of the unbounded event stream (Poisson flow arrivals
with Zipf-ranked sources, lifetime-driven departures, link flaps,
capacity jitter) and packages the retained record window as the unified
:class:`~repro.experiments.result.ExperimentResult` envelope.

Unless disabled, the run also *proves* the service's headline guarantee
in-line: it checkpoints at the halfway tick, replays the second half on
a restored session, and asserts the two payloads are byte-identical —
``meta["restore_verified"]`` records that the kill-and-restore oracle
held for this very run.
"""

from __future__ import annotations

import dataclasses

from .. import telemetry as tm
from ..errors import VerificationError
from ..service.config import ServiceConfig
from ..service.session import ServiceSession
from ..topology.generator import TopologyConfig
from .common import get_scale, instrumented_run
from .report import text_table
from .result import ExperimentResult

__all__ = ["ServiceExperimentResult", "run"]

#: rows shown in the rendered record-window table (the ring may hold more).
_RENDER_TAIL = 12


@dataclasses.dataclass
class ServiceExperimentResult:
    """Rich result: the live session plus rendering."""

    scale_name: str
    session: ServiceSession
    restore_verified: bool

    def rows(self) -> list[list[object]]:
        """Table rows: the tail of the retained record window."""
        records = list(self.session.engine.records)[-_RENDER_TAIL:]
        return [
            [
                r.index,
                f"{r.time_s:.3f}",
                r.kind,
                r.flows_total,
                r.flows_rerouted,
                r.congested_links,
                r.deflected_flows,
                f"{r.mean_rate_mbps:.1f}",
            ]
            for r in records
        ]

    def render(self) -> str:
        """Record-window tail plus stream/session summary."""
        s = self.session
        table = text_table(
            [
                "#",
                "t(s)",
                "event",
                "flows",
                "rerouted",
                "congested",
                "deflected",
                "mean Mbps",
            ],
            self.rows(),
            title=(
                f"Service stream (scale={self.scale_name}, last "
                f"{_RENDER_TAIL} of {s.events_processed} events)"
            ),
        )
        summary = (
            f"\nstream:     {s.events_processed} events over "
            f"{s.clock_s:.2f}s simulated ({s.arrivals_total} arrivals, "
            f"{s.retired_total} retirements, {s.engine.n_flows} live)"
            f"\ncontrol:    {s.engine.routing.dests_recomputed} dest(s) "
            f"re-converged, {s.engine.routing.dests_rebased} rebased"
            f"\nmax-min:    {s.engine.solver.solves} solve(s), "
            f"{s.engine.solver.hits} memoized"
            f"\nrestore:    checkpoint/replay byte-identity "
            f"{'verified in-run' if self.restore_verified else 'not checked'}"
        )
        return table + summary


@instrumented_run
def run(
    scale: str = "default",
    *,
    backend: str = "dict",
    workers: int | None = 1,
    events: int | None = None,
    restore_check: bool = True,
    service_config: ServiceConfig | None = None,
) -> ExperimentResult:
    """Stream a scale-sized event batch through a service session.

    ``events`` overrides the batch size (default: the scale's flow
    count — each stream event is one engine epoch, so this matches the
    scenario experiments' per-event workload).  ``restore_check``
    checkpoints at the halfway tick and replays the rest on a restored
    session, asserting payload byte-identity.  ``workers`` is accepted
    for entry-point uniformity; the streaming engine is single-process.
    """
    del workers  # interface parity with the other experiments
    sc = get_scale(scale)
    n_events = events if events is not None else sc.n_flows
    cfg = (
        service_config
        if service_config is not None
        else ServiceConfig(seed=sc.seed, arrival_rate=sc.arrival_rate)
    )
    topo = TopologyConfig(n_ases=sc.n_ases, seed=sc.seed)
    session = ServiceSession(cfg, topology=topo, backend=backend)

    restore_verified = False
    if restore_check and n_events >= 2:
        half = n_events // 2
        with tm.span("service.stream"):
            session.drain(half)
        with tm.span("service.checkpoint"):
            blob = session.checkpoint()
        with tm.span("service.stream"):
            session.drain(n_events - half)
        # Replay the second half on a restored session, outside the
        # experiment's telemetry session (replay work is not part of this
        # run's cost profile), and require byte-identity.
        prev = tm.active()
        tm.activate(None)
        try:
            restored = ServiceSession.restore(blob, backend=backend)
            restored.drain(n_events - half)
        finally:
            tm.activate(prev)
        live = session.result(scale=sc.name).to_json(include_provenance=False)
        replay = restored.result(scale=sc.name).to_json(
            include_provenance=False
        )
        if live != replay:
            raise VerificationError(
                "restored service session diverged from the uninterrupted "
                "run (checkpoint/replay byte-identity violated)"
            )
        restore_verified = True
    else:
        with tm.span("service.stream"):
            session.drain(n_events)

    base = session.result(scale=sc.name)
    meta = dict(base.meta)
    meta["restore_verified"] = restore_verified
    return dataclasses.replace(
        base,
        meta=meta,
        raw=ServiceExperimentResult(
            scale_name=sc.name,
            session=session,
            restore_verified=restore_verified,
        ),
    )
