"""Figures 11 & 12 — the prototype testbed experiment, in simulation.

The paper's testbed (Fig. 11): 15 machines — 4 end hosts (S1, S2, D1, D2)
and 11 MIFO-capable routers forming 6 ASes, all Gigabit links.  30 TCP
flows of 100 MB run S1→D1 back-to-back, concurrently with 30 flows S2→D2.
Default BGP paths are 1→3→4→5 and 2→3→4→5, colliding on the 3→4 link;
MIFO's border router Rd (AS 3) deflects via iBGP peer Ra onto the
alternative path 3→6→5.  Results: aggregate goodput ≈0.94 Gb/s under BGP
vs ≈1.7 Gb/s under MIFO (+81%); all MIFO flows finish within ~1.1 s while
80% of BGP flows need >1.6 s (Fig. 12).

Router-level reconstruction (11 routers)::

    S1 - R1(AS1) \\                      / R4a=R4b(AS4) - R5a \\
                   Rd(AS3) == Ra(AS3)                          R5c - D1,D2
    S2 - R2(AS2) /     \\         \\      \\ R6a=R6b(AS6) - R5b /
                        \\_ eBGP to R4a   \\_ eBGP to R6a

AS relationships: AS1, AS2 are customers of AS3; AS3 and AS5 are customers
of both AS4 and AS6.  The control plane is *computed*, not hard-coded: a
message-level :class:`~repro.bgp.speaker.BgpNetwork` converges on the six-AS
graph and the router FIBs are derived from it (asserting the paper's
default/alternative paths fall out), so this experiment exercises the BGP
substrate end to end.

Scaling: with 1 KB packets the full 2×30×100 MB run is ~6M data packets —
hours in pure Python.  The default config keeps all rates at 1 Gb/s but
uses 9 KB jumbo segments and 10 MB flows; goodput *ratios* (the +81%
headline) are preserved.  ``TestbedConfig(paper_scale=True)`` restores the
paper's exact parameters.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from ..bgp.speaker import BgpNetwork
from ..dataplane.host import Host
from ..dataplane.network import Network, ThroughputSampler
from ..dataplane.router import Engine
from ..dataplane.tcp import TcpConfig, TcpSender
from ..errors import SimulationError
from ..metrics.cdf import Cdf
from ..mifo.engine import MifoEngine, MifoEngineConfig, bgp_engine
from ..topology.asgraph import ASGraph
from ..topology.relationships import Relationship
from .report import ascii_series, text_table
from .. import telemetry as tm
from .common import instrumented_run
from .result import ExperimentResult, freeze_series

__all__ = ["TestbedConfig", "TestbedRun", "Fig12Result", "build_as_graph", "build_testbed", "run"]


@dataclasses.dataclass(frozen=True)
class TestbedConfig:
    """Parameters of the Fig-11 testbed experiment."""

    flows_per_source: int = 30
    flow_size_bytes: float = 10e6
    mss: int = 9000
    link_rate_bps: float = 1e9
    link_delay_s: float = 50e-6
    queue_capacity: int = 64
    sample_interval_s: float = 0.25
    congestion_threshold: float = 0.8
    max_events: int = 80_000_000

    @classmethod
    def paper_scale(cls) -> "TestbedConfig":
        """The paper's exact testbed parameters (slow: ~6M data packets)."""
        return cls(flow_size_bytes=100e6, mss=1000, sample_interval_s=1.0)

    @classmethod
    def test_scale(cls) -> "TestbedConfig":
        """Seconds-fast configuration for the test suite.

        Flows must be long enough for queues (the congestion signal) to
        build past slow start, or the MIFO/BGP contrast washes out.
        """
        return cls(flows_per_source=6, flow_size_bytes=5e6, sample_interval_s=0.1)


def build_as_graph() -> ASGraph:
    """The six-AS business-relationship graph of Fig. 11."""
    return ASGraph.from_links(
        p2c=[(3, 1), (3, 2), (4, 3), (6, 3), (4, 5), (6, 5)],
    )


def _derive_control_plane() -> None:
    """Assert the paper's routing falls out of our BGP implementation."""
    g = build_as_graph()
    net = BgpNetwork(g)
    net.announce(5)  # destination AS (D1/D2 live in AS 5)
    assert net.best_path(1, 5) == (1, 3, 4, 5), net.best_path(1, 5)
    assert net.best_path(2, 5) == (2, 3, 4, 5), net.best_path(2, 5)
    assert net.best_path(3, 5) == (3, 4, 5), net.best_path(3, 5)
    alts = net.rib_neighbors(3, 5)
    assert 6 in alts, f"AS3 should learn the alternative via AS6, rib={alts}"
    net.announce(1)
    net.announce(2)


@dataclasses.dataclass
class TestbedRun:
    """One scheme's testbed run outcome."""

    scheme: str
    completion_times: list[float]  #: per-flow durations (s)
    finish_time: float  #: when the last flow completed
    throughput_series: list[tuple[float, float]]  #: Fig 12(a) series
    mean_aggregate_bps: float
    deflected_packets: int
    encapsulated_packets: int
    valley_drops: int

    def fct_cdf(self) -> Cdf:
        """CDF of flow completion times."""
        return Cdf.from_samples(self.completion_times)


def build_testbed(
    cfg: TestbedConfig, *, mifo: bool, tag_check: bool = True, encap: bool = True
) -> tuple[Network, dict[str, Any]]:
    """Wire the Fig-11 network; returns (network, handles).

    ``mifo=False`` runs every router with plain BGP forwarding (no alt
    ports); ``tag_check``/``encap`` expose the ablation switches.
    """
    _derive_control_plane()
    net = Network()
    qc = cfg.queue_capacity

    def engine() -> Engine:
        if not mifo:
            return bgp_engine
        return MifoEngine(
            MifoEngineConfig(
                congestion_threshold=cfg.congestion_threshold,
                tag_check_enabled=tag_check,
                encap_enabled=encap,
            )
        )

    r1 = net.add_router("R1", 1, engine())
    r2 = net.add_router("R2", 2, engine())
    rd = net.add_router("Rd", 3, engine())
    ra = net.add_router("Ra", 3, engine())
    r4a = net.add_router("R4a", 4, engine())
    r4b = net.add_router("R4b", 4, engine())
    r6a = net.add_router("R6a", 6, engine())
    r6b = net.add_router("R6b", 6, engine())
    r5a = net.add_router("R5a", 5, engine())
    r5b = net.add_router("R5b", 5, engine())
    r5c = net.add_router("R5c", 5, engine())

    s1 = net.add_host("S1")
    s2 = net.add_host("S2")
    d1 = net.add_host("D1")
    d2 = net.add_host("D2")

    rate, delay = cfg.link_rate_bps, cfg.link_delay_s
    kw = dict(rate_bps=rate, delay_s=delay, queue_capacity=qc)

    _, r1_s1 = net.attach_host(s1, r1, rate_bps=rate)
    _, r2_s2 = net.attach_host(s2, r2, rate_bps=rate)
    _, r5c_d1 = net.attach_host(d1, r5c, rate_bps=rate)
    _, r5c_d2 = net.attach_host(d2, r5c, rate_bps=rate)

    # eBGP links (relationship_of_b = b's AS as seen from a's AS).
    r1_rd, rd_r1 = net.connect_routers(r1, rd, relationship_of_b=Relationship.PROVIDER, **kw)
    r2_rd, rd_r2 = net.connect_routers(r2, rd, relationship_of_b=Relationship.PROVIDER, **kw)
    rd_r4a, r4a_rd = net.connect_routers(rd, r4a, relationship_of_b=Relationship.PROVIDER, **kw)
    ra_r6a, r6a_ra = net.connect_routers(ra, r6a, relationship_of_b=Relationship.PROVIDER, **kw)
    r4b_r5a, r5a_r4b = net.connect_routers(r4b, r5a, relationship_of_b=Relationship.CUSTOMER, **kw)
    r6b_r5b, r5b_r6b = net.connect_routers(r6b, r5b, relationship_of_b=Relationship.CUSTOMER, **kw)
    # iBGP full meshes within multi-router ASes.
    rd_ra, ra_rd = net.connect_routers(rd, ra, **kw)
    r4a_r4b, r4b_r4a = net.connect_routers(r4a, r4b, **kw)
    r6a_r6b, r6b_r6a = net.connect_routers(r6a, r6b, **kw)
    r5a_r5c, r5c_r5a = net.connect_routers(r5a, r5c, **kw)
    r5b_r5c, r5c_r5b = net.connect_routers(r5b, r5c, **kw)

    # --- FIBs: forward direction (toward D1/D2 in AS 5) ----------------
    for dst in ("D1", "D2"):
        r1.fib.install(dst, r1_rd)
        r2.fib.install(dst, r2_rd)
        rd.fib.install(dst, rd_r4a, rd_ra if mifo else None)
        # Ra's default next hop toward AS5 is the iBGP path through Rd —
        # the exact Fig-2(b) situation; its alternative is its own eBGP
        # egress to AS6.
        ra.fib.install(dst, ra_rd, ra_r6a if mifo else None)
        r4a.fib.install(dst, r4a_r4b)
        r4b.fib.install(dst, r4b_r5a)
        r5a.fib.install(dst, r5a_r5c)
        r6a.fib.install(dst, r6a_r6b)
        r6b.fib.install(dst, r6b_r5b)
        r5b.fib.install(dst, r5b_r5c)
    r5c.fib.install("D1", r5c_d1)
    r5c.fib.install("D2", r5c_d2)

    # --- FIBs: reverse direction (ACKs toward S1/S2) --------------------
    for dst, r_edge, edge_port in (("S1", r1, r1_s1), ("S2", r2, r2_s2)):
        r5c.fib.install(dst, r5c_r5a)
        r5a.fib.install(dst, r5a_r4b)
        r4b.fib.install(dst, r4b_r4a)
        r4a.fib.install(dst, r4a_rd)
        r5b.fib.install(dst, r5b_r6b)
        r6b.fib.install(dst, r6b_r6a)
        r6a.fib.install(dst, r6a_ra)
        ra.fib.install(dst, ra_rd)
        rd.fib.install(dst, rd_r1 if dst == "S1" else rd_r2)
        r_edge.fib.install(dst, edge_port)

    handles = {
        "sources": (s1, s2),
        "sinks": (d1, d2),
        "routers": {r.name: r for r in (r1, r2, rd, ra, r4a, r4b, r6a, r6b, r5a, r5b, r5c)},
    }
    return net, handles


def _run_one(cfg: TestbedConfig, *, mifo: bool) -> TestbedRun:
    net, handles = build_testbed(cfg, mifo=mifo)
    s1, s2 = handles["sources"]
    sinks = list(handles["sinks"])
    sampler = ThroughputSampler(net, sinks, interval=cfg.sample_interval_s)
    sampler.start()

    tcp_cfg = TcpConfig(mss=cfg.mss)
    completions: list[float] = []
    expected = 2 * cfg.flows_per_source

    def chain(host: Host, dst: str, base_flow_id: int, remaining: int) -> None:
        def on_complete(sender: TcpSender) -> None:
            completions.append(sender.duration)
            if remaining > 1:
                chain(host, dst, base_flow_id + 1, remaining - 1)
            elif len(completions) == expected:
                sampler.stop()  # all flows done: let the queue drain

        host.start_flow(
            base_flow_id, dst, cfg.flow_size_bytes, config=tcp_cfg, on_complete=on_complete
        )

    chain(s1, "D1", 1000, cfg.flows_per_source)
    chain(s2, "D2", 2000, cfg.flows_per_source)

    net.run(max_events=cfg.max_events)
    if len(completions) != expected:
        raise SimulationError(
            f"only {len(completions)}/{expected} flows completed"
        )
    routers = handles["routers"]
    return TestbedRun(
        scheme="MIFO" if mifo else "BGP",
        completion_times=completions,
        finish_time=net.sim.now,
        throughput_series=sampler.series_bps(),
        mean_aggregate_bps=sampler.mean_bps(),
        deflected_packets=sum(r.counters.deflected for r in routers.values()),
        encapsulated_packets=sum(r.counters.encapsulated for r in routers.values()),
        valley_drops=sum(r.counters.dropped_valley for r in routers.values()),
    )


@dataclasses.dataclass
class Fig12Result:
    """Paper Fig. 12: BGP vs MIFO on the six-AS testbed."""
    bgp: TestbedRun
    mifo: TestbedRun
    config: TestbedConfig

    @property
    def improvement(self) -> float:
        """Aggregate-goodput improvement of MIFO over BGP (paper: 0.81)."""
        if self.bgp.mean_aggregate_bps <= 0:
            return 0.0
        return self.mifo.mean_aggregate_bps / self.bgp.mean_aggregate_bps - 1.0

    def rows(self) -> list[list[object]]:
        """Table rows: one per scheme."""
        rows = []
        for run_ in (self.bgp, self.mifo):
            fct = np.asarray(run_.completion_times)
            rows.append(
                [
                    run_.scheme,
                    f"{run_.mean_aggregate_bps / 1e9:.2f}",
                    f"{run_.finish_time:.2f}",
                    f"{np.median(fct):.3f}",
                    f"{fct.max():.3f}",
                    run_.deflected_packets,
                ]
            )
        return rows

    def render(self) -> str:
        """Human-readable report table."""
        table = text_table(
            ["Scheme", "Aggregate Gb/s", "Makespan s", "Median FCT s", "Max FCT s", "Deflected pkts"],
            self.rows(),
            title="Figure 12: Testbed experiment (paper: BGP 0.94 Gb/s, MIFO ~1.7 Gb/s, +81%)",
        )
        summary = f"\nMIFO aggregate-throughput improvement over BGP: {self.improvement:+.0%} (paper +81%)"
        plot_a = ascii_series(
            {
                "BGP": [(t, v / 1e9) for t, v in self.bgp.throughput_series],
                "MIFO": [(t, v / 1e9) for t, v in self.mifo.throughput_series],
            },
            title="Fig 12(a): aggregate goodput (Gb/s) vs time (s)",
            xlabel="time s",
            ylabel="Gb/s",
        )
        bx, by = self.bgp.fct_cdf().series(points=30)
        mx, my = self.mifo.fct_cdf().series(points=30)
        plot_b = ascii_series(
            {"BGP": list(zip(bx, by)), "MIFO": list(zip(mx, my))},
            title="Fig 12(b): CDF(%) of flow completion time (s)",
            xlabel="FCT s",
            ylabel="CDF %",
        )
        return table + summary + "\n\n" + plot_a + "\n\n" + plot_b


@instrumented_run
def run(
    scale: str = "default",
    *,
    backend: str = "dict",
    workers: int | None = 1,
    config: TestbedConfig | None = None,
) -> ExperimentResult:
    # The testbed is an 11-router packet simulation; its control plane is
    # the message-level BgpNetwork, so the routing backend/worker knobs are
    # accepted (uniform API) but have nothing to accelerate here.
    """Reproduce paper Fig. 12 (testbed FCT comparison)."""
    del backend, workers
    if config is None:
        config = TestbedConfig.test_scale() if scale == "test" else TestbedConfig()
    bgp = _run_one(config, mifo=False)
    mifo = _run_one(config, mifo=True)
    raw = Fig12Result(bgp=bgp, mifo=mifo, config=config)

    with tm.span("metrics.compute"):
        series = {
            "BGP Gb/s": [(t, v / 1e9) for t, v in raw.bgp.throughput_series],
            "MIFO Gb/s": [(t, v / 1e9) for t, v in raw.mifo.throughput_series],
        }
        meta: dict[str, object] = {
            "improvement": raw.improvement,
            "bgp_mean_aggregate_bps": raw.bgp.mean_aggregate_bps,
            "mifo_mean_aggregate_bps": raw.mifo.mean_aggregate_bps,
            "mifo_deflected_packets": raw.mifo.deflected_packets,
        }
    return ExperimentResult(
        name="fig12", scale=scale, series=freeze_series(series), meta=meta, raw=raw
    )
