"""Control-plane overhead — the paper's "zero overhead" claim, quantified.

Section II-B / VI: obtaining alternative paths costs MIRO dedicated
negotiation channels and PDAR extra BGP UPDATEs, while "MIFO obtains
multiple paths with zero overhead by learning alternative paths in local
BGP RIB."  This experiment counts, on one topology:

* the baseline BGP UPDATE messages to converge a destination (everyone
  pays these),
* MIRO's additional negotiation messages (one request + one response per
  negotiated alternative per AS pair, the minimum any bilateral protocol
  needs),
* MIFO's additional messages: **zero**, structurally — the alternatives
  counted are exactly the RIB entries the baseline convergence already
  delivered.

It also reports the alternatives each scheme gains per message spent.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..bgp.speaker import BgpNetwork
from ..miro.negotiation import MiroRouting
from .. import telemetry as tm
from .common import SharedContext, get_scale, instrumented_run, provenance_meta
from .report import text_table
from .result import ExperimentResult

__all__ = ["OverheadResult", "run"]


@dataclasses.dataclass
class OverheadResult:
    """Control-plane overhead comparison across schemes."""
    scale_name: str
    n_destinations: int
    bgp_messages: int  #: baseline convergence UPDATEs (all schemes pay)
    miro_messages: int  #: additional negotiation messages
    mifo_messages: int  #: additional messages (always 0)
    miro_alternatives: int
    mifo_alternatives: int

    def rows(self) -> list[list[object]]:
        """Table rows: one per scheme."""
        def per_msg(alts: int, msgs: int) -> str:
            return f"{alts / msgs:.2f}" if msgs else "inf" if alts else "0"

        return [
            ["BGP (baseline convergence)", self.bgp_messages, 0, "-"],
            [
                "MIRO (strict, k<=2)",
                self.bgp_messages + self.miro_messages,
                self.miro_alternatives,
                per_msg(self.miro_alternatives, self.miro_messages),
            ],
            [
                "MIFO (RIB mining)",
                self.bgp_messages + self.mifo_messages,
                self.mifo_alternatives,
                "inf (0 extra messages)",
            ],
        ]

    def render(self) -> str:
        """Human-readable report table."""
        table = text_table(
            ["Scheme", "Control messages", "Alternatives gained", "Alts per extra msg"],
            self.rows(),
            title=(
                "Control-plane overhead of obtaining alternatives "
                f"({self.n_destinations} destinations, scale={self.scale_name})"
            ),
        )
        return table + (
            "\nMIFO's alternatives are the Adj-RIB-In entries baseline BGP "
            "already delivered: zero additional control-plane traffic "
            "(paper Sections II-B, VI)."
        )


@instrumented_run
def run(
    scale: str = "default",
    *,
    backend: str = "dict",
    workers: int | None = 1,
    n_destinations: int = 5,
) -> ExperimentResult:
    """Run the control-plane overhead comparison."""
    sc = get_scale(scale)
    ctx = SharedContext.get(sc, backend=backend, workers=workers)
    graph = ctx.graph
    rng = np.random.default_rng(sc.seed + 7)
    nodes = np.fromiter(graph.nodes(), dtype=np.int64)
    dests = [int(d) for d in rng.choice(nodes, size=n_destinations, replace=False)]
    ctx.precompute(dests)

    # Baseline: message-level BGP convergence cost.
    net = BgpNetwork(graph)
    bgp_messages = sum(net.announce(d) for d in dests)

    capable = frozenset(graph.nodes())
    miro = MiroRouting(graph, ctx.routing, capable)

    miro_messages = 0
    miro_alternatives = 0
    mifo_alternatives = 0
    with tm.span("metrics.compute"):
        for d in dests:
            routing = ctx.routing(d)
            for x in graph.nodes():
                if x == d or not routing.has_route(x):
                    continue
                n_miro = len(miro.available_paths(x, d)) - 1
                miro_alternatives += n_miro
                # Bilateral negotiation: request + response per alternative.
                miro_messages += 2 * n_miro
                mifo_alternatives += len(routing.alternatives(x))

    raw = OverheadResult(
        scale_name=sc.name,
        n_destinations=n_destinations,
        bgp_messages=bgp_messages,
        miro_messages=miro_messages,
        mifo_messages=0,
        miro_alternatives=miro_alternatives,
        mifo_alternatives=mifo_alternatives,
    )
    meta = {**provenance_meta(ctx), **dataclasses.asdict(raw)}
    meta.pop("scale_name")
    return ExperimentResult(
        name="overhead", scale=sc.name, series={}, meta=meta, raw=raw
    )
