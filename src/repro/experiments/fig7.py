"""Figure 7 — available paths per AS pair: MIFO vs MIRO, 50% vs 100%.

The paper sorts AS pairs by the number of available paths and plots the
count (log scale) against the percentage of node pairs.  Headlines: MIFO
at 50% deployment already offers more paths than MIRO fully deployed;
under full MIFO deployment 90% of pairs have at least a hundred
alternative paths and nearly half have thousands.  (Absolute counts grow
with topology size — at laptop scale the curves keep their ordering and
spacing but sit lower; see EXPERIMENTS.md.)
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from .. import telemetry as tm
from ..metrics.cdf import survival_series
from ..metrics.diversity import diversity_counts
from ..miro.negotiation import MiroRouting
from .common import (
    SharedContext,
    deployment_sample,
    get_scale,
    instrumented_run,
    provenance_meta,
)
from .report import ascii_series, percent, text_table
from .result import ExperimentResult, freeze_series

__all__ = ["Fig7Result", "run", "sample_pairs"]

DEPLOYMENTS = (0.5, 1.0)


def sample_pairs(
    ctx: SharedContext, n_pairs: int, *, seed: int, dests: int = 25
) -> list[tuple[int, int]]:
    """Random pairs grouped on few destinations (routing-cache reuse)."""
    rng = np.random.default_rng(seed)
    nodes = np.fromiter(ctx.graph.nodes(), dtype=np.int64)
    dsts = rng.choice(nodes, size=min(dests, len(nodes)), replace=False)
    per = max(1, n_pairs // len(dsts))
    pairs: list[tuple[int, int]] = []
    for d in dsts:
        srcs = rng.choice(nodes, size=per)
        pairs.extend((int(s), int(d)) for s in srcs if int(s) != int(d))
    return pairs


@dataclasses.dataclass
class Fig7Result:
    """Paper Fig. 7: path diversity under partial deployment."""
    scale_name: str
    #: (scheme, deployment) -> per-pair path counts
    counts: dict[tuple[str, float], list[int]]

    def series(self) -> dict[str, list[tuple[float, float]]]:
        """Survival curves keyed by scheme/deployment label."""
        out: dict[str, list[tuple[float, float]]] = {}
        for (scheme, dep), c in sorted(self.counts.items()):
            pct, vals = survival_series(c)
            out[f"{dep:.0%} {scheme}"] = list(zip(pct, np.log10(np.maximum(vals, 1))))
        return out

    def median(self, scheme: str, deployment: float) -> float:
        """Median path count for one cell."""
        return float(np.median(self.counts[(scheme, deployment)]))

    def fraction_with_at_least(self, scheme: str, deployment: float, k: int) -> float:
        """Fraction of pairs with >= ``k`` usable paths."""
        c = self.counts[(scheme, deployment)]
        return sum(x >= k for x in c) / len(c) if c else 0.0

    def rows(self) -> list[list[object]]:
        """Table rows: one per (scheme, deployment)."""
        rows = []
        for (scheme, dep), c in sorted(self.counts.items()):
            arr = np.asarray(c)
            rows.append(
                [
                    scheme,
                    f"{dep:.0%}",
                    f"{np.median(arr):.0f}",
                    f"{np.percentile(arr, 90):.0f}",
                    int(arr.max()) if arr.size else 0,
                    percent(float((arr >= 10).mean())),
                ]
            )
        return rows

    def render(self) -> str:
        """Human-readable report table."""
        table = text_table(
            ["Scheme", "Deployed", "Median paths", "p90", "Max", ">=10 paths"],
            self.rows(),
            title=f"Figure 7: Available paths per AS pair (scale={self.scale_name})",
        )
        plot = ascii_series(
            self.series(),
            title="Fig 7: log10(paths) vs percentage of node pairs (descending)",
            xlabel="% of pairs",
            ylabel="log10 paths",
        )
        return table + "\n\n" + plot


@instrumented_run
def run(
    scale: str = "default",
    *,
    backend: str = "dict",
    workers: int | None = 1,
    deployments: Sequence[float] = DEPLOYMENTS,
) -> ExperimentResult:
    """Reproduce paper Fig. 7 (path diversity)."""
    sc = get_scale(scale)
    ctx = SharedContext.get(sc, backend=backend, workers=workers)
    pairs = sample_pairs(ctx, sc.n_pairs, seed=sc.seed + 3)
    ctx.precompute({dst for _src, dst in pairs})
    counts: dict[tuple[str, float], list[int]] = {}
    for dep in deployments:
        capable = deployment_sample(ctx.graph, dep)
        miro = MiroRouting(ctx.graph, ctx.routing, capable)
        mifo_counts, miro_counts = diversity_counts(
            ctx.graph, ctx.routing, pairs, mifo_capable=capable, miro_routing=miro
        )
        counts[("MIFO", dep)] = mifo_counts
        counts[("MIRO", dep)] = miro_counts
    raw = Fig7Result(scale_name=sc.name, counts=counts)

    meta: dict[str, object] = {**provenance_meta(ctx), "n_pairs": len(pairs)}
    with tm.span("metrics.compute"):
        for (scheme, dep), c in sorted(raw.counts.items()):
            meta[f"median_paths[{dep:.0%} {scheme}]"] = raw.median(scheme, dep)
            meta[f"frac_ge_10_paths[{dep:.0%} {scheme}]"] = (
                raw.fraction_with_at_least(scheme, dep, 10)
            )
    return ExperimentResult(
        name="fig7",
        scale=sc.name,
        series=freeze_series(raw.series()),
        meta=meta,
        raw=raw,
    )
