"""Figure 6 — throughput CDF under power-law traffic, varying skew α.

The paper fixes deployment at 50% and draws sources from Zipf-ranked
content providers (``F(i) = a · i^-α``) with stub consumers, for
α ∈ {0.8, 1.0, 1.2}.  Headline: BGP degrades as skew grows (traffic
concentrates on few default paths); MIFO holds up via multi-path
forwarding; at α = 1.0 the paper reads 40% / 17% / 7% of flows attaining
500 Mbps for MIFO / MIRO / BGP.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from .. import telemetry as tm
from ..flowsim.simulator import FluidSimResult
from ..metrics.cdf import Cdf
from ..traffic.matrix import TrafficConfig, powerlaw_matrix
from .common import (
    SharedContext,
    deployment_sample,
    get_scale,
    instrumented_run,
    provenance_meta,
    run_scheme,
)
from .report import ascii_series, percent, text_table
from .result import ExperimentResult, freeze_series

__all__ = ["Fig6Result", "run"]

ALPHAS = (0.8, 1.0, 1.2)
SCHEMES = ("BGP", "MIRO", "MIFO")
DEPLOYMENT = 0.5


@dataclasses.dataclass
class Fig6Result:
    """Paper Fig. 6: throughput under power-law traffic."""
    scale_name: str
    #: (alpha, scheme) -> fluid result
    results: dict[tuple[float, str], FluidSimResult]

    def cdf(self, alpha: float, scheme: str) -> Cdf:
        """Throughput CDF for one (alpha, scheme) cell."""
        return Cdf.from_samples(self.results[(alpha, scheme)].throughputs_bps())

    def fraction_at_least(self, alpha: float, scheme: str, mbps: float = 500.0) -> float:
        """Fraction of flows at or above ``mbps``."""
        return self.cdf(alpha, scheme).fraction_at_least(mbps * 1e6)

    @property
    def alphas(self) -> list[float]:
        """Power-law exponents present, ascending."""
        return sorted({a for a, _s in self.results})

    def rows(self) -> list[list[object]]:
        """Table rows: one per (alpha, scheme)."""
        rows = []
        for alpha in self.alphas:
            for scheme in SCHEMES:
                c = self.cdf(alpha, scheme)
                rows.append(
                    [
                        f"{alpha:.1f}",
                        scheme,
                        f"{c.median / 1e6:.0f}",
                        percent(c.fraction_at_least(500e6)),
                    ]
                )
        return rows

    def render(self) -> str:
        """Human-readable report table."""
        table = text_table(
            ["alpha", "Scheme", "Median Mbps", ">=500 Mbps"],
            self.rows(),
            title=(
                "Figure 6: Throughput under power-law traffic "
                f"(50% deployment, scale={self.scale_name})"
            ),
        )
        plots = []
        for alpha in self.alphas:
            series: dict[str, list[tuple[float, float]]] = {}
            for scheme in SCHEMES:
                xs, ys = self.cdf(alpha, scheme).series(points=40, lo=0.0, hi=1e9)
                series[scheme] = list(zip(xs / 1e6, ys))
            plots.append(
                ascii_series(
                    series,
                    title=f"Fig 6 (alpha={alpha}): CDF(%) vs throughput (Mbps)",
                    xlabel="Mbps",
                    ylabel="CDF %",
                )
            )
        return table + "\n\n" + "\n\n".join(plots)


@instrumented_run
def run(
    scale: str = "default",
    *,
    backend: str = "dict",
    workers: int | None = 1,
    alphas: Sequence[float] = ALPHAS,
    deployment: float = DEPLOYMENT,
    solver: str = "incremental",
) -> ExperimentResult:
    """Reproduce paper Fig. 6 (power-law traffic matrices)."""
    sc = get_scale(scale)
    ctx = SharedContext.get(sc, backend=backend, workers=workers)
    capable = deployment_sample(ctx.graph, deployment)
    # The paper uses one million content providers; we use every AS ranked
    # by connectivity, capped to keep the Zipf tail meaningful at scale.
    n_providers = max(50, sc.n_ases // 20)
    results: dict[tuple[float, str], FluidSimResult] = {}
    for alpha in alphas:
        specs = powerlaw_matrix(
            ctx.graph,
            TrafficConfig(
                n_flows=sc.n_flows,
                arrival_rate=sc.arrival_rate,
                alpha=alpha,
                seed=sc.seed + 2,
            ),
            n_providers=n_providers,
        )
        for scheme in SCHEMES:
            results[(alpha, scheme)] = run_scheme(
                ctx, scheme, capable, specs, solver=solver
            )
    raw = Fig6Result(scale_name=sc.name, results=results)

    series: dict[str, list[tuple[float, float]]] = {}
    meta: dict[str, object] = {**provenance_meta(ctx), "deployment": deployment}
    with tm.span("metrics.compute"):
        for alpha in raw.alphas:
            for scheme in SCHEMES:
                c = raw.cdf(alpha, scheme)
                xs, ys = c.series(points=40, lo=0.0, hi=1e9)
                series[f"alpha={alpha:.1f} {scheme}"] = list(zip(xs / 1e6, ys))
                meta[f"median_mbps[alpha={alpha:.1f} {scheme}]"] = c.median / 1e6
                meta[f"frac_ge_500mbps[alpha={alpha:.1f} {scheme}]"] = (
                    c.fraction_at_least(500e6)
                )
    return ExperimentResult(
        name="fig6", scale=sc.name, series=freeze_series(series), meta=meta, raw=raw
    )
