"""The unified experiment result type.

Every experiment module exposes one entry point with one signature::

    run(scale, *, backend="dict", workers=1, **extras) -> ExperimentResult

``backend`` selects the routing implementation (``dict`` oracle or the
vectorized ``array`` backend) and ``workers`` how many processes the
parallel routing engine may fork; both flow through
:class:`~repro.experiments.common.SharedContext` so results are
backend-independent by construction (the cross-validation suite enforces
it).

:class:`ExperimentResult` is the common frozen envelope: a ``name``, the
``scale`` it ran at, plot-ready ``series`` (label -> ``(x, y)`` points),
scalar ``meta`` headlines, and :meth:`to_json` for machine consumers.
The figure-specific rich result object rides along as ``raw`` for callers
that need the full typed API (benchmarks, the gnuplot exporter) —
``result.raw.cdf(...)``, ``result.raw.improvement`` and friends.  The
deprecated ``__getattr__`` forwarding shim that used to bridge
pre-redesign call sites (``result.cdf(...)`` warning then delegating) is
gone: attribute access that misses on the envelope now raises
:class:`AttributeError` like any frozen dataclass.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

__all__ = ["ExperimentResult", "PROVENANCE_KEYS", "freeze_series"]

#: ``meta`` keys that record *how* a result was computed (backend, cache
#: counters, telemetry timings) rather than *what* was computed.
#: Everything outside this set is part of the byte-identical cross-backend
#: determinism contract.
PROVENANCE_KEYS: frozenset[str] = frozenset(
    {"backend", "workers", "routing_cache", "telemetry", "scenario_engine"}
)


def freeze_series(series: dict) -> dict[str, tuple[tuple[float, float], ...]]:
    """Normalize a ``label -> points`` mapping to hashable float tuples."""
    return {
        str(label): tuple((float(x), float(y)) for x, y in points)
        for label, points in series.items()
    }


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """What every experiment's ``run()`` returns."""

    name: str  #: registry name ("fig5", "table1", ...)
    scale: str  #: scale preset name the run used
    series: dict[str, tuple[tuple[float, float], ...]]  #: label -> points
    meta: dict[str, Any]  #: scalar headlines (medians, fractions, timings)
    raw: Any = dataclasses.field(default=None, repr=False, compare=False)

    def to_json(
        self, *, indent: int | None = None, include_provenance: bool = True
    ) -> str:
        """JSON of everything except ``raw`` (which is figure-specific).

        ``include_provenance=False`` drops the :data:`PROVENANCE_KEYS`
        meta entries, leaving exactly the payload the determinism
        guarantee covers — two runs of one experiment must produce
        byte-identical output regardless of routing backend or worker
        count (``tests/experiments/test_determinism.py`` enforces this).
        """
        meta = self.meta
        if not include_provenance:
            meta = {k: v for k, v in meta.items() if k not in PROVENANCE_KEYS}
        return json.dumps(
            {
                "name": self.name,
                "scale": self.scale,
                "series": {k: [list(p) for p in v] for k, v in self.series.items()},
                "meta": meta,
            },
            indent=indent,
            sort_keys=True,
            default=str,
        )

    def render(self) -> str:
        """Human-readable report (delegates to the rich result)."""
        raw = self.raw
        if raw is not None and hasattr(raw, "render"):
            return raw.render()
        return self.to_json(indent=2)
