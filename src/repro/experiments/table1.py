"""Table I — attributes of the AS-topology data set.

Paper values (UCLA IRL trace, Nov 2014): 44,340 nodes, 109,360 links,
75,046 provider–customer links (69%), 34,314 peering links (31%).  Our
synthetic generator reproduces the relationship mix exactly and the link/
node ratio approximately at any scale; this experiment reports the
generated attributes side by side with the paper's row.
"""

from __future__ import annotations

import dataclasses

from ..topology.stats import TopologyStats, topology_stats
from .. import telemetry as tm
from .common import SharedContext, get_scale, instrumented_run, provenance_meta
from .report import percent, text_table
from .result import ExperimentResult

__all__ = ["PAPER_TABLE1", "Table1Result", "run"]

#: The paper's Table I row.
PAPER_TABLE1 = {
    "# of Nodes": 44_340,
    "# of Links": 109_360,
    "P/C Links": 75_046,
    "Peering Links": 34_314,
}


@dataclasses.dataclass(frozen=True)
class Table1Result:
    """Paper Table I: topology attributes vs the paper's data."""
    stats: TopologyStats
    scale_name: str

    def rows(self) -> list[list[object]]:
        """Two rows: the paper's data-set and ours."""
        ours = self.stats.as_table_row()
        return [
            ["paper (11/2014)"] + [PAPER_TABLE1[k] for k in PAPER_TABLE1],
            [f"ours ({self.scale_name})"] + [ours[k] for k in PAPER_TABLE1],
        ]

    def render(self) -> str:
        """Human-readable report table."""
        table = text_table(
            ["Data-set"] + list(PAPER_TABLE1), self.rows(), title="Table I: Attributes of Data-set"
        )
        extra = (
            f"\nrelationship mix: P/C {percent(self.stats.p2c_fraction)} "
            f"(paper 69%), peering {percent(self.stats.peering_fraction)} (paper 31%); "
            f"multihomed ASes {percent(self.stats.multihomed_fraction)}"
        )
        return table + extra


@instrumented_run
def run(
    scale: str = "default",
    *,
    backend: str = "dict",
    workers: int | None = 1,
) -> ExperimentResult:
    """Reproduce paper Table I (topology attributes)."""
    sc = get_scale(scale)
    ctx = SharedContext.get(sc, backend=backend, workers=workers)
    with tm.span("metrics.compute"):
        raw = Table1Result(stats=topology_stats(ctx.graph), scale_name=sc.name)
        meta: dict[str, object] = {
            **provenance_meta(ctx),
            "n_nodes": raw.stats.n_nodes,
            "n_links": raw.stats.n_links,
            "p2c_fraction": raw.stats.p2c_fraction,
            "peering_fraction": raw.stats.peering_fraction,
        }
    return ExperimentResult(
        name="table1", scale=sc.name, series={}, meta=meta, raw=raw
    )
