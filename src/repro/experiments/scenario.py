"""Dynamic-scenario experiment — timelines through the unified API.

Runs a named :mod:`repro.scenario` timeline (link flaps, capacity
degradation, traffic ramps, flash crowds, scripted congestion onset) over
a persistent MIFO flow population and reports per-event dynamics: how
many destinations went dirty, how many flows moved, where congestion sat,
and what throughput the population sustained — the paper's motivating
"congestion appears, MIFO reacts" story as a first-class experiment
rather than a static before/after pair.

``mode`` selects the control-plane update policy: ``"incremental"``
(dirty-set re-propagation + warm-started re-solves) or ``"full"`` (the
recompute-everything baseline).  The two are byte-identical in the
determinism-checked payload — only provenance (and wall-clock) differ —
so the cross-validation suite runs every scenario in both modes and
diffs the serialized results.
"""

from __future__ import annotations

import dataclasses

from .. import telemetry as tm
from ..scenario.engine import ScenarioConfig, ScenarioEngine, ScenarioRun
from ..scenario.events import ScenarioSpec, get_scenario
from ..traffic.matrix import TrafficConfig, uniform_matrix
from .common import SharedContext, get_scale, instrumented_run, provenance_meta
from .report import text_table
from .result import ExperimentResult, freeze_series

__all__ = ["ScenarioExperimentResult", "run"]


@dataclasses.dataclass
class ScenarioExperimentResult:
    """Rich result: the :class:`~repro.scenario.engine.ScenarioRun` plus
    rendering."""

    scale_name: str
    run: ScenarioRun

    def rows(self) -> list[list[object]]:
        """Table rows: one per timeline event."""
        return [
            [
                r.index,
                f"{r.time_s:g}",
                r.kind,
                r.target,
                r.dirty_dests,
                r.flows_rerouted,
                r.flows_unroutable,
                r.congested_links,
                r.deflected_flows,
                f"{r.mean_rate_mbps:.1f}",
            ]
            for r in self.run.records
        ]

    def render(self) -> str:
        """Per-event table plus control-plane/solver summary."""
        run = self.run
        table = text_table(
            [
                "#",
                "t(s)",
                "event",
                "target",
                "dirty",
                "rerouted",
                "unroutable",
                "congested",
                "deflected",
                "mean Mbps",
            ],
            self.rows(),
            title=(
                f"Scenario {run.scenario!r} ({run.mode} mode, "
                f"scale={self.scale_name})"
            ),
        )
        summary = (
            f"\ncontrol plane: {run.dests_recomputed} destination(s) "
            f"re-converged, {run.dests_rebased} rebased unchanged"
            f"\nmax-min:       {run.warm_solves} solve(s), "
            f"{run.warm_hits} memoized"
        )
        return table + summary


@instrumented_run
def run(
    scale: str = "default",
    *,
    backend: str = "dict",
    workers: int | None = 1,
    scenario: str | ScenarioSpec = "link_flap",
    mode: str = "incremental",
    detector: str = "oracle",
    n_flows: int | None = None,
    verify: bool = True,
    crosscheck: bool = False,
) -> ExperimentResult:
    """Play one scenario timeline and package the per-event dynamics.

    ``scenario`` is a built-in name (see
    :data:`repro.scenario.events.SCENARIOS`) or a custom
    :class:`~repro.scenario.events.ScenarioSpec`.  ``detector`` selects
    the congestion signal driving deflection (``"oracle"`` hysteresis
    bits, or a measurement-driven ``"threshold"``/``"changepoint"``
    detector over per-path RTT samples).  ``n_flows`` overrides
    the base demand population (default: a quarter of the scale's flow
    count — every event re-solves the whole population, so scenario
    workloads run leaner than one-shot experiments).  ``verify`` keeps
    the per-event invariant gate on; ``crosscheck`` additionally diffs
    incremental state against a full recomputation after every event
    (slow — tests and CI).
    """
    sc = get_scale(scale)
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    # Reuse the memoized per-scale topology; routing state is the
    # engine's own (the shared cache stays untouched by design — its
    # destinations must reflect the *static* graph for ``ctx.verify()``).
    ctx = SharedContext.get(sc, backend=backend, workers=workers)
    demands = uniform_matrix(
        ctx.graph,
        TrafficConfig(
            n_flows=n_flows if n_flows is not None else max(50, sc.n_flows // 4),
            arrival_rate=sc.arrival_rate,
            seed=sc.seed + 11,
        ),
    )
    engine = ScenarioEngine(
        ctx.graph,
        demands,
        spec,
        backend=backend,
        seed=sc.seed,
        config=ScenarioConfig(
            mode=mode, verify=verify, crosscheck=crosscheck, detector=detector
        ),
    )
    srun = engine.run()
    raw = ScenarioExperimentResult(scale_name=sc.name, run=srun)

    with tm.span("metrics.compute"):
        recs = srun.records
        series = {
            "dirty destinations": [(r.time_s, float(r.dirty_dests)) for r in recs],
            "flows rerouted": [(r.time_s, float(r.flows_rerouted)) for r in recs],
            "congested links": [(r.time_s, float(r.congested_links)) for r in recs],
            "deflected flows": [(r.time_s, float(r.deflected_flows)) for r in recs],
            "mean rate (Mbps)": [(r.time_s, r.mean_rate_mbps) for r in recs],
            "total throughput (Gbps)": [
                (r.time_s, r.total_throughput_gbps) for r in recs
            ],
        }
        meta: dict[str, object] = {
            **provenance_meta(ctx),
            "scenario": srun.scenario,
            "detector": detector,
            "n_events": srun.n_events,
            "n_flows": recs[-1].flows_total if recs else 0,
            "final_unroutable": recs[-1].flows_unroutable if recs else 0,
            "total_rerouted": sum(r.flows_rerouted for r in recs),
            "verified_dests": sum(r.verified_dests for r in recs),
            # How the run updated state — provenance, not payload: the
            # two modes are byte-identical everywhere else.
            "scenario_engine": {
                "mode": srun.mode,
                "dests_recomputed": srun.dests_recomputed,
                "dests_rebased": srun.dests_rebased,
                "warm_solves": srun.warm_solves,
                "warm_hits": srun.warm_hits,
            },
        }
    return ExperimentResult(
        name="scenario",
        scale=sc.name,
        series=freeze_series(series),
        meta=meta,
        raw=raw,
    )
