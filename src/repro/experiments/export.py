"""Export experiment series as gnuplot-compatible ``.dat`` files.

The paper's figures are classic gnuplot plots; this module writes each
experiment's series in the two-column (or multi-column) whitespace format
gnuplot's ``plot "file.dat" using 1:2 with lines`` consumes, so anyone can
re-typeset the figures with the original toolchain:

``export_all(out_dir)`` dumps every figure's series after running the
experiments at the requested scale.
"""

from __future__ import annotations

import os
import pathlib
import types
from collections.abc import Iterable, Sequence
from typing import Any

from ..metrics.cdf import Cdf
from . import fig5, fig6, fig7, fig8, fig9, fig12

__all__ = ["write_dat", "export_all"]


def write_dat(
    path: str | os.PathLike,
    rows: Iterable[Sequence[float]],
    *,
    columns: Sequence[str],
    comment: str | None = None,
) -> None:
    """Write one gnuplot data file with a commented header."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    lines = []
    if comment:
        for line in comment.splitlines():
            lines.append(f"# {line}")
    lines.append("# " + "\t".join(columns))
    for row in rows:
        lines.append("\t".join(f"{v:.6g}" for v in row))
    p.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _cdf_rows(
    cdf: Cdf, *, points: int = 60, hi: float = 1e9
) -> list[tuple[float, float]]:
    xs, ys = cdf.series(points=points, lo=0.0, hi=hi)
    return [(x / 1e6, y) for x, y in zip(xs, ys)]


def export_all(
    out_dir: str | os.PathLike,
    scale: str = "bench",
    *,
    backend: str = "dict",
    workers: int | None = 1,
) -> list[pathlib.Path]:
    """Run every figure experiment and dump its series; returns paths."""
    out = pathlib.Path(out_dir)
    written: list[pathlib.Path] = []

    def figure(mod: types.ModuleType) -> Any:
        return mod.run(scale, backend=backend, workers=workers).raw

    def emit(
        name: str,
        rows: Iterable[Sequence[float]],
        columns: Sequence[str],
        comment: str,
    ) -> None:
        path = out / f"{name}.dat"
        write_dat(path, rows, columns=columns, comment=comment)
        written.append(path)

    r5 = figure(fig5)
    for dep in r5.deployments:
        for scheme in ("BGP", "MIRO", "MIFO"):
            emit(
                f"fig5_{int(dep * 100)}pct_{scheme.lower()}",
                _cdf_rows(r5.cdf(dep, scheme)),
                ["throughput_mbps", "cdf_percent"],
                f"Fig 5, {dep:.0%} deployment, {scheme}",
            )

    r6 = figure(fig6)
    for alpha in r6.alphas:
        for scheme in ("BGP", "MIRO", "MIFO"):
            emit(
                f"fig6_alpha{alpha:.1f}_{scheme.lower()}".replace(".", "_", 1),
                _cdf_rows(r6.cdf(alpha, scheme)),
                ["throughput_mbps", "cdf_percent"],
                f"Fig 6, alpha={alpha}, {scheme}",
            )

    r7 = figure(fig7)
    for label, series in r7.series().items():
        safe = label.replace("% ", "pct_").replace("%", "pct").lower()
        emit(
            f"fig7_{safe}",
            series,
            ["pct_of_pairs", "log10_paths"],
            f"Fig 7, {label}",
        )

    r8 = figure(fig8)
    emit(
        "fig8_offload",
        [(dep * 100, r8.offload(dep) * 100) for dep in sorted(r8.results)],
        ["deployment_pct", "offload_pct"],
        "Fig 8, traffic on alternative paths",
    )

    r9 = figure(fig9)
    emit(
        "fig9_switches",
        [
            (k, r9.distribution.fraction_of_switching(k) * 100)
            for k in range(1, 6)
        ],
        ["switch_count", "pct_of_switching_flows"],
        "Fig 9, path switch distribution",
    )

    r12 = figure(fig12)
    for run_ in (r12.bgp, r12.mifo):
        emit(
            f"fig12a_{run_.scheme.lower()}",
            [(t, v / 1e9) for t, v in run_.throughput_series],
            ["time_s", "aggregate_gbps"],
            f"Fig 12(a), {run_.scheme}",
        )
        fx, fy = run_.fct_cdf().series(points=40)
        emit(
            f"fig12b_{run_.scheme.lower()}",
            list(zip(fx, fy)),
            ["fct_s", "cdf_percent"],
            f"Fig 12(b), {run_.scheme}",
        )

    return written
