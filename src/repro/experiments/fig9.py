"""Figure 9 — path-switch distribution (MIFO stability).

The paper counts per-flow path switches (deflections + resumptions) under
full MIFO deployment: 67.7% of switching flows switch exactly once and
97.5% at most twice — i.e. traffic does not thrash between paths.
"""

from __future__ import annotations

import dataclasses

from .. import telemetry as tm
from ..flowsim.simulator import FluidSimResult
from ..metrics.stability import SwitchDistribution, switch_distribution
from ..traffic.matrix import TrafficConfig, uniform_matrix
from .common import (
    SharedContext,
    deployment_sample,
    get_scale,
    instrumented_run,
    provenance_meta,
    run_scheme,
)
from .report import percent, text_table
from .result import ExperimentResult, freeze_series

__all__ = ["Fig9Result", "run", "PAPER_ONE_SWITCH", "PAPER_AT_MOST_TWO"]

PAPER_ONE_SWITCH = 0.677
PAPER_AT_MOST_TWO = 0.975


@dataclasses.dataclass
class Fig9Result:
    """Paper Fig. 9: path-switch stability distribution."""
    scale_name: str
    result: FluidSimResult
    distribution: SwitchDistribution

    def rows(self) -> list[list[object]]:
        """Table rows: switch-count buckets."""
        rows = []
        for k in range(1, 6):
            label = f"{k}" if k < 5 else ">=5"
            rows.append([label, percent(self.distribution.fraction_of_switching(k))])
        return rows

    def render(self) -> str:
        """Human-readable report table."""
        d = self.distribution
        table = text_table(
            ["# of path switches", "% of switching flows"],
            self.rows(),
            title=f"Figure 9: Path switch distribution (scale={self.scale_name})",
        )
        summary = (
            f"\nswitching flows: {percent(d.fraction_switching)} of all flows"
            f"\nexactly one switch: {percent(d.fraction_of_switching(1))} (paper {percent(PAPER_ONE_SWITCH)})"
            f"\nat most two:        {percent(d.fraction_at_most(2))} (paper {percent(PAPER_AT_MOST_TWO)})"
        )
        return table + summary


@instrumented_run
def run(
    scale: str = "default",
    *,
    backend: str = "dict",
    workers: int | None = 1,
    solver: str = "incremental",
) -> ExperimentResult:
    """Reproduce paper Fig. 9 (path-switch stability)."""
    sc = get_scale(scale)
    ctx = SharedContext.get(sc, backend=backend, workers=workers)
    specs = uniform_matrix(
        ctx.graph,
        TrafficConfig(
            n_flows=sc.n_flows, arrival_rate=sc.arrival_rate, seed=sc.seed + 5
        ),
    )
    capable = deployment_sample(ctx.graph, 1.0)
    result = run_scheme(ctx, "MIFO", capable, specs, solver=solver)
    raw = Fig9Result(
        scale_name=sc.name,
        result=result,
        distribution=switch_distribution(result.records),
    )

    with tm.span("metrics.compute"):
        d = raw.distribution
        series = {
            "% of switching flows": [
                (float(k), d.fraction_of_switching(k) * 100) for k in range(1, 6)
            ]
        }
        meta: dict[str, object] = {
            **provenance_meta(ctx),
            "fraction_switching": d.fraction_switching,
            "fraction_one_switch": d.fraction_of_switching(1),
            "fraction_at_most_two": d.fraction_at_most(2),
        }
    return ExperimentResult(
        name="fig9", scale=sc.name, series=freeze_series(series), meta=meta, raw=raw
    )
