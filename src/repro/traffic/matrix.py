"""Traffic matrix generation (paper Section IV).

Two generators, matching the paper's two workloads:

* **uniform** — source and destination drawn uniformly at random from AS
  pairs ("to analyze MIFO in a generic manner");
* **power-law** — popular content providers produce traffic toward stub
  consumers, with provider popularity Zipf-distributed:
  ``F(i) = a * i^-alpha`` over providers ranked by connectivity (number of
  providers + peers), "the higher a content provider ranks, more of its
  traffic is consumed".

Flow start times follow a Poisson process (default mean 100 flows/s); flow
size defaults to 10 MB; all seeded.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ConfigError
from ..flowsim.flow import FlowSpec
from ..topology.asgraph import ASGraph

__all__ = [
    "TrafficConfig",
    "uniform_pairs",
    "powerlaw_pairs",
    "poisson_start_times",
    "uniform_matrix",
    "powerlaw_matrix",
    "content_provider_ranking",
    "zipf_weights",
]


def zipf_weights(k: int, alpha: float) -> np.ndarray:
    """Normalized Zipf probabilities ``i^-alpha`` over ranks ``1..k``.

    The shared popularity law behind the power-law matrix (Fig. 6) and
    the streaming service's arrival sampler — one definition so both
    workloads skew identically.
    """
    if k <= 0:
        raise ConfigError("zipf_weights needs at least one rank")
    if alpha <= 0:
        raise ConfigError("zipf alpha must be positive")
    weights = np.arange(1, k + 1, dtype=np.float64) ** -alpha
    weights /= weights.sum()
    return weights


@dataclasses.dataclass(frozen=True)
class TrafficConfig:
    """Workload parameters (paper defaults).

    ``size_distribution`` extends the paper's fixed 10 MB flows:
    ``"fixed"`` (the paper), ``"lognormal"`` (heavy-ish tail around the
    mean; ``size_sigma`` is the log-scale std-dev), or ``"pareto"``
    (classic heavy tail with shape ``size_shape > 1``); both alternatives
    keep the configured mean flow size so load levels stay comparable.
    """

    n_flows: int = 1000
    flow_size_bytes: float = 10e6  #: 10 MB
    arrival_rate: float = 100.0  #: mean flow starts per second (Poisson)
    alpha: float = 1.0  #: Zipf skew for the power-law matrix
    seed: int = 1
    size_distribution: str = "fixed"
    size_sigma: float = 1.0  #: lognormal log-std-dev
    size_shape: float = 1.5  #: Pareto shape (must be > 1 for finite mean)

    def validate(self) -> None:
        """Reject inconsistent workload parameters."""
        if self.n_flows <= 0:
            raise ConfigError("n_flows must be positive")
        if self.arrival_rate <= 0:
            raise ConfigError("arrival_rate must be positive")
        if self.alpha <= 0:
            raise ConfigError("alpha must be positive")
        if self.size_distribution not in ("fixed", "lognormal", "pareto"):
            raise ConfigError(
                f"unknown size_distribution {self.size_distribution!r}"
            )
        if self.size_distribution == "pareto" and self.size_shape <= 1.0:
            raise ConfigError("pareto size_shape must exceed 1 (finite mean)")
        if self.size_distribution == "lognormal" and self.size_sigma <= 0:
            raise ConfigError("lognormal size_sigma must be positive")

    def sample_sizes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Per-flow sizes in bytes with mean ``flow_size_bytes``."""
        mean = self.flow_size_bytes
        if self.size_distribution == "fixed":
            return np.full(n, mean)
        if self.size_distribution == "lognormal":
            sigma = self.size_sigma
            mu = np.log(mean) - sigma * sigma / 2.0  # mean-preserving
            return np.maximum(rng.lognormal(mu, sigma, size=n), 1.0)
        # pareto: scale so the mean equals flow_size_bytes
        shape = self.size_shape
        scale = mean * (shape - 1.0) / shape
        return scale * (1.0 + rng.pareto(shape, size=n))


def poisson_start_times(
    n: int, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Cumulative sums of exponential inter-arrivals — a Poisson process."""
    return np.cumsum(rng.exponential(1.0 / rate, size=n))


def uniform_pairs(
    graph: ASGraph, n: int, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """``n`` (src, dst) pairs drawn uniformly from distinct AS pairs."""
    nodes = np.fromiter(graph.nodes(), dtype=np.int64)
    src = rng.choice(nodes, size=n)
    dst = rng.choice(nodes, size=n)
    clash = src == dst
    while clash.any():
        dst[clash] = rng.choice(nodes, size=int(clash.sum()))
        clash = src == dst
    return list(zip(src.tolist(), dst.tolist()))


def content_provider_ranking(graph: ASGraph) -> list[int]:
    """ASes ranked by connectivity (providers + peers, descending) — the
    paper's popularity proxy for content providers."""
    nodes = list(graph.nodes())
    nodes.sort(
        key=lambda n: (-(len(graph.providers(n)) + len(graph.peers(n))), n)
    )
    return nodes


def powerlaw_pairs(
    graph: ASGraph,
    n: int,
    alpha: float,
    rng: np.random.Generator,
    *,
    n_providers: int | None = None,
) -> list[tuple[int, int]]:
    """Power-law matrix: Zipf-ranked content providers → random stubs.

    The i-th ranked provider sources a flow with probability
    ``a * i^-alpha``; the consumer is a uniformly chosen stub AS.
    """
    ranked = content_provider_ranking(graph)
    if n_providers is not None:
        ranked = ranked[:n_providers]
    weights = zipf_weights(len(ranked), alpha)
    providers = np.asarray(ranked, dtype=np.int64)
    stubs = np.asarray(graph.stub_ases(), dtype=np.int64)
    if stubs.size == 0:
        raise ConfigError("graph has no stub ASes to consume traffic")
    src = rng.choice(providers, size=n, p=weights)
    dst = rng.choice(stubs, size=n)
    clash = src == dst
    while clash.any():
        dst[clash] = rng.choice(stubs, size=int(clash.sum()))
        clash = src == dst
    return list(zip(src.tolist(), dst.tolist()))


def _to_specs(
    pairs: list[tuple[int, int]], cfg: TrafficConfig, rng: np.random.Generator
) -> list[FlowSpec]:
    starts = poisson_start_times(len(pairs), cfg.arrival_rate, rng)
    sizes = cfg.sample_sizes(len(pairs), rng)
    return [
        FlowSpec(
            flow_id=i,
            src=s,
            dst=d,
            size_bytes=float(size),
            start_time=float(t),
        )
        for i, ((s, d), t, size) in enumerate(zip(pairs, starts, sizes))
    ]


def uniform_matrix(graph: ASGraph, cfg: TrafficConfig) -> list[FlowSpec]:
    """The paper's uniformly distributed traffic matrix (Fig. 5)."""
    cfg.validate()
    rng = np.random.default_rng(cfg.seed)
    return _to_specs(uniform_pairs(graph, cfg.n_flows, rng), cfg, rng)


def powerlaw_matrix(
    graph: ASGraph, cfg: TrafficConfig, *, n_providers: int | None = None
) -> list[FlowSpec]:
    """The paper's power-law content-provider matrix (Fig. 6)."""
    cfg.validate()
    rng = np.random.default_rng(cfg.seed)
    pairs = powerlaw_pairs(graph, cfg.n_flows, cfg.alpha, rng, n_providers=n_providers)
    return _to_specs(pairs, cfg, rng)
