"""Traffic generation (system S8 in DESIGN.md)."""

from .trace import dumps_trace, load_trace, loads_trace, save_trace
from .matrix import (
    TrafficConfig,
    content_provider_ranking,
    poisson_start_times,
    powerlaw_matrix,
    powerlaw_pairs,
    uniform_matrix,
    uniform_pairs,
)

__all__ = [
    "TrafficConfig",
    "poisson_start_times",
    "uniform_pairs",
    "powerlaw_pairs",
    "uniform_matrix",
    "powerlaw_matrix",
    "content_provider_ranking",
    "load_trace",
    "loads_trace",
    "save_trace",
    "dumps_trace",
]
