"""Flow-trace import/export: replay external workloads.

The paper generates synthetic matrices because "a complete view of
interdomain traffic matrix is difficult to obtain because of proprietary
restrictions" (Section IV).  Downstream users who *do* hold a flow trace
(NetFlow-derived or otherwise) can replay it through the simulators with
this loader.  Format: CSV with header
``flow_id,src,dst,size_bytes,start_time`` — comment lines start with
``#``; columns beyond the five are ignored.
"""

from __future__ import annotations

import csv
import io
import os
from collections.abc import Iterable

from ..errors import ConfigError
from ..flowsim.flow import FlowSpec

__all__ = ["load_trace", "loads_trace", "save_trace", "dumps_trace"]

_COLUMNS = ("flow_id", "src", "dst", "size_bytes", "start_time")


def loads_trace(text: str) -> list[FlowSpec]:
    """Parse a flow trace from CSV text."""
    lines = [l for l in text.splitlines() if l.strip() and not l.lstrip().startswith("#")]
    if not lines:
        return []
    reader = csv.DictReader(lines)
    missing = set(_COLUMNS) - set(reader.fieldnames or ())
    if missing:
        raise ConfigError(f"trace is missing columns: {sorted(missing)}")
    specs: list[FlowSpec] = []
    seen_ids: set[int] = set()
    for lineno, row in enumerate(reader, start=2):
        try:
            spec = FlowSpec(
                flow_id=int(row["flow_id"]),
                src=int(row["src"]),
                dst=int(row["dst"]),
                size_bytes=float(row["size_bytes"]),
                start_time=float(row["start_time"]),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"trace line {lineno}: bad field ({exc})") from exc
        if spec.size_bytes <= 0:
            raise ConfigError(f"trace line {lineno}: non-positive size")
        if spec.start_time < 0:
            raise ConfigError(f"trace line {lineno}: negative start time")
        if spec.src == spec.dst:
            raise ConfigError(f"trace line {lineno}: src == dst == {spec.src}")
        if spec.flow_id in seen_ids:
            raise ConfigError(f"trace line {lineno}: duplicate flow_id {spec.flow_id}")
        seen_ids.add(spec.flow_id)
        specs.append(spec)
    specs.sort(key=lambda s: (s.start_time, s.flow_id))
    return specs


def load_trace(path: str | os.PathLike) -> list[FlowSpec]:
    """Load a flow trace from a CSV file."""
    with io.open(path, "r", encoding="utf-8") as fh:
        return loads_trace(fh.read())


def dumps_trace(specs: Iterable[FlowSpec], *, header_comment: str | None = None) -> str:
    """Serialize flow specs to trace CSV."""
    out = io.StringIO()
    if header_comment:
        for line in header_comment.splitlines():
            out.write(f"# {line}\n")
    writer = csv.writer(out)
    writer.writerow(_COLUMNS)
    for s in specs:
        writer.writerow([s.flow_id, s.src, s.dst, repr(s.size_bytes), repr(s.start_time)])
    return out.getvalue()


def save_trace(
    specs: Iterable[FlowSpec],
    path: str | os.PathLike,
    *,
    header_comment: str | None = None,
) -> None:
    """Write flow specs to a CSV trace file."""
    with io.open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_trace(specs, header_comment=header_comment))
