"""Message-level BGP convergence model.

Every AS runs a :class:`Speaker` holding an Adj-RIB-In and a Loc-RIB; route
announcements propagate along a work queue until a fixed point.  Under
Gao–Rexford policies (valley-free export + customer>peer>provider
preference) convergence is guaranteed [Gao & Rexford 2001], so the loop is
safe.  This model is exponentially slower than the three-stage computation
in :mod:`repro.bgp.propagation` but is *exact by construction* — the test
suite uses it as the oracle, and the Fig-11 testbed experiment uses it for
its six-AS control plane.
"""

from __future__ import annotations

from collections import deque

from ..errors import TopologyError
from ..topology.asgraph import ASGraph
from ..topology.relationships import Relationship
from .policy import can_export
from .rib import AdjRibIn, LocRib
from .route import Route

__all__ = ["Speaker", "BgpNetwork"]


class Speaker:
    """One AS's BGP state in the message-level model."""

    def __init__(self, asn: int) -> None:
        self.asn = asn
        self.adj_in = AdjRibIn(asn)
        self.loc_rib = LocRib(asn)

    def receive(self, dest: int, neighbor: int, route: Route | None) -> bool:
        """Process an announcement/withdrawal; True if best route changed."""
        if not self.adj_in.update(dest, neighbor, route):
            return False
        return self.loc_rib.reselect(dest, self.adj_in)

    def exported_route(
        self, dest: int, to_relationship: Relationship
    ) -> Route | None:
        """What this speaker announces toward a neighbor of the given
        relationship: its best route if export policy allows, else None
        (implicit withdrawal)."""
        best = self.loc_rib.best(dest)
        if best is None or not can_export(best, to_relationship):
            return None
        return best


class BgpNetwork:
    """All speakers of an AS graph plus the propagation engine."""

    def __init__(self, graph: ASGraph) -> None:
        if not graph.frozen:
            raise TopologyError("freeze() the graph first")
        self.graph = graph
        self.speakers = {asn: Speaker(asn) for asn in graph.nodes()}
        self._announced: set[int] = set()
        self._down_links: set[frozenset[int]] = set()

    def announce(self, dest: int, *, max_messages: int | None = None) -> int:
        """Originate ``dest``'s prefix and propagate to convergence.

        Returns the number of UPDATE messages processed.  ``max_messages``
        guards against runaway propagation in adversarial tests (raises
        ``RuntimeError`` when exceeded).
        """
        origin = self.speakers[dest]
        origin.loc_rib.originate(dest)
        self._announced.add(dest)
        return self._propagate(dest, deque([dest]), max_messages=max_messages)

    def _propagate(
        self,
        dest: int,
        pending: deque[int],
        *,
        max_messages: int | None = None,
        down_links: set[frozenset[int]] | None = None,
    ) -> int:
        """Drive UPDATE exchange to a fixed point from the given seeds."""
        down = down_links if down_links is not None else self._down_links
        queued = set(pending)
        messages = 0
        while pending:
            u = pending.popleft()
            queued.discard(u)
            speaker = self.speakers[u]
            for nb, rel_of_nb in self.graph.neighbors(u).items():
                if frozenset((u, nb)) in down:
                    continue  # session torn down with the link
                # Export toward nb: policy keyed on nb's relationship as
                # seen from u.
                route = speaker.exported_route(dest, rel_of_nb)
                announced = (
                    route.announced_by(u, self.graph.relationship(nb, u))
                    if route is not None
                    else None
                )
                messages += 1
                if max_messages is not None and messages > max_messages:
                    raise RuntimeError("BGP propagation exceeded message budget")
                if self.speakers[nb].receive(dest, u, announced) and nb not in queued:
                    pending.append(nb)
                    queued.add(nb)
        return messages

    # ------------------------------------------------------------------
    # dynamics: link failure and repair with re-convergence
    # ------------------------------------------------------------------
    def fail_link(self, u: int, v: int, *, max_messages: int | None = None) -> int:
        """Tear down the BGP session on link (u, v) and re-converge.

        Both ends treat every route previously learned over the session as
        withdrawn (RFC 4271 session-loss semantics) and propagate the
        consequences.  Returns the UPDATE message count of the churn.
        """
        if not self.graph.are_adjacent(u, v):
            raise TopologyError(f"no link between AS {u} and AS {v}")
        self._down_links.add(frozenset((u, v)))
        messages = 0
        for dest in sorted(self._announced):
            pending: deque[int] = deque()
            for x, peer in ((u, v), (v, u)):
                if self.speakers[x].receive(dest, peer, None):
                    pending.append(x)
            # Even if the best route did not change, x must re-announce
            # nothing; but neighbors only need updating when bests moved,
            # so seeding with the changed endpoints is sufficient.
            if pending:
                messages += self._propagate(dest, pending, max_messages=max_messages)
        return messages

    def restore_link(self, u: int, v: int, *, max_messages: int | None = None) -> int:
        """Re-establish the session on link (u, v) and re-converge."""
        key = frozenset((u, v))
        if key not in self._down_links:
            return 0
        self._down_links.discard(key)
        messages = 0
        for dest in sorted(self._announced):
            # Both ends re-advertise their current best over the new
            # session; propagation handles the rest.
            messages += self._propagate(dest, deque([u, v]), max_messages=max_messages)
        return messages

    # ------------------------------------------------------------------
    # converged-state queries (mirror DestinationRouting's API)
    # ------------------------------------------------------------------
    def best(self, x: int, dest: int) -> Route | None:
        """Best route of AS ``x`` toward ``dest``, if any."""
        return self.speakers[x].loc_rib.best(dest)

    def next_hop(self, x: int, dest: int) -> int | None:
        """Next hop of AS ``x`` toward ``dest``, if any."""
        return self.speakers[x].loc_rib.next_hop(dest)

    def best_path(self, x: int, dest: int) -> tuple[int, ...] | None:
        """Full best AS path from ``x`` to ``dest``, if any."""
        r = self.speakers[x].loc_rib.best(dest)
        if r is None:
            return None
        return (x,) + r.as_path

    def rib_neighbors(self, x: int, dest: int) -> list[int]:
        """Neighbors offering a route to ``dest`` — MIFO's alternatives."""
        if x == dest:
            return []
        return self.speakers[x].adj_in.neighbors_offering(dest)
