"""Routing information bases for the message-level BGP model.

These mirror a real BGP speaker's tables:

* :class:`AdjRibIn` — last route received from each neighbor (post import
  filter), per destination;
* :class:`LocRib` — the selected best route per destination.

The fast three-stage computation in :mod:`repro.bgp.propagation` produces
equivalent end state without materializing these; the message-level model in
:mod:`repro.bgp.speaker` uses them and exists as an oracle for tests and for
small-topology studies (e.g. the Fig-11 testbed control plane).
"""

from __future__ import annotations

from ..topology.relationships import Relationship
from .policy import accepts, select_best
from .route import Route

__all__ = ["AdjRibIn", "LocRib"]


class AdjRibIn:
    """Per-neighbor routes received by one AS, per destination."""

    def __init__(self, owner: int) -> None:
        self.owner = owner
        # dest -> neighbor -> Route
        self._routes: dict[int, dict[int, Route]] = {}

    def update(self, dest: int, neighbor: int, route: Route | None) -> bool:
        """Install (or withdraw, if ``route`` is None) a neighbor's route.

        Routes failing the import filter (AS-path contains owner) are
        treated as withdrawals.  Returns True if the table changed.
        """
        table = self._routes.setdefault(dest, {})
        if route is not None and not accepts(self.owner, route):
            route = None
        old = table.get(neighbor)
        if route is None:
            if old is None:
                return False
            del table[neighbor]
            return True
        if old == route:
            return False
        table[neighbor] = route
        return True

    def candidates(self, dest: int) -> list[Route]:
        """All routes held for ``dest``, one per neighbor."""
        return list(self._routes.get(dest, {}).values())

    def route_from(self, dest: int, neighbor: int) -> Route | None:
        """The route ``neighbor`` announced for ``dest``, if any."""
        return self._routes.get(dest, {}).get(neighbor)

    def neighbors_offering(self, dest: int) -> list[int]:
        """Neighbors currently offering a route — the MIFO alternative set."""
        return sorted(self._routes.get(dest, {}))


class LocRib:
    """Selected best route per destination for one AS."""

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._best: dict[int, Route] = {}

    def originate(self, dest: int) -> None:
        """Install a locally originated route (the owner is ``dest``)."""
        self._best[dest] = Route(dest=dest, as_path=(), learned_from=None)

    def reselect(self, dest: int, adj_in: AdjRibIn) -> bool:
        """Re-run best selection for ``dest``; returns True on change."""
        if dest in self._best and self._best[dest].is_local:
            return False  # local routes always win
        new = select_best(adj_in.candidates(dest))
        old = self._best.get(dest)
        if new == old:
            return False
        if new is None:
            del self._best[dest]
        else:
            self._best[dest] = new
        return True

    def best(self, dest: int) -> Route | None:
        """The selected best route for ``dest``, if any."""
        return self._best.get(dest)

    def destinations(self) -> list[int]:
        """Destinations with a selected route, ascending."""
        return sorted(self._best)

    def next_hop(self, dest: int) -> int | None:
        """Next hop of the best route for ``dest``, if any."""
        r = self._best.get(dest)
        return r.next_hop if r is not None else None

    def best_relationship(self, dest: int) -> Relationship | None:
        """Class (learned-from) of the best route, if any."""
        r = self._best.get(dest)
        return r.learned_from if r is not None else None
