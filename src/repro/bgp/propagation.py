"""Per-destination BGP route computation (system S2 in DESIGN.md).

For a destination AS *d*, this module computes — for every AS in the graph —
the Gao–Rexford outcome of BGP convergence under valley-free export and the
paper's selection rule, using the classic three-stage algorithm instead of
simulating message exchange (the slow message-level simulator in
:mod:`repro.bgp.speaker` exists to cross-validate this one on small graphs):

1. **customer routes** — breadth-first search from *d* climbing provider
   edges: an AS has a customer route iff *d* lies in its customer cone;
2. **peer routes** — one peer hop from any AS whose *best* route is a
   customer route (peers only export customer routes);
3. **provider routes** — multi-source Dijkstra descending customer edges,
   seeded with each AS's exported best length (providers export their best
   route, whatever its class, to customers).

The result object also materializes the **multi-path RIB** MIFO exploits:
for any AS *x*, the set of neighbors whose selected best route passes the
export filter toward *x* and does not contain *x* — i.e. the alternatives
present in *x*'s Adj-RIB-In with *zero* control-plane overhead (paper
Section II-B).

Loop-freedom of default forwarding is structural: each hop decreases the
best-route length by exactly one (the selected path of the next hop is the
tail of ours), so following ``next_hop`` pointers always terminates at *d*.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections import deque
from collections.abc import Iterable
from typing import TYPE_CHECKING, Protocol

from .. import telemetry as tm
from ..errors import NoRouteError, TopologyError
from ..topology.asgraph import ASGraph
from ..topology.relationships import Relationship, export_allowed, invert

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .parallel import ParallelRoutingEngine

__all__ = [
    "RibEntry",
    "RoutingView",
    "RoutingSource",
    "DestinationRouting",
    "compute_routing",
    "RoutingCache",
    "CacheStats",
]


@dataclasses.dataclass(frozen=True, slots=True)
class RibEntry:
    """One Adj-RIB-In alternative at some AS toward the destination.

    ``relationship`` is the announcing neighbor's relationship as seen from
    the RIB owner (this is the class that determines the route's local
    preference at the owner).  ``length`` is the full AS-hop distance to the
    destination via this neighbor.
    """

    neighbor: int
    length: int
    relationship: Relationship

    @property
    def selection_key(self) -> tuple[int, int, int]:
        """Sort key implementing Gao-Rexford route preference."""
        return (int(self.relationship), self.length, self.neighbor)


class RoutingView(Protocol):
    """Per-destination query interface shared by both routing backends.

    :class:`DestinationRouting` (dict oracle) and
    :class:`~repro.bgp.array_routing.ArrayDestinationRouting` (CSR) both
    satisfy it structurally; the cache, the verifier and every metric
    depend only on this surface, never on a concrete backend.
    """

    graph: ASGraph
    dest: int

    def has_route(self, x: int) -> bool: ...

    def best_class(self, x: int) -> Relationship | None: ...

    def best_len(self, x: int) -> int: ...

    def next_hop(self, x: int) -> int | None: ...

    def best_path(self, x: int) -> tuple[int, ...]: ...

    def rib(self, x: int, *, loop_filter: bool = True) -> tuple[RibEntry, ...]: ...

    def alternatives(self, x: int) -> tuple[RibEntry, ...]: ...

    def reachable_count(self) -> int: ...


class RoutingSource(Protocol):
    """Anything that yields a per-destination :class:`RoutingView` on call.

    :class:`RoutingCache` is the canonical implementation; the scenario
    engine's :class:`~repro.scenario.incremental.IncrementalRouting`
    satisfies it too, which is how :class:`~repro.mifo.deflection.MifoPathBuilder`
    stays oblivious to whether its routing state is static or evolving.
    """

    def __call__(self, dest: int) -> RoutingView: ...


class DestinationRouting:
    """Converged BGP state of the whole AS graph for one destination."""

    __slots__ = (
        "graph",
        "dest",
        "_cust_dist",
        "_peer_dist",
        "_export_len",
        "_best_class",
        "_next_hop",
        "_path_cache",
        "_rib_cache",
    )

    def __init__(self, graph: ASGraph, dest: int) -> None:
        if dest not in graph:
            raise TopologyError(f"destination AS {dest} not in graph")
        self.graph = graph
        self.dest = dest
        self._cust_dist: dict[int, int] = {}
        self._peer_dist: dict[int, int] = {}
        self._export_len: dict[int, int] = {}
        self._best_class: dict[int, Relationship | None] = {}
        self._next_hop: dict[int, int | None] = {}
        self._path_cache: dict[int, tuple[int, ...]] = {}
        self._rib_cache: dict[int, tuple[RibEntry, ...]] = {}
        with tm.span("bgp.propagate"):
            self._compute()
        tm.inc("bgp.destinations_converged")
        tm.inc("bgp.routes_propagated", len(self._best_class))

    # ------------------------------------------------------------------
    # the three-stage computation
    # ------------------------------------------------------------------
    def _compute(self) -> None:
        g = self.graph
        dest = self.dest
        cust = self._cust_dist
        peer = self._peer_dist
        export_len = self._export_len

        # Stage 1: customer routes — BFS climbing provider edges from dest.
        cust[dest] = 0
        frontier = deque([dest])
        while frontier:
            u = frontier.popleft()
            du = cust[u] + 1
            for p in g.providers(u):
                if p not in cust:
                    cust[p] = du
                    frontier.append(p)

        # Stage 2: peer routes — one peer hop off the customer cone.
        for x in g.nodes():
            if x == dest:
                continue
            best = None
            for y in g.peers(x):
                dy = cust.get(y)
                if dy is not None and (best is None or dy + 1 < best):
                    best = dy + 1
            if best is not None:
                peer[x] = best

        # Stage 3: provider routes — Dijkstra descending customer edges,
        # seeded with exported best lengths (class priority means an AS
        # with a customer or peer route exports *that*, never a shorter
        # provider route).
        heap: list[tuple[int, int]] = []
        for u, d in cust.items():
            heap.append((d, u))
        for u, d in peer.items():
            if u not in cust:
                heap.append((d, u))
        heapq.heapify(heap)
        has_cp = cust.keys() | peer.keys()
        while heap:
            d, u = heapq.heappop(heap)
            if u in export_len:
                continue
            export_len[u] = d
            nd = d + 1
            for c in g.customers(u):
                if c not in export_len and c not in has_cp:
                    heapq.heappush(heap, (nd, c))

        # Best class and default next hop per node.
        best_class = self._best_class
        next_hop = self._next_hop
        for x in g.nodes():
            if x == dest:
                best_class[x] = None
                next_hop[x] = None
                continue
            if x in cust:
                best_class[x] = Relationship.CUSTOMER
                target = cust[x] - 1
                next_hop[x] = min(
                    c for c in g.customers(x) if cust.get(c, -2) == target
                )
            elif x in peer:
                best_class[x] = Relationship.PEER
                target = peer[x] - 1
                next_hop[x] = min(
                    y for y in g.peers(x) if cust.get(y, -2) == target
                )
            elif x in export_len:
                best_class[x] = Relationship.PROVIDER
                target = export_len[x] - 1
                next_hop[x] = min(
                    p for p in g.providers(x) if export_len.get(p, -2) == target
                )
            # else: unreachable — absent from best_class entirely.

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_route(self, x: int) -> bool:
        """Whether AS ``x`` has any route toward the destination."""
        return x in self._best_class

    def best_class(self, x: int) -> Relationship | None:
        """Class of ``x``'s selected route (None at the destination)."""
        try:
            return self._best_class[x]
        except KeyError:
            raise NoRouteError(x, self.dest) from None

    def best_len(self, x: int) -> int:
        """AS-hop length of ``x``'s selected route."""
        if x not in self._best_class:
            raise NoRouteError(x, self.dest)
        return self._export_len[x]

    def next_hop(self, x: int) -> int | None:
        """Default next hop of ``x`` (None at the destination)."""
        try:
            return self._next_hop[x]
        except KeyError:
            raise NoRouteError(x, self.dest) from None

    def best_path(self, x: int) -> tuple[int, ...]:
        """The selected default AS path from ``x`` to the destination,
        inclusive of both endpoints."""
        cached = self._path_cache.get(x)
        if cached is not None:
            return cached
        if x not in self._best_class:
            raise NoRouteError(x, self.dest)
        hops = [x]
        cur = x
        limit = len(self.graph) + 1
        while cur != self.dest:
            cur = self._next_hop[cur]
            hops.append(cur)
            if len(hops) > limit:  # impossible by construction; be loud
                raise AssertionError(f"default-path loop from AS {x}: {hops[:16]}...")
        path = tuple(hops)
        self._path_cache[x] = path
        return path

    def rib(self, x: int, *, loop_filter: bool = True) -> tuple[RibEntry, ...]:
        """The multi-neighbor Adj-RIB-In of ``x`` toward the destination.

        Entries are sorted by selection preference; entry 0 is always the
        default route (same neighbor as :meth:`next_hop`).  ``loop_filter``
        drops neighbors whose selected path contains ``x`` (the standard
        AS-path import filter); the default next hop can never be dropped
        by it.
        """
        if x == self.dest:
            return ()
        if loop_filter:
            cached = self._rib_cache.get(x)
            if cached is not None:
                return cached
        g = self.graph
        entries: list[RibEntry] = []
        missing = object()
        for nb, rel in g.neighbors(x).items():
            learned = self._best_class.get(nb, missing)
            if learned is missing:
                continue  # neighbor has no route at all
            # nb announces its best route to x iff the export policy allows
            # it toward x (relationship of x as seen from nb).  learned is
            # None when nb is the destination itself (local origination).
            if not export_allowed(learned, invert(rel)):
                continue
            if loop_filter and nb != self.dest and x in self.best_path(nb):
                continue
            entries.append(RibEntry(nb, self._export_len[nb] + 1, rel))
        entries.sort(key=lambda e: e.selection_key)
        result = tuple(entries)
        if loop_filter:
            self._rib_cache[x] = result
        return result

    def alternatives(self, x: int) -> tuple[RibEntry, ...]:
        """RIB entries other than the default route — MIFO's alt candidates."""
        rib = self.rib(x)
        default = self._next_hop.get(x)
        return tuple(e for e in rib if e.neighbor != default)

    def reachable_count(self) -> int:
        """Number of ASes holding a route (connectivity sanity metric)."""
        return len(self._best_class)

    def rebind(self, graph: ASGraph) -> "DestinationRouting":
        """Re-wrap this converged state around a different graph object.

        Used by the scenario engine's incremental re-propagation: after a
        link event proved *inert* for this destination (the changed link
        carried no export in either direction — see
        :class:`repro.scenario.incremental.IncrementalRouting`), the
        converged state on the new graph is identical to this one, so the
        distance/class/next-hop tables and the lazy path/RIB caches are
        shared rather than recomputed.  **Only sound under that inertness
        condition**; rebasing past a relevant change silently serves stale
        routes (which the scenario cross-validation suite would refute).
        """
        clone = object.__new__(DestinationRouting)
        clone.graph = graph
        clone.dest = self.dest
        clone._cust_dist = self._cust_dist
        clone._peer_dist = self._peer_dist
        clone._export_len = self._export_len
        clone._best_class = self._best_class
        clone._next_hop = self._next_hop
        clone._path_cache = self._path_cache
        clone._rib_cache = self._rib_cache
        return clone


def compute_routing(graph: ASGraph, dest: int) -> DestinationRouting:
    """Compute converged BGP state for one destination.

    ``graph`` must be frozen; results are undefined if it mutates afterward.
    """
    if not graph.frozen:
        raise TopologyError("freeze() the graph before computing routing")
    return DestinationRouting(graph, dest)


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of a :class:`RoutingCache`."""

    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Cache hits as a fraction of all lookups."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RoutingCache:
    """Memoizes per-destination routing with true LRU eviction.

    The flow simulator and the diversity counter both touch the same small
    set of destination ASes many times; computing each destination once is
    the single biggest constant-factor win in the whole pipeline.

    ``backend`` selects the routing implementation: ``"dict"`` is the
    original pure-Python :class:`DestinationRouting`; ``"array"`` is the
    vectorized :class:`~repro.bgp.array_routing.ArrayDestinationRouting`
    (same query API, same results — the cross-validation suite proves it).
    :meth:`precompute` bulk-fills the cache, optionally through a
    :class:`~repro.bgp.parallel.ParallelRoutingEngine`.
    """

    def __init__(
        self,
        graph: ASGraph,
        *,
        max_entries: int | None = None,
        backend: str = "dict",
    ) -> None:
        if backend not in ("dict", "array"):
            from ..errors import ConfigError

            raise ConfigError(f"unknown routing backend {backend!r}")
        self.graph = graph
        self.max_entries = max_entries
        self.backend = backend
        # dicts preserve insertion order; LRU = re-insert on hit, evict the
        # first (= least recently used) key when full.
        self._cache: dict[int, RoutingView] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def _compute(self, dest: int) -> RoutingView:
        if self.backend == "array":
            from .array_routing import compute_array_routing

            return compute_array_routing(self.graph, dest)
        return compute_routing(self.graph, dest)

    def _insert(self, dest: int, routing: RoutingView) -> None:
        if self.max_entries is not None and len(self._cache) >= self.max_entries:
            self._cache.pop(next(iter(self._cache)))
            self._evictions += 1
            tm.inc("cache.evictions")
        self._cache[dest] = routing

    def __call__(self, dest: int) -> RoutingView:
        r = self._cache.get(dest)
        if r is not None:
            self._hits += 1
            tm.inc("cache.hits")
            # refresh recency: move to the back of the insertion order.
            del self._cache[dest]
            self._cache[dest] = r
            return r
        self._misses += 1
        tm.inc("cache.misses")
        r = self._compute(dest)
        self._insert(dest, r)
        return r

    def precompute(
        self, dests: Iterable[int], engine: ParallelRoutingEngine | None = None
    ) -> int:
        """Bulk-fill the cache for ``dests``; returns how many were computed.

        ``engine`` is a :class:`~repro.bgp.parallel.ParallelRoutingEngine`
        (or anything with ``compute_many``); when omitted the fill runs
        serially on this cache's backend.  Already-cached destinations are
        skipped without touching the hit/miss counters — precomputation is
        capacity planning, not demand.
        """
        if engine is not None:
            engine_backend = getattr(engine, "backend", None)
            if engine_backend is not None and engine_backend != self.backend:
                from ..errors import ConfigError

                # A dict cache filled by an array engine (or vice versa)
                # would silently mix substrates; results agree, but cache
                # introspection and the cross-validation suite rely on a
                # cache holding exactly what its backend produces.
                raise ConfigError(
                    f"engine backend {engine_backend!r} does not match cache "
                    f"backend {self.backend!r}"
                )
        todo = [d for d in dict.fromkeys(dests) if d not in self._cache]
        if not todo:
            return 0
        if engine is not None:
            for dest, routing in engine.compute_many(todo).items():
                self._insert(dest, routing)
        else:
            for dest in todo:
                self._insert(dest, self._compute(dest))
        return len(todo)

    def cached_destinations(self) -> tuple[int, ...]:
        """Destinations currently held, ascending — the verifier's default
        scope after a run (everything the run could have forwarded along)."""
        return tuple(sorted(self._cache))

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss/eviction counters."""
        return CacheStats(self._hits, self._misses, self._evictions)

    def __contains__(self, dest: int) -> bool:
        return dest in self._cache

    def __len__(self) -> int:
        return len(self._cache)
