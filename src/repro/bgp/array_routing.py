"""Array-backed per-destination routing (the compact twin of
:mod:`repro.bgp.propagation`).

Same three-stage Gao–Rexford computation, same query API, different
substrate: instead of per-node dicts this backend runs every stage as
vectorized numpy passes over the frozen graph's CSR arrays
(:meth:`repro.topology.asgraph.ASGraph.csr`):

1. **customer routes** — level-synchronous BFS climbing provider edges,
   one gather/scatter per BFS level;
2. **peer routes** — a single ``np.minimum.at`` scatter over all peering
   edges;
3. **provider routes** — the unit-weight "Dijkstra" degenerates into a
   level-by-level relaxation over customer edges seeded with exported
   best lengths.

Next hops are recovered with three more scatter-min passes (dense indices
are assigned in ascending AS-number order, so an index minimum *is* the
AS-number minimum the dict backend's tie-break takes).

The dict-based :class:`~repro.bgp.propagation.DestinationRouting` stays as
the cross-validation oracle — ``tests/bgp/test_array_routing.py`` asserts
both backends produce identical ``best_path``/``rib``/``alternatives``
output — while this class is what the parallel engine ships across worker
processes: :meth:`state`/:meth:`from_state` serialize just five small
int32 arrays, never the graph.
"""

from __future__ import annotations

import numpy as np

from .. import telemetry as tm
from ..errors import NoRouteError, RoutingError, TopologyError
from ..topology.asgraph import ASGraph, CsrAdjacency
from ..topology.relationships import Relationship, export_allowed, invert
from .propagation import RibEntry

__all__ = [
    "ArrayDestinationRouting",
    "compute_array_routing",
    "converge_csr",
    "state_reachable_count",
]

#: best_class codes; 0/1/2 match Relationship values, the rest are local.
_UNREACHABLE = np.int8(-1)
_DEST = np.int8(3)

#: next-hop sentinel for "no next hop" (destination / unreachable).
_NO_HOP = np.int32(-1)


def _expand_rows(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """Concatenated CSR rows of ``frontier`` without a Python-level loop."""
    starts = indptr[frontier]
    lens = indptr[frontier + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return indices[:0]
    # Classic CSR multi-row gather: repeat each row's (start - preceding
    # output offset), then add a flat arange to enumerate within rows.
    offsets = np.repeat(starts - (np.cumsum(lens) - lens), lens) + np.arange(total)
    return indices[offsets]


def converge_csr(csr: CsrAdjacency, dest_idx: int) -> tuple[np.ndarray, ...]:
    """The three-stage Gao–Rexford computation over bare CSR arrays.

    Returns the five per-node result arrays ``(cust, peer, export, class,
    next_hop)`` — the exact payload :meth:`ArrayDestinationRouting.state`
    ships between processes.  Needs only a :class:`CsrAdjacency` (which may
    be a read-only shared-memory attachment, see :mod:`repro.bgp.shm`) and
    a **dense** destination index, so persistent-pool workers can converge
    destinations without ever holding an :class:`ASGraph`.
    """
    n = csr.n_nodes
    inf = np.int32(n + 2)
    d = dest_idx

    # Stage 1: customer routes — level-synchronous BFS up provider edges.
    cust = np.full(n, inf, dtype=np.int32)
    cust[d] = 0
    frontier = np.array([d], dtype=np.int32)
    dist = np.int32(0)
    while frontier.size:
        dist += 1
        nbrs = _expand_rows(csr.prov_indptr, csr.prov_indices, frontier)
        fresh = np.unique(nbrs[cust[nbrs] == inf])
        cust[fresh] = dist
        frontier = fresh

    # Stage 2: peer routes — one scatter-min over every peering edge.
    peer = np.full(n, inf, dtype=np.int32)
    if csr.peer_indices.size:
        np.minimum.at(peer, csr.peer_rows, cust[csr.peer_indices] + 1)
    peer[peer > inf] = inf  # inf+1 candidates back to inf
    peer[d] = inf  # the destination never takes a peer route

    # Stage 3: provider routes — unit-weight Dijkstra == level-by-level
    # relaxation down customer edges, seeded with exported best lengths
    # (class priority: an AS with a customer/peer route exports that).
    export = np.where(cust < inf, cust, peer).astype(np.int32)
    has_cp = export < inf
    prov_class = np.zeros(n, dtype=bool)
    max_level = int(export[has_cp].max(initial=0))
    level = 0
    while level <= max_level:
        frontier = np.nonzero(export == level)[0].astype(np.int32)
        if frontier.size:
            custs = _expand_rows(csr.cust_indptr, csr.cust_indices, frontier)
            fresh = np.unique(custs[export[custs] == inf])
            if fresh.size:
                export[fresh] = level + 1
                prov_class[fresh] = True
                max_level = max(max_level, level + 1)
        level += 1

    # Best class per node.
    cls = np.full(n, _UNREACHABLE, dtype=np.int8)
    cls[prov_class] = int(Relationship.PROVIDER)
    cls[peer < inf] = int(Relationship.PEER)
    cls[cust < inf] = int(Relationship.CUSTOMER)
    cls[d] = _DEST

    # Default next hops: scatter-min of the qualifying neighbor per
    # class (index order == AS-number order, so min index == min ASN).
    nh = np.full(n, np.int32(n), dtype=np.int32)
    if csr.cust_indices.size:
        rows, cols = csr.cust_rows, csr.cust_indices
        mask = (cls[rows] == int(Relationship.CUSTOMER)) & (
            cust[cols] == cust[rows] - 1
        )
        np.minimum.at(nh, rows[mask], cols[mask])
    if csr.peer_indices.size:
        rows, cols = csr.peer_rows, csr.peer_indices
        mask = (cls[rows] == int(Relationship.PEER)) & (
            cust[cols] == peer[rows] - 1
        )
        np.minimum.at(nh, rows[mask], cols[mask])
    if csr.prov_indices.size:
        rows, cols = csr.prov_rows, csr.prov_indices
        mask = (cls[rows] == int(Relationship.PROVIDER)) & (
            export[cols] == export[rows] - 1
        )
        np.minimum.at(nh, rows[mask], cols[mask])
    nh[nh == n] = _NO_HOP
    nh[d] = _NO_HOP

    return (cust, peer, export, cls, nh)


def state_reachable_count(state: tuple[np.ndarray, ...]) -> int:
    """Reachable-AS count of a raw state tuple (telemetry accounting for
    workers that converge without constructing the result object)."""
    return int((state[3] != _UNREACHABLE).sum())


class ArrayDestinationRouting:
    """Converged BGP state for one destination, stored as dense arrays.

    Query-compatible with :class:`repro.bgp.propagation.DestinationRouting`.
    """

    __slots__ = (
        "graph",
        "csr",
        "dest",
        "_dest_idx",
        "_cust",
        "_peer",
        "_export",
        "_class",
        "_nh",
        "_inf",
        "_path_cache",
        "_rib_cache",
    )

    def __init__(
        self,
        graph: ASGraph,
        dest: int,
        *,
        _state: tuple[np.ndarray, ...] | None = None,
    ) -> None:
        if dest not in graph:
            raise TopologyError(f"destination AS {dest} not in graph")
        self.graph = graph
        self.csr = graph.csr()
        self.dest = dest
        self._dest_idx = self.csr.index[dest]
        self._inf = np.int32(self.csr.n_nodes + 2)
        self._path_cache: dict[int, tuple[int, ...]] = {}
        self._rib_cache: dict[int, tuple[RibEntry, ...]] = {}
        if _state is not None:
            # Re-wrapping a worker's shipped state is not a convergence;
            # the worker already counted it (snapshot protocol).
            self._cust, self._peer, self._export, self._class, self._nh = _state
        else:
            with tm.span("bgp.propagate"):
                self._compute()
            tm.inc("bgp.destinations_converged")
            tm.inc("bgp.routes_propagated", self.reachable_count())

    # ------------------------------------------------------------------
    # the three-stage computation, vectorized
    # ------------------------------------------------------------------
    def _compute(self) -> None:
        state = converge_csr(self.csr, int(self._dest_idx))
        self._cust, self._peer, self._export, self._class, self._nh = state

    # ------------------------------------------------------------------
    # worker-process serialization
    # ------------------------------------------------------------------
    def state(self) -> tuple[np.ndarray, ...]:
        """The five result arrays — everything a worker must ship back."""
        return (self._cust, self._peer, self._export, self._class, self._nh)

    @classmethod
    def from_state(
        cls, graph: ASGraph, dest: int, state: tuple[np.ndarray, ...]
    ) -> "ArrayDestinationRouting":
        """Rebuild a result object around a parent-process graph."""
        return cls(graph, dest, _state=state)

    def rebind(self, graph: ASGraph) -> "ArrayDestinationRouting":
        """Re-wrap this converged state around a different graph object.

        The scenario-engine counterpart of the dict backend's
        :meth:`~repro.bgp.propagation.DestinationRouting.rebind`: after a
        link event proved inert for this destination, the five result
        arrays (and the lazy path/RIB caches) are carried to the new
        epoch's graph unchanged.  Requires the new graph to have the same
        node set (scenario derivatives guarantee it — see
        :mod:`repro.topology.dynamics`), so the dense index mapping is
        identical.  Only sound when the topology delta is inert for this
        destination.
        """
        clone = ArrayDestinationRouting(graph, self.dest, _state=self.state())
        clone._path_cache = self._path_cache
        clone._rib_cache = self._rib_cache
        return clone

    # ------------------------------------------------------------------
    # queries — mirror DestinationRouting exactly
    # ------------------------------------------------------------------
    def _idx(self, x: int) -> int:
        try:
            return self.csr.index[x]
        except KeyError:
            raise TopologyError(f"unknown AS {x}") from None

    def has_route(self, x: int) -> bool:
        """Whether AS ``x`` has any route toward the destination."""
        return self._class[self._idx(x)] != _UNREACHABLE

    def best_class(self, x: int) -> Relationship | None:
        """Class of ``x``'s selected route (None at the destination)."""
        code = self._class[self._idx(x)]
        if code == _UNREACHABLE:
            raise NoRouteError(x, self.dest)
        if code == _DEST:
            return None
        return Relationship(int(code))

    def best_len(self, x: int) -> int:
        """AS-hop length of ``x``'s selected route."""
        i = self._idx(x)
        if self._class[i] == _UNREACHABLE:
            raise NoRouteError(x, self.dest)
        return int(self._export[i])

    def next_hop(self, x: int) -> int | None:
        """Default next hop of ``x`` (None at the destination)."""
        i = self._idx(x)
        code = self._class[i]
        if code == _UNREACHABLE:
            raise NoRouteError(x, self.dest)
        if code == _DEST:
            return None
        hop = int(self._nh[i])
        if hop < 0:
            # A reachable class with the no-hop sentinel means the result
            # arrays disagree (possible only via a corrupted from_state()
            # payload).  Without this guard the -1 would silently index
            # the *last* ASN — a wrong answer instead of an error.
            raise RoutingError(
                f"inconsistent routing state: AS {x} is reachable toward "
                f"{self.dest} but has no next hop"
            )
        return int(self.csr.asns[hop])

    def best_path(self, x: int) -> tuple[int, ...]:
        """The selected default AS path from ``x`` to the destination,
        inclusive of both endpoints."""
        cached = self._path_cache.get(x)
        if cached is not None:
            return cached
        i = self._idx(x)
        if self._class[i] == _UNREACHABLE:
            raise NoRouteError(x, self.dest)
        asns = self.csr.asns
        nh = self._nh
        hops = [x]
        cur = i
        limit = self.csr.n_nodes + 1
        while cur != self._dest_idx:
            cur = int(nh[cur])
            if cur < 0:  # same corrupted-state guard as next_hop()
                raise RoutingError(
                    f"inconsistent routing state: default path from AS {x} "
                    f"toward {self.dest} dead-ends at AS {hops[-1]}"
                )
            hops.append(int(asns[cur]))
            if len(hops) > limit:  # impossible by construction; be loud
                raise AssertionError(f"default-path loop from AS {x}: {hops[:16]}...")
        path = tuple(hops)
        self._path_cache[x] = path
        return path

    def rib(self, x: int, *, loop_filter: bool = True) -> tuple[RibEntry, ...]:
        """The multi-neighbor Adj-RIB-In of ``x`` toward the destination.

        Same semantics (and same :class:`~repro.bgp.propagation.RibEntry`
        entries) as the dict backend.
        """
        if x == self.dest:
            return ()
        if loop_filter:
            cached = self._rib_cache.get(x)
            if cached is not None:
                return cached
        i = self._idx(x)
        asns = self.csr.asns
        cls = self._class
        export = self._export
        entries: list[RibEntry] = []
        nbr_idx, nbr_rel = self.csr.neighbors_of(i)
        for j, rel_code in zip(nbr_idx.tolist(), nbr_rel.tolist()):
            code = cls[j]
            if code == _UNREACHABLE:
                continue  # neighbor has no route at all
            rel = Relationship(rel_code)
            learned = None if code == _DEST else Relationship(int(code))
            if not export_allowed(learned, invert(rel)):
                continue
            nb = int(asns[j])
            if loop_filter and nb != self.dest and x in self.best_path(nb):
                continue
            entries.append(RibEntry(nb, int(export[j]) + 1, rel))
        entries.sort(key=lambda e: e.selection_key)
        result = tuple(entries)
        if loop_filter:
            self._rib_cache[x] = result
        return result

    def alternatives(self, x: int) -> tuple[RibEntry, ...]:
        """RIB entries other than the default route — MIFO's alt candidates."""
        rib = self.rib(x)
        i = self._idx(x)
        if self._nh[i] == _NO_HOP:
            return rib
        default = int(self.csr.asns[self._nh[i]])
        return tuple(e for e in rib if e.neighbor != default)

    def reachable_count(self) -> int:
        """Number of ASes holding a route (connectivity sanity metric)."""
        return int((self._class != _UNREACHABLE).sum())


def compute_array_routing(graph: ASGraph, dest: int) -> ArrayDestinationRouting:
    """Compute converged BGP state for one destination on the array backend.

    ``graph`` must be frozen; results are undefined if it mutates afterward.
    """
    if not graph.frozen:
        raise TopologyError("freeze() the graph before computing routing")
    return ArrayDestinationRouting(graph, dest)
