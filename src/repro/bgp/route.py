"""BGP route objects.

A :class:`Route` is one entry of an Adj-RIB-In / Loc-RIB: a destination AS,
the AS path toward it (next hop first, destination last), and the business
relationship of the neighbor it was learned from — which determines its
local preference under the Gao–Rexford selection rule the paper adopts
(customer > peer > provider, Section IV-A).
"""

from __future__ import annotations

import dataclasses

from ..topology.relationships import Relationship

__all__ = ["Route", "selection_key"]


@dataclasses.dataclass(frozen=True, slots=True)
class Route:
    """One candidate path toward ``dest``.

    ``as_path`` starts at the next-hop AS and ends at ``dest`` (so
    ``len(as_path)`` is the AS-hop distance).  A locally originated route
    has an empty path and ``learned_from is None``.
    """

    dest: int
    as_path: tuple[int, ...]
    learned_from: Relationship | None  #: relationship of the announcing neighbor

    def __post_init__(self) -> None:
        if self.as_path and self.as_path[-1] != self.dest:
            raise ValueError(
                f"as_path {self.as_path} does not terminate at dest {self.dest}"
            )

    @property
    def next_hop(self) -> int | None:
        """The neighboring AS this route forwards to (None if local)."""
        return self.as_path[0] if self.as_path else None

    @property
    def length(self) -> int:
        """AS-path length in hops (0 for a local route)."""
        return len(self.as_path)

    @property
    def is_local(self) -> bool:
        """True if locally originated (empty AS path)."""
        return not self.as_path

    def contains(self, asn: int) -> bool:
        """AS-path loop check: would accepting this route at ``asn`` loop?"""
        return asn in self.as_path

    def announced_by(self, announcer: int, relationship: Relationship) -> "Route":
        """The route as seen by a neighbor that learns it from ``announcer``.

        ``announcer`` (the AS currently holding this route) is prepended to
        the AS path; ``relationship`` is the announcer's relationship *as
        seen from the receiver* and becomes the new ``learned_from``.
        """
        return Route(
            dest=self.dest,
            as_path=(announcer,) + self.as_path,
            learned_from=relationship,
        )


def selection_key(route: Route) -> tuple[int, int, int]:
    """Total order implementing the paper's selection rule; lower is better.

    1. relationship class (customer 0 < peer 1 < provider 2; local -1),
    2. AS-path length,
    3. lowest next-hop AS identifier.
    """
    cls = -1 if route.learned_from is None else int(route.learned_from)
    nh = route.next_hop if route.next_hop is not None else -1
    return (cls, route.length, nh)
