"""BGP control plane (system S2 in DESIGN.md).

Three equivalent models, fastest first:

* :func:`~repro.bgp.array_routing.compute_array_routing` — vectorized
  three-stage computation over the frozen graph's CSR arrays; what the
  :class:`~repro.bgp.parallel.ParallelRoutingEngine` shards across worker
  processes;
* :func:`~repro.bgp.propagation.compute_routing` — the original
  dict-based three-stage computation, kept as the array backend's
  cross-validation oracle, exposing default paths *and* the
  multi-neighbor RIB that MIFO mines for alternatives;
* :class:`~repro.bgp.speaker.BgpNetwork` — exact message-level convergence
  (test oracle + small-topology control plane).
"""

from .array_routing import ArrayDestinationRouting, compute_array_routing
from .parallel import ParallelRoutingEngine
from .policy import accepts, can_export, local_preference, select_best
from .propagation import (
    CacheStats,
    DestinationRouting,
    RibEntry,
    RoutingCache,
    compute_routing,
)
from .rib import AdjRibIn, LocRib
from .route import Route, selection_key
from .speaker import BgpNetwork, Speaker

__all__ = [
    "ArrayDestinationRouting",
    "compute_array_routing",
    "ParallelRoutingEngine",
    "CacheStats",
    "Route",
    "selection_key",
    "accepts",
    "can_export",
    "local_preference",
    "select_best",
    "RibEntry",
    "DestinationRouting",
    "RoutingCache",
    "compute_routing",
    "AdjRibIn",
    "LocRib",
    "Speaker",
    "BgpNetwork",
]
