"""BGP control plane (system S2 in DESIGN.md).

Two equivalent models:

* :func:`~repro.bgp.propagation.compute_routing` — fast three-stage
  per-destination computation (used by all experiments), exposing default
  paths *and* the multi-neighbor RIB that MIFO mines for alternatives;
* :class:`~repro.bgp.speaker.BgpNetwork` — exact message-level convergence
  (test oracle + small-topology control plane).
"""

from .policy import accepts, can_export, local_preference, select_best
from .propagation import DestinationRouting, RibEntry, RoutingCache, compute_routing
from .rib import AdjRibIn, LocRib
from .route import Route, selection_key
from .speaker import BgpNetwork, Speaker

__all__ = [
    "Route",
    "selection_key",
    "accepts",
    "can_export",
    "local_preference",
    "select_best",
    "RibEntry",
    "DestinationRouting",
    "RoutingCache",
    "compute_routing",
    "AdjRibIn",
    "LocRib",
    "Speaker",
    "BgpNetwork",
]
