"""Parallel per-destination routing (the sharding layer over the array
backend).

Per-destination Gao–Rexford convergence is embarrassingly parallel: every
destination reads the same frozen CSR arrays and writes only its own
result.  :class:`ParallelRoutingEngine` exploits that by forking worker
processes *after* the CSR arrays exist, so the topology is shared
copy-on-write and never pickled; workers ship back only each
destination's five result arrays (a few KB at bench scale), which the
parent re-wraps around its own graph via
:meth:`~repro.bgp.array_routing.ArrayDestinationRouting.from_state`.

Degradation is graceful and explicit:

* ``n_workers=1`` (or an effectively-serial pool) computes in-process,
  bit-for-bit identical to the parallel path;
* platforms without the ``fork`` start method (Windows, some macOS
  configurations) fall back to serial rather than paying a spawn-and
  -repickle tax per worker;
* the ``dict`` backend is always serial — its per-node dict state is the
  cross-validation oracle, not a shipping format.

Results flow back through the ordinary
:class:`~repro.bgp.propagation.RoutingCache` interface — see
``RoutingCache.precompute`` — so nothing downstream (providers, metrics,
experiments) knows whether a destination was computed serially or on a
worker.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Iterable, Sequence

import numpy as np

from .. import telemetry as tm
from ..errors import ConfigError, TopologyError
from ..telemetry import Telemetry, TelemetrySnapshot
from ..topology.asgraph import ASGraph
from .array_routing import ArrayDestinationRouting
from .propagation import DestinationRouting, RoutingView

__all__ = ["ParallelRoutingEngine", "fork_available", "resolve_workers"]

#: Module-level slot read by forked workers.  Set in the parent immediately
#: before the pool forks; children inherit it through copy-on-write memory,
#: which is the whole point — the graph never crosses a pipe.
_WORKER_GRAPH: ASGraph | None = None


def fork_available() -> bool:
    """Whether this platform can fork workers that inherit shared arrays."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(n_workers: int | None) -> int:
    """Normalize a worker-count knob (None = one per CPU, floor 1)."""
    if n_workers is None:
        return os.cpu_count() or 1
    if n_workers < 1:
        raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
    return n_workers


def _compute_chunk(
    chunk: Sequence[int],
) -> tuple[list[tuple[int, tuple[np.ndarray, ...]]], TelemetrySnapshot | None]:
    """Worker body: converge each destination, return compact states.

    When the parent forked with telemetry active, the child inherits the
    parent's registry copy-on-write — recording into it would be invisible
    to the parent.  Instead each chunk records into a fresh child-local
    :class:`Telemetry` and ships its snapshot back alongside the results;
    the parent absorbs snapshots in ``imap`` order, keeping the merged
    totals (and trace event order) deterministic for any worker count.
    """
    graph = _WORKER_GRAPH
    assert graph is not None, "worker forked before _WORKER_GRAPH was set"
    inherited = tm.active()
    if inherited is None:
        return [(d, ArrayDestinationRouting(graph, d).state()) for d in chunk], None
    local = Telemetry(trace_capacity=inherited.trace_capacity)
    tm.activate(local)
    try:
        states = [(d, ArrayDestinationRouting(graph, d).state()) for d in chunk]
    finally:
        tm.activate(inherited)
    return states, local.snapshot()


class ParallelRoutingEngine:
    """Shards a destination list across worker processes.

    Parameters
    ----------
    graph:
        A frozen :class:`ASGraph`.
    n_workers:
        Worker processes; ``None`` means one per CPU.  ``1`` runs serial.
    backend:
        ``"array"`` (parallelizable) or ``"dict"`` (oracle; always serial).
    chunk_size:
        Destinations per work item; ``None`` picks ~4 chunks per worker.
    """

    def __init__(
        self,
        graph: ASGraph,
        *,
        n_workers: int | None = None,
        backend: str = "array",
        chunk_size: int | None = None,
    ) -> None:
        if backend not in ("array", "dict"):
            raise ConfigError(f"unknown routing backend {backend!r}")
        if not graph.frozen:
            raise TopologyError("freeze() the graph before building an engine")
        self.graph = graph
        self.backend = backend
        self.n_workers = resolve_workers(n_workers)
        self.chunk_size = chunk_size
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")

    # ------------------------------------------------------------------
    @property
    def effective_workers(self) -> int:
        """Workers the engine will actually use (after fallbacks)."""
        if self.backend == "dict" or not fork_available():
            return 1
        return self.n_workers

    def compute(self, dest: int) -> RoutingView:
        """One destination, always in-process."""
        if self.backend == "dict":
            return DestinationRouting(self.graph, dest)
        return ArrayDestinationRouting(self.graph, dest)

    def compute_many(self, dests: Iterable[int]) -> dict[int, RoutingView]:
        """Converge every destination; returns ``{dest: routing}``.

        Duplicate destinations are computed once.  Results are identical
        (and identically keyed) for every worker count, including the
        serial fallback.
        """
        unique = list(dict.fromkeys(dests))
        if not unique:
            return {}
        workers = min(self.effective_workers, len(unique))
        if workers <= 1:
            tm.set_gauge("parallel.workers_used", 1)
            return {d: self.compute(d) for d in unique}
        try:
            return self._compute_parallel(unique, workers)
        except OSError:
            # fork() exists on this platform but pool creation failed —
            # fd/process limits, a locked-down sandbox, EAGAIN under load.
            # Parallelism is a wall-clock knob, never a results knob, so
            # degrade to the serial path instead of failing the run.
            # Telemetry must report what actually happened, not what was
            # requested: one worker, and a fallback on the record.
            tm.inc("parallel.pool_fallbacks")
            tm.set_gauge("parallel.workers_used", 1)
            return {d: self.compute(d) for d in unique}

    # ------------------------------------------------------------------
    def _compute_parallel(
        self, unique: list[int], workers: int
    ) -> dict[int, RoutingView]:
        global _WORKER_GRAPH
        graph = self.graph
        # Materialize the CSR arrays *before* forking so children inherit
        # them copy-on-write instead of each rebuilding the adjacency.
        graph.csr()
        chunk = self.chunk_size or max(1, -(-len(unique) // (workers * 4)))
        chunks = [unique[i : i + chunk] for i in range(0, len(unique), chunk)]
        ctx = multiprocessing.get_context("fork")
        _WORKER_GRAPH = graph
        telemetry = tm.active()
        try:
            with ctx.Pool(processes=workers) as pool:
                # chunked submission: imap keeps at most a pool's worth of
                # pending result arrays in flight (vs. map's all-at-once).
                parts = pool.imap(_compute_chunk, chunks)
                out: dict[int, RoutingView] = {}
                for part, snap in parts:
                    for d, state in part:
                        out[d] = ArrayDestinationRouting.from_state(graph, d, state)
                    if telemetry is not None and snap is not None:
                        telemetry.absorb(snap)
        finally:
            _WORKER_GRAPH = None
        if telemetry is not None:
            telemetry.set_gauge("parallel.workers_used", workers)
            telemetry.inc("parallel.chunks", len(chunks))
        return out
