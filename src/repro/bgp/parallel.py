"""Parallel per-destination routing (the sharding layer over the array
backend).

Per-destination Gao–Rexford convergence is embarrassingly parallel: every
destination reads the same frozen CSR arrays and writes only its own
result.  :class:`ParallelRoutingEngine` exploits that in two modes:

* **fork-per-run** (the default) — a fresh ``fork`` pool per
  :meth:`~ParallelRoutingEngine.compute_many` call; the topology is shared
  copy-on-write and never pickled.  Zero standing state, but every call
  pays the pool spin-up, which dominates at paper scale where propagation
  happens in many small destination shards.
* **persistent** (``persistent=True``) — the frozen CSR arrays are
  exported once into named shared memory (:mod:`repro.bgp.shm`) and a
  worker pool is created once per engine lifetime; workers attach
  zero-copy in their initializer and each task ships only a tuple of
  dense destination indices.  Works under ``spawn`` too (the graph never
  crosses a pipe), survives worker crashes by falling back to in-process
  compute and rebuilding the pool on the next call, and releases the pool
  and segment on :meth:`~ParallelRoutingEngine.close` / garbage
  collection.

Either way workers ship back only each destination's five result arrays
(a few KB at bench scale), which the parent re-wraps around its own graph
via :meth:`~repro.bgp.array_routing.ArrayDestinationRouting.from_state`,
and worker telemetry flows through child-local snapshots absorbed in
submission order — deterministic totals for any worker count.

Degradation is graceful and explicit:

* ``n_workers=1`` (or an effectively-serial pool) computes in-process,
  bit-for-bit identical to the parallel path;
* platforms without the ``fork`` start method fall back to serial in
  fork-per-run mode, and to a ``spawn`` pool in persistent mode;
* the ``dict`` backend is always serial — its per-node dict state is the
  cross-validation oracle, not a shipping format.

Results flow back through the ordinary
:class:`~repro.bgp.propagation.RoutingCache` interface — see
``RoutingCache.precompute`` — so nothing downstream (providers, metrics,
experiments) knows whether a destination was computed serially or on a
worker.
"""

from __future__ import annotations

import multiprocessing
import os
import weakref
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from .. import telemetry as tm
from ..errors import ConfigError, TopologyError
from ..telemetry import Telemetry, TelemetrySnapshot
from ..topology.asgraph import ASGraph
from .array_routing import (
    ArrayDestinationRouting,
    converge_csr,
    state_reachable_count,
)
from .propagation import DestinationRouting, RoutingView
from .shm import AttachedCsr, CsrSegment, SegmentManifest, attach_csr

__all__ = ["ParallelRoutingEngine", "fork_available", "resolve_workers"]

#: Module-level slot read by forked workers.  Set in the parent immediately
#: before the pool forks; children inherit it through copy-on-write memory,
#: which is the whole point — the graph never crosses a pipe.
_WORKER_GRAPH: ASGraph | None = None

#: Module-level slot holding the shared-memory CSR attachment in each
#: persistent-pool worker.  Installed exactly once per worker lifetime by
#: the pool initializer (:func:`_attach_worker`); tasks only read it.
_WORKER_CSR: AttachedCsr | None = None


def fork_available() -> bool:
    """Whether this platform can fork workers that inherit shared arrays."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(n_workers: int | None) -> int:
    """Normalize a worker-count knob (None = one per CPU, floor 1)."""
    if n_workers is None:
        return os.cpu_count() or 1
    if n_workers < 1:
        raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
    return n_workers


def _compute_chunk(
    chunk: Sequence[int],
) -> tuple[list[tuple[int, tuple[np.ndarray, ...]]], TelemetrySnapshot | None]:
    """Fork-per-run worker body: converge each destination, return states.

    When the parent forked with telemetry active, the child inherits the
    parent's registry copy-on-write — recording into it would be invisible
    to the parent.  Instead each chunk records into a fresh child-local
    :class:`Telemetry` and ships its snapshot back alongside the results;
    the parent absorbs snapshots in ``imap`` order, keeping the merged
    totals (and trace event order) deterministic for any worker count.
    """
    graph = _WORKER_GRAPH
    assert graph is not None, "worker forked before _WORKER_GRAPH was set"
    inherited = tm.active()
    if inherited is None:
        return [(d, ArrayDestinationRouting(graph, d).state()) for d in chunk], None
    local = Telemetry(trace_capacity=inherited.trace_capacity)
    tm.activate(local)
    try:
        states = [(d, ArrayDestinationRouting(graph, d).state()) for d in chunk]
    finally:
        tm.activate(inherited)
    return states, local.snapshot()


def _attach_worker(manifest: SegmentManifest) -> None:
    """Persistent-pool initializer: attach the shared CSR segment.

    Runs once per worker process (fork or spawn); the attachment is held
    in the sanctioned worker-local slot ``_WORKER_CSR`` for every
    subsequent :func:`_compute_shard` task.  This is a one-way install of
    worker-local state, never a channel back to the parent — results and
    telemetry still return exclusively through task return values.

    The attach is best-effort: a worker respawned after
    :meth:`ParallelRoutingEngine.rebind` holds initargs naming a segment
    that may already be unlinked, and every task carries the current
    manifest anyway, so :func:`_compute_shard` re-attaches on demand.
    """
    global _WORKER_CSR
    try:
        _WORKER_CSR = attach_csr(manifest)
    except TopologyError:
        _WORKER_CSR = None


def _compute_shard(
    task: tuple[tuple[int, ...], int | None, SegmentManifest],
) -> tuple[list[tuple[int, tuple[np.ndarray, ...]]], TelemetrySnapshot | None]:
    """Persistent-pool worker body: converge a shard of dense indices.

    ``task`` is ``(dest_indices, trace_capacity, manifest)`` — indices
    are dense CSR rows (the parent owns the ASN mapping), and
    ``trace_capacity`` is ``None`` when the parent has no telemetry
    active at submission time.  The manifest names the segment the shard
    must be computed against: long-lived pools outlive topology changes
    (:meth:`ParallelRoutingEngine.rebind` re-exports the CSR without
    restarting workers), so a worker whose cached attachment is for a
    different segment detaches it and re-attaches here.  Mirrors
    :func:`_compute_chunk`'s accounting exactly: each destination is
    converged under a ``bgp.propagate`` span with the same counters the
    serial path records, into a child-local registry whose snapshot ships
    back for in-order absorption.
    """
    global _WORKER_CSR
    shard, trace_capacity, manifest = task
    attached = _WORKER_CSR
    if attached is None or attached.segment_name != manifest.segment:
        if attached is not None:
            attached.detach()
        attached = attach_csr(manifest)
        _WORKER_CSR = attached
    csr = attached.csr
    if trace_capacity is None:
        return [(idx, converge_csr(csr, idx)) for idx in shard], None
    previous = tm.active()
    local = Telemetry(trace_capacity=trace_capacity)
    tm.activate(local)
    try:
        states: list[tuple[int, tuple[np.ndarray, ...]]] = []
        for idx in shard:
            with tm.span("bgp.propagate"):
                state = converge_csr(csr, idx)
            tm.inc("bgp.destinations_converged")
            tm.inc("bgp.routes_propagated", state_reachable_count(state))
            states.append((idx, state))
    finally:
        tm.activate(previous)
    return states, local.snapshot()


class _PoolResources:
    """Mutable holder for the lazily created persistent pool + segment.

    One ``weakref.finalize`` guard per engine points here, so whatever the
    engine created by the time it is closed or collected gets released —
    without the finalizer keeping the engine itself alive.
    """

    __slots__ = ("segment", "pool")

    def __init__(self) -> None:
        self.segment: CsrSegment | None = None
        self.pool: ProcessPoolExecutor | None = None

    def discard_pool(self) -> None:
        """Shut down the worker pool (idempotent), keeping the segment."""
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def release(self) -> None:
        """Shut down the pool and unlink the shared segment (idempotent)."""
        self.discard_pool()
        segment, self.segment = self.segment, None
        if segment is not None:
            segment.close()


class ParallelRoutingEngine:
    """Shards a destination list across worker processes.

    Parameters
    ----------
    graph:
        A frozen :class:`ASGraph`.
    n_workers:
        Worker processes; ``None`` means one per CPU.  ``1`` runs serial.
    backend:
        ``"array"`` (parallelizable) or ``"dict"`` (oracle; always serial).
    chunk_size:
        Destinations per work item; ``None`` picks ~4 chunks per worker.
    persistent:
        Keep one worker pool (and one shared-memory CSR export) alive for
        the engine's lifetime instead of forking per call.  Call
        :meth:`close` (or use the engine as a context manager) to release
        them; garbage collection releases them too.  Results are
        byte-identical across all modes and worker counts.
    """

    def __init__(
        self,
        graph: ASGraph,
        *,
        n_workers: int | None = None,
        backend: str = "array",
        chunk_size: int | None = None,
        persistent: bool = False,
    ) -> None:
        if backend not in ("array", "dict"):
            raise ConfigError(f"unknown routing backend {backend!r}")
        if not graph.frozen:
            raise TopologyError("freeze() the graph before building an engine")
        self.graph = graph
        self.backend = backend
        self.n_workers = resolve_workers(n_workers)
        self.chunk_size = chunk_size
        self.persistent = persistent
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        self._resources = _PoolResources()
        self._finalizer = weakref.finalize(
            self, _PoolResources.release, self._resources
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def pool_live(self) -> bool:
        """Whether a persistent worker pool currently exists."""
        return self._resources.pool is not None

    @property
    def segment_name(self) -> str | None:
        """Shared-memory segment name while exported (None otherwise)."""
        segment = self._resources.segment
        return None if segment is None else segment.manifest.segment

    def close(self) -> None:
        """Release the persistent pool and unlink the shared segment.

        Idempotent, and a no-op for engines that never went persistent.
        The engine stays usable afterwards: the next persistent
        ``compute_many`` lazily re-creates both resources.
        """
        self._resources.release()

    def rebind(self, graph: ASGraph) -> None:
        """Point the engine at a new frozen topology, keeping the pool.

        The streaming flap path mutates the topology between solves; a
        fork-per-run engine needs nothing (each call forks off the current
        graph), but a persistent engine's shared-memory export describes
        the *old* arrays.  ``rebind`` retargets it: the stale segment is
        unlinked (workers re-attach from the manifest each task carries,
        and POSIX keeps existing mappings valid past the unlink) while the
        worker pool itself survives — the expensive resource at streaming
        rates.  The next ``compute_many`` re-exports the new CSR lazily.
        No-op when ``graph`` is already the engine's current graph.
        """
        if graph is self.graph:
            return
        if not graph.frozen:
            raise TopologyError("freeze() the graph before rebinding an engine")
        self.graph = graph
        segment, self._resources.segment = self._resources.segment, None
        if segment is not None:
            segment.close()

    def __enter__(self) -> "ParallelRoutingEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def effective_workers(self) -> int:
        """Workers the engine will actually use (after fallbacks).

        The ``dict`` oracle is always serial.  Fork-per-run mode needs the
        ``fork`` start method; persistent mode works anywhere because
        workers attach the shared segment instead of inheriting memory.
        """
        if self.backend == "dict":
            return 1
        if not self.persistent and not fork_available():
            return 1
        return self.n_workers

    def compute(self, dest: int) -> RoutingView:
        """One destination, always in-process."""
        if self.backend == "dict":
            return DestinationRouting(self.graph, dest)
        return ArrayDestinationRouting(self.graph, dest)

    def compute_many(self, dests: Iterable[int]) -> dict[int, RoutingView]:
        """Converge every destination; returns ``{dest: routing}``.

        Duplicate destinations are computed once.  Results are identical
        (and identically keyed) for every worker count, pool mode, and the
        serial fallback.
        """
        unique = list(dict.fromkeys(dests))
        if not unique:
            return {}
        workers = min(self.effective_workers, len(unique))
        if workers <= 1:
            tm.set_gauge("parallel.workers_used", 1)
            return {d: self.compute(d) for d in unique}
        try:
            if self.persistent:
                return self._compute_persistent(unique, workers)
            return self._compute_parallel(unique, workers)
        except (OSError, BrokenProcessPool):
            # Pool creation failed (fd/process limits, a locked-down
            # sandbox, EAGAIN under load) or a persistent worker died
            # mid-task.  Parallelism is a wall-clock knob, never a results
            # knob, so degrade to the serial path instead of failing the
            # run; a broken persistent pool is discarded so the next call
            # starts a fresh one.  Telemetry must report what actually
            # happened, not what was requested: one worker, and a fallback
            # on the record.
            self._resources.discard_pool()
            tm.inc("parallel.pool_fallbacks")
            tm.set_gauge("parallel.workers_used", 1)
            return {d: self.compute(d) for d in unique}

    # ------------------------------------------------------------------
    def _chunks(self, unique: Sequence[int], workers: int) -> list[list[int]]:
        """Split a destination list into per-task chunks (~4 per worker)."""
        chunk = self.chunk_size or max(1, -(-len(unique) // (workers * 4)))
        return [list(unique[i : i + chunk]) for i in range(0, len(unique), chunk)]

    def _compute_parallel(
        self, unique: list[int], workers: int
    ) -> dict[int, RoutingView]:
        """Fork-per-run mode: a fresh COW pool for this call only."""
        global _WORKER_GRAPH
        graph = self.graph
        # Materialize the CSR arrays *before* forking so children inherit
        # them copy-on-write instead of each rebuilding the adjacency.
        graph.csr()
        chunks = self._chunks(unique, workers)
        ctx = multiprocessing.get_context("fork")
        _WORKER_GRAPH = graph
        telemetry = tm.active()
        try:
            with ctx.Pool(processes=workers) as pool:
                # chunked submission: imap keeps at most a pool's worth of
                # pending result arrays in flight (vs. map's all-at-once).
                parts = pool.imap(_compute_chunk, chunks)
                out: dict[int, RoutingView] = {}
                for part, snap in parts:
                    for d, state in part:
                        out[d] = ArrayDestinationRouting.from_state(graph, d, state)
                    if telemetry is not None and snap is not None:
                        telemetry.absorb(snap)
        finally:
            _WORKER_GRAPH = None
        if telemetry is not None:
            telemetry.set_gauge("parallel.workers_used", workers)
            telemetry.inc("parallel.chunks", len(chunks))
        return out

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent pool, creating segment and workers on first use."""
        res = self._resources
        if res.segment is None or res.segment.closed:
            res.segment = CsrSegment.create(self.graph.csr())
            tm.set_gauge("parallel.shm_bytes", res.segment.manifest.total_bytes)
        if res.pool is None:
            # fork is cheaper to start; spawn works everywhere because
            # workers rebuild state from the manifest, never from memory.
            method = "fork" if fork_available() else "spawn"
            res.pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=multiprocessing.get_context(method),
                initializer=_attach_worker,
                initargs=(res.segment.manifest,),
            )
            tm.inc("parallel.pool_starts")
        else:
            tm.inc("parallel.pool_reuses")
        return res.pool

    def _compute_persistent(
        self, unique: list[int], workers: int
    ) -> dict[int, RoutingView]:
        """Persistent mode: shard dense indices over the standing pool."""
        graph = self.graph
        csr = graph.csr()
        index = csr.index
        try:
            idxs = [index[d] for d in unique]
        except KeyError as exc:
            raise TopologyError(f"destination AS {exc.args[0]} not in graph") from None
        pool = self._ensure_pool()
        segment = self._resources.segment
        assert segment is not None  # _ensure_pool just created it
        manifest = segment.manifest
        telemetry = tm.active()
        trace_capacity = None if telemetry is None else telemetry.trace_capacity
        chunks = self._chunks(idxs, workers)
        tasks = [(tuple(chunk), trace_capacity, manifest) for chunk in chunks]
        asns = csr.asns
        out: dict[int, RoutingView] = {}
        # Executor.map yields in submission order — the same deterministic
        # merge discipline as the fork path's imap.
        for part, snap in pool.map(_compute_shard, tasks):
            for idx, state in part:
                dest = int(asns[idx])
                out[dest] = ArrayDestinationRouting.from_state(graph, dest, state)
            if telemetry is not None and snap is not None:
                telemetry.absorb(snap)
        if telemetry is not None:
            telemetry.set_gauge("parallel.workers_used", workers)
            telemetry.inc("parallel.chunks", len(chunks))
        return out
