"""Import/export policies and route selection (Gao–Rexford / paper §IV-A).

Export ("valley-free" [12]): routes learned from peers or providers are
exported only to customers; customer routes and locally originated prefixes
are exported to everyone.

Selection: customer routes over peer routes over provider routes; within a
class the shortest AS path; final tie broken by the lowest next-hop AS
identifier.  These are exactly the criteria the paper's simulation states.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..topology.relationships import Relationship, export_allowed
from .route import Route, selection_key

__all__ = [
    "can_export",
    "accepts",
    "select_best",
    "local_preference",
]

#: Conventional local-preference values corresponding to each relationship
#: class, as commonly configured in practice (customer 100 > peer 90 >
#: provider 80).  MIRO's "strict policy" compares these.
_LOCAL_PREF = {
    None: 110,  # locally originated
    Relationship.CUSTOMER: 100,
    Relationship.PEER: 90,
    Relationship.PROVIDER: 80,
}


def local_preference(route: Route) -> int:
    """The LOCAL_PREF a Gao–Rexford speaker assigns to ``route``."""
    return _LOCAL_PREF[route.learned_from]


def can_export(route: Route, to_relationship: Relationship) -> bool:
    """Whether the holder of ``route`` may announce it to a neighbor with
    relationship ``to_relationship`` (as seen from the holder)."""
    return export_allowed(route.learned_from, to_relationship)


def accepts(receiver: int, route: Route) -> bool:
    """Import filter: reject routes whose AS path already contains us."""
    return not route.contains(receiver)


def select_best(routes: Iterable[Route]) -> Route | None:
    """Pick the best route according to the paper's selection rule."""
    best: Route | None = None
    best_key: tuple[int, int, int] | None = None
    for r in routes:
        k = selection_key(r)
        if best_key is None or k < best_key:
            best, best_key = r, k
    return best
