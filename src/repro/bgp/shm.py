"""Named shared-memory export of the frozen CSR topology.

The fork-per-run parallel engine shares the CSR arrays with its workers
through copy-on-write memory — free, but only for children forked *after*
the arrays exist, and paid again by every new pool.  This module makes the
sharing explicit and pool-lifetime-independent: the thirteen arrays of a
:class:`~repro.topology.asgraph.CsrAdjacency` are copied once into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment, and any
process — forked or spawned, now or later — attaches zero-copy given only
the small picklable :class:`SegmentManifest`.

Two typed handles enforce the lifecycle:

* :class:`CsrSegment` — the **owner** side.  Created by the parent
  (:meth:`CsrSegment.create`), it is the only handle allowed to unlink the
  segment.  ``close()`` is idempotent, the handle is a context manager, and
  a :func:`weakref.finalize` guard unlinks on garbage collection so an
  abandoned engine cannot leak ``/dev/shm`` entries.
* :class:`AttachedCsr` — the **worker** side.  :func:`attach_csr` maps the
  segment and rebuilds a genuine read-only :class:`CsrAdjacency` whose
  arrays are views into the shared buffer (the ``index`` dict, the one
  non-array field, is rebuilt from ``asns`` in O(n) — paid once per worker
  lifetime, not per task).  ``detach()`` only closes the local mapping;
  workers can never unlink.

Attached arrays are marked non-writable, so an accidental in-place store
in a worker raises immediately instead of corrupting every sibling's
topology — the runtime twin of mifolint rule MF003b, which statically
forbids assignments to CSR array fields.

Resource-tracker note (CPython < 3.13): attaching registers the segment
with the ``multiprocessing`` resource tracker just like creating does.
Pool workers — forked *and* spawned — share the creating process's tracker,
whose registry is a set, so the attach-side registration is a no-op and
exactly one unlink happens when the owner closes.  A process *outside* the
owner's tracker family that attaches will have its own tracker unlink the
segment at exit (the long-standing bpo-39959 wart); keep attachers inside
the owning process tree, which is all the persistent pool ever does.
"""

from __future__ import annotations

import dataclasses
import weakref
from multiprocessing import shared_memory

import numpy as np

from ..errors import TopologyError
from ..topology.asgraph import CsrAdjacency

__all__ = [
    "ArraySpec",
    "SegmentManifest",
    "CsrSegment",
    "AttachedCsr",
    "attach_csr",
]

#: CsrAdjacency fields shipped through the segment, in manifest order.
#: ``index`` is the single non-array field; attach rebuilds it from asns.
_ARRAY_FIELDS: tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(CsrAdjacency) if f.name != "index"
)

#: Per-array alignment inside the segment.  64 bytes keeps every array on
#: its own cache line and satisfies any dtype the CSR arrays use.
_ALIGN = 64


def _aligned(offset: int) -> int:
    """``offset`` rounded up to the next :data:`_ALIGN` boundary."""
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclasses.dataclass(frozen=True)
class ArraySpec:
    """Placement of one CSR array inside the shared segment."""

    field: str  #: CsrAdjacency field name
    dtype: str  #: numpy dtype string, e.g. ``"int32"``
    shape: tuple[int, ...]
    offset: int  #: byte offset into the segment buffer


@dataclasses.dataclass(frozen=True)
class SegmentManifest:
    """Everything a worker needs to attach: small, picklable, read-only.

    Ships across the pool boundary instead of the arrays themselves —
    a few hundred bytes regardless of topology size.
    """

    segment: str  #: shared-memory name (the ``/dev/shm`` entry)
    n_nodes: int
    arrays: tuple[ArraySpec, ...]
    total_bytes: int


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    """Owner-side cleanup: close the mapping, then unlink the name.

    Module-level (not a bound method) so :func:`weakref.finalize` never
    keeps the owning handle alive; safe to call after a partial failure.
    """
    try:
        shm.close()
    except OSError:  # pragma: no cover - platform-dependent double close
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # already unlinked (e.g. explicit close())
        pass


class CsrSegment:
    """Owner handle of one shared-memory CSR export.

    Create with :meth:`create`; pass :attr:`manifest` to workers; call
    :meth:`close` (or rely on GC / the context manager) to unlink.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, manifest: SegmentManifest
    ) -> None:
        self._shm = shm
        self.manifest = manifest
        self._finalizer = weakref.finalize(self, _release_segment, shm)

    @classmethod
    def create(cls, csr: CsrAdjacency, *, name: str | None = None) -> "CsrSegment":
        """Copy ``csr``'s arrays into a fresh named segment.

        ``name`` is normally left to the OS (collision-proof); tests pin it
        to probe ``/dev/shm`` contents.
        """
        specs: list[ArraySpec] = []
        offset = 0
        for field in _ARRAY_FIELDS:
            arr: np.ndarray = getattr(csr, field)
            offset = _aligned(offset)
            specs.append(
                ArraySpec(
                    field=field,
                    dtype=arr.dtype.str,
                    shape=arr.shape,
                    offset=offset,
                )
            )
            offset += arr.nbytes
        # SharedMemory refuses size=0; an empty graph still gets one page.
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
        try:
            for field, spec in zip(_ARRAY_FIELDS, specs):
                src: np.ndarray = getattr(csr, field)
                dst = np.ndarray(
                    spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
                )
                dst[...] = src
            manifest = SegmentManifest(
                segment=shm.name,
                n_nodes=csr.n_nodes,
                arrays=tuple(specs),
                total_bytes=max(offset, 1),
            )
        except BaseException:
            _release_segment(shm)
            raise
        return cls(shm, manifest)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` (or GC) has already released the segment."""
        return not self._finalizer.alive

    def close(self) -> None:
        """Unlink the segment.  Idempotent; attached workers keep their
        mappings until they detach, but no new attach can succeed."""
        self._finalizer()

    def __enter__(self) -> "CsrSegment":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return (
            f"CsrSegment({self.manifest.segment!r}, "
            f"{self.manifest.total_bytes} bytes, {state})"
        )


def _close_attachment(shm: shared_memory.SharedMemory) -> None:
    """Worker-side cleanup: drop the local mapping, never unlink."""
    try:
        shm.close()
    except OSError:  # pragma: no cover - platform-dependent double close
        pass


class AttachedCsr:
    """Worker handle of one attached CSR export.

    :attr:`csr` is a full, query-identical :class:`CsrAdjacency` whose
    arrays are read-only views into the shared buffer; it stays valid
    until :meth:`detach`.
    """

    def __init__(self, shm: shared_memory.SharedMemory, csr: CsrAdjacency) -> None:
        self._shm = shm
        self.csr = csr
        #: name of the segment this attachment maps — lets a long-lived
        #: worker detect that the parent re-exported a new topology and
        #: re-attach (see ``repro.bgp.parallel._compute_shard``).
        self.segment_name = shm.name
        self._finalizer = weakref.finalize(self, _close_attachment, shm)

    @property
    def detached(self) -> bool:
        """Whether the local mapping has been dropped."""
        return not self._finalizer.alive

    def detach(self) -> None:
        """Close the local mapping (idempotent).  The segment itself lives
        until the owning :class:`CsrSegment` unlinks it."""
        self._finalizer()

    def __enter__(self) -> "AttachedCsr":
        return self

    def __exit__(self, *exc: object) -> None:
        self.detach()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "detached" if self.detached else "attached"
        return f"AttachedCsr(n_nodes={self.csr.n_nodes}, {state})"


def attach_csr(manifest: SegmentManifest) -> AttachedCsr:
    """Map an exported CSR zero-copy; raises
    :class:`~repro.errors.TopologyError` if the segment is gone (owner
    closed it, or the manifest outlived its process)."""
    try:
        shm = shared_memory.SharedMemory(name=manifest.segment)
    except FileNotFoundError:
        raise TopologyError(
            f"shared CSR segment {manifest.segment!r} does not exist "
            "(already unlinked by its owner?)"
        ) from None
    arrays: dict[str, np.ndarray] = {}
    for spec in manifest.arrays:
        view = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
        )
        view.flags.writeable = False
        arrays[spec.field] = view
    index = {int(a): i for i, a in enumerate(arrays["asns"])}
    csr = CsrAdjacency(index=index, **arrays)
    return AttachedCsr(shm, csr)
