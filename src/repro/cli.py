"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro list
    python -m repro run fig5 --scale default
    python -m repro run all --scale test --verify
    python -m repro run fig9 --scale test --metrics --trace-out trace.jsonl
    python -m repro scenario list
    python -m repro scenario run link_flap --scale test --mode incremental
    python -m repro serve --events 5000 --checkpoint-every 1000
    python -m repro serve --events 5000 --restore-from service.ckpt.json
    python -m repro trace summarize trace.jsonl
    python -m repro verify --scale default
    python -m repro topology --n-ases 2000 --out topo.txt

The ``mifo-repro`` console script (pyproject) maps here too.
"""

from __future__ import annotations

import argparse
import sys

from typing import TYPE_CHECKING

from .experiments import REGISTRY, SCALES
from .telemetry import Stopwatch, Telemetry, TelemetrySnapshot
from .topology.generator import TopologyConfig, generate_topology
from .topology.loader import save_caida
from .topology.stats import topology_stats

if TYPE_CHECKING:  # pragma: no cover - types only
    from .bgp.parallel import ParallelRoutingEngine
    from .topology.asgraph import ASGraph

__all__ = ["main"]


def _add_engine_options(
    parser: argparse.ArgumentParser, *, backend_default: str | None = "dict"
) -> None:
    """The routing-engine knobs every compute subcommand shares.

    One definition site so ``run``, ``scenario run``, ``serve``,
    ``verify``, ``export`` and ``simulate`` cannot drift apart in
    defaults, choices or flag names (they used to hand-roll these
    arguments separately).  ``backend_default`` exists for ``serve``,
    where an unset backend means "the checkpoint's" on restore.
    """
    parser.add_argument(
        "--routing-backend",
        choices=("dict", "array"),
        default=backend_default,
        help="BGP convergence implementation (array = vectorized CSR backend)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="routing worker processes (0 = one per CPU)",
    )
    parser.add_argument(
        "--persistent-pool",
        action="store_true",
        help="keep one worker pool alive over a shared-memory CSR export "
        "instead of forking per propagation (array backend; "
        "results are byte-identical — see docs/scaling.md)",
    )


def _engine_from_args(
    graph: "ASGraph", args: argparse.Namespace
) -> "ParallelRoutingEngine":
    """Build the one CLI routing engine from the shared engine options.

    The single construction site behind ``verify`` and ``simulate`` —
    the two subcommands that drive a
    :class:`~repro.bgp.parallel.ParallelRoutingEngine` directly rather
    than through :class:`~repro.experiments.common.SharedContext`.
    """
    from .bgp.parallel import ParallelRoutingEngine

    return ParallelRoutingEngine(
        graph,
        n_workers=args.workers or None,
        backend=args.routing_backend,
        persistent=args.persistent_pool,
    )


def _warm_context(args: argparse.Namespace, scale: str) -> None:
    """Install the CLI's engine options on the memoized SharedContext.

    Experiment modules call ``SharedContext.get(scale, backend, workers)``
    themselves and leave the pool mode alone (``persistent=None``), so
    warming the context first is how ``--persistent-pool`` reaches them
    without threading a new keyword through every experiment signature.
    """
    from .experiments.common import SharedContext

    SharedContext.get(
        scale,
        backend=args.routing_backend,
        workers=args.workers or None,
        persistent=True if args.persistent_pool else None,
    )


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for name, mod in REGISTRY.items():
        doc = (mod.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:8s} {doc}")
    print("\nscales:", ", ".join(SCALES))
    return 0


def _render_phases(delta: TelemetrySnapshot) -> str:
    """``--profile``: just the wall-time-by-phase table, slowest first."""
    if not delta.spans:
        return "profile: no phases recorded"
    lines = ["profile (wall time by phase):"]
    width = max(len(n) for n in delta.spans)
    for name, (total, count) in sorted(
        delta.spans.items(), key=lambda kv: -kv[1][0]
    ):
        mean_ms = total / count * 1e3 if count else 0.0
        lines.append(
            f"  {name:<{width}}  {total:9.3f} s  x{count:<7d} "
            f"({mean_ms:8.3f} ms avg)"
        )
    return "\n".join(lines)


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(REGISTRY) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2
    workers = args.workers or None  # 0 -> one worker per CPU
    # One registry shared across the whole invocation: per-experiment
    # deltas come from instrumented_run's session, the trace file and the
    # verify cross-check see everything that happened.
    telem: Telemetry | None = None
    if args.metrics or args.profile or args.trace_out:
        telem = Telemetry()
    if args.persistent_pool:
        _warm_context(args, args.scale)
    import inspect

    for name in names:
        watch = Stopwatch()
        base = telem.snapshot() if telem is not None else None
        kwargs: dict[str, object] = {
            "backend": args.routing_backend,
            "workers": workers,
            "telemetry": telem,
        }
        # Only the fluid-simulator experiments take a solver knob.
        if "solver" in inspect.signature(REGISTRY[name].run).parameters:
            kwargs["solver"] = args.solver
        result = REGISTRY[name].run(args.scale, **kwargs)
        print(
            f"==== {name} (scale={args.scale}, {watch.elapsed:.1f}s) " + "=" * 20
        )
        print(result.render())
        if telem is not None and base is not None:
            delta = telem.snapshot().subtract(base)
            if args.metrics:
                print(delta.render())
            elif args.profile:
                print(_render_phases(delta))
        print()
        if args.json:
            import pathlib

            out = pathlib.Path(args.json)
            out.mkdir(parents=True, exist_ok=True)
            path = out / f"{name}_{args.scale}.json"
            path.write_text(result.to_json(indent=2) + "\n", encoding="utf-8")
            print(f"wrote {path}", file=sys.stderr)
    if telem is not None and args.trace_out:
        from .telemetry import trace

        n = trace.write_jsonl(telem.trace_events(), args.trace_out)
        print(f"wrote {n} trace event(s) to {args.trace_out}", file=sys.stderr)
    if args.verify:
        from .errors import VerificationError
        from .experiments.common import SharedContext

        # The run above went through the memoized per-scale context, so
        # this re-get is the same object — its cache holds exactly the
        # destinations the experiments forwarded along.
        ctx = SharedContext.get(
            args.scale, backend=args.routing_backend, workers=workers
        )
        try:
            report = ctx.verify(
                events=telem.trace_events() if telem is not None else None
            )
        except VerificationError as exc:
            print(f"post-run invariant gate FAILED: {exc}", file=sys.stderr)
            report_attr = getattr(exc, "report", None)
            if report_attr is not None:
                print(report_attr.render(), file=sys.stderr)
            return 1
        print(
            f"post-run invariant gate: {report.render().splitlines()[0]}",
            file=sys.stderr,
        )
    from .experiments.common import SharedContext

    SharedContext.close_all()  # release persistent pools / shm before exit
    return 0


def _cmd_scenario_list(_args: argparse.Namespace) -> int:
    """List the built-in dynamic scenarios."""
    from .scenario import SCENARIOS

    print("scenarios:")
    for name, spec in SCENARIOS.items():
        print(f"  {name:16s} {spec.description}")
        for when, ev in spec.timeline:
            print(f"    t={when:g}s  {ev!r}")
    print("\nscales:", ", ".join(SCALES))
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    """Play one scenario timeline through the experiment API."""
    from .experiments import scenario as scenario_mod

    telem: Telemetry | None = None
    if args.metrics or args.trace_out:
        telem = Telemetry()
    if args.persistent_pool:
        _warm_context(args, args.scale)
    watch = Stopwatch()
    result = scenario_mod.run(
        args.scale,
        backend=args.routing_backend,
        workers=args.workers or None,
        scenario=args.name,
        mode=args.mode,
        detector=args.detector,
        n_flows=args.n_flows,
        verify=not args.no_verify,
        crosscheck=args.crosscheck,
        telemetry=telem,
    )
    print(
        f"==== scenario {args.name} (scale={args.scale}, mode={args.mode}, "
        f"detector={args.detector}, {watch.elapsed:.1f}s) " + "=" * 12
    )
    print(result.render())
    if telem is not None and args.metrics:
        print(telem.snapshot().render())
    if telem is not None and args.trace_out:
        from .telemetry import trace

        n = trace.write_jsonl(telem.trace_events(), args.trace_out)
        print(f"wrote {n} trace event(s) to {args.trace_out}", file=sys.stderr)
    if args.json:
        import pathlib

        out = pathlib.Path(args.json)
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"scenario_{args.name}_{args.scale}.json"
        path.write_text(result.to_json(indent=2) + "\n", encoding="utf-8")
        print(f"wrote {path}", file=sys.stderr)
    from .experiments.common import SharedContext

    SharedContext.close_all()  # release persistent pools / shm before exit
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the streaming service session from the command line."""
    import json

    from .service import ServiceConfig, ServiceSession

    if args.restore_from:
        session = ServiceSession.restore(
            args.restore_from, backend=args.routing_backend
        )
        print(
            f"restored session at event {session.events_processed} "
            f"({session.engine.n_flows} live flows, "
            f"clock {session.clock_s:.2f}s)",
            file=sys.stderr,
        )
    else:
        cfg = ServiceConfig(
            seed=args.seed,
            arrival_rate=args.arrival_rate,
            traffic=args.traffic,
            detector=args.detector,
            record_capacity=args.record_capacity,
            checkpoint_every=args.checkpoint_every or 0,
            batch_max=args.batch_max if args.batch_max is not None else 1,
        )
        session = ServiceSession(
            cfg,
            topology=TopologyConfig(n_ases=args.n_ases, seed=args.seed),
            backend=args.routing_backend or "dict",
            telemetry=args.metrics,
        )
    if args.workers != 1 and session.engine.routing.backend == "array":
        # Sharded flap re-convergence over a worker pool.  The engine is
        # built against the session's *effective* backend (restore may
        # have kept the checkpoint's), and the session owns it from here:
        # the finally below releases pool and shared memory even on
        # KeyboardInterrupt, so an interrupted serve leaves /dev/shm
        # clean.
        args.routing_backend = session.engine.routing.backend
        session.attach_routing_engine(
            _engine_from_args(session.engine.routing.graph, args)
        )
    interval = (
        args.checkpoint_every
        if args.checkpoint_every is not None
        else session.config.checkpoint_every
    )
    watch = Stopwatch()
    done = 0
    try:
        while done < args.events:
            batch = (
                args.events - done
                if interval <= 0
                else min(interval, args.events - done)
            )
            report = session.drain(batch)
            done += batch
            print(
                f"[{session.events_processed}] +{batch} events: "
                f"{report.arrivals} arrivals, {report.retired} retired, "
                f"{report.flows_live} live, clock {report.clock_s:.2f}s",
                file=sys.stderr,
            )
            if interval > 0:
                session.save_checkpoint(args.checkpoint_out)
                print(f"checkpointed to {args.checkpoint_out}", file=sys.stderr)
    finally:
        session.close()
    rate = done / watch.elapsed if watch.elapsed > 0 else float("inf")
    print(f"processed {done} events in {watch.elapsed:.1f}s "
          f"({rate:.0f} events/s)", file=sys.stderr)
    print(json.dumps(session.snapshot(), indent=2, sort_keys=True))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Validate and aggregate a recorded JSONL telemetry trace."""
    import json

    from .telemetry import trace

    try:
        events = trace.read_jsonl(args.file)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    schema: dict[str, object] | None = None
    if args.schema:
        import pathlib

        try:
            loaded = json.loads(
                pathlib.Path(args.schema).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read schema: {exc}", file=sys.stderr)
            return 2
        if not isinstance(loaded, dict):
            print("schema file is not a JSON object", file=sys.stderr)
            return 2
        schema = loaded
    problems = trace.validate_events(events, schema)
    if problems:
        for p in problems[:20]:
            print(f"invalid trace: {p}", file=sys.stderr)
        if len(problems) > 20:
            print(f"... and {len(problems) - 20} more", file=sys.stderr)
        return 1
    summary = trace.summarize(events, top=args.top)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(trace.render_summary(summary))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Statically prove (or refute) the forwarding invariants."""
    from .bgp.propagation import RoutingCache
    from .experiments.common import deployment_sample, get_scale
    from .verify import verify_routing

    sc = get_scale(args.scale)
    n_ases = args.n_ases or sc.n_ases
    graph = generate_topology(TopologyConfig(n_ases=n_ases, seed=args.seed))
    routing = RoutingCache(graph, backend=args.routing_backend)

    nodes = sorted(graph.nodes())
    if args.dests and args.dests < len(nodes):
        # Evenly spaced sample: deterministic, covers the whole hierarchy.
        step = max(1, len(nodes) // args.dests)
        dests = nodes[::step][: args.dests]
    else:
        dests = nodes

    with _engine_from_args(graph, args) as engine:
        if engine.effective_workers > 1:
            routing.precompute(dests, engine=engine)

    capable = deployment_sample(graph, args.deployment)
    report = verify_routing(
        graph,
        routing,
        dests,
        capable=capable,
        tag_check_enabled=not args.no_tag_check,
    )
    print(report.render())
    if args.json:
        import pathlib

        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.to_json(indent=2) + "\n", encoding="utf-8")
        print(f"wrote {path}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_topology(args: argparse.Namespace) -> int:
    cfg = TopologyConfig(n_ases=args.n_ases, seed=args.seed)
    graph = generate_topology(cfg)
    stats = topology_stats(graph)
    print(
        f"generated {stats.n_nodes} ASes, {stats.n_links} links "
        f"(P/C {stats.p2c_fraction:.0%}, peering {stats.peering_fraction:.0%})"
    )
    if args.out:
        save_caida(graph, args.out, header=f"synthetic Internet, seed={args.seed}")
        print(f"wrote {args.out} (CAIDA serial-1 format)")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .experiments.common import SharedContext
    from .experiments.export import export_all

    if args.persistent_pool:
        _warm_context(args, args.scale)
    written = export_all(
        args.out,
        args.scale,
        backend=args.routing_backend,
        workers=args.workers or None,
    )
    for p in written:
        print(f"wrote {p}")
    SharedContext.close_all()  # release persistent pools / shm before exit
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    """One-shot scheme comparison on user-chosen parameters."""
    from .bgp.propagation import RoutingCache
    from .experiments.common import deployment_sample, make_provider
    from .experiments.report import text_table
    from .flowsim.simulator import FluidSimConfig, FluidSimulator
    from .metrics.summary import comparison_rows
    from .topology.generator import TopologyConfig, generate_topology
    from .traffic.matrix import TrafficConfig, powerlaw_matrix, uniform_matrix

    graph = generate_topology(TopologyConfig(n_ases=args.n_ases, seed=args.seed))
    routing = RoutingCache(graph, backend=args.routing_backend)
    capable = deployment_sample(graph, args.deployment)
    tc = TrafficConfig(
        n_flows=args.n_flows,
        arrival_rate=args.rate,
        alpha=args.alpha,
        seed=args.seed,
        size_distribution=args.size_distribution,
    )
    if args.traffic == "uniform":
        specs = uniform_matrix(graph, tc)
    else:
        specs = powerlaw_matrix(graph, tc, n_providers=max(50, args.n_ases // 20))

    if args.workers != 1:
        with _engine_from_args(graph, args) as engine:
            if engine.effective_workers > 1:
                watch = Stopwatch()
                n = routing.precompute({s.dst for s in specs}, engine=engine)
                print(
                    f"precomputed {n} destinations on {engine.effective_workers} "
                    f"workers in {watch.elapsed:.1f}s",
                    file=sys.stderr,
                )

    results = []
    for scheme in args.schemes:
        watch = Stopwatch()
        provider = make_provider(scheme, graph, routing, capable)
        res = FluidSimulator(
            graph, provider, FluidSimConfig(solver=args.solver)
        ).run(specs)
        results.append(res)
        print(f"ran {scheme} in {watch.elapsed:.1f}s", file=sys.stderr)
    print(
        text_table(
            ["Scheme", "Flows", "Median Mbps", "p10", "p90", ">=500 Mbps", "On alt paths"],
            comparison_rows(results),
            title=(
                f"{args.traffic} traffic, {args.n_ases} ASes, "
                f"{args.n_flows} flows @ {args.rate:.0f}/s, "
                f"deployment {args.deployment:.0%}"
            ),
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="mifo-repro",
        description="Reproduction of 'MIFO: Multi-Path Interdomain Forwarding' (ICPP 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and scales").set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment (or 'all')")
    p_run.add_argument("experiment", help="experiment name from 'list', or 'all'")
    p_run.add_argument("--scale", default="default", choices=sorted(SCALES))
    _add_engine_options(p_run)
    p_run.add_argument(
        "--solver",
        choices=("incremental", "full"),
        default="incremental",
        help="fluid max-min solver (results are byte-identical; "
        "'full' rebuilds the incidence cold every event)",
    )
    p_run.add_argument(
        "--json", default=None, metavar="DIR", help="also dump ExperimentResult JSON"
    )
    p_run.add_argument(
        "--verify",
        action="store_true",
        help="statically re-prove the forwarding invariants after the run "
        "(with --metrics/--trace-out, also cross-checks the recorded trace)",
    )
    p_run.add_argument(
        "--metrics",
        action="store_true",
        help="record telemetry and print counters + phase timers per experiment",
    )
    p_run.add_argument(
        "--profile",
        action="store_true",
        help="record telemetry and print only the phase wall-time breakdown",
    )
    p_run.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="record the structured event trace and write it as JSONL",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_sc = sub.add_parser(
        "scenario", help="event-driven dynamic scenarios (link flaps, ...)"
    )
    sc_sub = p_sc.add_subparsers(dest="scenario_command", required=True)
    sc_sub.add_parser("list", help="list built-in scenarios").set_defaults(
        fn=_cmd_scenario_list
    )
    p_sc_run = sc_sub.add_parser("run", help="play one scenario timeline")
    p_sc_run.add_argument("name", help="scenario name from 'scenario list'")
    p_sc_run.add_argument("--scale", default="test", choices=sorted(SCALES))
    p_sc_run.add_argument(
        "--mode",
        choices=("incremental", "full"),
        default="incremental",
        help="control-plane update policy (results are byte-identical; "
        "'full' recomputes everything each event)",
    )
    p_sc_run.add_argument(
        "--detector",
        choices=("oracle", "threshold", "changepoint"),
        default="oracle",
        help="congestion signal driving deflection: hysteresis bits over "
        "true link load ('oracle') or a measurement-driven detector over "
        "per-path RTT samples",
    )
    _add_engine_options(p_sc_run)
    p_sc_run.add_argument(
        "--n-flows", type=int, default=None, help="base demand population size"
    )
    p_sc_run.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the per-event invariant re-certification",
    )
    p_sc_run.add_argument(
        "--crosscheck",
        action="store_true",
        help="diff incremental state against full recomputation every event",
    )
    p_sc_run.add_argument(
        "--metrics", action="store_true", help="record and print telemetry"
    )
    p_sc_run.add_argument(
        "--trace-out", default=None, metavar="FILE", help="write the event trace JSONL"
    )
    p_sc_run.add_argument(
        "--json", default=None, metavar="DIR", help="also dump ExperimentResult JSON"
    )
    p_sc_run.set_defaults(fn=_cmd_scenario_run)

    p_srv = sub.add_parser(
        "serve",
        help="run the streaming service (checkpointable long-lived session)",
    )
    p_srv.add_argument(
        "--events", type=int, default=1000, help="stream events to process"
    )
    p_srv.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="K",
        help="checkpoint every K events (default: the config's setting; "
        "0 = never)",
    )
    p_srv.add_argument(
        "--checkpoint-out",
        default="service.ckpt.json",
        metavar="PATH",
        help="where periodic checkpoints are written",
    )
    p_srv.add_argument(
        "--restore-from",
        default=None,
        metavar="PATH",
        help="resume from a checkpoint file instead of starting fresh",
    )
    p_srv.add_argument(
        "--n-ases", type=int, default=300, help="topology size (fresh start)"
    )
    p_srv.add_argument("--seed", type=int, default=2014)
    p_srv.add_argument(
        "--arrival-rate", type=float, default=200.0, help="flow arrivals/s"
    )
    p_srv.add_argument(
        "--traffic", choices=("zipf", "uniform"), default="zipf"
    )
    p_srv.add_argument(
        "--detector",
        choices=("oracle", "threshold", "changepoint"),
        default="oracle",
        help="congestion signal driving deflection (fresh start; restore "
        "keeps the checkpoint's setting)",
    )
    p_srv.add_argument(
        "--record-capacity",
        type=int,
        default=1024,
        help="per-event records retained (the bounded ring)",
    )
    p_srv.add_argument(
        "--batch-max",
        type=int,
        default=None,
        metavar="N",
        help="coalesce up to N consecutive arrival/retirement ticks into "
        "one solve (fresh start; restore keeps the checkpoint's setting)",
    )
    _add_engine_options(p_srv, backend_default=None)
    p_srv.add_argument(
        "--metrics",
        action="store_true",
        help="attach a telemetry registry (counters land in the snapshot)",
    )
    p_srv.set_defaults(fn=_cmd_serve)

    p_tr = sub.add_parser("trace", help="inspect recorded telemetry traces")
    tr_sub = p_tr.add_subparsers(dest="trace_command", required=True)
    p_sum = tr_sub.add_parser(
        "summarize", help="validate a JSONL trace and aggregate it"
    )
    p_sum.add_argument("file", help="JSONL trace written by 'run --trace-out'")
    p_sum.add_argument(
        "--schema",
        default=None,
        metavar="PATH",
        help="validate against a JSON-schema file (default: built-in schema)",
    )
    p_sum.add_argument(
        "--top", type=int, default=5, help="rows in the top-N breakdowns"
    )
    p_sum.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    p_sum.set_defaults(fn=_cmd_trace)

    p_ver = sub.add_parser(
        "verify",
        help="statically prove or refute MIFO's forwarding invariants",
    )
    p_ver.add_argument("--scale", default="test", choices=sorted(SCALES))
    p_ver.add_argument(
        "--n-ases", type=int, default=None, help="override the scale's topology size"
    )
    p_ver.add_argument("--seed", type=int, default=2014)
    p_ver.add_argument(
        "--dests",
        type=int,
        default=25,
        help="destinations to verify, evenly sampled (0 = every AS)",
    )
    p_ver.add_argument(
        "--deployment", type=float, default=1.0, help="MIFO-capable fraction"
    )
    p_ver.add_argument(
        "--no-tag-check",
        action="store_true",
        help="ablation: verify with Tag-Check disabled",
    )
    _add_engine_options(p_ver)
    p_ver.add_argument(
        "--json", default=None, metavar="FILE", help="dump the report as JSON"
    )
    p_ver.set_defaults(fn=_cmd_verify)

    p_topo = sub.add_parser("topology", help="generate a synthetic AS topology")
    p_topo.add_argument("--n-ases", type=int, default=2000)
    p_topo.add_argument("--seed", type=int, default=2014)
    p_topo.add_argument("--out", default=None, help="write CAIDA serial-1 file")
    p_topo.set_defaults(fn=_cmd_topology)

    p_exp = sub.add_parser(
        "export", help="dump every figure's series as gnuplot .dat files"
    )
    p_exp.add_argument("--out", default="results/dat")
    p_exp.add_argument("--scale", default="bench", choices=sorted(SCALES))
    _add_engine_options(p_exp)
    p_exp.set_defaults(fn=_cmd_export)

    p_sim = sub.add_parser(
        "simulate", help="one-shot BGP/MIRO/MIFO comparison, custom parameters"
    )
    p_sim.add_argument("--n-ases", type=int, default=1000)
    p_sim.add_argument("--n-flows", type=int, default=1000)
    p_sim.add_argument("--rate", type=float, default=1000.0, help="flow arrivals/s")
    p_sim.add_argument("--deployment", type=float, default=1.0)
    p_sim.add_argument("--traffic", choices=("uniform", "powerlaw"), default="uniform")
    p_sim.add_argument("--alpha", type=float, default=1.0)
    p_sim.add_argument(
        "--size-distribution", choices=("fixed", "lognormal", "pareto"), default="fixed"
    )
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument(
        "--schemes", nargs="+", default=["BGP", "MIRO", "MIFO"],
        help="any of BGP MIRO MIFO",
    )
    _add_engine_options(p_sim)
    p_sim.add_argument(
        "--solver",
        choices=("incremental", "full"),
        default="incremental",
        help="fluid max-min solver (byte-identical results)",
    )
    p_sim.set_defaults(fn=_cmd_simulate)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
