"""Border routers for the packet-level simulator.

A :class:`Router` is a chassis: ports, a FIB, and counters.  *How* packets
are forwarded is delegated to a pluggable engine callable — plain BGP
forwarding or the MIFO forwarding engine (paper Algorithm 1) from
:mod:`repro.mifo.engine`.  This mirrors the prototype architecture
(Section V-A), where the kernel FIB lookup ``ip_mkroute_input()`` was
re-implemented with MIFO callbacks while the chassis stayed stock Linux.
"""

from __future__ import annotations

import dataclasses
import typing
from collections.abc import Callable

from ..errors import ForwardingError
from .device import Device
from .packet import Packet
from .port import PeerKind, Port

if typing.TYPE_CHECKING:  # pragma: no cover
    from .events import Simulator

__all__ = ["FibEntry", "Fib", "RouterCounters", "Router"]


@dataclasses.dataclass(slots=True)
class FibEntry:
    """One FIB row — the paper's Figure-1 FIB with the added ``alt`` field.

    ``out_port`` carries the default path; ``alt_port`` (possibly None) the
    currently best alternative, maintained by the MIFO daemon.
    """

    out_port: Port
    alt_port: Port | None = None


class Fib:
    """Destination-prefix → :class:`FibEntry` map.

    Prefixes are destination ids (strings), consistent with the paper's
    "we ignore the length of prefix in our notation".
    """

    def __init__(self) -> None:
        self._entries: dict[str, FibEntry] = {}

    def install(self, dst: str, out_port: Port, alt_port: Port | None = None) -> None:
        """Install or replace the FIB entry for ``dst``."""
        self._entries[dst] = FibEntry(out_port, alt_port)

    def set_alt(self, dst: str, alt_port: Port | None) -> None:
        """Daemon hook: repoint the alternative port (Algorithm 1's
        ``Ialt`` source; Section V-A "updates the 'alt' port in the FIB")."""
        entry = self._entries.get(dst)
        if entry is None:
            raise ForwardingError(f"no FIB entry for {dst!r}")
        entry.alt_port = alt_port

    def lookup(self, dst: str) -> FibEntry:
        """``FIBLookup(p)`` of Algorithm 1 line 4."""
        try:
            return self._entries[dst]
        except KeyError:
            raise ForwardingError(f"no FIB entry for {dst!r}") from None

    def destinations(self) -> list[str]:
        """Installed FIB destinations, ascending."""
        return sorted(self._entries)

    def __contains__(self, dst: str) -> bool:
        return dst in self._entries


class RouterCounters:
    """Per-router accounting used by tests and the Fig-12 experiment."""

    __slots__ = (
        "forwarded",
        "deflected",
        "encapsulated",
        "decapsulated",
        "dropped_valley",
        "dropped_no_route",
        "dropped_ttl",
        "tagged",
    )

    def __init__(self) -> None:
        self.forwarded = 0
        self.deflected = 0
        self.encapsulated = 0
        self.decapsulated = 0
        self.dropped_valley = 0  #: Tag-Check failures (Algorithm 1 line 20)
        self.dropped_no_route = 0
        self.dropped_ttl = 0
        self.tagged = 0


#: Engine signature: (router, packet, in_port) -> None.  The engine owns the
#: packet once called: it must either send it out a port or drop it
#: (incrementing a counter).
Engine = Callable[["Router", Packet, Port], None]


class Router(Device):
    """A border router: chassis + FIB + pluggable forwarding engine."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        asn: int,
        engine: Engine,
    ) -> None:
        super().__init__(sim, name)
        self.asn = asn
        self.engine = engine
        self.fib = Fib()
        self.counters = RouterCounters()
        #: iBGP peer router name -> port reaching it (used by encapsulation
        #: addressing and by the daemon's measurement exchange).
        self.ibgp_ports: dict[str, Port] = {}

    def new_port(
        self,
        suffix: str,
        *,
        peer_kind: PeerKind,
        queue_capacity: int = 64,
    ) -> Port:
        """Create, attach, and return a new port."""
        port = Port(
            f"{self.name}:{suffix}",
            peer_kind=peer_kind,
            queue_capacity=queue_capacity,
        )
        return self.add_port(port)

    def receive(self, packet: Packet, in_port: Port) -> None:
        """Forward an arriving packet through the FIB."""
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.counters.dropped_ttl += 1
            return
        packet.record_as(self.asn)
        self.engine(self, packet, in_port)
