"""Constant-bit-rate (UDP-like) traffic sources.

TCP's ack-clocking couples the two directions of a path, which muddies
single-direction experiments (a reverse-path event throttles the forward
sender).  CBR sources send at a fixed rate regardless of feedback — the
right tool for the failover experiments and for background/probe load.
Delivered bytes are counted per flow at the receiving host
(:attr:`repro.dataplane.host.Host.cbr_received`).
"""

from __future__ import annotations

import typing

from .packet import Packet, PacketKind

if typing.TYPE_CHECKING:  # pragma: no cover
    from .events import Simulator
    from .host import Host

__all__ = ["CbrSender"]


class CbrSender:
    """Sends ``packet_size``-byte datagrams at ``rate_bps`` until stopped
    or ``total_bytes`` have been emitted."""

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        flow_id: int,
        dst: str,
        *,
        rate_bps: float = 100e6,
        packet_size: int = 1000,
        total_bytes: float | None = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.dst = dst
        self.packet_size = packet_size
        self.interval = packet_size * 8.0 / rate_bps
        self.total_bytes = total_bytes
        self.sent_bytes = 0
        self.sent_packets = 0
        self._running = False
        self._seq = 0

    def start(self) -> None:
        """Begin emitting packets (idempotent)."""
        if self._running:
            return
        self._running = True
        self._emit()

    def stop(self) -> None:
        """Stop emitting after the current packet."""
        self._running = False

    @property
    def running(self) -> bool:
        """Whether the source is currently emitting."""
        return self._running

    def _emit(self) -> None:
        if not self._running:
            return
        if self.total_bytes is not None and self.sent_bytes >= self.total_bytes:
            self._running = False
            return
        pkt = Packet(
            flow_id=self.flow_id,
            seq=self._seq,
            src=self.host.name,
            dst=self.dst,
            size=self.packet_size,
            kind=PacketKind.CBR,
            created_at=self.sim.now,
        )
        self._seq += 1
        self.host.transmit(pkt)
        self.sent_bytes += self.packet_size
        self.sent_packets += 1
        self.sim.schedule(self.interval, self._emit)
