"""Discrete-event simulation core for the packet-level data plane.

A minimal, fast event queue: a binary heap of ``(time, seq, callback)``
entries.  The monotonically increasing ``seq`` makes ordering total and
deterministic for simultaneous events (FIFO among equal timestamps), which
keeps every experiment bit-reproducible for a given seed.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from ..errors import SimulationError

__all__ = ["EventQueue", "Simulator"]


class EventQueue:
    """Binary-heap event queue with deterministic tie-breaking."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def push(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at ``time`` (FIFO within a tick)."""
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, callback))

    def pop(self) -> tuple[float, Callable[[], None]]:
        """Remove and return the earliest (time, callback)."""
        time, _seq, cb = heapq.heappop(self._heap)
        return time, cb

    def peek_time(self) -> float | None:
        """Time of the next event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulator:
    """Event loop with a virtual clock.

    Components schedule work with :meth:`schedule` (relative delay) or
    :meth:`schedule_at` (absolute time); :meth:`run` drains the queue until
    exhaustion, a time horizon, or an event budget (a guard against
    accidental livelock, e.g. a retransmission storm in a broken TCP test).
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._queue = EventQueue()
        self._events_processed = 0
        self._running = False

    @property
    def events_processed(self) -> int:
        """Events executed so far."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._queue.push(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule at an absolute time (must not be in the past)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        self._queue.push(time, callback)

    def run(
        self,
        *,
        until: float | None = None,
        max_events: int | None = None,
    ) -> float:
        """Process events; returns the final clock value.

        ``until`` stops the clock at (and including) that time; pending
        later events remain queued.  ``max_events`` raises
        :class:`SimulationError` when exceeded.
        """
        if self._running:
            raise SimulationError("re-entrant Simulator.run()")
        self._running = True
        try:
            while self._queue:
                t = self._queue.peek_time()
                if until is not None and t is not None and t > until:
                    self.now = until
                    break
                t, cb = self._queue.pop()
                self.now = t
                cb()
                self._events_processed += 1
                if max_events is not None and self._events_processed > max_events:
                    raise SimulationError(
                        f"event budget exceeded ({max_events}) at t={self.now:.6f}"
                    )
        finally:
            self._running = False
        return self.now
