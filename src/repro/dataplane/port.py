"""Router/host ports with drop-tail tx queues.

The paper's congestion signal is "the queuing ratio of output ports"
(Section II-A): a port exposes :attr:`Port.queuing_ratio` — occupied
fraction of its tx queue — which the MIFO forwarding engine compares
against a threshold (``isCongest`` in Algorithm 1).  The MIFO daemon's
greedy alternative selection reads :meth:`Port.spare_capacity`, the
remaining capacity of the directly connected inter-AS link estimated from a
sliding utilization window (Section III-C: "link monitoring", not path
probing).
"""

from __future__ import annotations

import enum
import typing
from collections import deque

from .packet import Packet

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..topology.relationships import Relationship
    from .link import Link

__all__ = ["PeerKind", "Port", "PortStats"]


class PeerKind(enum.Enum):
    """What sits on the far side of a port."""

    EBGP = "ebgp"  #: a border router of a *different* AS
    IBGP = "ibgp"  #: a border router of the *same* AS
    HOST = "host"  #: an end host / intradomain edge


class PortStats:
    """Counters accumulated by one port (tx direction)."""

    __slots__ = ("packets_sent", "bytes_sent", "packets_dropped", "busy_time")

    def __init__(self) -> None:
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        self.busy_time = 0.0

    def utilization(self, elapsed: float, rate_bps: float) -> float:
        """Mean utilization over ``elapsed`` seconds of a ``rate_bps`` link."""
        if elapsed <= 0.0 or rate_bps <= 0.0:
            return 0.0
        return min(1.0, self.bytes_sent * 8.0 / (elapsed * rate_bps))


class Port:
    """One transmit side of a (full-duplex) link attachment.

    Transmission model: packets serialize at the link rate one at a time
    from a drop-tail FIFO; a serialized packet then experiences the link's
    propagation delay before delivery to the remote device.
    """

    def __init__(
        self,
        name: str,
        *,
        queue_capacity: int = 64,
        peer_kind: PeerKind = PeerKind.EBGP,
    ) -> None:
        self.name = name
        self.queue_capacity = queue_capacity
        self.peer_kind = peer_kind
        self.link: "Link | None" = None
        #: ASN of the device on the far side (None for hosts).
        self.neighbor_as: int | None = None
        #: Relationship of the far-side AS as seen from this router's AS
        #: (None for iBGP/host ports).
        self.neighbor_relationship: "Relationship | None" = None
        self._queue: deque[Packet] = deque()
        self._transmitting = False
        self.stats = PortStats()
        # Sliding-window utilization estimate for the MIFO daemon.
        self._window_bytes = 0
        self._window_start = 0.0
        self._last_utilization = 0.0

    # ------------------------------------------------------------------
    # queue state — the congestion signal
    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Packets queued plus any in transmission."""
        return len(self._queue) + (1 if self._transmitting else 0)

    @property
    def queuing_ratio(self) -> float:
        """Occupied fraction of the tx queue — the paper's congestion signal."""
        if self.queue_capacity <= 0:
            return 0.0
        return min(1.0, self.queue_length / self.queue_capacity)

    @property
    def rate_bps(self) -> float:
        """Line rate of the attached link (0 when detached)."""
        return self.link.rate_bps if self.link is not None else 0.0

    def spare_capacity(self, now: float) -> float:
        """Estimated unused capacity (bps) of the attached link right now.

        Combines the sliding-window utilization sample (refreshed by the
        MIFO daemon via :meth:`sample_utilization`) with the instantaneous
        queue state: a backlogged port has no spare capacity regardless of
        what the window average says.
        """
        if self.link is None:
            return 0.0
        if self.queuing_ratio >= 1.0:
            return 0.0
        return max(0.0, (1.0 - self._last_utilization) * self.link.rate_bps)

    #: EWMA smoothing factor for utilization windows: heavy enough that a
    #: single idle window does not erase observed load (routers measure
    #: with smoothing for exactly this reason).
    UTILIZATION_EWMA = 0.5

    def sample_utilization(self, now: float) -> float:
        """Close the current measurement window; update the (smoothed)
        utilization estimate and return it."""
        if self.link is None:
            return 0.0
        elapsed = now - self._window_start
        if elapsed > 0.0:
            window = min(
                1.0, self._window_bytes * 8.0 / (elapsed * self.link.rate_bps)
            )
            a = self.UTILIZATION_EWMA
            self._last_utilization = (1.0 - a) * self._last_utilization + a * window
        self._window_bytes = 0
        self._window_start = now
        return self._last_utilization

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission; False (and drop) if full."""
        if self.link is None:
            raise RuntimeError(f"port {self.name} is not wired to a link")
        if len(self._queue) >= self.queue_capacity:
            self.stats.packets_dropped += 1
            return False
        self._queue.append(packet)
        if not self._transmitting:
            self._start_next()
        return True

    def kick(self) -> None:
        """Restart transmission after a link restore (no-op when busy)."""
        if not self._transmitting:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._transmitting = False
            return
        if not self.link.up:
            # Carrier loss: stall with the queue intact; the backlog is
            # the failure signal MIFO's congestion detection consumes.
            self._transmitting = False
            return
        self._transmitting = True
        packet = self._queue.popleft()
        link = self.link
        sim = link.sim
        tx_time = packet.size * 8.0 / link.rate_bps
        self.stats.busy_time += tx_time

        def _serialized() -> None:
            self.stats.packets_sent += 1
            self.stats.bytes_sent += packet.size
            self._window_bytes += packet.size
            link.deliver_from(self, packet)
            self._start_next()

        sim.schedule(tx_time, _serialized)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Port({self.name}, q={self.queue_length}/{self.queue_capacity})"
