"""Packets and headers for the packet-level data plane.

A :class:`Packet` models exactly the header state MIFO's forwarding engine
(paper Algorithm 1) manipulates:

* ``tag_bit`` — the single "upstream neighbor is a customer" bit the
  Tag-Check strategy consumes (paper Section III-A4: carried in an unused
  MPLS-label bit, an IP reserved bit, or an IP option);
* an optional IP-in-IP **outer header** (:class:`OuterHeader`) used between
  iBGP peers to break deflection cycles (Section III-B);
* the 5-tuple-like flow identity used for flow-level deterministic
  hashing (Section II-A footnote 1).
"""

from __future__ import annotations

import dataclasses
import enum
import typing

__all__ = ["PacketKind", "OuterHeader", "Packet", "flow_hash"]


class PacketKind(enum.Enum):
    """Wire kinds a simulated packet can be."""
    DATA = "data"
    ACK = "ack"
    PROBE = "probe"  #: link-capacity measurement traffic (MIFO daemon)
    CBR = "cbr"  #: feedback-free constant-bit-rate datagrams


@dataclasses.dataclass(frozen=True, slots=True)
class OuterHeader:
    """IP-in-IP outer header: which router deflected to which iBGP peer."""

    src_router: str  #: name of the encapsulating (default egress) router
    dst_router: str  #: name of the iBGP peer carrying the alternative path


@dataclasses.dataclass(slots=True)
class Packet:
    """One packet in flight.

    ``dst`` is the destination prefix key used for FIB lookup (we identify
    prefixes with destination AS/host ids, "ignoring the length of prefix in
    our notation" exactly as the paper does).  ``size`` is the wire size in
    bytes and includes headers; encapsulation adds ``ENCAP_OVERHEAD``.
    """

    flow_id: int
    seq: int
    src: str
    dst: str
    size: int
    kind: PacketKind = PacketKind.DATA
    tag_bit: bool = False
    outer: OuterHeader | None = None
    created_at: float = 0.0
    #: hop limit — a loop never survives with Tag-Check on; the ablation
    #: benches (Tag-Check off) rely on TTL expiry to terminate loops.
    ttl: int = 64
    #: MPLS shim-label stack (used by MplsLabelCarrier).
    mpls_stack: list[int] = dataclasses.field(default_factory=list)
    #: whether an IP tag option is present (used by IpOptionCarrier).
    has_tag_option: bool = False
    #: ASes traversed so far — instrumentation only (loop assertions, path
    #: accounting); a real packet carries no such list.
    as_trace: list[int] = dataclasses.field(default_factory=list)

    #: bytes an IP-in-IP outer header adds on the wire.
    ENCAP_OVERHEAD: typing.ClassVar[int] = 20

    @property
    def is_encapsulated(self) -> bool:
        """True while IP-in-IP encapsulated (outer header set)."""
        return self.outer is not None

    def encapsulate(self, src_router: str, dst_router: str) -> None:
        """Push an IP-in-IP outer header (paper Algorithm 1, line 13)."""
        if self.outer is not None:
            raise ValueError("packet is already encapsulated")
        self.outer = OuterHeader(src_router, dst_router)
        self.size += self.ENCAP_OVERHEAD

    def decapsulate(self) -> OuterHeader:
        """Strip the outer header, returning it (Algorithm 1, lines 2-3)."""
        if self.outer is None:
            raise ValueError("packet is not encapsulated")
        outer = self.outer
        self.outer = None
        self.size -= self.ENCAP_OVERHEAD
        return outer

    def record_as(self, asn: int) -> None:
        """Append ``asn`` to the packet's AS-level trace."""
        self.as_trace.append(asn)


def flow_hash(flow_id: int, n_buckets: int = 2) -> int:
    """Deterministic flow-level hash (the paper's 5-tuple hash stand-in).

    Splitmix64-style avalanche so consecutive flow ids spread uniformly
    across buckets; used to pin a flow to default vs alternative path so
    packets of one flow never reorder across paths.
    """
    x = (flow_id + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x % n_buckets
