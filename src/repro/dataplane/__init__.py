"""Packet-level data plane (systems S6+S7 in DESIGN.md): DES core,
packets with the MIFO tag bit and IP-in-IP stack, drop-tail ports, links,
routers with pluggable forwarding engines, TCP-Reno hosts, wiring helpers.
This is the substitute for the paper's Linux-kernel prototype + testbed."""

from .cbr import CbrSender
from .device import Device
from .events import EventQueue, Simulator
from .host import Host
from .link import Link
from .network import Network, ThroughputSampler
from .packet import OuterHeader, Packet, PacketKind, flow_hash
from .port import PeerKind, Port, PortStats
from .router import Engine, Fib, FibEntry, Router, RouterCounters
from .tcp import TcpConfig, TcpReceiver, TcpSender

__all__ = [
    "EventQueue",
    "Simulator",
    "Device",
    "Packet",
    "PacketKind",
    "OuterHeader",
    "flow_hash",
    "Port",
    "PortStats",
    "PeerKind",
    "Link",
    "Fib",
    "FibEntry",
    "Router",
    "RouterCounters",
    "Engine",
    "Host",
    "TcpConfig",
    "TcpSender",
    "CbrSender",
    "TcpReceiver",
    "Network",
    "ThroughputSampler",
]
