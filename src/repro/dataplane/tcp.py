"""Simplified TCP Reno over the packet-level data plane (system S7).

The testbed experiments (paper Section V) run real TCP flows over the MIFO
prototype; this module provides the equivalent traffic source for our
simulated data plane: a window-based, ack-clocked sender with slow start,
congestion avoidance, fast retransmit on three duplicate ACKs, and an RTO
with exponential backoff and Karn's rule for RTT sampling.  Sequence
numbers count MSS-sized segments rather than bytes — the granularity the
simulator forwards at.

Fidelity target: queue-building behavior (so the MIFO engine's
queuing-ratio congestion signal fires like the prototype's) and fair
bandwidth sharing between competing flows — the two properties Fig. 12
depends on.
"""

from __future__ import annotations

import typing
from collections.abc import Callable

from .packet import Packet, PacketKind

if typing.TYPE_CHECKING:  # pragma: no cover
    from .events import Simulator
    from .host import Host

__all__ = ["TcpConfig", "TcpSender", "TcpReceiver"]

_HEADER_BYTES = 40


class TcpConfig:
    """TCP tunables — defaults sized for the Gigabit testbed."""

    __slots__ = (
        "mss",
        "initial_cwnd",
        "initial_ssthresh",
        "initial_rto",
        "min_rto",
        "max_rto",
        "dupack_threshold",
    )

    def __init__(
        self,
        *,
        mss: int = 1000,
        initial_cwnd: float = 2.0,
        initial_ssthresh: float = 64.0,
        initial_rto: float = 0.2,
        min_rto: float = 0.05,
        max_rto: float = 1.0,
        dupack_threshold: int = 3,
    ) -> None:
        self.mss = mss
        self.initial_cwnd = initial_cwnd
        self.initial_ssthresh = initial_ssthresh
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.dupack_threshold = dupack_threshold


class TcpSender:
    """One TCP Reno connection's sending side."""

    def __init__(
        self,
        sim: "Simulator",
        host: "Host",
        flow_id: int,
        dst: str,
        total_bytes: float,
        config: TcpConfig | None = None,
        on_complete: Callable[["TcpSender"], None] | None = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.dst = dst
        self.config = config or TcpConfig()
        self.total_segments = max(1, int(-(-total_bytes // self.config.mss)))
        self.on_complete = on_complete

        self.cwnd = self.config.initial_cwnd
        self.ssthresh = self.config.initial_ssthresh
        self.snd_una = 0  #: lowest unacked segment
        self.snd_nxt = 0  #: next new segment to send
        self.dupacks = 0
        self.in_recovery = False
        self.recover_seq = 0
        self.start_time: float | None = None
        self.finish_time: float | None = None
        self.retransmissions = 0

        self._rto = self.config.initial_rto
        self._srtt: float | None = None
        self._rttvar = 0.0
        self._send_times: dict[int, float] = {}
        self._retransmitted: set[int] = set()
        self._timer_version = 0

    # ------------------------------------------------------------------
    @property
    def completed(self) -> bool:
        """Whether the flow has finished."""
        return self.finish_time is not None

    @property
    def inflight(self) -> int:
        """Unacknowledged segments outstanding."""
        return self.snd_nxt - self.snd_una

    def start(self) -> None:
        """Record the start time and begin transmitting."""
        self.start_time = self.sim.now
        self._pump()
        self._arm_timer()

    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Ack-clocked transmission: fill the window with new segments."""
        window = int(self.cwnd)
        while not self.completed and self.snd_nxt < self.total_segments and self.inflight < window:
            self._transmit(self.snd_nxt, retransmit=False)
            self.snd_nxt += 1

    def _transmit(self, seq: int, *, retransmit: bool) -> None:
        pkt = Packet(
            flow_id=self.flow_id,
            seq=seq,
            src=self.host.name,
            dst=self.dst,
            size=self.config.mss + _HEADER_BYTES,
            kind=PacketKind.DATA,
            created_at=self.sim.now,
        )
        if retransmit:
            self.retransmissions += 1
            self._retransmitted.add(seq)
        else:
            self._send_times[seq] = self.sim.now
        self.host.transmit(pkt)

    # ------------------------------------------------------------------
    def on_ack(self, ackno: int) -> None:
        """Cumulative ACK: ``ackno`` is the next segment the peer expects."""
        if self.completed:
            return
        if ackno > self.snd_una:
            self._rtt_sample(ackno - 1)
            self.snd_una = ackno
            self.dupacks = 0
            if self.in_recovery:
                if ackno >= self.recover_seq:
                    self.in_recovery = False
                    self.cwnd = self.ssthresh
                else:
                    # NewReno partial ACK: the next hole is lost too —
                    # retransmit it immediately instead of waiting for an
                    # RTO (critical under multi-segment loss bursts).
                    self._transmit(self.snd_una, retransmit=True)
            else:
                if self.cwnd < self.ssthresh:
                    self.cwnd += 1.0  # slow start
                else:
                    self.cwnd += 1.0 / self.cwnd  # congestion avoidance
            if self.snd_una >= self.total_segments:
                self._complete()
                return
            self._arm_timer()
            self._pump()
        elif ackno == self.snd_una:
            self.dupacks += 1
            if self.dupacks == self.config.dupack_threshold and not self.in_recovery:
                # Fast retransmit + (simplified) fast recovery.
                self.ssthresh = max(self.inflight / 2.0, 2.0)
                self.cwnd = self.ssthresh
                self.in_recovery = True
                self.recover_seq = self.snd_nxt
                self._transmit(self.snd_una, retransmit=True)
                self._arm_timer()

    def _rtt_sample(self, seq: int) -> None:
        sent = self._send_times.pop(seq, None)
        if sent is None or seq in self._retransmitted:
            return  # Karn's rule: never sample retransmitted segments
        rtt = self.sim.now - sent
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self._rto = min(
            max(self._srtt + 4.0 * self._rttvar, self.config.min_rto),
            self.config.max_rto,
        )

    # ------------------------------------------------------------------
    def _arm_timer(self) -> None:
        self._timer_version += 1
        version = self._timer_version
        una = self.snd_una
        self.sim.schedule(self._rto, lambda: self._on_timer(version, una))

    def _on_timer(self, version: int, una_at_arm: int) -> None:
        if self.completed or version != self._timer_version:
            return
        if self.snd_una != una_at_arm:  # progress happened; timer is stale
            return
        # Retransmission timeout: slow-start restart with go-back-N — all
        # unacked segments are considered lost and will be resent by the
        # pump, which is what keeps a burst-lossy window from degenerating
        # into one RTO per segment.
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.config.initial_cwnd
        self.dupacks = 0
        self.in_recovery = False
        self._rto = min(self._rto * 2.0, self.config.max_rto)
        self._transmit(self.snd_una, retransmit=True)
        self.snd_nxt = self.snd_una + 1
        self._arm_timer()

    def _complete(self) -> None:
        self.finish_time = self.sim.now
        self._timer_version += 1  # cancel outstanding timers
        if self.on_complete is not None:
            self.on_complete(self)

    @property
    def duration(self) -> float:
        """Completion time minus start time (flow must be done)."""
        if self.start_time is None or self.finish_time is None:
            raise RuntimeError("flow has not completed")
        return self.finish_time - self.start_time

    @property
    def goodput_bps(self) -> float:
        """Application-level throughput over the flow's lifetime."""
        return self.total_segments * self.config.mss * 8.0 / self.duration


class TcpReceiver:
    """Receiving side: cumulative ACKs, out-of-order buffering."""

    def __init__(
        self, sim: "Simulator", host: "Host", flow_id: int, peer: str
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.peer = peer
        self.next_expected = 0
        self._out_of_order: set[int] = set()
        self.bytes_received = 0
        self.segments_received = 0
        self.segment_payload = 0  #: payload bytes per segment (from wire)

    @property
    def delivered_bytes(self) -> int:
        """In-order application bytes delivered so far (goodput)."""
        return self.next_expected * self.segment_payload

    def on_data(self, packet: Packet) -> None:
        """Receiver side: count a data segment and ACK it."""
        self.segments_received += 1
        payload = packet.size - _HEADER_BYTES
        self.bytes_received += payload
        if self.segment_payload == 0:
            self.segment_payload = payload
        seq = packet.seq
        if seq == self.next_expected:
            self.next_expected += 1
            while self.next_expected in self._out_of_order:
                self._out_of_order.discard(self.next_expected)
                self.next_expected += 1
        elif seq > self.next_expected:
            self._out_of_order.add(seq)
        # else: duplicate of already-delivered data; still (re-)ACK.
        ack = Packet(
            flow_id=self.flow_id,
            seq=self.next_expected,
            src=self.host.name,
            dst=self.peer,
            size=_HEADER_BYTES,
            kind=PacketKind.ACK,
            created_at=self.sim.now,
        )
        self.host.transmit(ack)
