"""Abstract network device for the packet-level simulator."""

from __future__ import annotations

import typing

from .packet import Packet
from .port import Port

if typing.TYPE_CHECKING:  # pragma: no cover
    from .events import Simulator

__all__ = ["Device"]


class Device:
    """Anything a link can attach to: routers and hosts."""

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: list[Port] = []

    def add_port(self, port: Port) -> Port:
        """Attach ``port`` to this device and return it."""
        self.ports.append(port)
        return port

    def receive(self, packet: Packet, in_port: Port) -> None:  # pragma: no cover
        """Handle a packet arriving on ``in_port`` (subclasses)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"
