"""End hosts: traffic sources and sinks for the packet simulator."""

from __future__ import annotations

import typing
from collections.abc import Callable

from .cbr import CbrSender
from .device import Device
from .packet import Packet, PacketKind
from .port import PeerKind, Port
from .tcp import TcpConfig, TcpReceiver, TcpSender

if typing.TYPE_CHECKING:  # pragma: no cover
    from .events import Simulator

__all__ = ["Host"]


class Host(Device):
    """A host with one uplink port and any number of TCP connections.

    Receivers are created on demand when the first segment of an unknown
    flow arrives, so only senders need explicit setup
    (:meth:`start_flow`).
    """

    def __init__(self, sim: "Simulator", name: str) -> None:
        super().__init__(sim, name)
        self.uplink = self.add_port(Port(f"{name}:up", peer_kind=PeerKind.HOST))
        self.senders: dict[int, TcpSender] = {}
        self.receivers: dict[int, TcpReceiver] = {}
        self.cbr_senders: dict[int, CbrSender] = {}
        #: flow_id -> application bytes received over CBR flows.
        self.cbr_received: dict[int, int] = {}
        #: flow_id -> highest sequence seen (CBR reordering detection).
        self.cbr_last_seq: dict[int, int] = {}
        #: flow_id -> count of out-of-order arrivals.  The paper pins
        #: flows to paths precisely "to avoid packet reordering issues"
        #: (Section II-A); this counter makes the property testable.
        self.cbr_inversions: dict[int, int] = {}

    def transmit(self, packet: Packet) -> bool:
        """Send ``packet`` up the access link."""
        return self.uplink.send(packet)

    def start_flow(
        self,
        flow_id: int,
        dst: str,
        total_bytes: float,
        *,
        config: TcpConfig | None = None,
        on_complete: Callable[[TcpSender], None] | None = None,
        delay: float = 0.0,
    ) -> TcpSender:
        """Open a TCP connection toward host ``dst`` and start sending."""
        sender = TcpSender(
            self.sim, self, flow_id, dst, total_bytes, config, on_complete
        )
        self.senders[flow_id] = sender
        if delay > 0:
            self.sim.schedule(delay, sender.start)
        else:
            sender.start()
        return sender

    def start_cbr(
        self,
        flow_id: int,
        dst: str,
        *,
        rate_bps: float = 100e6,
        packet_size: int = 1000,
        total_bytes: float | None = None,
        delay: float = 0.0,
    ) -> CbrSender:
        """Start a feedback-free constant-bit-rate flow toward ``dst``."""
        sender = CbrSender(
            self.sim,
            self,
            flow_id,
            dst,
            rate_bps=rate_bps,
            packet_size=packet_size,
            total_bytes=total_bytes,
        )
        self.cbr_senders[flow_id] = sender
        if delay > 0:
            self.sim.schedule(delay, sender.start)
        else:
            sender.start()
        return sender

    def receive(self, packet: Packet, in_port: Port) -> None:
        """Deliver a packet to the right flow or CBR counter."""
        if packet.kind is PacketKind.CBR:
            fid = packet.flow_id
            self.cbr_received[fid] = self.cbr_received.get(fid, 0) + packet.size
            last = self.cbr_last_seq.get(fid, -1)
            if packet.seq < last:
                self.cbr_inversions[fid] = self.cbr_inversions.get(fid, 0) + 1
            else:
                self.cbr_last_seq[fid] = packet.seq
            return
        if packet.kind is PacketKind.ACK:
            sender = self.senders.get(packet.flow_id)
            if sender is not None:
                sender.on_ack(packet.seq)
            return
        if packet.kind is PacketKind.DATA:
            rcv = self.receivers.get(packet.flow_id)
            if rcv is None:
                rcv = TcpReceiver(self.sim, self, packet.flow_id, packet.src)
                self.receivers[packet.flow_id] = rcv
            rcv.on_data(packet)

    @property
    def delivered_bytes(self) -> int:
        """In-order application bytes delivered across all flows — the
        quantity the Fig-12(a) aggregate-throughput sampler differentiates."""
        return sum(r.delivered_bytes for r in self.receivers.values())
