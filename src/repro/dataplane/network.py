"""Wiring helper and measurement taps for the packet-level simulator.

:class:`Network` assembles routers, hosts and links; ports get their
peer-kind (eBGP / iBGP / host) and neighbor-relationship annotations at
connect time, which is all the MIFO engine needs at forwarding time.
:class:`ThroughputSampler` produces the aggregate-goodput time series of
the paper's Fig. 12(a).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..topology.relationships import Relationship, invert
from .device import Device
from .events import Simulator
from .host import Host
from .link import Link
from .port import PeerKind, Port
from .router import Engine, Router

__all__ = ["Network", "ThroughputSampler"]


class Network:
    """A wired set of devices sharing one DES clock."""

    def __init__(self) -> None:
        self.sim = Simulator()
        self.devices: dict[str, Device] = {}
        self.links: list[Link] = []

    # ------------------------------------------------------------------
    def add_router(self, name: str, asn: int, engine: Engine) -> Router:
        """Create and register a router named ``name``."""
        if name in self.devices:
            raise ConfigError(f"duplicate device name {name!r}")
        r = Router(self.sim, name, asn, engine)
        self.devices[name] = r
        return r

    def add_host(self, name: str) -> Host:
        """Create and register a host named ``name``."""
        if name in self.devices:
            raise ConfigError(f"duplicate device name {name!r}")
        h = Host(self.sim, name)
        self.devices[name] = h
        return h

    def router(self, name: str) -> Router:
        """Look up a router by name (type-checked)."""
        d = self.devices[name]
        if not isinstance(d, Router):
            raise ConfigError(f"{name!r} is not a router")
        return d

    def host(self, name: str) -> Host:
        """Look up a host by name (type-checked)."""
        d = self.devices[name]
        if not isinstance(d, Host):
            raise ConfigError(f"{name!r} is not a host")
        return d

    # ------------------------------------------------------------------
    def connect_routers(
        self,
        a: Router,
        b: Router,
        *,
        rate_bps: float = 1e9,
        delay_s: float = 50e-6,
        relationship_of_b: Relationship | None = None,
        queue_capacity: int = 64,
    ) -> tuple[Port, Port]:
        """Link two routers.

        Same-AS routers become iBGP peers; different-AS routers become
        eBGP peers and require ``relationship_of_b`` (b's AS as seen from
        a's AS) to annotate both ports for Tag-Check.
        """
        if a.asn == b.asn:
            pa = a.new_port(f"ibgp-{b.name}", peer_kind=PeerKind.IBGP, queue_capacity=queue_capacity)
            pb = b.new_port(f"ibgp-{a.name}", peer_kind=PeerKind.IBGP, queue_capacity=queue_capacity)
            a.ibgp_ports[b.name] = pa
            b.ibgp_ports[a.name] = pb
        else:
            if relationship_of_b is None:
                raise ConfigError(
                    f"eBGP link {a.name}-{b.name} needs relationship_of_b"
                )
            pa = a.new_port(f"ebgp-{b.name}", peer_kind=PeerKind.EBGP, queue_capacity=queue_capacity)
            pb = b.new_port(f"ebgp-{a.name}", peer_kind=PeerKind.EBGP, queue_capacity=queue_capacity)
            pa.neighbor_as = b.asn
            pa.neighbor_relationship = relationship_of_b
            pb.neighbor_as = a.asn
            pb.neighbor_relationship = invert(relationship_of_b)
        self.links.append(
            Link(self.sim, a, pa, b, pb, rate_bps=rate_bps, delay_s=delay_s)
        )
        return pa, pb

    def attach_host(
        self,
        host: Host,
        router: Router,
        *,
        rate_bps: float = 1e9,
        delay_s: float = 20e-6,
        queue_capacity: int = 128,
    ) -> tuple[Port, Port]:
        """Wire a host's uplink to an edge router."""
        rp = router.new_port(
            f"host-{host.name}", peer_kind=PeerKind.HOST, queue_capacity=queue_capacity
        )
        self.links.append(
            Link(self.sim, host, host.uplink, router, rp, rate_bps=rate_bps, delay_s=delay_s)
        )
        return host.uplink, rp

    # ------------------------------------------------------------------
    def run(self, *, until: float | None = None, max_events: int | None = None) -> float:
        """Run the discrete-event loop; returns the final time."""
        return self.sim.run(until=until, max_events=max_events)


class ThroughputSampler:
    """Samples total delivered application bytes at a fixed interval.

    The derivative of consecutive samples is the network's aggregate
    goodput — the Fig-12(a) y-axis.
    """

    def __init__(
        self, network: Network, hosts: list[Host], interval: float = 0.5
    ) -> None:
        if interval <= 0:
            raise ConfigError("sampler interval must be positive")
        self.network = network
        self.hosts = hosts
        self.interval = interval
        self.times: list[float] = []
        self.delivered: list[int] = []
        self._armed = False
        self._stopped = False

    def start(self) -> None:
        """Begin sampling delivered bytes every interval."""
        if self._armed:
            return
        self._armed = True
        self.times.append(self.network.sim.now)
        self.delivered.append(self._total())
        self.network.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        """Stop rescheduling (lets the event queue drain and the run end)."""
        if not self._stopped:
            self._stopped = True
            self.times.append(self.network.sim.now)
            self.delivered.append(self._total())

    def _total(self) -> int:
        return sum(h.delivered_bytes for h in self.hosts)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.times.append(self.network.sim.now)
        self.delivered.append(self._total())
        self.network.sim.schedule(self.interval, self._tick)

    def series_bps(self) -> list[tuple[float, float]]:
        """(time, aggregate goodput bps) per completed interval."""
        out = []
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            db = self.delivered[i] - self.delivered[i - 1]
            if dt > 0:
                out.append((self.times[i], db * 8.0 / dt))
        return out

    def mean_bps(self, *, skip_intervals: int = 1) -> float:
        """Mean aggregate goodput, optionally skipping warm-up intervals."""
        series = self.series_bps()[skip_intervals:]
        if not series:
            return 0.0
        return sum(v for _t, v in series) / len(series)
