"""Full-duplex point-to-point links.

A link joins two devices through one :class:`~repro.dataplane.port.Port`
each; the two directions are independent (full duplex, like the testbed's
Gigabit Ethernet).  After a packet finishes serializing at its sender's
port, the link delays it by the propagation latency and hands it to the
remote device's ``receive``.
"""

from __future__ import annotations

import typing

from .packet import Packet
from .port import Port

if typing.TYPE_CHECKING:  # pragma: no cover
    from .device import Device
    from .events import Simulator

__all__ = ["Link"]


class Link:
    """Bidirectional link between two (device, port) attachment points."""

    def __init__(
        self,
        sim: "Simulator",
        a: "Device",
        port_a: Port,
        b: "Device",
        port_b: Port,
        *,
        rate_bps: float = 1e9,
        delay_s: float = 50e-6,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.up = True
        self._end_a = (a, port_a)
        self._end_b = (b, port_b)
        port_a.link = self
        port_b.link = self

    # ------------------------------------------------------------------
    # failure model: a failed link stops *serving* its tx queues (carrier
    # loss), so upstream queues back up — which is exactly the signal
    # MIFO's queuing-ratio congestion detection reacts to, giving fast
    # local repair on the data plane long before any control-plane
    # reconvergence (cf. R-BGP's motivation, paper Section VI).
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Take the link down."""
        self.up = False

    def restore(self) -> None:
        """Bring the link back and restart any stalled transmissions."""
        if self.up:
            return
        self.up = True
        for _device, port in (self._end_a, self._end_b):
            port.kick()

    def remote_of(self, port: Port) -> tuple["Device", Port]:
        """The (device, port) at the other end of ``port``'s attachment."""
        if port is self._end_a[1]:
            return self._end_b
        if port is self._end_b[1]:
            return self._end_a
        raise ValueError("port does not belong to this link")

    def deliver_from(self, sender_port: Port, packet: Packet) -> None:
        """Called by the sending port once serialization completes."""
        device, in_port = self.remote_of(sender_port)
        self.sim.schedule(self.delay_s, lambda: device.receive(packet, in_port))
