"""The unified configuration surface.

Every layer of the pipeline is configured by one frozen dataclass —
:class:`TopologyConfig` (graph synthesis), :class:`MifoEngineConfig`
(the forwarding engine), :class:`FluidSimConfig` (the fluid simulator),
:class:`ScenarioConfig` (the dynamic-scenario engine), and
:class:`ServiceConfig` (the streaming service) — plus the measurement
layer's :class:`RttModelConfig` (the synthetic RTT observable) and
:class:`DetectorConfig` (the online changepoint/threshold detector).
This module re-exports them all and provides the **single** dict round-trip used everywhere a
config crosses a serialization boundary (CLI JSON input, service
checkpoints, result provenance):

* :func:`config_to_dict` — JSON-primitive fields only, sorted layout;
  fields holding live objects (e.g. ``MifoEngineConfig.carrier``) are
  omitted rather than guessed at;
* :func:`config_from_dict` — strict inverse: unknown keys are an error
  (catching typos at the boundary), omitted keys keep their defaults,
  and the instance's own ``validate()`` runs before it is returned.

``tests/test_config.py`` property-tests the round-trip:
``from_dict(cls, to_dict(c))`` reproduces every serializable field.
"""

from __future__ import annotations

import dataclasses
from typing import Any, TypeVar

from .errors import ConfigError
from .flowsim.simulator import FluidSimConfig
from .measure.changepoint import DetectorConfig
from .measure.rtt import RttModelConfig
from .mifo.engine import MifoEngineConfig
from .scenario.engine import ScenarioConfig
from .service.config import ServiceConfig
from .topology.generator import TopologyConfig

__all__ = [
    "CONFIG_TYPES",
    "DetectorConfig",
    "FluidSimConfig",
    "MifoEngineConfig",
    "RttModelConfig",
    "ScenarioConfig",
    "ServiceConfig",
    "TopologyConfig",
    "config_from_dict",
    "config_to_dict",
]

#: registry name -> config class (CLI/JSON consumers select by name).
CONFIG_TYPES: dict[str, type] = {
    "topology": TopologyConfig,
    "mifo": MifoEngineConfig,
    "flowsim": FluidSimConfig,
    "scenario": ScenarioConfig,
    "service": ServiceConfig,
    "rtt": RttModelConfig,
    "detector": DetectorConfig,
}

_C = TypeVar("_C")

#: JSON-scalar types a serializable config field may hold.
_SCALARS = (bool, int, float, str, type(None))


def _is_serializable(value: Any) -> bool:
    if isinstance(value, _SCALARS):
        return True
    if isinstance(value, (tuple, list)):
        return all(isinstance(v, _SCALARS) for v in value)
    return False


def config_to_dict(config: Any) -> dict[str, Any]:
    """One config instance -> a JSON-primitive dict.

    Only fields whose values are JSON scalars (or flat lists/tuples of
    them) are emitted; object-valued fields (custom detectors, carrier
    strategies) have no faithful JSON form and are deliberately dropped —
    :func:`config_from_dict` restores their defaults.
    """
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise ConfigError(
            f"config_to_dict needs a config dataclass instance, got "
            f"{type(config).__name__}"
        )
    out: dict[str, Any] = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if not _is_serializable(value):
            continue
        out[field.name] = list(value) if isinstance(value, tuple) else value
    return out


def config_from_dict(cls: type[_C], data: dict[str, Any]) -> _C:
    """The strict inverse of :func:`config_to_dict`.

    Unknown keys raise :class:`~repro.errors.ConfigError` (a silently
    ignored typo in a checkpoint or CLI file would be a debugging trap);
    missing keys keep the dataclass defaults; tuple-typed fields accept
    the JSON list form.  The instance's ``validate()`` (when defined)
    runs before returning.
    """
    if not dataclasses.is_dataclass(cls) or not isinstance(cls, type):
        raise ConfigError(
            f"config_from_dict needs a config dataclass type, got {cls!r}"
        )
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - set(fields))
    if unknown:
        raise ConfigError(
            f"{cls.__name__} has no field(s) {', '.join(map(repr, unknown))}"
        )
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        default = fields[name].default
        if isinstance(value, list) and isinstance(default, tuple):
            value = tuple(value)
        kwargs[name] = value
    instance = cls(**kwargs)
    validate = getattr(instance, "validate", None)
    if callable(validate):
        validate()
    return instance
