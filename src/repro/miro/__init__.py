"""MIRO baseline (system S4 in DESIGN.md) — strict-policy control-plane
multi-path routing, the paper's primary comparison point."""

from .negotiation import MiroConfig, MiroRouting

__all__ = ["MiroConfig", "MiroRouting"]
