"""MIRO baseline — multi-path interdomain *routing* (Xu & Rexford, 2006).

MIRO lets pairs of ASes negotiate alternative routes over dedicated control
channels; traffic reaches an alternative through a tunnel from the
negotiating AS.  The paper compares against MIRO under its **strict
policy**: "each AS only announces the alternative paths with the same local
preference as the default path", and with the number of advertised
alternatives strictly limited for scalability (Section IV, VI).

Model implemented here (per the paper's framing of MIRO's limitations):

* only MIRO-capable ASes participate, and a negotiation needs *both* ends
  capable (it is a bilateral protocol);
* the tunnel head is the source AS: its alternatives are the RIB routes of
  neighbors whose relationship class equals the default route's class
  (equal local preference), capped at ``max_alternatives``;
* transit ASes never deviate (no hop-by-hop adaptivity — that is MIFO's
  data-plane novelty);
* path selection happens on the control plane at flow start only — no
  mid-flow reaction to congestion.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from ..bgp.propagation import RoutingCache
from ..errors import NoRouteError
from ..topology.asgraph import ASGraph

__all__ = ["MiroConfig", "MiroRouting"]

CongestedFn = Callable[[int, int], bool]
SpareFn = Callable[[int, int], float]


@dataclasses.dataclass(frozen=True)
class MiroConfig:
    """MIRO strict-policy parameters."""

    #: hard cap on negotiated alternatives per (source, destination) —
    #: the scalability limit the paper cites ("MIRO strictly limits the
    #: number of routes that each AS can advertise").
    max_alternatives: int = 2


class MiroRouting:
    """Path provider implementing the MIRO baseline."""

    def __init__(
        self,
        graph: ASGraph,
        routing: RoutingCache,
        capable: frozenset[int],
        config: MiroConfig | None = None,
    ) -> None:
        self.graph = graph
        self.routing = routing
        self.capable = capable
        self.config = config or MiroConfig()

    def available_paths(self, src: int, dst: int) -> list[tuple[int, ...]]:
        """Default path plus negotiated alternatives (distinct, ordered).

        Used both for routing and for the Fig-7 path-diversity count.
        """
        routing = self.routing(dst)
        if not routing.has_route(src):
            raise NoRouteError(src, dst)
        default = routing.best_path(src)
        paths = [default]
        if src not in self.capable:
            return paths
        default_nh = routing.next_hop(src)
        default_class = routing.best_class(src)
        taken = 0
        for entry in routing.rib(src):
            if taken >= self.config.max_alternatives:
                break
            v = entry.neighbor
            if v == default_nh:
                continue
            # Strict policy: same local preference class only.
            if entry.relationship is not default_class:
                continue
            # Bilateral negotiation: the tunnel-tail AS must be capable too.
            if v not in self.capable and v != dst:
                continue
            alt = (src,) + routing.best_path(v)
            if alt not in paths:
                paths.append(alt)
                taken += 1
        return paths

    def choose_path(
        self,
        src: int,
        dst: int,
        congested: CongestedFn,
        spare: SpareFn,
    ) -> tuple[tuple[int, ...], bool]:
        """Pick a path at flow start; returns ``(path, used_alternative)``.

        MIRO operates on the control plane, where the negotiating AS can
        assess end-to-end path quality (e.g. by measuring through the
        tunnel before committing): if the default path crosses any
        congested link, the alternative crossing the fewest congested
        links (ties broken by the larger minimum spare capacity) is
        selected.  The decision is made once, at flow start — reacting
        mid-flow is precisely what control-plane schemes cannot do
        (paper Section I).
        """
        paths = self.available_paths(src, dst)
        default = paths[0]
        if len(paths) == 1 or _congested_links(default, congested) == 0:
            return default, False
        best = default
        best_key = (_congested_links(default, congested), -_min_spare(default, spare))
        for alt in paths[1:]:
            key = (_congested_links(alt, congested), -_min_spare(alt, spare))
            if key < best_key:
                best, best_key = alt, key
        return best, best is not default


def _congested_links(path: tuple[int, ...], congested: CongestedFn) -> int:
    return sum(congested(path[i], path[i + 1]) for i in range(len(path) - 1))


def _min_spare(path: tuple[int, ...], spare: SpareFn) -> float:
    return min(spare(path[i], path[i + 1]) for i in range(len(path) - 1))
