"""Router-level materialization of AS graphs (the paper's Section-IV
tier-1 expansion): AS graph + BGP substrate in, packet-level network with
derived FIBs, MIFO engines and daemons out."""

from .builder import BuildConfig, RouterLevelNetwork, build_network

__all__ = ["BuildConfig", "RouterLevelNetwork", "build_network"]
