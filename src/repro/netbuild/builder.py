"""Materialize an AS graph as a packet-level router network.

The paper's simulation "expand[s] several tier-1 ASes to capture all of
their internal topologies at the router level; in doing so, we assume all
the border routers (iBGP peers) within a tier-1 AS are connected in a full
mesh topology" (Section IV).  This module implements exactly that bridge
between the AS-level control plane and the packet-level data plane:

* every AS in ``expand`` gets **one border router per inter-AS neighbor**,
  iBGP full-meshed internally; every other AS is a single router;
* inter-AS links connect the facing border routers, annotated with the
  business relationship (feeding the engine's Tag-Check);
* hosts attach to an edge router of their AS;
* FIBs are **derived from the BGP substrate** (per-destination
  :func:`repro.bgp.propagation.compute_routing`): default ports follow the
  converged next hop, ``alt`` ports follow the best RIB alternative, and a
  :class:`~repro.mifo.daemon.MifoDaemon` per MIFO router keeps the alt
  port on the alternative with maximal measured spare capacity —
  the full prototype stack (Fig. 10) in simulation.
"""

from __future__ import annotations

import dataclasses
import typing
from collections.abc import Iterable

from ..bgp.propagation import DestinationRouting, RoutingCache
from ..dataplane.network import Network
from ..dataplane.port import Port
from ..dataplane.router import Engine, Router
from ..errors import ConfigError
from ..mifo.daemon import AltCandidate, MifoDaemon
from ..mifo.engine import MifoEngine, MifoEngineConfig, bgp_engine
from ..topology.asgraph import ASGraph

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..dataplane.host import Host

__all__ = ["BuildConfig", "RouterLevelNetwork", "build_network"]


@dataclasses.dataclass(frozen=True)
class BuildConfig:
    """Parameters of the router-level materialization."""

    link_rate_bps: float = 1e9
    link_delay_s: float = 50e-6
    intra_as_rate_bps: float = 10e9  #: iBGP mesh links (beefy backplane)
    queue_capacity: int = 64
    host_rate_bps: float = 1e9
    #: engine config used for MIFO-capable routers.
    mifo_config: MifoEngineConfig = dataclasses.field(default_factory=MifoEngineConfig)
    #: daemon measurement/update interval (0 disables daemons; the alt
    #: ports then stay on the RIB-preference-best alternative).
    daemon_interval_s: float = 0.05


class RouterLevelNetwork:
    """A built network plus the handles experiments need."""

    def __init__(self, graph: ASGraph, net: Network, config: BuildConfig) -> None:
        self.graph = graph
        self.net = net
        self.config = config
        #: asn -> neighbor asn -> border Router facing that neighbor.
        self.border: dict[int, dict[int, Router]] = {}
        #: asn -> all Routers of that AS (1 for unexpanded ASes).
        self.routers: dict[int, list[Router]] = {}
        #: asn -> eBGP ports keyed (local router name, neighbor asn).
        self.ebgp_ports: dict[tuple[str, int], Port] = {}
        #: host name -> (asn, Host).
        self.hosts: dict[str, tuple[int, "Host"]] = {}
        #: host name -> the edge router port it hangs off.
        self.host_ports: dict[str, Port] = {}
        #: host edge router per AS that has hosts.
        self.edge_router: dict[int, Router] = {}
        self.daemons: list[MifoDaemon] = []

    # -- lookup helpers -------------------------------------------------
    def router_facing(self, asn: int, neighbor: int) -> Router:
        """The border router of ``asn`` that owns the link to ``neighbor``."""
        return self.border[asn][neighbor]

    def ebgp_port(self, router: Router, neighbor: int) -> Port:
        """The port of ``router`` facing eBGP ``neighbor``."""
        return self.ebgp_ports[(router.name, neighbor)]

    def all_routers(self) -> list[Router]:
        """Every router across all ASes."""
        return [r for rs in self.routers.values() for r in rs]

    def counters_total(self, field: str) -> int:
        """Sum of one counter field over all routers."""
        return sum(getattr(r.counters, field) for r in self.all_routers())

    def run(self, **kw: typing.Any) -> float:
        """Run the underlying network simulation."""
        return self.net.run(**kw)


def build_network(
    graph: ASGraph,
    *,
    expand: Iterable[int] = (),
    mifo_capable: Iterable[int] = (),
    hosts_at: Iterable[int] = (),
    routing: RoutingCache | None = None,
    config: BuildConfig | None = None,
) -> RouterLevelNetwork:
    """Build the packet network for ``graph``.

    ``expand``       — ASes materialized as one border router per neighbor
                       with an iBGP full mesh (the paper's tier-1 treatment);
    ``mifo_capable`` — ASes whose routers run the MIFO engine (+ daemon);
                       everyone else forwards plain BGP;
    ``hosts_at``     — ASes to attach end hosts to; repeat an AS for
                       multiple hosts (the testbed has D1 *and* D2 in
                       AS 5).  A single host is named ``H<asn>``; multiple
                       hosts ``H<asn>.1``, ``H<asn>.2``, ...  FIB entries
                       are installed for every host prefix on every
                       router, derived from the BGP control plane.
    """
    if not graph.frozen:
        raise ConfigError("freeze() the graph before building")
    cfg = config or BuildConfig()
    expand = set(expand)
    mifo_capable = set(mifo_capable)
    hosts_list = list(hosts_at)
    routing = routing or RoutingCache(graph)

    built = RouterLevelNetwork(graph, Network(), cfg)
    net = built.net

    def make_engine(asn: int) -> Engine:
        if asn in mifo_capable:
            return MifoEngine(cfg.mifo_config)
        return bgp_engine

    # --- instantiate routers -----------------------------------------
    for asn in graph.nodes():
        nbrs = sorted(graph.neighbors(asn))
        if asn in expand and len(nbrs) > 1:
            routers = {}
            for nb in nbrs:
                r = net.add_router(f"R{asn}.{nb}", asn, make_engine(asn))
                routers[nb] = r
            built.border[asn] = routers
            built.routers[asn] = list(routers.values())
            # iBGP full mesh.
            rs = built.routers[asn]
            for i in range(len(rs)):
                for j in range(i + 1, len(rs)):
                    net.connect_routers(
                        rs[i],
                        rs[j],
                        rate_bps=cfg.intra_as_rate_bps,
                        delay_s=cfg.link_delay_s / 5,
                        queue_capacity=cfg.queue_capacity,
                    )
        else:
            r = net.add_router(f"R{asn}", asn, make_engine(asn))
            built.border[asn] = {nb: r for nb in nbrs}
            built.routers[asn] = [r]

    # --- inter-AS links ------------------------------------------------
    for u, v, rel in graph.links():
        ru = built.border[u][v]
        rv = built.border[v][u]
        pu, pv = net.connect_routers(
            ru,
            rv,
            rate_bps=cfg.link_rate_bps,
            delay_s=cfg.link_delay_s,
            relationship_of_b=rel,
            queue_capacity=cfg.queue_capacity,
        )
        built.ebgp_ports[(ru.name, v)] = pu
        built.ebgp_ports[(rv.name, u)] = pv

    # --- hosts -----------------------------------------------------------
    counts: dict[int, int] = {}
    for asn in hosts_list:
        counts[asn] = counts.get(asn, 0) + 1
    seen: dict[int, int] = {}
    host_names: list[tuple[str, int]] = []
    for asn in hosts_list:
        seen[asn] = seen.get(asn, 0) + 1
        name = f"H{asn}" if counts[asn] == 1 else f"H{asn}.{seen[asn]}"
        edge = built.routers[asn][0]
        built.edge_router[asn] = edge
        host = net.add_host(name)
        _, edge_port = net.attach_host(host, edge, rate_bps=cfg.host_rate_bps)
        built.hosts[name] = (asn, host)
        built.host_ports[name] = edge_port
        host_names.append((name, asn))

    # --- FIBs, derived from BGP ------------------------------------------
    for name, dest_asn in host_names:
        _install_fibs_for(built, routing(dest_asn), name, dest_asn)

    # --- MIFO daemons ------------------------------------------------------
    if cfg.daemon_interval_s > 0:
        for asn in mifo_capable:
            if asn not in built.routers:
                continue
            for r in built.routers[asn]:
                daemon = _make_daemon(built, routing, r, host_names, cfg)
                if daemon is not None:
                    built.daemons.append(daemon)
                    daemon.start()

    return built


# ---------------------------------------------------------------------------
def _port_toward(built: RouterLevelNetwork, router: Router, asn: int, via: int) -> Port:
    """The port ``router`` (in AS ``asn``) uses to reach neighbor AS
    ``via``: its own eBGP port if it faces ``via``, else the iBGP port to
    the border router that does."""
    key = (router.name, via)
    port = built.ebgp_ports.get(key)
    if port is not None:
        return port
    facing = built.border[asn][via]
    return router.ibgp_ports[facing.name]


def _install_fibs_for(
    built: RouterLevelNetwork,
    routing: DestinationRouting,
    prefix: str,
    dest_asn: int,
) -> None:
    graph = built.graph
    for asn in graph.nodes():
        if asn == dest_asn:
            # Inside the destination AS: forward toward the host edge
            # router, then this host's own access port.
            edge = built.edge_router[dest_asn]
            host_port = built.host_ports[prefix]
            for r in built.routers[asn]:
                if r is edge:
                    r.fib.install(prefix, host_port)
                else:
                    r.fib.install(prefix, r.ibgp_ports[edge.name])
            continue
        if not routing.has_route(asn):
            continue
        nh = routing.next_hop(asn)
        alts = routing.alternatives(asn)
        best_alt = alts[0].neighbor if alts else None
        for r in built.routers[asn]:
            out = _port_toward(built, r, asn, nh)
            alt_port = (
                _port_toward(built, r, asn, best_alt)
                if best_alt is not None
                else None
            )
            if alt_port is out:
                alt_port = None
            r.fib.install(prefix, out, alt_port)


def _make_daemon(
    built: RouterLevelNetwork,
    routing_cache: RoutingCache,
    router: Router,
    host_names: list[tuple[str, int]],
    cfg: BuildConfig,
) -> MifoDaemon | None:
    """Wire a MifoDaemon with RIB-derived alternatives per destination.

    For an alternative via neighbor AS v, the *measured* port is the eBGP
    port on the border router facing v (reachable measurements via the
    iBGP exchange, paper Section III-C), while the *forwarding* port is
    this router's local port toward v.
    """
    asn = router.asn
    daemon = MifoDaemon(built.net.sim, router, interval=cfg.daemon_interval_s)
    registered = False
    for prefix, dest_asn in host_names:
        if dest_asn == asn:
            continue
        routing = routing_cache(dest_asn)
        if not routing.has_route(asn):
            continue
        candidates = []
        for entry in routing.alternatives(asn):
            v = entry.neighbor
            local_port = _port_toward(built, router, asn, v)
            facing = built.border[asn][v]
            measured = built.ebgp_ports[(facing.name, v)]
            candidates.append(AltCandidate(local_port, measured))
        if candidates:
            daemon.register_alternatives(prefix, candidates)
            registered = True
    return daemon if registered else None
