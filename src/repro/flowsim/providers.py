"""Path providers: how each routing scheme answers "which path now?".

The fluid simulator is scheme-agnostic; it asks a provider for a flow's
initial path and (after congestion-state changes) for reroute decisions.
Three providers reproduce the paper's three compared systems:

* :class:`BgpProvider` — single default path, never changes (the paper's
  "traffic agnostic ... single, best forwarding path");
* :class:`MiroProvider` — choose once at flow start among the negotiated
  strict-policy alternatives; control-plane only, so no mid-flow reaction;
* :class:`MifoProvider` — hop-by-hop data-plane deflection at flow start
  *and* sticky mid-flow rerouting with resume-on-recovery, matching the
  packet engine's flow-pinning semantics.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from ..bgp.propagation import RoutingCache
from ..mifo.deflection import MifoPathBuilder
from ..miro.negotiation import MiroRouting
from ..topology.asgraph import ASGraph
from .flow import ActiveFlow, FlowSpec

__all__ = ["LinkView", "PathProvider", "BgpProvider", "MiroProvider", "MifoProvider"]

CongestedFn = Callable[[int, int], bool]
SpareFn = Callable[[int, int], float]


@dataclasses.dataclass(frozen=True)
class LinkView:
    """What a routing scheme may observe about link state.

    ``congested``/``spare`` are the *live* data-plane truth — but note any
    scheme only ever queries them for links local to the deciding AS (the
    first argument of the callable is the link's owner).  The ``stale_*``
    pair is the control-plane snapshot, refreshed every
    ``FluidSimConfig.control_plane_interval`` virtual seconds: the only
    remote knowledge a control-plane scheme like MIRO can have.  The
    live/stale split *is* the paper's control/data-plane decoupling
    argument rendered executable.
    """

    congested: CongestedFn
    spare: SpareFn
    stale_congested: CongestedFn
    stale_spare: SpareFn


class PathProvider:
    """Interface the fluid simulator drives."""

    #: human-readable scheme name used in reports ("BGP", "MIRO", "MIFO").
    name: str = "?"
    #: whether the simulator should offer mid-flow reroutes at all.
    supports_reroute: bool = False

    def initial_path(
        self, spec: FlowSpec, view: LinkView
    ) -> tuple[tuple[int, ...], bool]:
        """Path for a new flow; returns ``(path, on_alternative)``."""
        raise NotImplementedError

    def reroute(
        self, flow: ActiveFlow, view: LinkView
    ) -> tuple[tuple[int, ...], bool] | None:
        """Called after congestion transitions; None keeps the current path."""
        return None


class BgpProvider(PathProvider):
    """Conventional BGP: the converged default path, always."""

    name = "BGP"
    supports_reroute = False

    def __init__(self, graph: ASGraph, routing: RoutingCache) -> None:
        self.routing = routing

    def initial_path(
        self, spec: FlowSpec, view: LinkView
    ) -> tuple[tuple[int, ...], bool]:
        """The converged BGP best path; never an alternative."""
        return self.routing(spec.dst).best_path(spec.src), False


class MiroProvider(PathProvider):
    """MIRO strict policy: one control-plane choice at flow start.

    Observability: the negotiating (source) AS sees its own links live but
    every remote link only through the stale control-plane snapshot —
    alternate routes are negotiated and scored on control-plane
    timescales, which is exactly the limitation the paper contrasts MIFO
    against.
    """

    name = "MIRO"
    supports_reroute = False

    def __init__(self, miro: MiroRouting) -> None:
        self.miro = miro

    def initial_path(
        self, spec: FlowSpec, view: LinkView
    ) -> tuple[tuple[int, ...], bool]:
        """One control-plane path choice under MIRO observability."""
        src = spec.src

        def congested(u: int, v: int) -> bool:
            if u == src:
                return view.congested(u, v)
            return view.stale_congested(u, v)

        def spare(u: int, v: int) -> float:
            if u == src:
                return view.spare(u, v)
            return view.stale_spare(u, v)

        return self.miro.choose_path(src, spec.dst, congested, spare)


class MifoProvider(PathProvider):
    """MIFO: data-plane deflection with sticky flows and hysteresis.

    Reroute policy mirrors :class:`repro.mifo.engine.MifoEngine`'s
    flow-pinning: a flow on its default path deflects when a capable AS on
    the path sees its egress congested; a deflected flow resumes the
    default only once the *entire* default path is congestion-free (the
    hysteresis in the simulator's congestion state provides the damping).
    """

    name = "MIFO"
    supports_reroute = True

    def __init__(self, builder: MifoPathBuilder) -> None:
        self.builder = builder
        self.capable = builder.capable
        self.routing = builder.routing

    def initial_path(
        self, spec: FlowSpec, view: LinkView
    ) -> tuple[tuple[int, ...], bool]:
        # MIFO consults only live *local* state: congested(u, v) is always
        # u's own directly connected egress link.
        """A MIFO walk under live local congestion state."""
        outcome = self.builder.build_path(spec.src, spec.dst, view.congested, view.spare)
        return outcome.path, outcome.used_alternative

    def reroute(
        self, flow: ActiveFlow, view: LinkView
    ) -> tuple[tuple[int, ...], bool] | None:
        """Deflect or resume after a congestion transition."""
        spec = flow.spec
        congested, spare = view.congested, view.spare
        if flow.on_alt:
            default = self.routing(spec.dst).best_path(spec.src)
            if any(
                congested(default[i], default[i + 1])
                for i in range(len(default) - 1)
            ):
                return None  # default still hot: stay deflected
            return default, False  # resume (a switch back)
        # On the default path: deflect only if some capable AS on the path
        # currently faces a congested egress (the packet-level trigger).
        path = flow.path
        trigger = any(
            path[i] in self.capable and congested(path[i], path[i + 1])
            for i in range(len(path) - 1)
        )
        if not trigger:
            return None
        outcome = self.builder.build_path(spec.src, spec.dst, congested, spare)
        if outcome.path == path:
            return None  # no valid alternative was available
        return outcome.path, outcome.used_alternative
