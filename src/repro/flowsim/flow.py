"""Flow objects for the fluid simulator."""

from __future__ import annotations

import dataclasses

__all__ = ["FlowSpec", "FlowRecord", "ActiveFlow"]


@dataclasses.dataclass(frozen=True, slots=True)
class FlowSpec:
    """A flow to be simulated: who, where, how much, when.

    The paper's Section IV workload: 10 MB flows, Poisson starts at 100
    flows/s, endpoints drawn from the traffic matrix.
    """

    flow_id: int
    src: int
    dst: int
    size_bytes: float
    start_time: float


@dataclasses.dataclass(frozen=True, slots=True)
class FlowRecord:
    """Everything the experiments need about one finished flow."""

    flow_id: int
    src: int
    dst: int
    size_bytes: float
    start_time: float
    finish_time: float
    path_switches: int  #: Fig-9 metric: deflections + resumes
    used_alternative: bool  #: Fig-8 metric: ever carried on a non-default path
    initial_path_len: int
    final_path_len: int = 0  #: AS hops of the path the flow ended on

    @property
    def duration(self) -> float:
        """Finish time minus start time."""
        return self.finish_time - self.start_time

    @property
    def throughput_bps(self) -> float:
        """End-to-end goodput — the Fig-5/6 CDF variable."""
        if self.duration <= 0.0:
            return float("inf")
        return self.size_bytes * 8.0 / self.duration


class ActiveFlow:
    """Mutable in-flight state of one flow."""

    __slots__ = (
        "spec",
        "path",
        "link_ids",
        "on_alt",
        "switches",
        "used_alternative",
        "remaining",
        "rate",
        "initial_path_len",
        "last_switch_time",
    )

    def __init__(
        self, spec: FlowSpec, path: tuple[int, ...], link_ids: list[int], on_alt: bool
    ) -> None:
        self.spec = spec
        self.path = path
        self.link_ids = link_ids
        self.on_alt = on_alt
        self.switches = 0
        self.used_alternative = on_alt
        self.remaining = float(spec.size_bytes)
        self.rate = 0.0  #: bytes/s, assigned by the allocator
        self.initial_path_len = len(path)
        self.last_switch_time = spec.start_time

    def switch_to(
        self,
        path: tuple[int, ...],
        link_ids: list[int],
        on_alt: bool,
        now: float = 0.0,
    ) -> None:
        """Move the flow to a new path (a Fig-9 "path switch")."""
        self.path = path
        self.link_ids = link_ids
        self.on_alt = on_alt
        self.switches += 1
        self.last_switch_time = now
        if on_alt:
            self.used_alternative = True

    def finalize(self, finish_time: float) -> FlowRecord:
        """Freeze this flow into its immutable FlowRecord."""
        return FlowRecord(
            flow_id=self.spec.flow_id,
            src=self.spec.src,
            dst=self.spec.dst,
            size_bytes=self.spec.size_bytes,
            start_time=self.spec.start_time,
            finish_time=finish_time,
            path_switches=self.switches,
            used_alternative=self.used_alternative,
            initial_path_len=self.initial_path_len,
            final_path_len=len(self.path),
        )
