"""Fluid AS-level flow simulator (system S5 in DESIGN.md) — the NS-3
substitute behind Figures 5, 6, 8 and 9."""

from .flow import ActiveFlow, FlowRecord, FlowSpec
from .incremental import IncrementalMaxMin
from .maxmin import build_incidence, maxmin_rates
from .providers import (
    BgpProvider,
    LinkView,
    MifoProvider,
    MiroProvider,
    PathProvider,
)
from .simulator import FluidSimConfig, FluidSimResult, FluidSimulator

__all__ = [
    "FlowSpec",
    "FlowRecord",
    "ActiveFlow",
    "build_incidence",
    "maxmin_rates",
    "IncrementalMaxMin",
    "PathProvider",
    "LinkView",
    "BgpProvider",
    "MiroProvider",
    "MifoProvider",
    "FluidSimConfig",
    "FluidSimResult",
    "FluidSimulator",
]
