"""Warm-started max-min re-solves for event-driven scenarios.

The scenario engine re-solves the max-min allocation after every timeline
event.  :class:`WarmStartSolver` is the engine-facing facade over
:class:`~repro.flowsim.incremental.IncrementalMaxMin`: the pooled solver
maintains the link×path incidence incrementally across ``set_flow`` /
``remove_flow`` deltas, memoizes on a change tick (an event that touches
no flow's path and no capacity skips the fill entirely), and produces
rates bit-identical to a cold :func:`~repro.flowsim.maxmin.maxmin_rates`
over the same flows — the property that keeps the incremental and full
scenario modes byte-identical.

Exactness is never traded: whenever any input changed, the pooled fill
runs with ``group_rtol=0`` and reproduces the cold solver's floats exactly
(same integer freeze counts, same ``count * rate`` deltas, same
round-ordered load accumulation — see ``repro.flowsim.incremental``).
With ``crosscheck=True`` every fresh solve additionally replays the cold
per-flow oracle and asserts bitwise agreement on rates and allocation —
the scenario engine's ``--crosscheck`` mode wires this through.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from .. import telemetry as tm
from ..errors import SimulationError
from .incremental import IncrementalMaxMin
from .maxmin import build_incidence, maxmin_rates

__all__ = ["WarmStartSolver"]


class WarmStartSolver:
    """Engine-facing facade over the pooled incremental solver.

    Flows are identified by integer ids; :meth:`set_flow` installs or
    replaces a flow's link-index array, :meth:`remove_flow` drops it.  Any
    mutation (including :meth:`set_capacity`) bumps the pool's change
    tick; :meth:`solve` re-runs progressive filling only when the tick
    moved since the last solve, and otherwise returns the cached rate
    vector (bitwise identical to what a re-solve would produce, because
    the inputs are unchanged and the algorithm is deterministic).
    """

    #: Checkpoint derivability (mifocheck MC101): the facade holds no
    #: state restore cannot rebuild from config + captured flows.
    DERIVABLE: ClassVar[dict[str, str]] = {
        "unconstrained_rate": "constructor config; restore passes it anew",
        "crosscheck": "constructor config; restore passes it anew",
        "_cap_len": "tracks the last set_capacity, which restore replays",
        "_capacity": "restore replays set_capacity from captured factors",
    }

    def __init__(
        self, unconstrained_rate: float = 1e9, *, crosscheck: bool = False
    ) -> None:
        self.unconstrained_rate = unconstrained_rate
        self.crosscheck = crosscheck
        self._pool = IncrementalMaxMin(
            unconstrained_rate=unconstrained_rate, group_rtol=0.0
        )
        self._cap_len = 0
        self._capacity: np.ndarray = np.zeros(0)
        #: memo hits / actual fills — run provenance (wall-clock facts).
        self.hits = 0
        self.solves = 0

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def set_flow(self, flow_id: int, link_ids: list[int]) -> None:
        """Install or replace one flow's path (as directed-link indices)."""
        if self._pool.has_flow(flow_id):
            self._pool.move_flow(flow_id, link_ids)
        else:
            self._pool.add_flow(flow_id, link_ids)

    def remove_flow(self, flow_id: int) -> None:
        """Drop a flow from the allocation problem."""
        self._pool.remove_flow(flow_id)

    def set_capacity(self, capacity: np.ndarray) -> None:
        """Replace the per-link capacity vector (bps, dense link index)."""
        self._cap_len = capacity.shape[0]
        if self.crosscheck:
            self._capacity = np.asarray(capacity, dtype=np.float64).copy()
        self._pool.set_capacity(capacity)

    def invalidate(self) -> None:
        """Force the next :meth:`solve` to re-run the fill.

        The full-recompute scenario mode calls this every event so the
        baseline genuinely pays for a cold solve; the memoized path then
        only ever fires in incremental mode.
        """
        self._pool.invalidate()

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(self) -> dict[int, float]:
        """Max-min rates per flow id; skips the fill when nothing changed."""
        pool = self._pool
        if pool.pending:
            self.solves += 1
            tm.inc("flowsim.warm_solves")
            with tm.span("flowsim.solve"):
                pool.solve()
            if self.crosscheck:
                self._run_crosscheck()
        else:
            pool.solve()  # memo-hit bookkeeping (warm_rounds_saved)
            self.hits += 1
            tm.inc("flowsim.warm_hits")
        return {fid: pool.rate_of(fid) for fid, _path in pool.flows()}

    def _run_crosscheck(self) -> None:
        """Replay the cold per-flow oracle; bitwise mismatch is a bug."""
        pool = self._pool
        pairs = list(pool.flows())
        incidence = build_incidence(
            [list(path) for _fid, path in pairs], self._cap_len
        )
        oracle_load = np.zeros(self._cap_len)
        oracle = maxmin_rates(
            incidence,
            self._capacity,
            unconstrained_rate=self.unconstrained_rate,
            group_rtol=0.0,
            load_out=oracle_load,
        )
        for i, (fid, _path) in enumerate(pairs):
            if pool.rate_of(fid) != oracle[i]:
                raise SimulationError(
                    f"incremental solver crosscheck failed: flow {fid} rate "
                    f"{pool.rate_of(fid)!r} != oracle {oracle[i]!r}"
                )
        if not np.array_equal(
            pool.link_load()[: self._cap_len], oracle_load
        ):
            raise SimulationError(
                "incremental solver crosscheck failed: link allocation "
                "diverged from the cold per-flow oracle"
            )

    def allocation(self) -> np.ndarray:
        """Per-link allocated bps under the last solved rates.

        Padded (with zeros) to the current capacity-vector length, so
        links interned after the last solve read as unloaded.
        """
        alloc = np.zeros(self._cap_len)
        load = self._pool.link_load()
        n = min(self._cap_len, load.shape[0])
        alloc[:n] = load[:n]
        return alloc

    @property
    def n_flows(self) -> int:
        """Flows currently in the allocation problem."""
        return self._pool.n_flows

    @property
    def pool(self) -> IncrementalMaxMin:
        """The underlying pooled solver (telemetry and tests)."""
        return self._pool
