"""Warm-started max-min re-solves for event-driven scenarios.

The scenario engine re-solves the max-min allocation after every timeline
event.  Two observations make that cheap without giving up the exactness
(and hence bitwise reproducibility) of :func:`~repro.flowsim.maxmin.maxmin_rates`:

* **Most events touch few flows.**  The link×flow incidence matrix is
  assembled from *cached per-flow link-index arrays*, concatenated in flow
  order — the same COO triplets, in the same order, as a cold
  :func:`~repro.flowsim.maxmin.build_incidence` over the full flow list,
  so the resulting CSR matrix is element-for-element identical, just built
  by one ``np.concatenate`` instead of a Python loop over every flow.
* **Some events touch no flows at all.**  A link failure nothing crossed,
  or a recovery nobody reroutes onto, leaves both the incidence and the
  capacity vector unchanged.  Progressive filling is deterministic, so the
  previous rate vector *is* what a re-solve would return — the solver
  memoizes on a change tick and skips the fill entirely.

Exactness is never traded: whenever any input changed, the solver runs the
full progressive filling with ``group_rtol=0``.  Max-min allocations are
unique, but two different *arithmetic paths* to them need not agree in the
last float bit — recomputing on unchanged inputs is the only warm start
that keeps the incremental and full scenario modes byte-identical.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from .. import telemetry as tm
from ..errors import SimulationError
from .maxmin import maxmin_rates

__all__ = ["WarmStartSolver"]


class WarmStartSolver:
    """Maintains per-flow incidence columns and memoizes max-min solves.

    Flows are identified by integer ids; :meth:`set_flow` installs or
    replaces a flow's link-index array, :meth:`remove_flow` drops it.  Any
    mutation (including :meth:`set_capacity`) bumps an internal change
    tick; :meth:`solve` re-runs progressive filling only when the tick
    moved since the last solve, and otherwise returns the cached rate
    vector (bitwise identical to what a re-solve would produce, because
    the inputs are unchanged and the algorithm is deterministic).
    """

    def __init__(self, unconstrained_rate: float = 1e9) -> None:
        self.unconstrained_rate = unconstrained_rate
        #: flow id -> int64 array of directed-link indices (insertion order
        #: is solve order, so results are independent of *when* a flow's
        #: path last changed).
        self._columns: dict[int, np.ndarray] = {}
        self._capacity: np.ndarray = np.zeros(0)
        self._tick = 0
        self._solved_tick = -1
        self._rates: np.ndarray = np.zeros(0)
        self._flow_order: tuple[int, ...] = ()
        self._incidence: sparse.csr_matrix | None = None
        #: memo hits / actual fills — run provenance (wall-clock facts).
        self.hits = 0
        self.solves = 0

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def set_flow(self, flow_id: int, link_ids: list[int]) -> None:
        """Install or replace one flow's path (as directed-link indices)."""
        self._columns[flow_id] = np.asarray(link_ids, dtype=np.int64)
        self._tick += 1

    def remove_flow(self, flow_id: int) -> None:
        """Drop a flow from the allocation problem."""
        if self._columns.pop(flow_id, None) is not None:
            self._tick += 1

    def set_capacity(self, capacity: np.ndarray) -> None:
        """Replace the per-link capacity vector (bps, dense link index)."""
        if (
            capacity.shape != self._capacity.shape
            or not np.array_equal(capacity, self._capacity)
        ):
            self._capacity = capacity.copy()
            self._tick += 1

    def invalidate(self) -> None:
        """Force the next :meth:`solve` to re-run the fill.

        The full-recompute scenario mode calls this every event so the
        baseline genuinely pays for a cold solve; the memoized path then
        only ever fires in incremental mode.
        """
        self._tick += 1

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def _assemble(self) -> sparse.csr_matrix:
        """The link×flow incidence — identical to a cold ``build_incidence``."""
        n_links = self._capacity.shape[0]
        order = tuple(self._columns)
        cols_per_flow = [self._columns[f] for f in order]
        lens = np.array([c.shape[0] for c in cols_per_flow], dtype=np.int64)
        if cols_per_flow:
            rows = np.concatenate(cols_per_flow)
        else:
            rows = np.zeros(0, dtype=np.int64)
        cols = np.repeat(np.arange(len(order), dtype=np.int64), lens)
        data = np.ones(rows.shape[0], dtype=np.float64)
        self._flow_order = order
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(n_links, len(order))
        )

    def solve(self) -> dict[int, float]:
        """Max-min rates per flow id; skips the fill when nothing changed."""
        if self._solved_tick == self._tick:
            self.hits += 1
            tm.inc("flowsim.warm_hits")
            return {f: float(r) for f, r in zip(self._flow_order, self._rates)}
        self.solves += 1
        tm.inc("flowsim.warm_solves")
        incidence = self._assemble()
        if incidence.shape[1] and incidence.nnz:
            if int(incidence.indices.max(initial=0)) >= self._capacity.shape[0]:
                raise SimulationError(
                    "flow path references a link outside the capacity vector"
                )
        with tm.span("flowsim.solve"):
            self._rates = maxmin_rates(
                incidence,
                self._capacity,
                unconstrained_rate=self.unconstrained_rate,
                group_rtol=0.0,
            )
        self._incidence = incidence
        self._solved_tick = self._tick
        return {f: float(r) for f, r in zip(self._flow_order, self._rates)}

    def allocation(self) -> np.ndarray:
        """Per-link allocated bps under the last solved rates.

        Padded (with zeros) to the current capacity-vector length, so
        links interned after the last solve read as unloaded.
        """
        n_links = self._capacity.shape[0]
        alloc = np.zeros(n_links)
        if self._incidence is not None and self._rates.shape[0]:
            partial = self._incidence @ self._rates
            alloc[: partial.shape[0]] = partial
        return alloc

    @property
    def n_flows(self) -> int:
        """Flows currently in the allocation problem."""
        return len(self._columns)
