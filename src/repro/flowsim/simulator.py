"""Event-driven fluid flow simulator (system S5 in DESIGN.md).

Models the AS-level network of the paper's Section IV: every directed
inter-AS link is a 1 Gbps pipe (configurable); concurrent flows crossing a
link share it max-min fairly; flows arrive per a Poisson process and carry
a fixed number of bytes.  Between consecutive events (flow arrival or
completion) rates are constant, so the simulation advances exactly — no
time stepping, no discretization error.

Congestion, the signal MIFO's deflection consumes, is per-directed-link
utilization with hysteresis: a link becomes *congested* when its allocation
reaches ``congest_threshold`` of capacity and *clears* only when the
allocation falls below ``clear_threshold``.  The gap is what keeps flows
from flapping (paper Fig. 9: most flows switch paths at most twice).

After every event that flips some link's congestion state, the provider
(MIFO only) is offered reroutes; moved flows immediately update the
allocation estimate so later decisions in the same pass see the shifting
load (routers react packet-by-packet, not in synchronized rounds).
"""

from __future__ import annotations

import bisect
import dataclasses
import math

import numpy as np

from .. import telemetry as tm
from ..errors import NoRouteError, SimulationError
from ..measure.rtt import RttModel
from ..topology.asgraph import ASGraph
from .flow import ActiveFlow, FlowRecord, FlowSpec
from .incremental import IncrementalMaxMin
from .maxmin import build_incidence, maxmin_rates
from .providers import LinkView, PathProvider

__all__ = ["FluidSimConfig", "FluidSimResult", "FluidSimulator"]


@dataclasses.dataclass(frozen=True)
class FluidSimConfig:
    """Knobs of the fluid simulator (defaults per the paper's Section IV)."""

    link_capacity_bps: float = 1e9
    congest_threshold: float = 0.95
    clear_threshold: float = 0.70
    reroute: bool = True  #: allow mid-flow path switches (MIFO)
    #: a flow may switch paths at most once per this many (virtual)
    #: seconds — the measurement/daemon reaction interval of a real border
    #: router; the damping behind the paper's Fig-9 stability.
    min_switch_interval: float = 0.05
    #: how often the *control plane* view of remote link state refreshes.
    #: Data-plane schemes (MIFO) see live local state; control-plane
    #: schemes (MIRO) see this stale snapshot for non-local links — the
    #: control/data-plane decoupling that motivates the paper (Section I).
    #: Chosen so the lag is several flow lifetimes (as BGP-scale signaling
    #: is, relative to real flows): stale enough to be routinely wrong,
    #: fresh enough to carry coarse load information.
    control_plane_interval: float = 0.5
    completion_tol_bytes: float = 1.0
    #: unroutable (partitioned) flows raise by default; True records and
    #: skips them instead.
    skip_unroutable: bool = False
    max_events: int | None = None
    #: ``"incremental"`` — the stateful path-pooled solver
    #: (:class:`~repro.flowsim.incremental.IncrementalMaxMin`), updated by
    #: per-event deltas; ``"full"`` — rebuild the link×flow incidence and
    #: run :func:`~repro.flowsim.maxmin.maxmin_rates` cold every event.
    #: The two are byte-identical in every result (cross-validated in
    #: ``tests/flowsim/test_crossvalidation.py``); incremental is faster.
    solver: str = "incremental"
    #: emit one ``rtt_sample`` trace event per active flow per event
    #: loop iteration (the :mod:`repro.measure` observable).  Pure
    #: observation: rates, paths, and records are untouched, and with
    #: telemetry inactive nothing is computed at all.
    rtt_sampling: bool = False
    #: seed of the RTT observable's propagation/noise draws.
    rtt_seed: int = 2014

    def validate(self) -> None:
        """Reject inconsistent configuration values."""
        if self.link_capacity_bps <= 0:
            raise SimulationError("link capacity must be positive")
        if not 0.0 < self.clear_threshold <= self.congest_threshold <= 1.0:
            raise SimulationError(
                "need 0 < clear_threshold <= congest_threshold <= 1"
            )
        if self.solver not in ("incremental", "full"):
            raise SimulationError(
                f"solver {self.solver!r} not in ('incremental', 'full')"
            )
        if self.rtt_seed < 0:
            raise SimulationError("rtt_seed must be >= 0")


@dataclasses.dataclass
class FluidSimResult:
    """Outcome of one fluid run."""

    scheme: str
    records: list[FlowRecord]
    duration: float  #: virtual time when the last flow completed
    events: int
    reallocations: int
    unroutable: int

    def throughputs_bps(self) -> np.ndarray:
        """Per-flow throughputs as an array (bps)."""
        return np.array([r.throughput_bps for r in self.records])

    def fraction_on_alternative(self) -> float:
        """Fig-8 metric: flows ever carried on an alternative path."""
        if not self.records:
            return 0.0
        return sum(r.used_alternative for r in self.records) / len(self.records)

    def switch_histogram(self, max_switches: int = 5) -> dict[int, float]:
        """Fig-9 metric: fraction of flows per path-switch count; the last
        bucket aggregates ``>= max_switches``."""
        if not self.records:
            return {}
        hist: dict[int, float] = {k: 0.0 for k in range(max_switches + 1)}
        for r in self.records:
            hist[min(r.path_switches, max_switches)] += 1
        n = len(self.records)
        return {k: v / n for k, v in hist.items()}


class FluidSimulator:
    """Runs one scheme (one provider) over one workload."""

    def __init__(
        self,
        graph: ASGraph,
        provider: PathProvider,
        config: FluidSimConfig | None = None,
    ) -> None:
        self.graph = graph
        self.provider = provider
        self.config = config or FluidSimConfig()
        self.config.validate()
        # Directed-link interning: (u, v) -> dense index.
        self._link_idx: dict[tuple[int, int], int] = {}
        self._alloc = np.zeros(0)  # allocated bps per directed link
        self._congested = np.zeros(0, dtype=bool)
        self._cap = np.zeros(0)  # per-link capacity, reused across events
        # Stale control-plane snapshot (see control_plane_interval).
        self._stale_congested = np.zeros(0, dtype=bool)
        self._stale_alloc = np.zeros(0)
        self._next_cp_refresh = 0.0
        #: the stateful pooled solver (None under solver="full").
        self._pool: IncrementalMaxMin | None = None
        if self.config.solver == "incremental":
            self._pool = IncrementalMaxMin(
                unconstrained_rate=self.config.link_capacity_bps
            )
        self._pool_cap_len = -1  # links covered by the pool's capacity
        #: RTT observable (None unless the config enables sampling).
        self._rtt_model: RttModel | None = None
        if self.config.rtt_sampling:
            self._rtt_model = RttModel(seed=self.config.rtt_seed)

    # ------------------------------------------------------------------
    # congestion callbacks handed to providers
    # ------------------------------------------------------------------
    def _congested_fn(self, u: int, v: int) -> bool:
        idx = self._link_idx.get((u, v))
        return bool(self._congested[idx]) if idx is not None else False

    def _spare_fn(self, u: int, v: int) -> float:
        idx = self._link_idx.get((u, v))
        if idx is None:
            return self.config.link_capacity_bps
        return max(0.0, self.config.link_capacity_bps - float(self._alloc[idx]))

    def _stale_congested_fn(self, u: int, v: int) -> bool:
        idx = self._link_idx.get((u, v))
        if idx is None or idx >= self._stale_congested.shape[0]:
            return False
        return bool(self._stale_congested[idx])

    def _stale_spare_fn(self, u: int, v: int) -> float:
        idx = self._link_idx.get((u, v))
        if idx is None or idx >= self._stale_alloc.shape[0]:
            return self.config.link_capacity_bps
        return max(0.0, self.config.link_capacity_bps - float(self._stale_alloc[idx]))

    def _maybe_refresh_control_plane(self, now: float) -> None:
        if now >= self._next_cp_refresh:
            self._stale_congested = self._congested.copy()
            self._stale_alloc = self._alloc.copy()
            self._next_cp_refresh = now + self.config.control_plane_interval

    def _intern_path(self, path: tuple[int, ...]) -> list[int]:
        ids = []
        for i in range(len(path) - 1):
            key = (path[i], path[i + 1])
            idx = self._link_idx.get(key)
            if idx is None:
                idx = len(self._link_idx)
                self._link_idx[key] = idx
                if idx >= self._alloc.shape[0]:
                    grow = max(64, self._alloc.shape[0])
                    self._alloc = np.concatenate([self._alloc, np.zeros(grow)])
                    self._congested = np.concatenate(
                        [self._congested, np.zeros(grow, dtype=bool)]
                    )
                    self._cap = np.concatenate(
                        [
                            self._cap,
                            np.full(grow, self.config.link_capacity_bps),
                        ]
                    )
            ids.append(idx)
        return ids

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, specs: list[FlowSpec]) -> FluidSimResult:
        """Simulate ``specs`` to completion and collect records."""
        cfg = self.config
        order = sorted(specs, key=lambda s: (s.start_time, s.flow_id))
        view = LinkView(
            congested=self._congested_fn,
            spare=self._spare_fn,
            stale_congested=self._stale_congested_fn,
            stale_spare=self._stale_spare_fn,
        )
        active: list[ActiveFlow] = []
        records: list[FlowRecord] = []
        unroutable = 0
        i = 0
        now = 0.0
        events = 0
        reallocs = 0
        t0 = tm.active()
        iters_before = (
            t0.counters.get("flowsim.maxmin_iterations", 0)
            if t0 is not None
            else 0
        )
        pool_before = self._pool.stats() if self._pool is not None else None

        def next_completion() -> float:
            best = math.inf
            for f in active:
                if f.rate > 0.0:
                    best = min(best, f.remaining / f.rate)
            return best

        solve_span = tm.span("flowsim.solve")
        solve_span.__enter__()
        try:
            while i < len(order) or active:
                events += 1
                if cfg.max_events is not None and events > cfg.max_events:
                    raise SimulationError(
                        f"fluid sim exceeded {cfg.max_events} events"
                    )
                t_arr = order[i].start_time if i < len(order) else math.inf
                dt_fin = next_completion()
                t_fin = now + dt_fin if math.isfinite(dt_fin) else math.inf
                t_next = min(t_arr, t_fin)
                if not math.isfinite(t_next):
                    raise SimulationError(
                        f"stalled at t={now}: {len(active)} active flows "
                        f"with zero rate"
                    )
                # Advance all flows to t_next.
                dt = t_next - now
                if dt > 0:
                    for f in active:
                        f.remaining -= f.rate * dt
                now = t_next

                # Completions (``active`` stays flow-id ordered: filtering
                # preserves order).
                still = []
                for f in active:
                    if f.remaining <= cfg.completion_tol_bytes:
                        records.append(f.finalize(now))
                        if self._pool is not None:
                            self._pool.remove_flow(f.spec.flow_id)
                    else:
                        still.append(f)
                active = still

                # Refresh the control-plane snapshot if its interval elapsed.
                self._maybe_refresh_control_plane(now)

                # Arrivals due now.
                while i < len(order) and order[i].start_time <= now + 1e-12:
                    spec = order[i]
                    i += 1
                    try:
                        path, on_alt = self.provider.initial_path(spec, view)
                    except NoRouteError:
                        if cfg.skip_unroutable:
                            unroutable += 1
                            continue
                        raise
                    flow = ActiveFlow(
                        spec, path, self._intern_path(path), on_alt
                    )
                    # Keep ``active`` ordered by flow id at insertion so
                    # the reroute pass never re-sorts it.
                    bisect.insort(active, flow, key=lambda f: f.spec.flow_id)
                    if self._pool is not None:
                        self._pool.add_flow(spec.flow_id, flow.link_ids)

                # Re-solve rates, update congestion, offer reroutes on flips.
                newly_congested, any_cleared = self._reallocate(active)
                reallocs += 1
                if self._rtt_model is not None:
                    self._emit_rtt_samples(active, now, events)
                if (
                    (newly_congested or any_cleared)
                    and cfg.reroute
                    and self.provider.supports_reroute
                    and active
                ):
                    if self._offer_reroutes(
                        active, now, view, newly_congested, any_cleared
                    ):
                        self._reallocate(active)
                        reallocs += 1
        finally:
            solve_span.__exit__(None, None, None)
        t = tm.active()
        if t is not None:
            t.inc("flowsim.events", events)
            t.inc("flowsim.reallocations", reallocs)
            t.inc("flowsim.flows_completed", len(records))
            t.inc("flowsim.unroutable", unroutable)
            if self._pool is not None and pool_before is not None:
                after = self._pool.stats()
                t.event(
                    "solver_stats",
                    solver="incremental",
                    maxmin_iterations=after["maxmin_iterations"]
                    - pool_before["maxmin_iterations"],
                    pool_hits=after["pool_hits"] - pool_before["pool_hits"],
                    cols_reused=after["cols_reused"]
                    - pool_before["cols_reused"],
                    warm_rounds_saved=after["warm_rounds_saved"]
                    - pool_before["warm_rounds_saved"],
                )
            elif t is t0:
                t.event(
                    "solver_stats",
                    solver="full",
                    maxmin_iterations=t.counters.get(
                        "flowsim.maxmin_iterations", 0
                    )
                    - iters_before,
                    pool_hits=0,
                    cols_reused=0,
                    warm_rounds_saved=0,
                )
        return FluidSimResult(
            scheme=self.provider.name,
            records=records,
            duration=now,
            events=events,
            reallocations=reallocs,
            unroutable=unroutable,
        )

    # ------------------------------------------------------------------
    def _emit_rtt_samples(
        self, active: list[ActiveFlow], now: float, epoch: int
    ) -> None:
        """Emit one ``rtt_sample`` trace event per active flow.

        Pure observation over the post-solve allocation — nothing in the
        simulation reads the samples back, so enabling sampling cannot
        change rates, paths, or records.  Skipped entirely when no
        telemetry sink is active.
        """
        t = tm.active()
        if t is None or not active:
            return
        model = self._rtt_model
        assert model is not None
        n = len(self._link_idx)
        if n == 0:
            return
        util = np.clip(self._alloc[:n] / self._cap[:n], 0.0, 1.0)
        delays = model.link_delays_ms(list(self._link_idx), util)
        for f in active:
            rtt = 2.0 * float(delays[f.link_ids].sum())
            rtt = max(0.05, rtt + model.noise_ms(f.spec.flow_id, epoch))
            t.event(
                "rtt_sample",
                flow=f.spec.flow_id,
                rtt_ms=rtt,
                time_s=now,
                epoch=epoch,
            )
        t.inc("measure.rtt_samples", len(active))

    def _reallocate(self, active: list[ActiveFlow]) -> tuple[set[int], bool]:
        """Max-min re-solve.

        Returns ``(newly_congested_link_ids, any_link_cleared)`` so the
        reroute pass can target only the flows a transition affects.

        Both solver modes produce bit-identical rates and allocation: the
        pooled solver and :func:`~repro.flowsim.maxmin.maxmin_rates`
        accumulate the same round-ordered ``freeze_count * rate`` deltas
        (see ``repro.flowsim.incremental``).
        """
        cfg = self.config
        n_links = len(self._link_idx)
        alloc = self._alloc  # persistent buffer, zeroed and refilled
        alloc.fill(0.0)
        if active and n_links:
            if self._pool is not None:
                if self._pool_cap_len != n_links:
                    self._pool.set_capacity(self._cap[:n_links])
                    self._pool_cap_len = n_links
                self._pool.solve()
                alloc[:n_links] = self._pool.link_load()[:n_links]
                for f in active:
                    f.rate = self._pool.rate_of(f.spec.flow_id) / 8.0
            else:
                incidence = build_incidence(
                    [f.link_ids for f in active], n_links
                )
                rates = maxmin_rates(
                    incidence,
                    self._cap[:n_links],
                    unconstrained_rate=cfg.link_capacity_bps,
                    load_out=alloc[:n_links],
                )
                rates_bytes = rates / 8.0
                for f, r in zip(active, rates_bytes):
                    f.rate = float(r)
        else:
            for f in active:
                f.rate = cfg.link_capacity_bps / 8.0
        # Hysteresis congestion update.
        hi = cfg.congest_threshold * cfg.link_capacity_bps
        lo = cfg.clear_threshold * cfg.link_capacity_bps
        old = self._congested.copy()
        view = self._congested
        view[alloc >= hi] = True
        view[alloc <= lo] = False
        newly_congested = set(np.flatnonzero(view & ~old).tolist())
        any_cleared = bool((old & ~view).any())
        return newly_congested, any_cleared

    def _offer_reroutes(
        self,
        active: list[ActiveFlow],
        now: float,
        view: LinkView,
        newly_congested: set[int],
        any_cleared: bool,
    ) -> bool:
        """One reroute pass; moved flows shift the allocation estimate so
        later decisions in the pass see the evolving load.

        A flow is only consulted if the transition can affect it: a flow on
        its default path reacts to links that just congested *on its own
        path*; a deflected flow reconsiders only when some link cleared
        (its resume test re-checks the whole default path anyway).  The
        per-flow switch cooldown models the router's reaction interval.

        ``active`` is maintained in flow-id order by the main loop, so the
        deterministic consult order costs no per-pass sort.
        """
        interval = self.config.min_switch_interval
        moved = False
        for f in active:
            if now - f.last_switch_time < interval:
                continue
            if f.on_alt:
                if not any_cleared:
                    continue
            elif newly_congested.isdisjoint(f.link_ids):
                continue
            decision = self.provider.reroute(f, view)
            if decision is None:
                continue
            path, on_alt = decision
            if path == f.path:
                continue
            rate = f.rate
            for idx in f.link_ids:
                self._alloc[idx] = max(0.0, self._alloc[idx] - rate)
            new_ids = self._intern_path(path)
            for idx in new_ids:
                self._alloc[idx] += rate
            f.switch_to(path, new_ids, on_alt, now)
            if self._pool is not None:
                self._pool.move_flow(f.spec.flow_id, new_ids)
            t = tm.active()
            if t is not None:
                t.event(
                    "path_switch",
                    flow=f.spec.flow_id,
                    src=f.spec.src,
                    dst=f.spec.dst,
                    on_alt=on_alt,
                    cause="congested_link" if on_alt else "resume",
                    time_s=now,
                )
            moved = True
        return moved
