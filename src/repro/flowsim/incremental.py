"""Incremental, path-pooled max-min solver (progressive filling).

:func:`~repro.flowsim.maxmin.maxmin_rates` solves one allocation from a
cold link×flow incidence matrix.  The fluid simulator, however, re-solves
after *every* event, and between consecutive events almost nothing changes
— one flow arrives, one completes, or a reroute moves a single column.
Rebuilding the incidence from scratch each time is O(flows × path length)
of Python-level work before the first vectorized round even runs.

:class:`IncrementalMaxMin` removes that rebuild with two structural ideas:

**Path pooling.**  Concurrent flows frequently share an identical interned
path (same source/destination pair, same route).  Flows with identical
columns always freeze in the same filling round at the same rate, so the
fill can run over *distinct paths with an integer multiplicity vector*
instead of individual flows — the link×path incidence is smaller by the
pooling factor, and per-flow rate assignment becomes a gather through the
flow→column map.

**Incremental incidence.**  The link×path incidence lives in a growable
column slab: two flat arrays (``_slab_rows`` holding link indices,
``_slab_cols`` holding the owning column id) plus per-column
``_col_start``/``_col_len`` extents — CSC by construction, no sparse
library.  ``add_flow``/``remove_flow``/``move_flow`` update multiplicities
in O(1) when the path is already interned and append (or recycle, via a
free-list keyed by exact path length) one column segment otherwise.  The
per-link base flow count is maintained by the same deltas, so a solve
starts from the previous event's state instead of re-aggregating.

**Bitwise equality with the cold solver** is a hard contract, not an
aspiration: ``tests/flowsim`` asserts it, and the simulator's
``solver="incremental"``/``"full"`` modes must serialize identically.  It
holds because every float the two solvers compare is derived the same way:

* per-link flow counts are sums of small integers — exact in float64
  under any association, so the pooled multiplicity sum equals the
  per-flow sum of ones bit for bit (maintained counts stay exact under
  the ±1 event deltas and the per-round subtraction);
* each round's capacity delta is ``freeze_count * rate`` — one multiply
  of an exact integer by the shared bottleneck scalar — matching the
  refactored :func:`~repro.flowsim.maxmin.maxmin_rates` exactly (never a
  per-flow repeated addition, whose rounding would differ);
* the per-link load is the round-ordered accumulation of those deltas on
  both sides (``load_out`` in the cold solver).

Memoization rides on a change tick: when no mutation touched the fill's
inputs since the last solve (in particular, adding or removing a flow
whose path crosses no link), the previous rate vector *is* the answer and
the fill is skipped — ``flowsim.warm_rounds_saved`` counts the rounds not
replayed.  Telemetry counters: ``flowsim.pool_hits`` (interning hits),
``flowsim.cols_reused`` (free-list recycles), ``flowsim.warm_rounds_saved``
(memoized rounds), and the shared ``flowsim.maxmin_iterations``.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from typing import ClassVar

import numpy as np

from .. import telemetry as tm
from ..errors import SimulationError

__all__ = ["IncrementalMaxMin"]

#: minimum buffer growth quantum (arrays double beyond this).
_GROW = 64


def _grow_to(arr: np.ndarray, need: int, fill: float = 0.0) -> np.ndarray:
    """``arr`` if it already holds ``need`` slots, else an amortized-doubled
    copy padded with ``fill``."""
    if need <= arr.shape[0]:
        return arr
    out = np.full(max(need, 2 * arr.shape[0], _GROW), fill, dtype=arr.dtype)
    out[: arr.shape[0]] = arr
    return out


class IncrementalMaxMin:
    """Stateful max-min solver over pooled path columns.

    Mutations (:meth:`add_flow`, :meth:`remove_flow`, :meth:`move_flow`,
    :meth:`set_capacity`) update the slab-backed link×path incidence and an
    internal change tick; :meth:`solve` runs progressive filling only when
    the tick moved and otherwise returns the memoized state.  Rates are
    read back per flow with :meth:`rate_of`, the per-link allocation with
    :meth:`link_load`.

    ``tol``/``group_rtol`` mirror :func:`~repro.flowsim.maxmin.maxmin_rates`
    (the defaults match, so either solver can replace the other under the
    same configuration, bit for bit).
    """

    #: Checkpoint derivability (mifocheck MC101): restore never serializes
    #: the slab.  ``repro.service.checkpoint`` re-adds every live flow and
    #: replays capacity, which reconstructs all of this bit-identically.
    DERIVABLE: ClassVar[dict[str, str]] = {
        "unconstrained_rate": "constructor config; restore passes it anew",
        "tol": "constructor config; restore passes it anew",
        "group_rtol": "constructor config; restore passes it anew",
        "_slab_rows": "slab rebuilt by re-adding captured flow paths",
        "_slab_cols": "slab rebuilt by re-adding captured flow paths",
        "_slab_used": "slab rebuilt by re-adding captured flow paths",
        "_col_start": "slab rebuilt by re-adding captured flow paths",
        "_col_len": "slab rebuilt by re-adding captured flow paths",
        "_mult": "slab rebuilt by re-adding captured flow paths",
        "_col_maxlink": "slab rebuilt by re-adding captured flow paths",
        "_n_cols": "slab rebuilt by re-adding captured flow paths",
        "_path_col": "keyed cache rebuilt by re-adding captured flow paths",
        "_col_path": "keyed cache rebuilt by re-adding captured flow paths",
        "_flow_col": "rebuilt in flow-id order by restore replay",
        "_base_counts": "incidence counts rebuilt by re-adding flows",
        "_max_link": "running max over re-added flow paths",
        "_capacity": "restore replays set_capacity from captured factors",
        "_solved_tick": "memo; invalidated on restore, next solve recomputes",
        "_last_rounds": "memo; invalidated on restore, next solve recomputes",
        "_rates": "scratch buffer rebound wholesale by solve()",
        "_frozen": "scratch buffer rebound wholesale by solve()",
        "_counts": "scratch buffer rebound wholesale by solve()",
        "_share": "scratch buffer rebound wholesale by solve()",
        "_residual": "scratch buffer rebound wholesale by solve()",
        "_load": "scratch buffer rebound wholesale by solve()",
        "_load_c": "scratch buffer rebound wholesale by solve()",
        "_rowmap": "scratch buffer rebound wholesale by solve()",
        "_rows_c": "scratch buffer rebound wholesale by solve()",
        "_active": "scratch buffer rebound wholesale by solve()",
        "_unfrozen": "scratch buffer rebound wholesale by solve()",
        "_satf": "scratch buffer rebound wholesale by solve()",
        "_sat_slab": "scratch buffer rebound wholesale by solve()",
        "_tf_slab": "scratch buffer rebound wholesale by solve()",
        "_w_slab": "scratch buffer rebound wholesale by solve()",
        "_multc": "scratch buffer rebound wholesale by solve()",
    }

    def __init__(
        self,
        *,
        unconstrained_rate: float = math.inf,
        tol: float = 1e-9,
        group_rtol: float = 1e-3,
    ) -> None:
        self.unconstrained_rate = unconstrained_rate
        self.tol = tol
        self.group_rtol = group_rtol
        # Column slab: flat (link, column) pairs, one per incidence entry.
        # The "slab-state" markers below *define* mifolint's MF003 slab
        # protection set (derived by tools.mifocheck, pass MC104).
        self._slab_rows: np.ndarray = np.zeros(0, dtype=np.int64)  # mifocheck: slab-state
        self._slab_cols: np.ndarray = np.zeros(0, dtype=np.int64)  # mifocheck: slab-state
        self._slab_used = 0  # mifocheck: slab-state
        # Per-column extents into the slab + live multiplicity.
        self._col_start: np.ndarray = np.zeros(0, dtype=np.int64)  # mifocheck: slab-state
        self._col_len: np.ndarray = np.zeros(0, dtype=np.int64)  # mifocheck: slab-state
        self._mult: np.ndarray = np.zeros(0, dtype=np.float64)  # mifocheck: slab-state
        self._col_maxlink: np.ndarray = np.zeros(0, dtype=np.int64)  # mifocheck: slab-state
        self._n_cols = 0
        #: path length -> freed column ids (exact-fit segment recycling).
        self._free: dict[int, list[int]] = {}
        self._path_col: dict[tuple[int, ...], int] = {}
        self._col_path: dict[int, tuple[int, ...]] = {}
        #: flow id -> column id (insertion-ordered; drives crosschecks).
        self._flow_col: dict[int, int] = {}
        # Per-link state.
        self._base_counts: np.ndarray = np.zeros(0, dtype=np.float64)  # mifocheck: slab-state
        self._max_link = -1
        self._capacity: np.ndarray = np.zeros(0, dtype=np.float64)
        # Memo + reused solve buffers.
        self._tick = 0
        self._solved_tick = -1
        self._last_rounds = 0
        self._rates: np.ndarray = np.zeros(0, dtype=np.float64)
        self._frozen: np.ndarray = np.zeros(0, dtype=bool)
        self._counts: np.ndarray = np.zeros(0, dtype=np.float64)
        self._share: np.ndarray = np.zeros(0, dtype=np.float64)
        self._residual: np.ndarray = np.zeros(0, dtype=np.float64)
        self._load: np.ndarray = np.zeros(0, dtype=np.float64)
        self._load_c: np.ndarray = np.zeros(0, dtype=np.float64)
        self._rowmap: np.ndarray = np.zeros(0, dtype=np.int64)
        self._rows_c: np.ndarray = np.zeros(0, dtype=np.int64)
        self._active: np.ndarray = np.zeros(0, dtype=bool)
        self._unfrozen: np.ndarray = np.zeros(0, dtype=bool)
        self._satf: np.ndarray = np.zeros(0, dtype=np.float64)
        self._sat_slab: np.ndarray = np.zeros(0, dtype=np.float64)
        self._tf_slab: np.ndarray = np.zeros(0, dtype=bool)
        self._w_slab: np.ndarray = np.zeros(0, dtype=np.float64)
        self._multc: np.ndarray = np.zeros(0, dtype=np.float64)
        #: lifetime counters (mirrored into ``repro.telemetry``).
        self.pool_hits = 0
        self.cols_reused = 0
        self.warm_rounds_saved = 0
        self.rounds_total = 0
        self.solves = 0
        self.hits = 0

    # ------------------------------------------------------------------
    # column interning
    # ------------------------------------------------------------------
    def _intern(self, path: tuple[int, ...]) -> int:
        col = self._path_col.get(path)
        if col is not None:
            self._mult[col] += 1.0
            self.pool_hits += 1
            tm.inc("flowsim.pool_hits")
            return col
        n = len(path)
        free = self._free.get(n)
        if free:
            col = free.pop()
            self.cols_reused += 1
            tm.inc("flowsim.cols_reused")
            start = int(self._col_start[col])
        else:
            col = self._n_cols
            self._n_cols += 1
            self._col_start = _grow_to(self._col_start, self._n_cols)
            self._col_len = _grow_to(self._col_len, self._n_cols)
            self._mult = _grow_to(self._mult, self._n_cols)
            self._col_maxlink = _grow_to(self._col_maxlink, self._n_cols)
            start = self._slab_used
            self._slab_used = start + n
            self._slab_rows = _grow_to(self._slab_rows, self._slab_used)
            self._slab_cols = _grow_to(self._slab_cols, self._slab_used)
            self._slab_cols[start : start + n] = col
            self._col_start[col] = start
            self._col_len[col] = n
        if n:
            links = np.asarray(path, dtype=np.int64)
            self._slab_rows[start : start + n] = links
            maxlink = int(links.max())
            self._col_maxlink[col] = maxlink
            if maxlink > self._max_link:
                self._max_link = maxlink
                self._base_counts = _grow_to(self._base_counts, maxlink + 1)
        else:
            self._col_maxlink[col] = -1
        self._mult[col] = 1.0
        self._path_col[path] = col
        self._col_path[col] = path
        return col

    def _segment(self, col: int) -> np.ndarray:
        """The column's link indices (a slab view)."""
        start = int(self._col_start[col])
        return self._slab_rows[start : start + int(self._col_len[col])]

    # ------------------------------------------------------------------
    # free-list serialization (service checkpoints)
    # ------------------------------------------------------------------
    def free_segments(self) -> dict[int, int]:
        """Free-list occupancy: path length -> recyclable column count.

        Dead columns never perturb a fill (zero multiplicity, pre-frozen),
        but they *do* decide whether a future :meth:`_intern` recycles a
        segment or allocates a fresh one — so a checkpoint that wants the
        restored solver to replay with identical ``flowsim.cols_reused``
        behavior must carry this occupancy map.
        """
        return {n: len(cols) for n, cols in sorted(self._free.items()) if cols}

    def seed_free_segments(self, lengths: dict[int, int]) -> None:
        """Pre-populate the free-list with inert dead columns.

        The restore path calls this *after* re-adding the live flow table:
        each seeded column gets a real slab segment (rows are overwritten
        on reuse, so their content is immaterial) and zero multiplicity,
        reproducing the uninterrupted pool's recycling capacity without
        touching any value a fill computes.
        """
        for n, count in sorted(lengths.items()):
            if n < 0 or count < 0:
                raise SimulationError(
                    f"invalid free-segment entry ({n}: {count})"
                )
            for _ in range(count):
                col = self._n_cols
                self._n_cols += 1
                self._col_start = _grow_to(self._col_start, self._n_cols)
                self._col_len = _grow_to(self._col_len, self._n_cols)
                self._mult = _grow_to(self._mult, self._n_cols)
                self._col_maxlink = _grow_to(self._col_maxlink, self._n_cols)
                start = self._slab_used
                self._slab_used = start + n
                self._slab_rows = _grow_to(self._slab_rows, self._slab_used)
                self._slab_cols = _grow_to(self._slab_cols, self._slab_used)
                self._slab_rows[start : start + n] = 0
                self._slab_cols[start : start + n] = col
                self._col_start[col] = start
                self._col_len[col] = n
                self._mult[col] = 0.0
                if n:
                    self._col_maxlink[col] = 0
                    if self._max_link < 0:
                        self._max_link = 0
                        self._base_counts = _grow_to(self._base_counts, 1)
                else:
                    self._col_maxlink[col] = -1
                self._free.setdefault(n, []).append(col)

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def add_flow(self, flow_id: int, link_ids: Sequence[int]) -> None:
        """Register one flow's path (directed-link indices, may be empty).

        A flow whose path crosses no link does not perturb the fill, so it
        leaves the memo tick alone — the previous solve stays valid.
        """
        if flow_id in self._flow_col:
            raise SimulationError(f"flow {flow_id} already in the solver")
        path = tuple(int(x) for x in link_ids)
        col = self._intern(path)
        self._flow_col[flow_id] = col
        if path:
            np.add.at(self._base_counts, self._segment(col), 1.0)
            self._tick += 1

    def remove_flow(self, flow_id: int) -> None:
        """Drop a flow; unknown ids are ignored (idempotent removal).

        A column whose multiplicity reaches zero is freed: its slab
        segment goes onto the length-keyed free-list for exact-fit reuse,
        and until reused it contributes nothing to any solve (zero
        multiplicity, pre-frozen).
        """
        col = self._flow_col.pop(flow_id, None)
        if col is None:
            return
        path = self._col_path[col]
        self._mult[col] -= 1.0
        if path:
            np.add.at(self._base_counts, self._segment(col), -1.0)
            self._tick += 1
        if self._mult[col] <= 0.0:
            del self._path_col[path]
            del self._col_path[col]
            self._free.setdefault(len(path), []).append(col)

    def move_flow(self, flow_id: int, link_ids: Sequence[int]) -> None:
        """Reroute one existing flow onto a new path."""
        if flow_id not in self._flow_col:
            raise SimulationError(f"flow {flow_id} not in the solver")
        self.remove_flow(flow_id)
        self.add_flow(flow_id, link_ids)

    def set_capacity(self, capacity: np.ndarray) -> None:
        """Replace the per-link capacity vector (bps, dense link index).

        Copy-on-change: an identical vector leaves the memo tick alone.
        """
        cap = np.asarray(capacity, dtype=np.float64)
        if cap.shape != self._capacity.shape or not np.array_equal(
            cap, self._capacity
        ):
            self._capacity = cap.copy()
            self._tick += 1

    def invalidate(self) -> None:
        """Force the next :meth:`solve` to re-run the fill."""
        self._tick += 1

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(self) -> bool:
        """Progressive filling over the pooled columns.

        Returns ``True`` when a fill ran, ``False`` on a memo hit (inputs
        unchanged since the last solve — the cached rates and load are
        what a re-solve would produce, so the saved rounds are counted in
        ``flowsim.warm_rounds_saved`` instead of replayed).
        """
        if self._solved_tick == self._tick:
            self.hits += 1
            self.warm_rounds_saved += self._last_rounds
            tm.inc("flowsim.warm_rounds_saved", self._last_rounds)
            return False
        self.solves += 1
        n = self._n_cols
        cap_len = self._capacity.shape[0]
        live = self._mult[:n] > 0.0
        if live.any() and int(self._col_maxlink[:n][live].max()) >= cap_len:
            raise SimulationError(
                "flow path references a link outside the capacity vector"
            )
        n_l = max(cap_len, self._max_link + 1)
        self._base_counts = _grow_to(self._base_counts, n_l)
        self._rowmap = _grow_to(self._rowmap, n_l + 1)
        # Link-space compaction: the fill only ever changes links crossed
        # by at least one live flow (``idx``); every other link is
        # inactive with an infinite share for the whole fill, so dropping
        # it changes no float the rounds compute.  All round-level arrays
        # live in the compact space of ``m`` links plus one trailing dummy
        # slot that absorbs stale rows of dead columns (zero count, zero
        # weight, infinite residual — it can never win the bottleneck).
        idx = np.flatnonzero(self._base_counts[:n_l] > 0.5)
        m = idx.shape[0]
        self._counts = _grow_to(self._counts, m + 1)
        self._share = _grow_to(self._share, m + 1)
        self._residual = _grow_to(self._residual, m + 1)
        self._load_c = _grow_to(self._load_c, m + 1)
        self._load = _grow_to(self._load, n_l)
        self._rows_c = _grow_to(self._rows_c, self._slab_used)
        self._rates = _grow_to(self._rates, n)
        self._frozen = _grow_to(self._frozen, n)
        counts = self._counts[: m + 1]
        share = self._share[: m + 1]
        residual = self._residual[: m + 1]
        load_c = self._load_c[: m + 1]
        load = self._load[:n_l]
        rates = self._rates[:n]
        frozen = self._frozen[:n]
        counts[:m] = self._base_counts[idx]
        counts[m] = 0.0
        residual[:m] = self._capacity[idx]
        residual[m] = np.inf
        load_c[:] = 0.0
        rates[:] = 0.0
        # Dead columns and linkless paths never enter the fill; linkless
        # live flows are unconstrained, exactly as in maxmin_rates.
        empty = self._col_len[:n] == 0
        np.logical_or(~live, empty, out=frozen)
        rates[empty & live] = self.unconstrained_rate
        rows = self._slab_rows[: self._slab_used]
        cols = self._slab_cols[: self._slab_used]
        rowmap = self._rowmap[:n_l]
        rowmap.fill(m)
        rowmap[idx] = np.arange(m, dtype=np.int64)
        self._rows_c = _grow_to(self._rows_c, self._slab_used)
        rows_c = self._rows_c[: self._slab_used]
        np.take(rowmap, rows, out=rows_c)
        self._satf = _grow_to(self._satf, m + 1)
        satf = self._satf[: m + 1]
        self._sat_slab = _grow_to(self._sat_slab, self._slab_used)
        sat_slab = self._sat_slab[: self._slab_used]
        self._tf_slab = _grow_to(self._tf_slab, self._slab_used)
        tf_slab = self._tf_slab[: self._slab_used]
        self._w_slab = _grow_to(self._w_slab, self._slab_used)
        w_slab = self._w_slab[: self._slab_used]
        self._multc = _grow_to(self._multc, self._slab_used)
        multc = self._multc[: self._slab_used]
        np.take(self._mult, cols, out=multc)
        self._active = _grow_to(self._active, m + 1)
        active = self._active[: m + 1]
        self._unfrozen = _grow_to(self._unfrozen, n)
        unfrozen = self._unfrozen[:n]
        np.logical_not(frozen, out=unfrozen)

        rounds = 0
        take = np.ndarray.take
        min_ = np.minimum.reduce
        col_len_n = self._col_len[:n]
        slab_live = self._slab_used
        # Current link space: starts as the solve's compact space and is
        # itself recompacted as links deactivate.  ``cur_idx`` maps the
        # current space back to the solve space (``None`` = identity);
        # ``load_c`` (solve space) receives dropped links' final totals.
        mcur = m
        cur_idx: np.ndarray | None = None
        load_cur = load_c
        for _round in range(m + 2):
            np.greater(counts, 0.5, out=active)
            na = int(np.count_nonzero(active))
            if na == 0:
                break
            if 2 * (na + 1) < counts.shape[0]:
                # Deactivated links are inert (infinite share, zero
                # deltas), so dropping them is pure reindexing; their
                # accumulated load is flushed to the solve space first.
                alive = np.flatnonzero(active)
                if cur_idx is None:
                    cur_idx = alive
                else:
                    load_c[cur_idx] = load_cur[:mcur]
                    cur_idx = cur_idx[alive]
                nc = np.empty(na + 1)
                nc[:na] = counts[alive]
                nc[na] = 0.0
                nr = np.empty(na + 1)
                nr[:na] = residual[alive]
                nr[na] = np.inf
                nl = np.empty(na + 1)
                nl[:na] = load_cur[alive]
                nl[na] = 0.0
                counts, residual, load_cur = nc, nr, nl
                remap = self._rowmap[: mcur + 1]
                remap.fill(na)
                remap[alive] = np.arange(na, dtype=np.int64)
                rows_c = remap.take(rows_c)
                mcur = na
                share = self._share[: mcur + 1]
                satf = self._satf[: mcur + 1]
                active = self._active[: mcur + 1]
                np.greater(counts, 0.5, out=active)
            rounds += 1
            share.fill(np.inf)
            np.divide(residual, counts, out=share, where=active)
            bottleneck = float(min_(share))
            if not math.isfinite(bottleneck):  # pragma: no cover - defensive
                break
            cutoff = bottleneck + self.tol + self.group_rtol * max(
                bottleneck, 0.0
            )
            # Inactive links hold an infinite share, so the cutoff test
            # alone is maxmin_rates' ``active & (share <= cutoff)`` — the
            # float out array feeds straight into the incidence gather.
            np.less_equal(share, cutoff, out=satf)
            take(satf, rows_c, out=sat_slab)
            touched = np.bincount(cols, weights=sat_slab, minlength=n)
            to_freeze = unfrozen & (touched[:n] > 0.5)
            rate = max(bottleneck, 0.0)
            rates[to_freeze] = rate
            np.logical_xor(unfrozen, to_freeze, out=unfrozen)
            take(to_freeze, cols, out=tf_slab)
            np.multiply(multc, tf_slab, out=w_slab)
            freeze_counts = np.bincount(
                rows_c, weights=w_slab, minlength=mcur + 1
            )
            counts -= freeze_counts
            # Exact integer count times the shared scalar — the same
            # float64 product maxmin_rates computes per round.
            freeze_counts *= rate
            np.subtract(residual, freeze_counts, out=residual)
            np.maximum(residual, 0.0, out=residual)
            load_cur += freeze_counts
            # Frozen columns are inert for the rest of the fill (zero
            # weight everywhere above), so once they hold most of the
            # slab, drop their entries — pure reindexing, no float
            # changes.  Each column freezes at most once, so the
            # compression work amortizes to O(slab) per solve.
            slab_live -= int(col_len_n @ to_freeze)
            if 2 * slab_live < rows_c.shape[0]:
                keep = take(unfrozen, cols)
                rows_c = rows_c[keep]
                cols = cols[keep]
                multc = multc[keep]
                cur = rows_c.shape[0]
                sat_slab = self._sat_slab[:cur]
                tf_slab = self._tf_slab[:cur]
                w_slab = self._w_slab[:cur]
                slab_live = cur
        else:  # pragma: no cover - defensive
            raise AssertionError("progressive filling failed to converge")
        # Scatter the compact per-link allocation back to link space; the
        # non-``idx`` links carry zero flows, hence zero load (exactly as
        # the cold solver's round-ordered accumulation leaves them).
        if cur_idx is not None:
            load_c[cur_idx] = load_cur[:mcur]
        load[:] = 0.0
        load[idx] = load_c[:m]

        self._last_rounds = rounds
        self.rounds_total += rounds
        tm.inc("flowsim.maxmin_iterations", rounds)
        self._solved_tick = self._tick
        return True

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def rate_of(self, flow_id: int) -> float:
        """The flow's rate (bps) under the last :meth:`solve` (a gather
        through the flow→column map; linkless flows are unconstrained)."""
        col = self._flow_col[flow_id]
        if self._col_len[col] == 0:
            return self.unconstrained_rate
        return float(self._rates[col])

    def link_load(self) -> np.ndarray:
        """Per-link allocated bps from the last solve.

        At least as long as the solved capacity vector (callers slice);
        read-only by contract — it is the solver's reused buffer.
        """
        return self._load

    def flows(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """``(flow_id, path)`` pairs in insertion order (crosscheck hook)."""
        for fid, col in self._flow_col.items():
            yield fid, self._col_path[col]

    def has_flow(self, flow_id: int) -> bool:
        """Whether the flow is currently in the allocation problem."""
        return flow_id in self._flow_col

    @property
    def pending(self) -> bool:
        """Whether the next :meth:`solve` will actually run a fill."""
        return self._solved_tick != self._tick

    @property
    def n_flows(self) -> int:
        """Flows currently in the allocation problem."""
        return len(self._flow_col)

    @property
    def n_paths(self) -> int:
        """Live distinct paths (pooled fill dimension)."""
        return len(self._path_col)

    def stats(self) -> dict[str, int]:
        """Lifetime counter snapshot (feeds the ``solver_stats`` trace
        event and the micro-benchmark report)."""
        return {
            "pool_hits": self.pool_hits,
            "cols_reused": self.cols_reused,
            "warm_rounds_saved": self.warm_rounds_saved,
            "maxmin_iterations": self.rounds_total,
            "solves": self.solves,
            "hits": self.hits,
        }
