"""Vectorized max-min fair bandwidth allocation (progressive filling).

The fluid simulator models every inter-AS link as a pipe shared max-min
fairly among traversing flows — the standard fluid abstraction that
packet-level TCP fair sharing converges to, and the allocation NS-3's
per-flow throughput in the paper's Section IV reflects.

Algorithm: classic water filling.  Each round computes every unsaturated
link's fair share (residual capacity over unfrozen flow count), saturates
the minimum-share link(s), freezes their flows at that share, and subtracts
the frozen bandwidth.  Rounds are bounded by the number of links.

Per the HPC guides, the inner work is fully vectorized over a
``scipy.sparse`` link×flow incidence matrix: each round is a handful of
sparse matvecs; no Python-level per-flow loops.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from .. import telemetry as tm

__all__ = ["build_incidence", "maxmin_rates"]


def build_incidence(
    flow_links: list[list[int]], n_links: int
) -> sparse.csr_matrix:
    """Build the link×flow 0/1 incidence matrix.

    ``flow_links[f]`` lists the link indices flow ``f`` traverses (possibly
    empty for degenerate one-AS flows).
    """
    rows: list[int] = []
    cols: list[int] = []
    for f, links in enumerate(flow_links):
        rows.extend(links)
        cols.extend([f] * len(links))
    data = np.ones(len(rows), dtype=np.float64)
    return sparse.csr_matrix(
        (data, (rows, cols)), shape=(n_links, len(flow_links))
    )


def maxmin_rates(
    incidence: sparse.csr_matrix,
    capacity: np.ndarray,
    *,
    unconstrained_rate: float = np.inf,
    tol: float = 1e-9,
    group_rtol: float = 1e-3,
    load_out: np.ndarray | None = None,
) -> np.ndarray:
    """Max-min fair rates for every flow.

    ``incidence`` is link×flow (from :func:`build_incidence`);
    ``capacity`` is per-link capacity in bps.  Flows that traverse no link
    receive ``unconstrained_rate``.  ``group_rtol`` merges bottleneck links
    whose fair shares lie within that relative band into one filling round
    — a large constant-factor win on heavily loaded networks at a rate
    error bounded by the same factor (exactness restored with
    ``group_rtol=0``).

    ``load_out``, when given, must be a float64 array of ``n_links``; it is
    zeroed and then accumulates each round's frozen bandwidth, so on return
    it holds the per-link allocation under the final rates.  Every round's
    contribution is ``freeze_count * rate`` — an exact integer times a
    scalar — and the per-round accumulation order is fixed, which is what
    lets :class:`~repro.flowsim.incremental.IncrementalMaxMin` reproduce
    the same allocation bit for bit from pooled columns.

    Postconditions (hypothesis-tested in ``tests/flowsim``):

    * feasibility — no link carries more than its capacity (+tol);
    * bottleneck property — every flow crosses at least one saturated link
      on which it has a maximal rate (the definition of max-min fairness).
    """
    n_links, n_flows = incidence.shape
    if load_out is not None:
        if load_out.shape != (n_links,):
            raise ValueError(f"load_out shape {load_out.shape} != ({n_links},)")
        load_out.fill(0.0)
    if n_flows == 0:
        return np.zeros(0)
    capacity = np.asarray(capacity, dtype=np.float64)
    if capacity.shape != (n_links,):
        raise ValueError(f"capacity shape {capacity.shape} != ({n_links},)")

    rates = np.zeros(n_flows)
    frozen = np.zeros(n_flows, dtype=bool)
    # Flows on no link at all are unconstrained.
    flow_degree = np.asarray(incidence.sum(axis=0)).ravel()
    linkless = flow_degree == 0
    rates[linkless] = unconstrained_rate
    frozen |= linkless

    residual = capacity.astype(np.float64).copy()

    incidence_t = incidence.T.tocsr()  # flow×link, for fast "touched" matvec

    rounds = 0
    for _round in range(n_links + 1):
        unfrozen = (~frozen).astype(np.float64)
        counts = incidence @ unfrozen  # unfrozen flows per link
        active = counts > 0.5
        if not active.any():
            break
        rounds += 1
        share = np.full(n_links, np.inf)
        share[active] = residual[active] / counts[active]
        bottleneck = share.min()
        if not np.isfinite(bottleneck):  # pragma: no cover - defensive
            break
        cutoff = bottleneck + tol + group_rtol * max(bottleneck, 0.0)
        saturated = (active & (share <= cutoff)).astype(np.float64)
        # Flows (still unfrozen) crossing any saturated link freeze now.
        touched = incidence_t @ saturated
        to_freeze = (~frozen) & (touched > 0.5)
        rate = max(bottleneck, 0.0)
        rates[to_freeze] = rate
        frozen |= to_freeze
        # Subtract the newly frozen bandwidth from every link they cross.
        # Computed as (exact integer freeze count per link) * rate — not as
        # a per-flow summation — so a pooled solver that knows only path
        # multiplicities produces the identical float64 delta.
        delta = (incidence @ to_freeze.astype(np.float64)) * rate
        residual = np.maximum(residual - delta, 0.0)
        if load_out is not None:
            load_out += delta
    else:  # pragma: no cover - defensive
        raise AssertionError("progressive filling failed to converge")

    tm.inc("flowsim.maxmin_iterations", rounds)
    return rates
