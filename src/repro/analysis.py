"""What-if diagnostics: explain MIFO's choices for one AS pair.

Operators evaluating a scheme like MIFO ask concrete questions: *which
path would my traffic take right now, and why?  What were the
alternatives, and which did Tag-Check forbid?*  :func:`explain_path`
answers them, producing a hop-by-hop narrative of one deflection walk —
the default next hop, the congestion state that triggered (or didn't
trigger) a deflection, every RIB candidate with its valley-free verdict,
and the greedy pick.

This is a diagnostic layer only: it calls the same
:class:`~repro.mifo.deflection.MifoPathBuilder` primitives the simulators
use, so what it prints is what the data plane does.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from .errors import NoRouteError
from .mifo.deflection import MifoPathBuilder
from .mifo.tag import check_bit, tag_for_upstream
from .topology.asgraph import ASGraph

__all__ = ["CandidateVerdict", "HopExplanation", "PathExplanation", "explain_path"]

CongestedFn = Callable[[int, int], bool]
SpareFn = Callable[[int, int], float]


@dataclasses.dataclass(frozen=True)
class CandidateVerdict:
    """One RIB alternative at one hop, and what happened to it."""

    neighbor: int
    relationship: str
    length: int
    tag_check_passed: bool
    congested: bool
    spare_bps: float
    chosen: bool

    def describe(self) -> str:
        """How this candidate fared in the greedy selection."""
        if self.chosen:
            state = "CHOSEN (greedy max spare)"
        elif not self.tag_check_passed:
            state = "forbidden by Tag-Check (Eq. 3)"
        elif self.congested:
            state = "skipped: direct link congested"
        else:
            state = "valid but less spare capacity"
        return (
            f"via AS {self.neighbor} ({self.relationship.lower()}, "
            f"{self.length} hops, spare {self.spare_bps / 1e6:.0f} Mbps) — {state}"
        )


@dataclasses.dataclass(frozen=True)
class HopExplanation:
    """The decision taken at one AS of the walk."""

    asn: int
    upstream: int | None
    tag_bit: bool
    default_next_hop: int
    default_congested: bool
    capable: bool
    deflected_to: int | None
    candidates: tuple[CandidateVerdict, ...]

    def describe(self) -> str:
        """One-line story of the decision taken at this AS."""
        lines = [
            f"AS {self.asn} (tag bit={'1' if self.tag_bit else '0'}"
            + ("" if self.upstream is None else f", entered from AS {self.upstream}")
            + ")"
        ]
        state = "CONGESTED" if self.default_congested else "clear"
        lines.append(f"  default next hop: AS {self.default_next_hop} ({state})")
        if not self.default_congested:
            lines.append("  -> follows the default path")
        elif not self.capable:
            lines.append("  -> not MIFO-capable: stuck with the congested default")
        elif self.deflected_to is None:
            lines.append("  -> no usable alternative: stays on the default")
        else:
            lines.append(f"  -> DEFLECTS to AS {self.deflected_to}")
        for c in self.candidates:
            lines.append(f"     {c.describe()}")
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class PathExplanation:
    """The full walk from source to destination, with per-hop rationale."""

    src: int
    dst: int
    path: tuple[int, ...]
    default_path: tuple[int, ...]
    deflections: int
    hops: tuple[HopExplanation, ...]

    def describe(self) -> str:
        """Full narrative of the walk, hop by hop."""
        head = (
            f"MIFO path {self.src} -> {self.dst}: "
            f"{' -> '.join(map(str, self.path))}\n"
            f"default (BGP) path:     {' -> '.join(map(str, self.default_path))}\n"
            f"deflections: {self.deflections}\n"
        )
        return head + "\n".join(h.describe() for h in self.hops)


def explain_path(
    builder: MifoPathBuilder,
    src: int,
    dst: int,
    congested: CongestedFn,
    spare: SpareFn,
) -> PathExplanation:
    """Re-run the deflection walk, recording every decision it makes."""
    graph: ASGraph = builder.graph
    routing = builder.routing(dst)
    if not routing.has_route(src):
        raise NoRouteError(src, dst)

    hops: list[HopExplanation] = []
    path = [src]
    upstream: int | None = None
    u = src
    deflections = 0
    limit = 2 * len(graph) + 2

    while u != dst and len(path) <= limit:
        nh = routing.next_hop(u)
        is_congested = congested(u, nh)
        capable = u in builder.capable
        bit = tag_for_upstream(
            None if upstream is None else graph.relationship(u, upstream)
        )
        deflect_to: int | None = None
        candidates: list[CandidateVerdict] = []
        if is_congested and capable:
            deflect_to, _ = builder._pick_alternative(
                routing, u, upstream, nh, congested, spare
            )
            for entry in routing.rib(u):
                v = entry.neighbor
                if v == nh:
                    continue
                candidates.append(
                    CandidateVerdict(
                        neighbor=v,
                        relationship=entry.relationship.name,
                        length=entry.length,
                        tag_check_passed=check_bit(bit, entry.relationship),
                        congested=congested(u, v),
                        spare_bps=spare(u, v),
                        chosen=v == deflect_to,
                    )
                )
        hops.append(
            HopExplanation(
                asn=u,
                upstream=upstream,
                tag_bit=bit,
                default_next_hop=nh,
                default_congested=is_congested,
                capable=capable,
                deflected_to=deflect_to,
                candidates=tuple(candidates),
            )
        )
        nxt = deflect_to if deflect_to is not None else nh
        if deflect_to is not None:
            deflections += 1
        upstream, u = u, nxt
        path.append(u)

    return PathExplanation(
        src=src,
        dst=dst,
        path=tuple(path),
        default_path=routing.best_path(src),
        deflections=deflections,
        hops=tuple(hops),
    )
