"""Scenario event vocabulary, timelines, and the built-in scenarios.

A scenario is a named, deterministic timeline of :class:`ScenarioEvent`
occurrences applied to a running simulation by
:class:`~repro.scenario.engine.ScenarioEngine`.  Events never touch
engine internals directly — each one calls a small set of engine
primitives (``fail_link``, ``recover_link``, ``scale_capacity``,
``set_exogenous_load``, ``add_flows``) so the engine remains the single
owner of simulation state.

Events may name their target link/AS **symbolically** (``pick="busiest"``)
instead of by concrete ASN, because the synthetic topologies differ per
scale and seed; symbolic targets are resolved deterministically against
the live simulation state at application time, so the built-in scenarios
are meaningful at every scale.  Flow-count events size themselves as a
``frac``-tion of the engine's base demand count for the same reason.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Protocol, Union

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .engine import EventEffect, ScenarioEngine

__all__ = [
    "EngineEvent",
    "LinkFail",
    "LinkRecover",
    "CapacityScale",
    "TrafficRamp",
    "FlashCrowd",
    "CongestionOnset",
    "MeasureTick",
    "ScenarioEvent",
    "ScenarioSpec",
    "SCENARIOS",
    "get_scenario",
]


class EngineEvent(Protocol):
    """Structural type of anything the scenario engine can apply.

    An event carries a ``kind`` label (for records and the telemetry
    trace) and an ``apply`` that mutates simulation state exclusively
    through engine primitives, returning the :class:`EventEffect` that
    drives affected-flow selection.  The built-in scenario vocabulary
    below satisfies it, as do the streaming events of
    :mod:`repro.service.stream`.
    """

    @property
    def kind(self) -> str:
        """Event-kind label recorded per event."""
        ...

    def apply(self, engine: "ScenarioEngine") -> "EventEffect":
        """Apply the event through engine primitives."""
        ...


def _resolve_link(
    engine: "ScenarioEngine", u: int | None, v: int | None, pick: str | None
) -> tuple[int, int]:
    """Resolve an event's target link: explicit endpoints win over ``pick``."""
    if u is not None and v is not None:
        return u, v
    if pick is None:
        raise ConfigError("event needs either explicit (u, v) or a pick strategy")
    return engine.pick_link(pick)


@dataclasses.dataclass(frozen=True)
class LinkFail:
    """Remove one inter-AS link from the topology.

    Target by explicit ``(u, v)`` or symbolically via ``pick``
    (``"busiest"`` = the live link crossed by the most flows;
    ``"edge-peering"`` = the smallest-degree peering link).  The link's
    relationship is remembered so a later :class:`LinkRecover` can
    restore it exactly.
    """

    u: int | None = None
    v: int | None = None
    pick: str | None = "busiest"
    kind = "link_fail"

    def apply(self, engine: "ScenarioEngine") -> "EventEffect":
        """Resolve the target and fail it through the engine."""
        u, v = _resolve_link(engine, self.u, self.v, self.pick)
        return engine.fail_link(u, v)


@dataclasses.dataclass(frozen=True)
class LinkRecover:
    """Restore a previously failed link (default: the most recent one)."""

    u: int | None = None
    v: int | None = None
    kind = "link_recover"

    def apply(self, engine: "ScenarioEngine") -> "EventEffect":
        """Re-insert the link with its original business relationship."""
        return engine.recover_link(self.u, self.v)


@dataclasses.dataclass(frozen=True)
class CapacityScale:
    """Multiply the capacity of one link (both directions) by ``factor``.

    ``factor`` is absolute w.r.t. the base capacity, not cumulative:
    ``CapacityScale(factor=1.0)`` always restores the nominal capacity.
    """

    factor: float
    u: int | None = None
    v: int | None = None
    pick: str | None = "busiest"
    kind = "capacity_scale"

    def apply(self, engine: "ScenarioEngine") -> "EventEffect":
        """Resolve the target link and rescale its capacity."""
        if self.factor < 0.0:
            raise ConfigError(f"capacity factor {self.factor} must be >= 0")
        u, v = _resolve_link(engine, self.u, self.v, self.pick)
        return engine.scale_capacity(u, v, self.factor)


@dataclasses.dataclass(frozen=True)
class TrafficRamp:
    """Add a batch of uniformly sampled persistent flows.

    ``frac`` sizes the batch relative to the engine's base demand count
    (``frac=0.5`` adds half as many flows again), so ramps scale with the
    experiment.  Sampling is seeded from the scenario seed and the event's
    position in the timeline — fully deterministic.
    """

    frac: float = 0.25
    kind = "traffic_ramp"

    def apply(self, engine: "ScenarioEngine") -> "EventEffect":
        """Sample and register the new flows."""
        if self.frac <= 0.0:
            raise ConfigError(f"traffic ramp frac {self.frac} must be > 0")
        return engine.add_uniform_flows(engine.frac_to_count(self.frac))


@dataclasses.dataclass(frozen=True)
class FlashCrowd:
    """Add many flows converging on one destination AS.

    ``dst=None`` targets the destination already attracting the most
    flows (ties broken toward the smallest ASN) — the "popular content
    suddenly hotter" case the paper motivates MIFO with.
    """

    frac: float = 0.5
    dst: int | None = None
    kind = "flash_crowd"

    def apply(self, engine: "ScenarioEngine") -> "EventEffect":
        """Sample sources and register the crowd's flows."""
        if self.frac <= 0.0:
            raise ConfigError(f"flash crowd frac {self.frac} must be > 0")
        dst = self.dst if self.dst is not None else engine.pick_popular_dst()
        return engine.add_crowd_flows(engine.frac_to_count(self.frac), dst)


@dataclasses.dataclass(frozen=True)
class CongestionOnset:
    """Scripted exogenous load on one link (both directions).

    ``utilization`` is the fraction of the link's *current* capacity
    consumed by traffic outside the simulated flow set (cross traffic);
    the max-min solver sees only the residual.  ``utilization=0`` clears
    the onset.  This reproduces "congestion appears on the default path"
    without having to engineer a workload that happens to cause it.
    """

    utilization: float
    u: int | None = None
    v: int | None = None
    pick: str | None = "busiest"
    kind = "congestion_onset"

    def apply(self, engine: "ScenarioEngine") -> "EventEffect":
        """Resolve the target link and set its exogenous load."""
        if not 0.0 <= self.utilization <= 1.0:
            raise ConfigError(
                f"utilization {self.utilization} outside [0, 1]"
            )
        u, v = _resolve_link(engine, self.u, self.v, self.pick)
        return engine.set_exogenous_load(u, v, self.utilization)


@dataclasses.dataclass(frozen=True)
class MeasureTick:
    """Advance one measurement epoch without perturbing the network.

    The engine takes exactly one RTT sample per active path per epoch
    (when a measurement-driven detector is enabled), so a run of ticks
    between perturbations is how a scenario scripts a measurement
    cadence — each tick grows every per-flow series by one sample.
    Under the oracle detector a tick is a pure no-op event.
    """

    kind = "measure_tick"

    def apply(self, engine: "ScenarioEngine") -> "EventEffect":
        """Advance the epoch through the engine's no-op primitive."""
        return engine.observe_only()


ScenarioEvent = Union[
    LinkFail,
    LinkRecover,
    CapacityScale,
    TrafficRamp,
    FlashCrowd,
    CongestionOnset,
    MeasureTick,
]


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A named timeline: ``(time_s, event)`` pairs, ascending in time."""

    name: str
    description: str
    timeline: tuple[tuple[float, ScenarioEvent], ...]

    def validate(self) -> None:
        """Reject unordered or negative-time timelines."""
        last = 0.0
        for t, _ in self.timeline:
            if t < last:
                raise ConfigError(
                    f"scenario {self.name!r}: timeline times must be "
                    f"non-decreasing and >= 0 (got {t} after {last})"
                )
            last = t


def _rtt_replay_timeline() -> tuple[tuple[float, ScenarioEvent], ...]:
    """Timeline of ``rtt_replay``: 8 measurement ticks either side of
    each planted shift, at one event per second."""
    events: list[ScenarioEvent] = []
    events.extend(MeasureTick() for _ in range(8))
    events.append(CongestionOnset(utilization=0.9, pick="mid-load"))
    events.extend(MeasureTick() for _ in range(8))
    events.append(CongestionOnset(utilization=0.0, pick="loaded"))
    events.extend(MeasureTick() for _ in range(8))
    events.append(CongestionOnset(utilization=0.85, pick="mid-load"))
    events.extend(MeasureTick() for _ in range(8))
    return tuple((float(i + 1), ev) for i, ev in enumerate(events))


SCENARIOS: dict[str, ScenarioSpec] = {
    "link_flap": ScenarioSpec(
        "link_flap",
        "The busiest link fails, recovers, and fails again — the classic "
        "interdomain churn case; exercises dirty-set re-propagation in "
        "both directions.",
        (
            (1.0, LinkFail()),
            (2.0, LinkRecover()),
            (3.0, LinkFail()),
            (4.0, LinkRecover()),
        ),
    ),
    "edge_flap": ScenarioSpec(
        "edge_flap",
        "A small peering link at the network edge flaps twice — where "
        "real interdomain churn concentrates; most destinations are "
        "provably unaffected, so the incremental engine rebases instead "
        "of recomputing (the micro-benchmark's speedup case).",
        (
            (1.0, LinkFail(pick="edge-peering")),
            (2.0, LinkRecover()),
            (3.0, LinkFail(pick="edge-peering")),
            (4.0, LinkRecover()),
        ),
    ),
    "flash_crowd": ScenarioSpec(
        "flash_crowd",
        "Traffic ramps 25%, then a flash crowd doubles the flow count "
        "toward the most popular destination — congestion emerges and "
        "MIFO deflects around it.",
        (
            (1.0, TrafficRamp(frac=0.25)),
            (2.0, FlashCrowd(frac=1.0)),
        ),
    ),
    "degrade": ScenarioSpec(
        "degrade",
        "The busiest link degrades to half, then a quarter, of its "
        "capacity before being restored — brownout rather than blackout.",
        (
            (1.0, CapacityScale(factor=0.5)),
            (2.0, CapacityScale(factor=0.25)),
            (3.0, CapacityScale(factor=1.0)),
        ),
    ),
    "congestion_onset": ScenarioSpec(
        "congestion_onset",
        "Exogenous cross traffic consumes 90% of the busiest link, then "
        "clears — the paper's 'congestion appears on the default path' "
        "trigger, scripted.",
        (
            (1.0, CongestionOnset(utilization=0.9)),
            (3.0, CongestionOnset(utilization=0.0)),
        ),
    ),
    "rtt_replay": ScenarioSpec(
        "rtt_replay",
        "Measurement-cadence replay with planted RTT regime shifts: "
        "quiet measurement ticks around three exogenous-load events on "
        "mid-utilisation links (onset, clear, second onset).  Ground "
        "truth for scoring changepoint detectors lives at the "
        "congestion_onset epochs (9, 18, 27).",
        _rtt_replay_timeline(),
    ),
}


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a built-in scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
