"""The dynamic-scenario driver: timelines over a live MIFO simulation.

:class:`ScenarioEngine` holds a persistent flow population on an evolving
topology and advances it through a :class:`~repro.scenario.events.ScenarioSpec`
timeline.  Each event runs the same eight-step procedure:

1. **apply** the event (topology derivative, capacity/exogenous-load
   update, or new flows) through an engine primitive;
2. **re-propagate** routing incrementally — only destinations the change
   can affect are re-converged (:class:`~repro.scenario.incremental
   .IncrementalRouting`), the rest are rebased;
3. **select the affected flows**: those crossing a removed link, those
   whose destination went dirty, those crossing a capacity-changed link,
   the event's new flows, and previously unroutable flows whose
   destination went dirty;
4. **re-route** exactly those flows through a fresh
   :class:`~repro.mifo.deflection.MifoPathBuilder` walk under the current
   congestion state;
5. **re-solve** max-min rates through the warm-started
   :class:`~repro.flowsim.warmstart.WarmStartSolver`;
6. **update congestion** bits with the fluid simulator's hysteresis and
   run one congestion-response pass (deflect flows newly congested,
   offer resumes when something cleared) — mirroring
   ``FluidSimulator._offer_reroutes`` so dynamic behavior matches the
   static experiments';
7. **re-certify**: the verifier statically re-proves loop-freedom,
   valley-freedom and FIB/RIB consistency over the dirty and
   newly-converged destinations, and cross-checks the deflection events
   this epoch recorded against the epoch's own FIB state;
8. **record** a per-event metrics row and a ``scenario_event`` telemetry
   trace entry.

The ``mode`` knob selects ``"incremental"`` (dirty-set re-propagation +
memoized solves) or ``"full"`` (every cached destination re-converged,
solver cold every event).  Both modes share steps 3–8 verbatim and both
key their decisions on the *same* dirty set, so their results are
byte-identical — ``tests/scenario/test_crossvalidation.py`` asserts the
serialized results agree on every built-in scenario, and the
``benchmarks`` micro-bench measures how much wall-clock the incremental
path saves.
"""

from __future__ import annotations

import collections
import dataclasses
from collections.abc import Sequence
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from .. import telemetry as tm
from ..errors import ConfigError, NoRouteError, SimulationError, VerificationError
from ..flowsim.warmstart import WarmStartSolver
from ..measure.changepoint import DetectorConfig
from ..measure.rtt import PathRttMonitor
from ..mifo.deflection import MifoPathBuilder
from ..topology.asgraph import ASGraph
from ..topology.dynamics import with_link, without_link
from ..topology.relationships import Relationship
from ..traffic.matrix import uniform_pairs
from ..verify.checker import verify_routing
from ..verify.gate import crosscheck_trace
from .events import EngineEvent, ScenarioSpec
from .incremental import IncrementalRouting

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..flowsim.flow import FlowSpec

__all__ = ["EventEffect", "EventRecord", "ScenarioConfig", "ScenarioEngine", "ScenarioRun"]


@dataclasses.dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of the scenario engine (data-plane defaults match
    :class:`~repro.flowsim.simulator.FluidSimConfig`)."""

    link_capacity_bps: float = 1e9
    congest_threshold: float = 0.95
    clear_threshold: float = 0.70
    #: ``"incremental"`` (dirty-set + warm start) or ``"full"`` (recompute
    #: everything every event — the cross-validation / benchmark baseline).
    mode: str = "incremental"
    #: statically re-certify invariants over dirty destinations after
    #: every event (step 7).
    verify: bool = True
    #: additionally diff the incremental state (routing *and* the pooled
    #: max-min solver) against a from-scratch recomputation after every
    #: event (slow; tests and CI only).
    crosscheck: bool = False
    #: salt for the per-event RNG streams of traffic events.
    seed_salt: int = 7919
    #: bound on retained :class:`EventRecord` rows (``None`` = unbounded,
    #: the batch default).  Service mode sets a finite ring so an
    #: unbounded stream holds steady memory.
    record_capacity: int | None = None
    #: congestion signal driving deflection: ``"oracle"`` (the hysteresis
    #: bits over true link load — the historical behaviour), or a
    #: measurement-driven detector over per-path RTT samples
    #: (``"threshold"`` | ``"changepoint"``, see :mod:`repro.measure`).
    detector: str = "oracle"

    def validate(self) -> None:
        """Reject inconsistent knob combinations."""
        if self.link_capacity_bps <= 0:
            raise SimulationError("link capacity must be positive")
        if not 0.0 < self.clear_threshold <= self.congest_threshold <= 1.0:
            raise SimulationError(
                "need 0 < clear_threshold <= congest_threshold <= 1"
            )
        if self.mode not in ("incremental", "full"):
            raise ConfigError(
                f"scenario mode {self.mode!r} not in ('incremental', 'full')"
            )
        if self.record_capacity is not None and self.record_capacity < 1:
            raise ConfigError("record_capacity must be >= 1 when set")
        if self.detector not in ("oracle", "threshold", "changepoint"):
            raise ConfigError(
                f"detector {self.detector!r} not in "
                "('oracle', 'threshold', 'changepoint')"
            )


@dataclasses.dataclass(frozen=True)
class EventEffect:
    """What one applied event changed — drives affected-flow selection."""

    #: undirected links removed, as ``(min, max)`` pairs.
    removed: tuple[tuple[int, int], ...] = ()
    #: destinations whose routing state may have changed (sorted).
    dirty: tuple[int, ...] = ()
    #: dense directed-link indices whose capacity or exogenous load moved.
    capacity_changed: tuple[int, ...] = ()
    #: flow ids registered by this event.
    new_flows: tuple[int, ...] = ()
    #: human-readable target, e.g. ``"link 12-48"`` (for records/trace).
    target: str = ""


@dataclasses.dataclass(frozen=True)
class EventRecord:
    """Per-event metrics row of a scenario run.

    Every field is a pure function of simulation state, never of
    wall-clock or update policy, so rows are byte-identical between the
    incremental and full modes.
    """

    index: int
    time_s: float
    kind: str
    target: str
    dirty_dests: int
    flows_rerouted: int
    flows_unroutable: int
    flows_total: int
    deflected_flows: int
    congested_links: int
    verified_dests: int
    mean_rate_mbps: float
    total_throughput_gbps: float


@dataclasses.dataclass
class ScenarioRun:
    """Outcome of one scenario timeline."""

    scenario: str
    mode: str
    backend: str
    records: list[EventRecord]
    #: cumulative control-plane work — wall-clock provenance, *not* part
    #: of the determinism-checked payload (differs between modes).
    dests_recomputed: int
    dests_rebased: int
    warm_solves: int
    warm_hits: int

    @property
    def n_events(self) -> int:
        """Timeline events applied (the initial routing row excluded)."""
        return max(0, len(self.records) - 1)


class _SimFlow:
    """One persistent demand in the engine's flow population."""

    __slots__ = ("flow_id", "src", "dst", "path", "link_ids", "on_alt", "switches", "rate")

    def __init__(self, flow_id: int, src: int, dst: int) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.path: tuple[int, ...] | None = None
        self.link_ids: list[int] = []  # mifocheck: derivable: re-interned from the captured path by restore
        self.on_alt = False
        self.switches = 0
        self.rate = 0.0


class ScenarioEngine:
    """Advances a MIFO simulation through a scenario timeline.

    ``demands`` is the base (persistent) flow population; traffic events
    size themselves relative to it.  ``capable`` defaults to full MIFO
    deployment.  ``seed`` feeds the deterministic per-event RNG streams
    of :class:`~repro.scenario.events.TrafficRamp` /
    :class:`~repro.scenario.events.FlashCrowd`.
    """

    #: Checkpoint derivability (mifocheck MC101): restore reconstructs
    #: the engine from captured config, then replays failed links and
    #: re-adds captured flows; none of these need serializing.
    DERIVABLE: ClassVar[dict[str, str]] = {
        "graph": "rebuilt by failed-link replay against the base topology",
        "spec": "constructor argument; restore constructs the engine anew",
        "seed": "constructor argument; round-trips via captured config",
        "capable": "derived from graph nodes (full deployment) at construction",
        "_base_demand": "derived from the demands argument at construction",
    }

    def __init__(
        self,
        graph: ASGraph,
        demands: "Sequence[FlowSpec]",
        spec: ScenarioSpec,
        *,
        backend: str = "dict",
        capable: frozenset[int] | None = None,
        seed: int = 2014,
        config: ScenarioConfig | None = None,
    ) -> None:
        spec.validate()
        self.config = config or ScenarioConfig()
        self.config.validate()
        self.graph = graph
        self.spec = spec
        self.seed = seed
        self.capable = capable if capable is not None else frozenset(graph.nodes())
        self.routing = IncrementalRouting(
            graph,
            backend=backend,
            recompute="dirty" if self.config.mode == "incremental" else "all",
        )
        self.solver = WarmStartSolver(
            unconstrained_rate=self.config.link_capacity_bps,
            crosscheck=self.config.crosscheck,
        )
        #: flow id -> flow, insertion order == ascending flow id.
        self._flows: dict[int, _SimFlow] = {}
        for d in demands:
            if d.flow_id in self._flows:
                raise ConfigError(f"duplicate flow id {d.flow_id} in demands")
            self._flows[d.flow_id] = _SimFlow(d.flow_id, d.src, d.dst)
        self._base_demand = max(1, len(demands))
        self._next_flow_id = 1 + max((d.flow_id for d in demands), default=-1)
        # Directed-link interning (same discipline as FluidSimulator).
        self._link_idx: dict[tuple[int, int], int] = {}
        self._alloc = np.zeros(0)
        self._congested = np.zeros(0, dtype=bool)
        self._cap_factor = np.ones(0)
        self._exo_frac = np.zeros(0)
        #: failed links, most recent last: (u, v, relationship of v from u).
        self._failed: list[tuple[int, int, Relationship]] = []
        self._event_no = -1  # the initial routing pass is epoch 0
        #: per-path RTT monitor when a measurement-driven detector is
        #: selected; ``None`` keeps the oracle path byte-identical to
        #: pre-measurement behaviour (no sampling, no monitor).
        self._rtt: PathRttMonitor | None = None
        if self.config.detector != "oracle":
            self._rtt = PathRttMonitor(
                seed, config=DetectorConfig(mode=self.config.detector)
            )
        #: per-event metrics rows; a bounded ring when the config caps it.
        self.records: collections.deque[EventRecord] = collections.deque(
            maxlen=self.config.record_capacity
        )

    # ------------------------------------------------------------------
    # link interning & data-plane state
    # ------------------------------------------------------------------
    def _intern_link(self, u: int, v: int) -> int:
        key = (u, v)
        idx = self._link_idx.get(key)
        if idx is None:
            idx = len(self._link_idx)
            self._link_idx[key] = idx
            if idx >= self._alloc.shape[0]:
                grow = max(64, self._alloc.shape[0])
                self._alloc = np.concatenate([self._alloc, np.zeros(grow)])
                self._congested = np.concatenate(
                    [self._congested, np.zeros(grow, dtype=bool)]
                )
                self._cap_factor = np.concatenate(
                    [self._cap_factor, np.ones(grow)]
                )
                self._exo_frac = np.concatenate(
                    [self._exo_frac, np.zeros(grow)]
                )
        return idx

    def _intern_path(self, path: tuple[int, ...]) -> list[int]:
        return [
            self._intern_link(path[i], path[i + 1]) for i in range(len(path) - 1)
        ]

    def _capacity_of(self, idx: int) -> float:
        return self.config.link_capacity_bps * float(self._cap_factor[idx])

    def _residual_capacity(self) -> np.ndarray:
        """Per-link capacity left for simulated flows (dense, bps)."""
        n = len(self._link_idx)
        cap = self.config.link_capacity_bps * self._cap_factor[:n]
        return cap * (1.0 - self._exo_frac[:n])

    def _congested_fn(self, u: int, v: int) -> bool:
        idx = self._link_idx.get((u, v))
        return bool(self._congested[idx]) if idx is not None else False

    def _spare_fn(self, u: int, v: int) -> float:
        idx = self._link_idx.get((u, v))
        if idx is None:
            return self.config.link_capacity_bps
        cap = self._capacity_of(idx)
        used = float(self._alloc[idx]) + float(self._exo_frac[idx]) * cap
        return max(0.0, cap - used)

    # ------------------------------------------------------------------
    # symbolic target resolution (deterministic)
    # ------------------------------------------------------------------
    def pick_link(self, strategy: str) -> tuple[int, int]:
        """Resolve a symbolic link target against live simulation state.

        ``"busiest"`` — the link crossed by the most currently routed
        flows; ties break toward the smallest ``(u, v)`` pair; with no
        routed flows, falls back to the link with the highest endpoint
        degree sum.  ``"edge-peering"`` — the peering link with the
        smallest endpoint degree sum (edge links churn most in practice,
        and a peering between small ASes carries exports only for their
        customer cones, so its dirty set is tiny — the incremental
        engine's best case).  ``"mid-load"`` — among links carried by at
        least one routed flow, the one whose utilisation is closest to
        50% (headroom to visibly congest: the busiest link under max-min
        often already sits at capacity, so adding exogenous load there
        moves neither the oracle bits nor the RTT observable).
        ``"loaded"`` — the link carrying the most exogenous load (the
        natural target for a clear event).  Resolution depends only on
        simulation state, so both update modes pick identical targets.
        """
        if strategy == "mid-load":
            n = len(self._link_idx)
            pairs = list(self._link_idx)
            cap = self.config.link_capacity_bps * self._cap_factor[:n]
            load = self._alloc[:n] + self._exo_frac[:n] * cap
            util = np.divide(load, cap, out=np.ones(n), where=cap > 0)
            used: dict[int, bool] = {}
            for f in self._flows.values():
                if f.path is None:
                    continue
                for idx in f.link_ids:
                    used[idx] = True
            if not used:
                return self.pick_link("busiest")
            best = min(used, key=lambda i: (abs(float(util[i]) - 0.5), pairs[i]))
            return pairs[best]
        if strategy == "loaded":
            loaded = [
                (float(self._exo_frac[idx]), (u, v))
                for (u, v), idx in self._link_idx.items()
                if self._exo_frac[idx] > 0
            ]
            if not loaded:
                raise ConfigError("no exogenously loaded link to pick")
            return max(loaded, key=lambda e: (e[0], (-e[1][0], -e[1][1])))[1]
        if strategy == "edge-peering":
            links = self.graph.links()
            if not links:
                raise ConfigError("graph has no links to pick from")
            deg = {n: len(self.graph.neighbors(n)) for n in self.graph.nodes()}
            pool = [
                (u, v) for u, v, rel in links if rel is Relationship.PEER
            ] or [(u, v) for u, v, _ in links]
            return min(pool, key=lambda lk: (deg[lk[0]] + deg[lk[1]], lk))
        if strategy != "busiest":
            raise ConfigError(f"unknown link pick strategy {strategy!r}")
        counts: dict[tuple[int, int], int] = {}
        for f in self._flows.values():
            if f.path is None:
                continue
            for a, b in zip(f.path, f.path[1:]):
                key = (a, b) if a <= b else (b, a)
                counts[key] = counts.get(key, 0) + 1
        if counts:
            best = min(counts, key=lambda k: (-counts[k], k))
            return best
        links = self.graph.links()
        if not links:
            raise ConfigError("graph has no links to pick from")
        deg = {n: len(self.graph.neighbors(n)) for n in self.graph.nodes()}
        u, v, _ = min(links, key=lambda lk: (-(deg[lk[0]] + deg[lk[1]]), lk[:2]))
        return u, v

    def pick_popular_dst(self) -> int:
        """The destination currently attracting the most flows (ties break
        toward the smallest ASN)."""
        counts: dict[int, int] = {}
        for f in self._flows.values():
            counts[f.dst] = counts.get(f.dst, 0) + 1
        if not counts:
            return min(self.graph.nodes())
        return min(counts, key=lambda d: (-counts[d], d))

    def frac_to_count(self, frac: float) -> int:
        """Flow count for a traffic event sized as a fraction of the base
        demand population."""
        return max(1, int(round(self._base_demand * frac)))

    def _event_rng(self) -> np.random.Generator:
        # One independent, deterministic stream per timeline position.
        return np.random.default_rng(
            self.seed + self.config.seed_salt * (self._event_no + 1)
        )

    # ------------------------------------------------------------------
    # event primitives (called by ScenarioEvent.apply)
    # ------------------------------------------------------------------
    def fail_link(self, u: int, v: int) -> EventEffect:
        """Remove link ``u``–``v``; remembers it for later recovery."""
        rel = self.graph.relationship(u, v)
        new_graph = without_link(self.graph, u, v)
        dirty = self.routing.advance(new_graph, u, v)
        self.graph = new_graph
        self._failed.append((u, v, rel))
        lo, hi = (u, v) if u <= v else (v, u)
        return EventEffect(
            removed=((lo, hi),), dirty=dirty, target=f"link {lo}-{hi}"
        )

    def recover_link(self, u: int | None = None, v: int | None = None) -> EventEffect:
        """Restore a failed link with its original relationship.

        With explicit endpoints, restores that specific link (it must be
        on the failed stack); otherwise restores the most recent failure.
        """
        if not self._failed:
            raise ConfigError("no failed link to recover")
        if u is None or v is None:
            fu, fv, rel = self._failed.pop()
        else:
            want = {u, v}
            pos = next(
                (
                    i
                    for i in range(len(self._failed) - 1, -1, -1)
                    if {self._failed[i][0], self._failed[i][1]} == want
                ),
                None,
            )
            if pos is None:
                raise ConfigError(f"link {u}-{v} is not currently failed")
            fu, fv, rel = self._failed.pop(pos)
        new_graph = with_link(self.graph, fu, fv, rel)
        dirty = self.routing.advance(new_graph, fu, fv)
        self.graph = new_graph
        lo, hi = (fu, fv) if fu <= fv else (fv, fu)
        return EventEffect(dirty=dirty, target=f"link {lo}-{hi}")

    def scale_capacity(self, u: int, v: int, factor: float) -> EventEffect:
        """Set both directions of ``u``–``v`` to ``factor`` × base capacity."""
        changed = []
        for a, b in ((u, v), (v, u)):
            idx = self._intern_link(a, b)
            if self._cap_factor[idx] != factor:
                self._cap_factor[idx] = factor
                changed.append(idx)
        lo, hi = (u, v) if u <= v else (v, u)
        return EventEffect(
            capacity_changed=tuple(changed), target=f"link {lo}-{hi} x{factor:g}"
        )

    def set_exogenous_load(self, u: int, v: int, utilization: float) -> EventEffect:
        """Set scripted cross-traffic on both directions of ``u``–``v``."""
        changed = []
        for a, b in ((u, v), (v, u)):
            idx = self._intern_link(a, b)
            if self._exo_frac[idx] != utilization:
                self._exo_frac[idx] = utilization
                changed.append(idx)
        lo, hi = (u, v) if u <= v else (v, u)
        return EventEffect(
            capacity_changed=tuple(changed),
            target=f"link {lo}-{hi} @{utilization:g}",
        )

    def observe_only(self) -> EventEffect:
        """A no-op event primitive (backs ``MeasureTick``): advances the
        epoch without perturbing the network, so the measurement pass
        takes exactly one RTT sample per active path."""
        return EventEffect(target="measure")

    def _register_flows(self, pairs: list[tuple[int, int]]) -> tuple[int, ...]:
        ids = []
        for src, dst in pairs:
            fid = self._next_flow_id
            self._next_flow_id += 1
            self._flows[fid] = _SimFlow(fid, src, dst)
            ids.append(fid)
        return tuple(ids)

    def add_uniform_flows(self, n: int) -> EventEffect:
        """Register ``n`` uniformly sampled persistent flows."""
        rng = self._event_rng()
        ids = self._register_flows(uniform_pairs(self.graph, n, rng))
        return EventEffect(new_flows=ids, target=f"{n} flows")

    def add_crowd_flows(self, n: int, dst: int) -> EventEffect:
        """Register ``n`` flows from random sources toward one destination."""
        if dst not in self.graph:
            raise ConfigError(f"flash crowd destination AS {dst} not in graph")
        rng = self._event_rng()
        nodes = np.fromiter(
            (x for x in self.graph.nodes() if x != dst), dtype=np.int64
        )
        srcs = rng.choice(nodes, size=n)
        ids = self._register_flows([(int(s), dst) for s in srcs])
        return EventEffect(new_flows=ids, target=f"{n} flows -> AS {dst}")

    def add_explicit_flows(
        self, pairs: Sequence[tuple[int, int]]
    ) -> EventEffect:
        """Register explicit ``(src, dst)`` persistent flows.

        The streaming service's arrival path: the caller (not a seeded
        engine stream) supplies the endpoints, so replay after a restore
        reproduces the identical population.
        """
        for src, dst in pairs:
            if src == dst:
                raise ConfigError(f"flow endpoints coincide (AS {src})")
            if src not in self.graph or dst not in self.graph:
                raise ConfigError(f"flow {src}->{dst} references unknown AS")
        ids = self._register_flows(list(pairs))
        return EventEffect(new_flows=ids, target=f"{len(ids)} flows")

    def retire_flows(self, flow_ids: Sequence[int]) -> EventEffect:
        """Drop completed flows from the population and the solver.

        The freed capacity is reflected by the unconditional re-solve in
        the same step; surviving flows keep their paths (max-min rates
        only grow when competitors leave, so nothing needs re-routing).
        """
        for fid in flow_ids:
            f = self._flows.pop(fid, None)
            if f is None:
                raise ConfigError(f"cannot retire unknown flow {fid}")
            if f.path is not None:
                self.solver.remove_flow(fid)
            if self._rtt is not None:
                self._rtt.drop_flow(fid)
        return EventEffect(target=f"retired {len(flow_ids)} flows")

    # ------------------------------------------------------------------
    # state accessors (service checkpointing)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Index of the last processed event (-1 before epoch 0)."""
        return self._event_no

    @property
    def next_flow_id(self) -> int:
        """The id the next registered flow will receive."""
        return self._next_flow_id

    @property
    def n_flows(self) -> int:
        """Flows currently in the population (routable or not)."""
        return len(self._flows)

    @property
    def failed_links(self) -> tuple[tuple[int, int, Relationship], ...]:
        """Currently failed links, oldest first, with their original
        relationships — replaying these against the base topology
        reconstructs the live graph exactly."""
        return tuple(self._failed)

    # ------------------------------------------------------------------
    # the per-event procedure
    # ------------------------------------------------------------------
    def _affected_flows(self, effect: EventEffect) -> list[_SimFlow]:
        dirty = set(effect.dirty)
        removed = set(effect.removed)
        changed = set(effect.capacity_changed)
        new = set(effect.new_flows)
        out = []
        for f in self._flows.values():
            if f.flow_id in new:
                out.append(f)
            elif f.path is None:
                # Previously unroutable: retry only when its destination's
                # routing state may have changed.
                if f.dst in dirty:
                    out.append(f)
            elif removed and any(
                ((a, b) if a <= b else (b, a)) in removed
                for a, b in zip(f.path, f.path[1:])
            ):
                out.append(f)
            elif f.dst in dirty:
                out.append(f)
            elif changed and not changed.isdisjoint(f.link_ids):
                out.append(f)
        return out

    def _builder(self) -> MifoPathBuilder:
        return MifoPathBuilder(
            self.graph,
            self.routing,
            self.capable,
            event_fields={"epoch": self._event_no},
        )

    def _route_flow(self, f: _SimFlow, builder: MifoPathBuilder) -> bool:
        """(Re-)walk one flow; returns True if its path changed."""
        old = f.path
        try:
            outcome = builder.build_path(
                f.src, f.dst, self._congested_fn, self._spare_fn
            )
        except NoRouteError:
            f.path = None
            f.link_ids = []
            f.on_alt = False
            f.rate = 0.0
            self.solver.remove_flow(f.flow_id)
            return old is not None
        f.path = outcome.path
        f.link_ids = self._intern_path(outcome.path)
        f.on_alt = outcome.used_alternative
        if old != outcome.path:
            self.solver.set_flow(f.flow_id, f.link_ids)
            if old is not None:
                f.switches += 1
            return True
        return False

    def _solve(self) -> dict[int, float]:
        self.solver.set_capacity(self._residual_capacity())
        if self.config.mode == "full":
            self.solver.invalidate()
        rates = self.solver.solve()
        for f in self._flows.values():
            f.rate = rates.get(f.flow_id, 0.0)
        self._alloc = np.zeros(self._congested.shape[0])
        n = len(self._link_idx)
        self._alloc[:n] = self.solver.allocation()[:n]
        return rates

    def _update_congestion(self) -> tuple[set[int], bool]:
        """Hysteresis congestion update (same thresholds as the fluid sim);
        load counts both allocated and exogenous traffic."""
        cfg = self.config
        n = len(self._link_idx)
        cap = cfg.link_capacity_bps * self._cap_factor[:n]
        load = self._alloc[:n] + self._exo_frac[:n] * cap
        old = self._congested[:n].copy()
        view = self._congested[:n]
        view[load >= cfg.congest_threshold * cap] = True
        view[load <= cfg.clear_threshold * cap] = False
        newly = set(np.flatnonzero(view & ~old).tolist())
        any_cleared = bool((old & ~view).any())
        return newly, any_cleared

    def _respond_to_congestion(
        self,
        builder: MifoPathBuilder,
        newly_congested: set[int],
        any_cleared: bool,
    ) -> int:
        """One congestion-response pass mirroring the fluid simulator's
        ``_offer_reroutes``: flows on their default path react to links
        that just congested on their own path; deflected flows reconsider
        (and possibly resume) when something cleared.  Moved flows shift
        the allocation estimate immediately."""
        moved = 0
        for f in self._flows.values():  # insertion order == flow-id order
            if f.path is None:
                continue
            if f.on_alt:
                if not any_cleared:
                    continue
            elif newly_congested.isdisjoint(f.link_ids):
                continue
            old_ids = list(f.link_ids)
            rate = f.rate
            if self._route_flow(f, builder):
                moved += 1
                for idx in old_ids:
                    self._alloc[idx] = max(0.0, self._alloc[idx] - rate)
                for idx in f.link_ids:
                    self._alloc[idx] += rate
                tm.event(
                    "path_switch",
                    flow=f.flow_id,
                    src=f.src,
                    dst=f.dst,
                    on_alt=f.on_alt,
                    cause="congested_link" if f.on_alt else "resume",
                    epoch=self._event_no,
                )
        return moved

    def _observe_rtt(self) -> set[int]:
        """Sample every routed flow's path RTT, push into the per-flow
        detectors, and emit ``rtt_sample`` / ``changepoint`` trace
        events.  Returns the flows with a confirmed *upward* shift —
        the deflection candidates of this epoch."""
        mon = self._rtt
        assert mon is not None
        n = len(self._link_idx)
        cap = self.config.link_capacity_bps * self._cap_factor[:n]
        load = self._alloc[:n] + self._exo_frac[:n] * cap
        util = np.divide(load, cap, out=np.ones(n), where=cap > 0)
        np.clip(util, 0.0, 1.0, out=util)
        flows = [
            (f.flow_id, f.link_ids)
            for f in self._flows.values()
            if f.path is not None
        ]
        samples, alarms = mon.observe_epoch(
            self._event_no, flows, list(self._link_idx), util
        )
        t = tm.active()
        if t is not None:
            detector = self.config.detector
            for s in samples:
                t.event(
                    "rtt_sample",
                    flow=s.flow_id,
                    rtt_ms=s.rtt_ms,
                    epoch=self._event_no,
                    detector=detector,
                )
            for a in alarms:
                t.event(
                    "changepoint",
                    flow=a.flow_id,
                    epoch=a.epoch,
                    cp_epoch=a.cp_epoch,
                    direction=a.direction,
                    rtt_ms=a.after_ms,
                    detector=detector,
                )
        tm.inc("measure.rtt_samples", len(samples))
        if alarms:
            tm.inc("measure.alarms", len(alarms))
        return {a.flow_id for a in alarms if a.direction == "up"}

    def _respond_to_alarms(
        self,
        builder: MifoPathBuilder,
        alarmed: set[int],
        any_cleared: bool,
    ) -> int:
        """Measurement-driven twin of :meth:`_respond_to_congestion`:
        flows on their default path deflect when their own RTT series
        alarmed upward; deflected flows reconsider (and possibly resume)
        when some link cleared."""
        moved = 0
        for f in self._flows.values():  # insertion order == flow-id order
            if f.path is None:
                continue
            if f.on_alt:
                if not any_cleared:
                    continue
            elif f.flow_id not in alarmed:
                continue
            old_ids = list(f.link_ids)
            rate = f.rate
            if self._route_flow(f, builder):
                moved += 1
                for idx in old_ids:
                    self._alloc[idx] = max(0.0, self._alloc[idx] - rate)
                for idx in f.link_ids:
                    self._alloc[idx] += rate
                tm.event(
                    "path_switch",
                    flow=f.flow_id,
                    src=f.src,
                    dst=f.dst,
                    on_alt=f.on_alt,
                    cause="rtt_alarm" if f.on_alt else "resume",
                    epoch=self._event_no,
                )
        return moved

    def _certify(
        self,
        dirty: tuple[int, ...],
        converged_before: frozenset[int],
        trace_mark: int,
    ) -> int:
        """Step 7: re-prove invariants over destinations this event could
        have perturbed, and cross-check the epoch's recorded deflections
        against the epoch's own FIB state."""
        scope = set(dirty)
        scope.update(
            d for d in self.routing.cached_destinations() if d not in converged_before
        )
        if scope:
            with tm.span("scenario.verify"):
                report = verify_routing(
                    self.graph,
                    self.routing,
                    sorted(scope),
                    capable=self.capable,
                )
            if not report.ok:
                raise VerificationError(report)
        t = tm.active()
        if t is not None:
            epoch_events = [
                e
                for e in t.trace_events()
                if isinstance(e.get("seq"), int) and e["seq"] >= trace_mark
            ]
            problems = crosscheck_trace(
                self.graph,
                self.routing,
                epoch_events,
                capable=self.capable,
                skip_epoch_tagged=False,
            )
            if problems:
                raise VerificationError(
                    "scenario epoch trace disagrees with FIB state:\n  "
                    + "\n  ".join(problems)
                )
        return len(scope)

    def step(
        self,
        when: float,
        event: EngineEvent | None = None,
        *,
        verify: bool | None = None,
    ) -> None:
        """Apply one timeline event (``None`` = the epoch-0 initial
        routing of the base population) and run the full per-event
        procedure.  :meth:`run` drives this; benchmarks call it directly
        to time event processing separately from the initial routing.
        ``verify`` overrides the config's re-certification knob for this
        one event (the service certifies on a sampling cadence)."""
        self._event_no += 1
        t = tm.active()
        trace_mark = t.events_total if t is not None else 0
        with tm.span("scenario.event"):
            if event is None:  # epoch 0: route the base population
                effect = EventEffect(
                    new_flows=tuple(self._flows), target="initial routing"
                )
                kind = "initial"
            else:
                effect = event.apply(self)
                kind = event.kind
            converged_before = frozenset(self.routing.cached_destinations())

            builder = self._builder()
            affected = self._affected_flows(effect)
            rerouted = 0
            for f in affected:
                if self._route_flow(f, builder):
                    rerouted += 1
            self._solve()
            newly_congested, any_cleared = self._update_congestion()
            if self._rtt is None:
                if newly_congested or any_cleared:
                    if self._respond_to_congestion(
                        builder, newly_congested, any_cleared
                    ):
                        self._solve()
                        self._update_congestion()
            else:
                # Measurement-driven loop: the hysteresis bits above still
                # steer *where* alternatives go (the builder consults
                # them), but *when* to deflect is decided by the RTT
                # detector.  One sample per path per epoch — responses do
                # not re-sample, mirroring a real measurement cadence.
                alarmed = self._observe_rtt()
                if alarmed or any_cleared:
                    if self._respond_to_alarms(builder, alarmed, any_cleared):
                        self._solve()
                        self._update_congestion()

            verified = 0
            do_verify = self.config.verify if verify is None else verify
            if do_verify:
                verified = self._certify(effect.dirty, converged_before, trace_mark)
            if self.config.crosscheck:
                self.routing.crosscheck()

            self._record(when, kind, effect, rerouted, verified)

    def _record(
        self,
        when: float,
        kind: str,
        effect: EventEffect,
        rerouted: int,
        verified: int,
    ) -> None:
        routed = [f for f in self._flows.values() if f.path is not None]
        unroutable = len(self._flows) - len(routed)
        n = len(self._link_idx)
        total_bps = float(sum(f.rate for f in routed))
        record = EventRecord(
            index=self._event_no,
            time_s=when,
            kind=kind,
            target=effect.target,
            dirty_dests=len(effect.dirty),
            flows_rerouted=rerouted,
            flows_unroutable=unroutable,
            flows_total=len(self._flows),
            deflected_flows=sum(f.on_alt for f in routed),
            congested_links=int(self._congested[:n].sum()),
            verified_dests=verified,
            mean_rate_mbps=(total_bps / len(routed) / 1e6) if routed else 0.0,
            total_throughput_gbps=total_bps / 1e9,
        )
        self.records.append(record)
        tm.inc("scenario.events")
        tm.event(
            "scenario_event",
            time_s=when,
            event=kind,
            target=effect.target,
            epoch=self._event_no,
            dirty=len(effect.dirty),
            rerouted=rerouted,
            unroutable=unroutable,
        )

    # ------------------------------------------------------------------
    def run(self) -> ScenarioRun:
        """Route the base population, then play the whole timeline."""
        with tm.span("scenario.run"):
            self.step(0.0, None)
            for when, ev in self.spec.timeline:
                self.step(when, ev)
        return ScenarioRun(
            scenario=self.spec.name,
            mode=self.config.mode,
            backend=self.routing.backend,
            records=list(self.records),
            dests_recomputed=self.routing.dests_recomputed,
            dests_rebased=self.routing.dests_rebased,
            warm_solves=self.solver.solves,
            warm_hits=self.solver.hits,
        )
