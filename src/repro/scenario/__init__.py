"""``repro.scenario`` — event-driven dynamic scenarios with incremental
recomputation.

Every other experiment in this repository evaluates MIFO on a *static*
snapshot: one topology, one converged control plane, one workload.  The
paper's motivation, though, is dynamics — congestion appears, links fail
and recover, traffic ramps — and re-running the whole pipeline per data
point caps the timelines that are affordable.  This package makes the
dynamic case first-class:

* :mod:`repro.scenario.events` — the event vocabulary (link failure and
  recovery, capacity degradation, traffic ramps, flash crowds, scripted
  congestion onset), timelines, and the built-in named scenarios;
* :mod:`repro.scenario.incremental` — dirty-set BGP re-propagation: after
  a link event only the destinations whose converged state can actually
  change are re-run; every other cached destination is *rebased* onto the
  new graph unchanged (cross-validated byte-identical against full
  re-propagation);
* :mod:`repro.scenario.engine` — the driver that advances a simulation
  through a timeline, incrementally re-selects MIFO deflections for the
  affected flows only, warm-starts the max-min re-solve
  (:mod:`repro.flowsim.warmstart`), re-certifies the forwarding
  invariants over the dirty destinations after every event, and emits
  per-event telemetry.

Entry points: ``python -m repro scenario run <name>`` on the CLI, or
``repro.experiments.scenario.run(scale, scenario=<name>)`` through the
unified experiment API.
"""

from .engine import ScenarioConfig, ScenarioEngine, ScenarioRun
from .events import (
    SCENARIOS,
    CapacityScale,
    CongestionOnset,
    FlashCrowd,
    LinkFail,
    LinkRecover,
    ScenarioEvent,
    ScenarioSpec,
    TrafficRamp,
    get_scenario,
)
from .incremental import IncrementalRouting

__all__ = [
    "SCENARIOS",
    "CapacityScale",
    "CongestionOnset",
    "FlashCrowd",
    "IncrementalRouting",
    "LinkFail",
    "LinkRecover",
    "ScenarioConfig",
    "ScenarioEngine",
    "ScenarioEvent",
    "ScenarioRun",
    "ScenarioSpec",
    "TrafficRamp",
    "get_scenario",
]
