"""Dirty-set BGP re-propagation for single-link topology events.

Re-running every destination's three-stage convergence after each timeline
event is what makes naive dynamic studies quadratic.  This module keeps a
cache of converged per-destination views and, on a link change, recomputes
only the destinations the change can actually affect.

**The dirty test.**  For destination *d* and a changed link ``(u, v)``,
the converged state can differ only if, under the *old* converged state,
at least one endpoint would announce its best route across the link:

    ``has_route(v) and export_allowed(best_class(v), rel(u as seen from v))``

or symmetrically for ``u`` announcing toward ``v``.  If neither direction
carries an export, the link is *inert* for *d*: tracing the three stages
of :class:`~repro.bgp.propagation.DestinationRouting` shows the edge
contributes to stage 1 (customer BFS) only when the lower endpoint has a
customer route (which it would export to everyone), to stage 2 (peer hop)
only when the peer endpoint has a customer route, and to stage 3
(provider Dijkstra) only when the provider endpoint has *any* route
(which it would export to its customer) — each case implies the export
test fires.  Removal of an inert link therefore leaves the fixpoint
untouched; for link *addition* the same test runs against the old views
plus the new link's relationship (no initial announcement across the new
edge means no new routes anywhere, by the same stage-by-stage argument).

Clean destinations are *rebased* — their converged state is re-wrapped
around the new graph object (:meth:`DestinationRouting.rebind`) with all
tables and lazy caches shared.  The test is a sound over-approximation:
dirty destinations may turn out unchanged after recomputation, but a
clean destination is provably byte-identical — which
``tests/scenario/test_crossvalidation.py`` re-proves empirically by
diffing against full recomputation after every event of every built-in
scenario.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .. import telemetry as tm
from ..bgp.propagation import RoutingView, compute_routing
from ..errors import ConfigError, TopologyError, VerificationError
from ..topology.asgraph import ASGraph
from ..topology.relationships import Relationship, export_allowed

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..bgp.parallel import ParallelRoutingEngine
    from ..bgp.propagation import RibEntry

__all__ = ["IncrementalRouting"]

#: per-node forwarding fingerprint: (has_route, best class, export length,
#: next hop, full RIB) — total state a view can serve for that node.
_NodePrint = tuple[
    bool, "Relationship | None", int | None, "int | None", "tuple[RibEntry, ...]"
]


class IncrementalRouting:
    """A routing source whose cached views follow topology changes.

    Satisfies :class:`~repro.bgp.propagation.RoutingSource` (call it with
    a destination, get a :class:`~repro.bgp.propagation.RoutingView`), so
    the deflection builder and the verifier consume it exactly like a
    :class:`~repro.bgp.propagation.RoutingCache`.

    ``recompute`` selects the update policy on :meth:`advance`:
    ``"dirty"`` (the point of this class) recomputes only dirty
    destinations and rebases the rest; ``"all"`` recomputes every cached
    destination from scratch — the full-recomputation baseline the
    incremental mode is cross-validated (and benchmarked) against.  Both
    policies *report* the same dirty set, so engine-level decisions keyed
    on it are mode-independent.
    """

    def __init__(
        self,
        graph: ASGraph,
        *,
        backend: str = "dict",
        recompute: str = "dirty",
    ) -> None:
        if backend not in ("dict", "array"):
            raise ConfigError(f"unknown routing backend {backend!r}")
        if recompute not in ("dirty", "all"):
            raise ConfigError(
                f"recompute policy {recompute!r} not in ('dirty', 'all')"
            )
        self.graph = graph  # mifocheck: derivable: advance() rebinds it; restore rebuilds the topology
        self.backend = backend
        self.recompute = recompute  # mifocheck: derivable: policy recomputed from captured config mode
        self._views: dict[int, RoutingView] = {}
        #: cumulative advance() bookkeeping, surfaced in run provenance.
        self.dests_recomputed = 0
        self.dests_rebased = 0
        self._engine: "ParallelRoutingEngine | None" = None  # mifocheck: derivable: runtime worker-pool resource, re-attached after restore
        self._shard_min = 16  # mifocheck: derivable: dispatch knob, re-supplied with the engine

    # ------------------------------------------------------------------
    # RoutingSource surface
    # ------------------------------------------------------------------
    def _compute(self, dest: int) -> RoutingView:
        if self.backend == "array":
            from ..bgp.array_routing import compute_array_routing

            return compute_array_routing(self.graph, dest)
        return compute_routing(self.graph, dest)

    def __call__(self, dest: int) -> RoutingView:
        """The (possibly cached) converged view for ``dest`` on the
        current graph; first use converges it."""
        view = self._views.get(dest)
        if view is None:
            view = self._compute(dest)
            self._views[dest] = view
        return view

    def attach_engine(
        self, engine: "ParallelRoutingEngine | None", *, shard_min: int = 16
    ) -> None:
        """Attach (or with ``None`` detach) a parallel routing engine.

        With an engine attached and the ``array`` backend active,
        :meth:`advance` dispatches dirty sets of at least ``shard_min``
        destinations as dense-index shards over the engine's worker pool
        instead of re-converging them serially.  Worker telemetry
        snapshots are absorbed in submission order, so the ``bgp.*``
        accounting is identical to the serial path's; results are
        byte-identical by the cross-backend contract.  The serial loop
        remains the fallback for small dirty sets, the ``dict`` oracle,
        and pool failures (the engine degrades internally).

        The engine's lifetime belongs to the caller — this class never
        closes it.
        """
        if shard_min < 1:
            raise ConfigError(f"shard_min must be >= 1, got {shard_min}")
        self._engine = engine
        self._shard_min = shard_min

    def cached_destinations(self) -> tuple[int, ...]:
        """Destinations currently converged, ascending (verifier scope)."""
        return tuple(sorted(self._views))

    def __contains__(self, dest: int) -> bool:
        return dest in self._views

    def __len__(self) -> int:
        return len(self._views)

    # ------------------------------------------------------------------
    # incremental update
    # ------------------------------------------------------------------
    @staticmethod
    def _would_export(view: RoutingView, x: int, rel_of_peer: Relationship) -> bool:
        """Would ``x`` announce its best route across the changed link,
        given the receiver's relationship as seen from ``x``?"""
        if not view.has_route(x):
            return False
        # best_class is None at the destination itself: local origination,
        # announced to every neighbor.
        return export_allowed(view.best_class(x), rel_of_peer)

    def dirty_destinations(self, u: int, v: int) -> tuple[int, ...]:
        """Cached destinations whose state may change with link ``(u, v)``.

        The link's relationship is read from whichever graph contains it:
        the current one (the link is about to be removed) or, for an
        addition, the caller passes the post-change graph to
        :meth:`advance`, which resolves it there before calling this via
        the resolved relationship — see :meth:`_dirty_for_rel`.
        """
        rel_v_from_u = self.graph.relationship(u, v)
        return self._dirty_for_rel(u, v, rel_v_from_u)

    def _dirty_for_rel(
        self, u: int, v: int, rel_v_from_u: Relationship
    ) -> tuple[int, ...]:
        from ..topology.relationships import invert

        rel_u_from_v = invert(rel_v_from_u)
        dirty = []
        for d, view in self._views.items():
            if self._would_export(view, v, rel_u_from_v) or self._would_export(
                view, u, rel_v_from_u
            ):
                dirty.append(d)
        return tuple(sorted(dirty))

    def advance(self, new_graph: ASGraph, u: int, v: int) -> tuple[int, ...]:
        """Move every cached view onto ``new_graph``, which differs from
        the current graph by exactly the link ``(u, v)``.

        Returns the (ascending) dirty destination set.  Under the
        ``"dirty"`` policy only those are re-converged; the rest are
        rebased.  Under ``"all"`` everything is re-converged, but the
        same dirty set is still computed and returned.
        """
        was_adjacent = self.graph.are_adjacent(u, v)
        if was_adjacent == new_graph.are_adjacent(u, v):
            raise TopologyError(
                f"advance() expects the graphs to differ by link ({u}, {v})"
            )
        # Evaluate the export test with the link's relationship, taken
        # from whichever graph actually contains the link.
        rel_graph = self.graph if was_adjacent else new_graph
        dirty = self._dirty_for_rel(u, v, rel_graph.relationship(u, v))

        targets = set(self._views) if self.recompute == "all" else set(dirty)
        old_views = self._views
        self.graph = new_graph
        fresh: dict[int, RoutingView] = {}
        with tm.span("scenario.repropagate"):
            computed: dict[int, RoutingView] | None = None
            if (
                self._engine is not None
                and self.backend == "array"
                and self._engine.backend == "array"
                and self._engine.effective_workers > 1
                and len(targets) >= self._shard_min
            ):
                # Sharded dispatch: re-export the CSR for the new graph
                # (workers re-attach from the per-task manifest) and
                # converge the whole dirty set over the pool.  Worker
                # snapshots absorb in submission order inside
                # compute_many, so bgp.* counters match the serial loop;
                # pool trouble degrades to in-process compute there too.
                self._engine.rebind(new_graph)
                computed = self._engine.compute_many(sorted(targets))
            for d, view in old_views.items():
                if d in targets:
                    fresh[d] = (
                        computed[d] if computed is not None else self._compute(d)
                    )
                else:
                    fresh[d] = view.rebind(new_graph)
        self._views = fresh
        n_recomputed = len(targets)
        n_rebased = len(old_views) - n_recomputed
        self.dests_recomputed += n_recomputed
        self.dests_rebased += n_rebased
        tm.inc("scenario.dirty_dests", len(dirty))
        tm.inc("scenario.dests_recomputed", n_recomputed)
        tm.inc("scenario.dests_rebased", n_rebased)
        return dirty

    # ------------------------------------------------------------------
    # cross-validation
    # ------------------------------------------------------------------
    @staticmethod
    def _fingerprint(view: RoutingView, nodes: list[int]) -> list[_NodePrint]:
        prints: list[_NodePrint] = []
        for x in nodes:
            if not view.has_route(x):
                prints.append((False, None, None, None, ()))
                continue
            prints.append(
                (
                    True,
                    view.best_class(x),
                    view.best_len(x),
                    view.next_hop(x),
                    view.rib(x),
                )
            )
        return prints

    def crosscheck(self) -> None:
        """Re-converge every cached destination from scratch and demand
        the live view serve identical state for every node.

        This is the incremental engine's own refutation oracle: a rebased
        view gone stale (an unsound dirty test) cannot survive it.  Cost
        is a full recomputation — meant for tests and the CI scenario
        job, not for production timelines.
        """
        nodes = sorted(self.graph.nodes())
        for d in self.cached_destinations():
            live = self._views[d]
            fresh = self._compute(d)
            live_fp = self._fingerprint(live, nodes)
            fresh_fp = self._fingerprint(fresh, nodes)
            if live_fp == fresh_fp:
                continue
            for x, got, want in zip(nodes, live_fp, fresh_fp):
                if got != want:
                    raise VerificationError(
                        f"incremental routing diverged from full recompute: "
                        f"dest {d}, node {x}: cached={got!r} fresh={want!r}"
                    )
